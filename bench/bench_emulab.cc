// bench_emulab — the Section 5.1 validation experiment on the packet-level
// simulator (the repository's Emulab substitute).
//
// Runs TCP Reno / Cubic / Scalable over the (n, bandwidth, buffer) grid and,
// for every metric, checks that the measured protocol hierarchy matches the
// theory-induced one — the paper's reported "preliminary finding".
//
// The full paper grid (3 × 4 × 2 cells × 6 runs each) takes a few minutes;
// the default here is a representative sub-grid. Pass --full for the paper's
// complete grid.
//
// Usage: bench_emulab [--full] [--duration=30] [--jobs=N] [--markdown]
//
// --jobs=N fans the (n, bandwidth, buffer) grid out over N workers (default:
// AXIOMCC_JOBS env, else hardware concurrency; 1 = serial). Timing lands in
// BENCH_emulab.json.
// This bench is inherently packet-level (it validates fluid-model theory
// against the packet substrate), so it takes no --backend flag; the grid
// always runs on engine::PacketBackend and the theory side on the fluid
// model.
#include <cstdio>
#include <exception>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "exp/emulab.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "emulab");

    exp::EmulabGridConfig cfg;
    cfg.duration_seconds = args.get_double("duration", 30.0);
    cfg.jobs = args.get_jobs();
    if (!args.has("full")) {
      cfg.sender_counts = {2, 4};
      cfg.bandwidths_mbps = {20.0, 60.0};
      cfg.buffers_packets = {10, 100};
    }

    std::printf("=== Section 5.1: Emulab-style validation (packet-level "
                "simulator) ===\n");
    std::printf("grid: n in {");
    for (int n : cfg.sender_counts) std::printf("%d ", n);
    std::printf("}, BW in {");
    for (double bw : cfg.bandwidths_mbps) std::printf("%.0f ", bw);
    std::printf("} Mbps, buffer in {");
    for (auto b : cfg.buffers_packets) std::printf("%zu ", b);
    std::printf("} MSS, RTT 42 ms, %.0f s per run, %ld jobs\n\n",
                cfg.duration_seconds, cfg.jobs);

    WallTimer timer;
    const auto cells = exp::run_emulab_grid(cfg);
    const double grid_seconds = timer.seconds();

    std::size_t total_verdicts = 0;
    std::size_t matching = 0;

    for (const auto& cell : cells) {
      std::printf("--- n=%d, BW=%.0f Mbps, buffer=%zu MSS ---\n", cell.n,
                  cell.bandwidth_mbps, cell.buffer_packets);

      TextTable scores;
      scores.set_header({"protocol", "efficiency", "loss", "fairness", "conv",
                         "tcp-friendliness"});
      for (const auto& p : cell.protocols) {
        scores.add_row({p.protocol, TextTable::num(p.efficiency, 3),
                        TextTable::num(p.loss_rate, 4),
                        TextTable::num(p.fairness, 3),
                        TextTable::num(p.convergence, 3),
                        TextTable::num(p.tcp_friendliness, 3)});
      }
      std::printf("%s", scores.render().c_str());

      TextTable verdicts;
      verdicts.set_header({"metric", "measured order (worst->best)",
                           "theory order", "hierarchy matches"});
      for (const auto& v : exp::check_hierarchies(cell)) {
        verdicts.add_row({core::metric_name(v.metric), v.measured_order,
                          v.theory_order, v.matches ? "yes" : "NO"});
        ++total_verdicts;
        if (v.matches) ++matching;
      }
      std::printf("%s\n", verdicts.render().c_str());
    }

    std::printf("=== hierarchy agreement: %zu / %zu metric-cells match the "
                "theory (paper: all) ===\n",
                matching, total_verdicts);

    BenchReport bench("emulab");
    bench.set_jobs(cfg.jobs);
    bench.add_phase("run_emulab_grid", grid_seconds);
    bench.add_phase("check_hierarchies", timer.seconds() - grid_seconds);
    bench.add_counter("cells", static_cast<double>(cells.size()));
    bench.add_counter("cells_per_sec",
                      static_cast<double>(cells.size()) / grid_seconds);
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, "packet");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
