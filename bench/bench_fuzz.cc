// bench_fuzz — the coverage-guided scenario fuzzer.
//
// Hunts for fluid-vs-packet divergence and guarded-runner invariant
// violations by mutating ScenarioDescs (see src/fuzz/) and running every
// mutant on both backends. Retention is novelty-driven: a mutant joins the
// corpus when it lands in a new bucket of the paper's metric space or a new
// outcome class. Findings are greedily minimized and can be written out as
// triaged `.scn` reproducers for tests/corpus/.
//
// Usage: bench_fuzz [--runs=2000] [--seed=1] [--jobs=N] [--batch=32]
//                   [--corpus=DIR] [--save=DIR] [--no-minimize]
//                   [--divergence-threshold=0.35] [--replay] [--markdown]
//
// --corpus=DIR   seeds the run with DIR's *.scn files (on top of the
//                built-in seed corpus); with --replay, replays them instead.
// --replay       replay-only mode: every corpus entry is re-run and must
//                reproduce its `expect` line; any mismatch (or untriaged
//                entry) fails the run. This is the CI fuzz-smoke gate.
// --save=DIR     write each minimized finding to DIR as scn-<hash>.scn with
//                its expect line filled in (DIR must exist).
//
// A fixed --seed reproduces the identical corpus and findings at any --jobs
// (generation and ingestion are serial; execution is a pure fan-out).
// Timing lands in BENCH_fuzz.json; execs/sec, corpus size, and finding
// counts are ledger counters the sentinel tracks across runs.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "analysis/telemetry_report.h"
#include "fuzz/fuzzer.h"
#include "ledger/ledger.h"
#include "recorder/event.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/task_pool.h"

using namespace axiomcc;

namespace {

std::string fmt(double v, int precision = 3) {
  return TextTable::num(v, precision);
}

/// Short human-readable description of an outcome for the findings table.
std::string outcome_detail(const fuzz::RunOutcome& outcome) {
  switch (outcome.kind) {
    case fuzz::OutcomeKind::kDivergence:
      return "gap " + fmt(outcome.divergence, 2);
    case fuzz::OutcomeKind::kFluidFault:
    case fuzz::OutcomeKind::kBothFault:
      return stress::fault_kind_name(outcome.fluid_fault.kind);
    case fuzz::OutcomeKind::kPacketFault:
      return stress::fault_kind_name(outcome.packet_fault.kind);
    case fuzz::OutcomeKind::kClean:
      break;
  }
  return "-";
}

/// Replays every corpus entry and checks it reproduces its expect line.
/// Returns the number of mismatches (untriaged entries count as mismatches:
/// a corpus entry without a triaged expectation can never "pass").
int replay_corpus(const std::vector<std::string>& files,
                  const fuzz::RunnerConfig& runner, long jobs,
                  TextTable::Format format) {
  std::vector<fuzz::ScenarioDesc> descs;
  descs.reserve(files.size());
  for (const std::string& file : files) {
    descs.push_back(fuzz::load_scenario_file(file));
  }
  const std::vector<fuzz::RunOutcome> outcomes = parallel_map(
      descs,
      [&](const fuzz::ScenarioDesc& desc) {
        return fuzz::run_scenario(desc, runner);
      },
      jobs);

  TextTable table;
  table.set_header({"File", "Expect", "Got", "Detail", "Status"});
  int mismatches = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const fuzz::ExpectDesc& expect = descs[i].expect;
    const bool ok = fuzz::matches_expect(outcomes[i], expect);
    if (!ok) ++mismatches;
    const std::string want =
        expect.empty() ? "(untriaged)"
                       : expect.outcome +
                             (expect.detail.empty() ? "" : " " + expect.detail);
    const std::string base =
        files[i].substr(files[i].find_last_of('/') + 1);
    table.add_row({base, want, fuzz::outcome_kind_name(outcomes[i].kind),
                   outcome_detail(outcomes[i]), ok ? "ok" : "MISMATCH"});
  }
  std::printf("%s\n", table.render(format).c_str());
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "fuzz");

    fuzz::FuzzConfig cfg;
    cfg.runs = args.get_int("runs", 2000);
    cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.jobs = args.get_jobs();
    cfg.batch = args.get_int("batch", 32);
    cfg.minimize = !args.has("no-minimize");
    cfg.runner.divergence_threshold =
        args.get_double("divergence-threshold", 0.35);
    // --record[=dir[,classes=list]]: flight-record every oracle run and
    // auto-dump a post-mortem (reproducer + both backends' recorded tails)
    // for each finding next to the other artifacts. A classes list narrows
    // capture to the named event lanes.
    if (const auto record = args.record_spec()) {
      cfg.runner.record.enabled = true;
      cfg.runner.postmortem_dir = record->dir;
      if (!record->classes.empty()) {
        cfg.runner.record.classes =
            recorder::parse_class_mask(record->classes.c_str());
      }
    }

    const auto format = args.has("markdown") ? TextTable::Format::kMarkdown
                                             : TextTable::Format::kAscii;

    std::vector<std::string> corpus_files;
    if (const auto dir = args.get("corpus")) {
      corpus_files = fuzz::list_corpus_files(*dir);
    }

    if (args.has("replay")) {
      std::printf("=== Corpus replay (%zu entries, %ld jobs) ===\n",
                  corpus_files.size(), cfg.jobs);
      WallTimer timer;
      const int mismatches =
          replay_corpus(corpus_files, cfg.runner, cfg.jobs, format);
      const double run_seconds = timer.seconds();

      BenchReport bench("fuzz");
      bench.set_jobs(cfg.jobs);
      bench.add_phase("replay", run_seconds);
      bench.add_counter("replayed", static_cast<double>(corpus_files.size()));
      bench.add_counter("replay_mismatches", static_cast<double>(mismatches));
      telemetry.finish(bench);
      const std::string artifact = bench.write(args.artifacts_dir());
      ledger::maybe_append(args, bench, "dual");
      std::printf("%d of %zu entries mismatched\n", mismatches,
                  corpus_files.size());
      std::printf("Bench artifact: %s\n", artifact.c_str());
      return mismatches == 0 ? 0 : 1;
    }

    std::vector<fuzz::ScenarioDesc> seeds = fuzz::Mutator::seed_corpus();
    for (const std::string& file : corpus_files) {
      seeds.push_back(fuzz::load_scenario_file(file));
    }

    std::printf(
        "=== Scenario fuzz (%ld runs, seed %llu, batch %ld, %zu seed "
        "scenarios, %ld jobs) ===\n",
        cfg.runs, static_cast<unsigned long long>(cfg.seed), cfg.batch,
        seeds.size(), cfg.jobs);

    WallTimer timer;
    const fuzz::FuzzResult result = fuzz::run_fuzz(cfg, std::move(seeds));
    const double run_seconds = timer.seconds();
    const double total_execs = static_cast<double>(
        result.stats.executed + result.stats.minimize_attempts);

    BenchReport bench("fuzz");
    bench.set_jobs(cfg.jobs);
    bench.add_phase("fuzz", run_seconds);
    bench.add_counter("runs", static_cast<double>(result.stats.executed));
    bench.add_counter("execs_per_sec", total_execs / run_seconds);
    bench.add_counter("corpus_size",
                      static_cast<double>(result.stats.retained));
    bench.add_counter("raw_findings",
                      static_cast<double>(result.stats.raw_findings));
    bench.add_counter("findings", static_cast<double>(result.stats.findings));
    bench.add_counter("minimize_attempts",
                      static_cast<double>(result.stats.minimize_attempts));
    telemetry.finish(bench);
    const std::string artifact = bench.write(args.artifacts_dir());
    ledger::maybe_append(args, bench, "dual");

    TextTable table;
    table.set_header({"Finding", "Outcome", "Detail", "Steps", "Senders",
                      "Shrink"});
    for (const fuzz::Finding& finding : result.findings) {
      const fuzz::ScenarioDesc& desc = finding.minimized.desc;
      table.add_row({fuzz::corpus_file_name(desc),
                     fuzz::outcome_kind_name(finding.minimized.outcome.kind),
                     outcome_detail(finding.minimized.outcome),
                     std::to_string(desc.steps),
                     std::to_string(desc.senders.size()),
                     std::to_string(finding.minimized.accepted) + "/" +
                         std::to_string(finding.minimized.attempts)});
    }
    std::printf("%s\n", table.render(format).c_str());

    if (const auto save_dir = args.get("save")) {
      for (const fuzz::Finding& finding : result.findings) {
        fuzz::ScenarioDesc desc = finding.minimized.desc;
        desc.expect = finding.expect;
        const std::string path =
            *save_dir + "/" + fuzz::corpus_file_name(desc);
        fuzz::save_scenario_file(path, desc);
        std::printf("saved %s\n", path.c_str());
      }
    }

    std::printf(
        "%ld execs (%ld fuzz + %ld minimize), %.0f execs/sec, corpus %ld, "
        "%ld findings (%ld raw)\n",
        static_cast<long>(total_execs), result.stats.executed,
        result.stats.minimize_attempts, total_execs / run_seconds,
        result.stats.retained, result.stats.findings,
        result.stats.raw_findings);
    std::printf("Bench artifact: %s\n", artifact.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
