// bench_theorems — empirical verification of Claim 1 and Theorems 1-5
// (paper Section 4), printed as measured-vs-bound rows.
//
// Usage: bench_theorems [--steps=3000] [--backend=fluid|packet] [--jobs=N]
//
// --jobs=N fans each theorem's independent simulation cells out over N
// workers (default: AXIOMCC_JOBS env, else hardware concurrency; 1 =
// serial). Per-theorem timing lands in BENCH_theorems.json.
// --backend selects the measuring simulator (default: AXIOMCC_BACKEND env,
// else fluid). The bounds are fluid-model derivations — expect slack, and
// some failures, when measuring on the packet backend.
#include <cstdio>
#include <exception>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "engine/scenario.h"
#include "exp/theorems.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

int print_checks(const char* title, const std::vector<exp::TheoremCheck>& checks) {
  std::printf("--- %s ---\n", title);
  TextTable table;
  table.set_header({"check", "measured", "bound", "holds"});
  int failures = 0;
  for (const auto& c : checks) {
    table.add_row({c.description, TextTable::num(c.measured, 4),
                   TextTable::num(c.bound, 4), c.holds ? "yes" : "NO"});
    if (!c.holds) ++failures;
  }
  std::printf("%s\n", table.render().c_str());
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "theorems");
    core::EvalConfig cfg;
    cfg.steps = args.get_int("steps", 3000);
    cfg.backend = engine::parse_backend(args.get_backend());
    const long jobs = args.get_jobs();
    if (cfg.backend != engine::BackendKind::kFluid) {
      std::printf("Backend: %s (bounds are fluid-model derivations)\n",
                  engine::backend_name(cfg.backend));
    }

    std::printf("=== Section 4: axiomatic derivations, checked empirically "
                "(%ld jobs) ===\n\n",
                jobs);
    int failures = 0;
    std::size_t cells = 0;
    BenchReport bench("theorems");
    bench.set_jobs(jobs);
    WallTimer timer;

    {
      const auto r = exp::check_claim1(cfg, jobs);
      bench.add_phase("claim1", timer.seconds());
      cells += 3;
      std::printf("--- Claim 1: 0-loss loss-based protocols are not "
                  "fast-utilizing ---\n");
      std::printf("CautiousProbe tail loss:            %.6f (must be 0)\n",
                  r.tail_loss);
      std::printf("CautiousProbe growth coefficient:   %.6f (horizon H)\n",
                  r.fast_utilization);
      std::printf("CautiousProbe growth coefficient:   %.6f (horizon 2H — "
                  "must not grow)\n",
                  r.fast_utilization_half);
      std::printf("holds: %s\n\n", r.holds ? "yes" : "NO");
      if (!r.holds) ++failures;
    }

    const struct {
      const char* title;
      const char* phase;
      std::vector<exp::TheoremCheck> (*check)(const core::EvalConfig&, long);
    } theorems[] = {
        {"Theorem 1: efficiency >= conv/(2-conv) (AIMD grid)", "theorem1",
         exp::check_theorem1},
        {"Theorem 2: TCP-friendliness <= 3(1-b)/(a(1+b)) (tight for AIMD)",
         "theorem2", exp::check_theorem2},
        {"Theorem 3: robustness tightens the friendliness bound", "theorem3",
         exp::check_theorem3},
        {"Theorem 4: friendliness transfers to more-aggressive protocols",
         "theorem4", exp::check_theorem4},
        {"Theorem 5: loss-based protocols starve latency-avoiders",
         "theorem5", exp::check_theorem5},
    };
    for (const auto& t : theorems) {
      timer.reset();
      const auto checks = t.check(cfg, jobs);
      bench.add_phase(t.phase, timer.seconds());
      cells += checks.size();
      failures += print_checks(t.title, checks);
    }

    std::printf("=== %d failing check(s) ===\n", failures);

    bench.add_counter("cells", static_cast<double>(cells));
    bench.add_counter("cells_per_sec",
                      static_cast<double>(cells) / bench.total_seconds());
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, args.get_backend());
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
