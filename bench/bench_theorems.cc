// bench_theorems — empirical verification of Claim 1 and Theorems 1-5
// (paper Section 4), printed as measured-vs-bound rows.
//
// Usage: bench_theorems [--steps=3000]
#include <cstdio>
#include <exception>
#include <vector>

#include "exp/theorems.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

int print_checks(const char* title, const std::vector<exp::TheoremCheck>& checks) {
  std::printf("--- %s ---\n", title);
  TextTable table;
  table.set_header({"check", "measured", "bound", "holds"});
  int failures = 0;
  for (const auto& c : checks) {
    table.add_row({c.description, TextTable::num(c.measured, 4),
                   TextTable::num(c.bound, 4), c.holds ? "yes" : "NO"});
    if (!c.holds) ++failures;
  }
  std::printf("%s\n", table.render().c_str());
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    core::EvalConfig cfg;
    cfg.steps = args.get_int("steps", 3000);

    std::printf("=== Section 4: axiomatic derivations, checked empirically "
                "===\n\n");
    int failures = 0;

    {
      const auto r = exp::check_claim1(cfg);
      std::printf("--- Claim 1: 0-loss loss-based protocols are not "
                  "fast-utilizing ---\n");
      std::printf("CautiousProbe tail loss:            %.6f (must be 0)\n",
                  r.tail_loss);
      std::printf("CautiousProbe growth coefficient:   %.6f (horizon H)\n",
                  r.fast_utilization);
      std::printf("CautiousProbe growth coefficient:   %.6f (horizon 2H — "
                  "must not grow)\n",
                  r.fast_utilization_half);
      std::printf("holds: %s\n\n", r.holds ? "yes" : "NO");
      if (!r.holds) ++failures;
    }

    failures += print_checks(
        "Theorem 1: efficiency >= conv/(2-conv) (AIMD grid)",
        exp::check_theorem1(cfg));
    failures += print_checks(
        "Theorem 2: TCP-friendliness <= 3(1-b)/(a(1+b)) (tight for AIMD)",
        exp::check_theorem2(cfg));
    failures += print_checks(
        "Theorem 3: robustness tightens the friendliness bound",
        exp::check_theorem3(cfg));
    failures += print_checks(
        "Theorem 4: friendliness transfers to more-aggressive protocols",
        exp::check_theorem4(cfg));
    failures += print_checks(
        "Theorem 5: loss-based protocols starve latency-avoiders",
        exp::check_theorem5(cfg));

    std::printf("=== %d failing check(s) ===\n", failures);
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
