// bench_micro — google-benchmark microbenchmarks of the two simulation
// substrates: fluid steps/s and packet-level events/s, plus the metric
// estimators. These are performance benches for the library itself (not a
// paper experiment).
#include <benchmark/benchmark.h>

#include "cc/aimd.h"
#include "cc/presets.h"
#include "core/evaluator.h"
#include "core/metrics.h"
#include "fluid/sim.h"
#include "sim/dumbbell.h"
#include "fluid/network.h"
#include "sim/event.h"
#include "sim/network.h"
#include "sim/queue.h"

using namespace axiomcc;

namespace {

void BM_FluidSimulationSteps(benchmark::State& state) {
  const long steps = state.range(0);
  const auto link = fluid::make_link_mbps(30.0, 42.0, 100.0);
  for (auto _ : state) {
    fluid::SimOptions opt;
    opt.steps = steps;
    fluid::FluidSimulation sim(link, opt);
    sim.add_sender(cc::Aimd(1.0, 0.5), 1.0);
    sim.add_sender(cc::Aimd(1.0, 0.5), 50.0);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_FluidSimulationSteps)->Arg(1000)->Arg(10000);

void BM_EventKernelChurn(benchmark::State& state) {
  // Schedule/execute a self-rescheduling chain: the kernel's hot loop.
  const int chain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = chain;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.schedule_in(SimTime(1000), hop);
    };
    sim.schedule_in(SimTime(1000), hop);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_EventKernelChurn)->Arg(10000);

void BM_PacketSimulation(benchmark::State& state) {
  const double seconds = static_cast<double>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    sim::DumbbellConfig cfg;
    cfg.bottleneck_mbps = 20.0;
    cfg.rtt_ms = 42.0;
    cfg.buffer_packets = 100;
    cfg.duration_seconds = seconds;
    sim::DumbbellExperiment exp(cfg);
    exp.add_flow(cc::presets::reno());
    exp.add_flow(cc::presets::cubic_linux());
    exp.run();
    events += exp.simulator().events_processed();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketSimulation)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_MetricEstimators(benchmark::State& state) {
  core::EvalConfig cfg;
  cfg.steps = 4000;
  const auto reno = cc::presets::reno();
  const fluid::Trace trace = core::run_shared_link(*reno, cfg);
  for (auto _ : state) {
    const core::EstimatorConfig est{0.5};
    benchmark::DoNotOptimize(core::measure_efficiency(trace, est));
    benchmark::DoNotOptimize(core::measure_fairness(trace, est));
    benchmark::DoNotOptimize(core::measure_convergence(trace, est));
    benchmark::DoNotOptimize(core::measure_loss_avoidance(trace, est));
    benchmark::DoNotOptimize(core::measure_latency_avoidance(trace, est));
  }
}
BENCHMARK(BM_MetricEstimators);

void BM_MultiHopPacketSimulation(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    sim::MultiHopNetwork::Config cfg;
    cfg.duration_seconds = 5.0;
    sim::PacketParkingLot lot = sim::make_packet_parking_lot(
        10.0, 10.0, 25, hops, *cc::presets::reno(), cfg);
    lot.network->run();
    events += lot.network->simulator().events_processed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiHopPacketSimulation)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_RedQueueDiscipline(benchmark::State& state) {
  // Enqueue/dequeue churn through RED's EWMA + drop logic.
  sim::REDQueue::Params params;
  params.capacity_packets = 128;
  params.min_threshold = 30.0;
  params.max_threshold = 90.0;
  sim::REDQueue queue(params);
  sim::Packet packet;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    packet.seq = seq++;
    if (queue.enqueue(packet)) {
      if (queue.size_packets() > 64) benchmark::DoNotOptimize(queue.dequeue());
    } else {
      benchmark::DoNotOptimize(queue.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedQueueDiscipline);

void BM_FluidNetworkParkingLot(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fluid::NetworkOptions opt;
    opt.steps = 2000;
    fluid::ParkingLot lot = fluid::make_parking_lot(
        fluid::make_link_mbps(20.0, 40.0, 20.0), hops, cc::Aimd(1.0, 0.5),
        opt);
    benchmark::DoNotOptimize(lot.network.run());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FluidNetworkParkingLot)->Arg(3);

void BM_FullProtocolEvaluation(benchmark::State& state) {
  core::EvalConfig cfg;
  cfg.steps = 2000;
  cfg.fast_utilization_steps = 1000;
  cfg.robustness_steps = 1000;
  const cc::Aimd reno(1.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_protocol(reno, cfg));
  }
  state.SetLabel("all 8 metrics incl. robustness binary search");
}
BENCHMARK(BM_FullProtocolEvaluation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
