// bench_micro — google-benchmark microbenchmarks of the two simulation
// substrates: fluid steps/s and packet-level events/s, plus the metric
// estimators. These are performance benches for the library itself (not a
// paper experiment).
//
// Before the google-benchmark suite runs, a task-pool throughput bench
// measures parallel_map over fluid-simulation cells at jobs = 1, 2, 4, and
// hardware concurrency, and a telemetry-overhead bench times the same
// workload with probes runtime-disabled vs runtime-enabled. Both land in
// BENCH_micro.json. Pass --benchmark_filter=... etc. through to
// google-benchmark as usual; --skip-pool / --skip-overhead skip the
// respective pre-suite bench, --senders-scaling[=maxN] adds the scalar-vs-
// batch population-scaling bench (default maxN 100000; =1000000 adds the
// million-sender batch-only point), --telemetry[=path] and
// --backend=fluid|packet (AXIOMCC_BACKEND env; drives the EvalConfig-based
// benches) work as in the other benches. --record[=dir,classes=mask]
// flight-records one representative parking-lot run per backend into dir
// as micro-<backend>.jsonl (lane filtering via the classes mask,
// provenance-stamped with the git SHA, streaming metric windows included
// as kMetric events) before the suite runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "ledger/provenance.h"
#include "cc/aimd.h"
#include "cc/presets.h"
#include "core/evaluator.h"
#include "core/metrics.h"
#include "engine/backend.h"
#include "engine/scenario.h"
#include "engine/topology.h"
#include "fluid/sim.h"
#include "recorder/io.h"
#include "sim/dumbbell.h"
#include "fluid/network.h"
#include "sim/event.h"
#include "sim/network.h"
#include "sim/queue.h"
#include "telemetry/telemetry.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/task_pool.h"

using namespace axiomcc;

namespace {

/// Backend for the EvalConfig-driven benches; set from --backend in main
/// before google-benchmark takes over (its BENCHMARK functions cannot see
/// argv).
engine::BackendKind g_backend = engine::BackendKind::kFluid;

void BM_FluidSimulationSteps(benchmark::State& state) {
  const long steps = state.range(0);
  const auto link = fluid::make_link_mbps(30.0, 42.0, 100.0);
  for (auto _ : state) {
    fluid::SimOptions opt;
    opt.steps = steps;
    fluid::FluidSimulation sim(link, opt);
    sim.add_sender(cc::Aimd(1.0, 0.5), 1.0);
    sim.add_sender(cc::Aimd(1.0, 0.5), 50.0);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_FluidSimulationSteps)->Arg(1000)->Arg(10000);

void BM_EventKernelChurn(benchmark::State& state) {
  // Schedule/execute a self-rescheduling chain: the kernel's hot loop.
  const int chain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = chain;
    std::function<void()> hop = [&] {
      if (--remaining > 0) sim.schedule_in(SimTime(1000), hop);
    };
    sim.schedule_in(SimTime(1000), hop);
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_EventKernelChurn)->Arg(10000);

void BM_PacketSimulation(benchmark::State& state) {
  const double seconds = static_cast<double>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    sim::DumbbellConfig cfg;
    cfg.bottleneck_mbps = 20.0;
    cfg.rtt_ms = 42.0;
    cfg.buffer_packets = 100;
    cfg.duration_seconds = seconds;
    sim::DumbbellExperiment exp(cfg);
    exp.add_flow(cc::presets::reno());
    exp.add_flow(cc::presets::cubic_linux());
    exp.run();
    events += exp.simulator().events_processed();
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PacketSimulation)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_MetricEstimators(benchmark::State& state) {
  core::EvalConfig cfg;
  cfg.steps = 4000;
  cfg.backend = g_backend;
  const auto reno = cc::presets::reno();
  const fluid::Trace trace = core::run_shared_link(*reno, cfg);
  for (auto _ : state) {
    const core::EstimatorConfig est{0.5};
    benchmark::DoNotOptimize(core::measure_efficiency(trace, est));
    benchmark::DoNotOptimize(core::measure_fairness(trace, est));
    benchmark::DoNotOptimize(core::measure_convergence(trace, est));
    benchmark::DoNotOptimize(core::measure_loss_avoidance(trace, est));
    benchmark::DoNotOptimize(core::measure_latency_avoidance(trace, est));
  }
}
BENCHMARK(BM_MetricEstimators);

void BM_MultiHopPacketSimulation(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  std::size_t events = 0;
  for (auto _ : state) {
    sim::MultiHopNetwork::Config cfg;
    cfg.duration_seconds = 5.0;
    sim::PacketParkingLot lot = sim::make_packet_parking_lot(
        10.0, 10.0, 25, hops, *cc::presets::reno(), cfg);
    lot.network->run();
    events += lot.network->simulator().events_processed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiHopPacketSimulation)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_RedQueueDiscipline(benchmark::State& state) {
  // Enqueue/dequeue churn through RED's EWMA + drop logic.
  sim::REDQueue::Params params;
  params.capacity_packets = 128;
  params.min_threshold = 30.0;
  params.max_threshold = 90.0;
  sim::REDQueue queue(params);
  sim::Packet packet;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    packet.seq = seq++;
    if (queue.enqueue(packet)) {
      if (queue.size_packets() > 64) benchmark::DoNotOptimize(queue.dequeue());
    } else {
      benchmark::DoNotOptimize(queue.dequeue());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RedQueueDiscipline);

void BM_FluidNetworkParkingLot(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fluid::NetworkOptions opt;
    opt.steps = 2000;
    fluid::ParkingLot lot = fluid::make_parking_lot(
        fluid::make_link_mbps(20.0, 40.0, 20.0), hops, cc::Aimd(1.0, 0.5),
        opt);
    benchmark::DoNotOptimize(lot.network.run());
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FluidNetworkParkingLot)->Arg(3);

void BM_FullProtocolEvaluation(benchmark::State& state) {
  core::EvalConfig cfg;
  cfg.steps = 2000;
  cfg.fast_utilization_steps = 1000;
  cfg.robustness_steps = 1000;
  cfg.backend = g_backend;
  const cc::Aimd reno(1.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::evaluate_protocol(reno, cfg));
  }
  state.SetLabel("all 8 metrics incl. robustness binary search");
}
BENCHMARK(BM_FullProtocolEvaluation)->Unit(benchmark::kMillisecond);

/// One representative sweep cell: a shared-link fluid run plus the tail
/// estimators — the workload parallel_map fans out in the experiment layer.
double sweep_cell(std::size_t index) {
  const auto link =
      fluid::make_link_mbps(20.0 + static_cast<double>(index % 8) * 10.0,
                            42.0, 100.0);
  fluid::SimOptions opt;
  opt.steps = 1200;
  fluid::FluidSimulation sim(link, opt);
  sim.add_sender(cc::Aimd(1.0, 0.5), 1.0);
  sim.add_sender(cc::Aimd(1.0, 0.5), 50.0);
  const fluid::Trace trace = sim.run();
  const core::EstimatorConfig est{0.5};
  return core::measure_efficiency(trace, est) +
         core::measure_fairness(trace, est);
}

void BM_ParallelMapSweepCells(benchmark::State& state) {
  const long jobs = state.range(0);
  constexpr std::size_t kCells = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel_map(kCells, sweep_cell, jobs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kCells));
}
BENCHMARK(BM_ParallelMapSweepCells)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Task-pool throughput at a fixed cell count, reported as cells/sec per
/// job count plus the speedup over the serial path. Runs once before the
/// google-benchmark suite and lands in BENCH_micro.json so the artifact
/// carries the machine's measured scaling curve.
void run_pool_throughput_bench(BenchReport& bench) {
  constexpr std::size_t kCells = 48;
  const long hw = hardware_jobs();
  std::vector<long> job_counts{1, 2, 4};
  if (hw > 4) job_counts.push_back(hw);

  std::printf("--- task-pool throughput: %zu fluid sweep cells ---\n", kCells);

  double serial_seconds = 0.0;
  for (const long jobs : job_counts) {
    WallTimer timer;
    const auto results = parallel_map(kCells, sweep_cell, jobs);
    const double seconds = timer.seconds();
    if (jobs == 1) serial_seconds = seconds;

    const double cells_per_sec = static_cast<double>(results.size()) / seconds;
    const double speedup = serial_seconds / seconds;
    std::printf("jobs=%-3ld  %8.1f cells/s  speedup %.2fx\n", jobs,
                cells_per_sec, speedup);
    const std::string suffix = "_jobs" + std::to_string(jobs);
    bench.add_phase("parallel_map" + suffix, seconds);
    bench.add_counter("cells_per_sec" + suffix, cells_per_sec);
    bench.add_counter("speedup" + suffix, speedup);
  }
  bench.add_counter("cells", static_cast<double>(kCells));
  std::printf("\n");
}

/// Population-scaling bench for the fluid engine's SoA batch path: scalar vs
/// batch senders/sec (and cells/sec = senders·steps/sec) at growing n, both
/// sides on aggregate traces so trace retention never dominates. Runs once
/// before the google-benchmark suite when --senders-scaling[=maxN] is given
/// and lands in BENCH_senders_scaling.json / its own ledger group, so the
/// artifact carries the machine's measured population-scaling curve. n above
/// 100k (e.g. the million-sender point, =1000000) runs the batch path only —
/// the scalar path at that scale is minutes, which is the point of the
/// batch path.
void run_senders_scaling_bench(BenchReport& bench, long max_n) {
  constexpr long kSteps = 1000;
  const long jobs = hardware_jobs();
  const auto run_population = [&](long n, bool batch) {
    // Per-sender bandwidth held constant so dynamics are n-independent.
    const auto link = fluid::make_link_mbps(
        std::max(30.0, 0.03 * static_cast<double>(n)), 42.0, 100.0);
    fluid::SimOptions opt;
    opt.steps = kSteps;
    opt.trace_detail = fluid::TraceDetail::kAggregate;
    opt.tracked_senders = 8;
    opt.batch = batch;
    opt.jobs = batch ? jobs : 1;
    fluid::FluidSimulation sim(link, opt);
    sim.add_senders(cc::Aimd(1.0, 0.5), n, 2.0);
    WallTimer timer;
    benchmark::DoNotOptimize(sim.run());
    return timer.seconds();
  };

  std::printf("--- senders scaling: %ld-step AIMD runs, jobs=%ld ---\n",
              kSteps, jobs);
  for (const long n : {1000L, 10000L, 100000L, 1000000L}) {
    if (n > max_n) break;
    const bool run_scalar = n <= 100000;
    const double batch_sec = run_population(n, /*batch=*/true);
    const double cells = static_cast<double>(n) * static_cast<double>(kSteps);
    const std::string suffix = "_n" + std::to_string(n);
    bench.add_phase("batch" + suffix, batch_sec);
    bench.add_counter("batch_cells_per_sec" + suffix, cells / batch_sec);
    bench.add_counter("batch_senders_per_sec" + suffix,
                      static_cast<double>(n) / batch_sec);
    if (run_scalar) {
      const double scalar_sec = run_population(n, /*batch=*/false);
      bench.add_phase("scalar" + suffix, scalar_sec);
      bench.add_counter("scalar_cells_per_sec" + suffix, cells / scalar_sec);
      bench.add_counter("batch_speedup" + suffix, scalar_sec / batch_sec);
      std::printf(
          "n=%-8ld scalar %8.3fs  batch %8.3fs  %8.2fM cells/s  "
          "speedup %.2fx\n",
          n, scalar_sec, batch_sec, cells / batch_sec / 1e6,
          scalar_sec / batch_sec);
    } else {
      std::printf("n=%-8ld batch %8.3fs  %8.2fM cells/s  (scalar skipped)\n",
                  n, batch_sec, cells / batch_sec / 1e6);
    }
  }
  bench.add_counter("senders_scaling_steps", static_cast<double>(kSteps));
  std::printf("\n");
}

/// Times the sweep-cell workload with telemetry probes runtime-disabled vs
/// runtime-enabled (best-of-N to shave scheduler noise). In an
/// AXIOMCC_TELEMETRY=OFF build both paths are the identical no-op code, so
/// the reported overhead is ~0% — that is the number the <3% compiled-out
/// budget refers to. In the default (compiled-in) build the delta is the
/// true runtime cost of the probes in the fluid tick loop.
void run_telemetry_overhead_bench(BenchReport& bench) {
  constexpr int kReps = 5;
  constexpr std::size_t kCells = 64;
  const auto time_workload = [] {
    WallTimer timer;
    for (std::size_t i = 0; i < kCells; ++i) {
      benchmark::DoNotOptimize(sweep_cell(i));
    }
    return timer.seconds();
  };
  const bool was_enabled = telemetry::enabled();
  // Warm-up pass, then interleave the two configurations so CPU frequency
  // ramp and cache warm-up hit both sides equally.
  telemetry::set_enabled(false);
  (void)time_workload();
  double off_seconds = std::numeric_limits<double>::infinity();
  double on_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    telemetry::set_enabled(false);
    off_seconds = std::min(off_seconds, time_workload());
    telemetry::set_enabled(true);
    on_seconds = std::min(on_seconds, time_workload());
  }
  telemetry::set_enabled(was_enabled);

  const double overhead_pct = (on_seconds / off_seconds - 1.0) * 100.0;
  std::printf("--- telemetry overhead: %zu sweep cells, best of %d ---\n",
              kCells, kReps);
  std::printf("probes %s; disabled %.4fs, enabled %.4fs, overhead %+.2f%%\n\n",
              telemetry::compiled_in() ? "compiled in" : "compiled out",
              off_seconds, on_seconds, overhead_pct);

  bench.add_counter("telemetry_compiled_in",
                    telemetry::compiled_in() ? 1.0 : 0.0);
  bench.add_counter("telemetry_disabled_sec", off_seconds);
  bench.add_counter("telemetry_enabled_sec", on_seconds);
  bench.add_counter("telemetry_overhead_pct", overhead_pct);
}

/// --record[=dir,classes=mask]: flight-records one representative
/// 3-bottleneck parking-lot run per backend, with the streaming metric
/// scope attached so kMetric windows land in the capture. Recordings are
/// provenance-stamped so axiomcc-inspect --align can compare captures from
/// two checkouts.
void run_recorded_probe(const ArgParser::RecordSpec& spec) {
  recorder::RecordOptions ropts;
  ropts.enabled = true;
  if (!spec.classes.empty()) {
    ropts.classes = recorder::parse_class_mask(spec.classes.c_str());
  }
  for (const engine::BackendKind backend :
       {engine::BackendKind::kFluid, engine::BackendKind::kPacket}) {
    const cc::Aimd aimd(1.0, 0.5);
    engine::ScenarioSpec scenario;
    scenario.steps = 400;
    engine::apply_parking_lot(scenario,
                              fluid::make_link_mbps(30.0, 42.0, 100.0), 3,
                              aimd);
    scenario.record = ropts;
    const auto rec = engine::make_recorder(scenario);
    scenario.record_sink = rec.get();
    scenario.scope.enabled = true;
    const auto sc = engine::make_scope(scenario);
    scenario.scope_sink = sc.get();
    benchmark::DoNotOptimize(engine::backend_for(backend).run(scenario));
    if (rec == nullptr) continue;  // recorder compiled out
    recorder::Recording snap = rec->snapshot();
    snap.git_sha = ledger::current_provenance().git_sha;
    const std::string path = spec.dir + "/micro-" +
                             engine::backend_name(backend) + ".jsonl";
    recorder::write_text_file(path, recorder::recording_to_jsonl(snap));
    std::printf("Recording: %s (%zu events)\n", path.c_str(),
                snap.events.size());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  analysis::BenchTelemetry telemetry(args, "micro");

  // Strip our own flags before handing argv to google-benchmark (it rejects
  // flags it does not know).
  g_backend = engine::parse_backend(args.get_backend());

  bool skip_pool = false;
  bool skip_overhead = false;
  long senders_scaling_max = 0;  // 0 = bench not requested
  std::vector<char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--skip-pool") == 0) {
      skip_pool = true;
      continue;
    }
    if (i > 0 && std::strncmp(argv[i], "--senders-scaling", 17) == 0) {
      senders_scaling_max = 100000;
      if (argv[i][17] == '=') {
        senders_scaling_max = std::strtol(argv[i] + 18, nullptr, 10);
      }
      continue;
    }
    if (i > 0 && std::strcmp(argv[i], "--skip-overhead") == 0) {
      skip_overhead = true;
      continue;
    }
    if (i > 0 && std::strncmp(argv[i], "--telemetry", 11) == 0) continue;
    if (i > 0 && std::strncmp(argv[i], "--backend", 9) == 0) continue;
    if (i > 0 && std::strncmp(argv[i], "--ledger", 8) == 0) continue;
    if (i > 0 && std::strncmp(argv[i], "--out", 5) == 0) continue;
    if (i > 0 && std::strncmp(argv[i], "--jobs", 6) == 0) continue;
    if (i > 0 && std::strncmp(argv[i], "--record", 8) == 0) continue;
    filtered.push_back(argv[i]);
  }

  BenchReport bench("micro");
  bench.set_jobs(hardware_jobs());
  if (const auto record = args.record_spec()) run_recorded_probe(*record);
  if (!skip_pool) run_pool_throughput_bench(bench);
  if (senders_scaling_max > 0) {
    // Its own ledger group: the scaling runs' workload (and therefore any
    // deterministic telemetry it would carry) varies with maxN, so mixing it
    // into the `micro` group would trip the sentinel's exact-counter gate.
    BenchReport scaling("senders_scaling");
    scaling.set_jobs(hardware_jobs());
    run_senders_scaling_bench(scaling, senders_scaling_max);
    std::printf("Bench artifact: %s\n\n",
                scaling.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, scaling, args.get_backend());
  }
  if (!skip_overhead) run_telemetry_overhead_bench(bench);
  telemetry.finish(bench);
  std::printf("Bench artifact: %s\n\n",
              bench.write(args.artifacts_dir()).c_str());
  ledger::maybe_append(args, bench, args.get_backend());

  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
