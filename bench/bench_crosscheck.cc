// bench_crosscheck — fluid vs packet cross-validation of Table 1.
//
// Every Table 1 protocol is evaluated through core::evaluate_protocol on
// BOTH simulation backends, and the per-metric protocol hierarchies are
// compared pairwise. Exact scores differ across substrates by design; the
// paper's ordinal claims ("AIMD loses less than MIMD", ...) are what must
// survive the substrate change. This is the end-to-end check that the
// engine layer's two backends describe the same physical situation.
//
// Usage: bench_crosscheck [--mbps=30] [--rtt-ms=42] [--buffer=100]
//                         [--senders=2] [--steps=4000]
//                         [--protocols=aimd(1,0.5),cubic(0.4,0.8)]
//                         [--topology=K] [--record[=dir,classes=mask]]
//                         [--scope-window=W] [--jobs=N] [--csv] [--markdown]
//
// --jobs=N fans the protocol × backend matrix out over N workers (default:
// AXIOMCC_JOBS env, else hardware concurrency; 1 = serial). Timing lands in
// BENCH_crosscheck.json. The packet side runs under the EvalConfig
// PacketLimits clamps (see docs/architecture.md); --steps bounds the fluid
// side only once it exceeds them.
// --topology=K appends a parking-lot cross-check: every protocol runs the
// same K-bottleneck ScenarioSpec on both backends and the long flow's
// multi-hop beat-down (its tail share vs the single-link fair share) must
// land on the same side of fair on both substrates. The topology leg also
// runs a streaming MetricScope per cell and exports its run-level axiom
// estimates as bench counters (scope_fluid_*/scope_packet_*, worst case
// across protocols), so benchdiff can trend the metric view. --scope-window
// sets the scope window in steps (default 0 = one full-horizon window).
// --record[=dir,classes=mask] additionally flight-records every topology
// cell into dir as crosscheck-<protocol>-<backend>.jsonl (lane filtering
// via the classes mask, e.g. classes=window+metric), provenance-stamped
// with the current git SHA for cross-SHA alignment in axiomcc-inspect.
// --record implies --topology=3 when --topology is absent.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "exp/crosscheck.h"
#include "recorder/event.h"
#include "scope/scope.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

/// Splits "aimd(1,0.5),cubic(0.4,0.8)" on the commas BETWEEN specs only
/// (same rule as bench_gauntlet).
std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  int depth = 0;
  for (const char c : csv) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      if (!token.empty()) out.push_back(token);
      token.clear();
      continue;
    }
    token.push_back(c);
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

std::string fmt(double v) { return TextTable::num(v, 3); }

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "crosscheck");

    exp::CrosscheckConfig cfg;
    cfg.base.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                          args.get_double("rtt-ms", 42.0),
                                          args.get_double("buffer", 100.0));
    cfg.base.num_senders = static_cast<int>(args.get_int("senders", 2));
    cfg.base.steps = args.get_int("steps", 4000);
    if (const auto protocols = args.get("protocols")) {
      cfg.protocol_specs = split_specs(*protocols);
    }
    cfg.jobs = args.get_jobs();

    if (!args.has("csv")) {
      std::printf("=== Fluid vs packet cross-check (Table 1 protocols) ===\n");
      std::printf(
          "Link: %.0f Mbps, %.0f ms RTT, %.0f MSS buffer, %d senders; %ld "
          "jobs\n\n",
          args.get_double("mbps", 30.0), args.get_double("rtt-ms", 42.0),
          args.get_double("buffer", 100.0), cfg.base.num_senders, cfg.jobs);
    }

    // --record rides the topology leg (per-cell recordings), so asking for
    // it without --topology implies the default 3-bottleneck parking lot.
    const auto record = args.record_spec();
    int topology_bottlenecks = static_cast<int>(args.get_int("topology", 0));
    if (record && topology_bottlenecks == 0) topology_bottlenecks = 3;

    WallTimer timer;
    const exp::CrosscheckResult result = exp::run_crosscheck(cfg);
    const double run_seconds = timer.seconds();

    // --topology=K: the parking-lot structural check rides along after the
    // single-link matrix, reusing the link and protocol flags. The streaming
    // scope is always on here — its run-channel estimates feed the bench
    // counters below.
    exp::TopologyCheckResult topo_result;
    double topo_seconds = 0.0;
    if (topology_bottlenecks > 0) {
      exp::TopologyCheckConfig topo_cfg;
      topo_cfg.per_link = cfg.base.link;
      topo_cfg.bottlenecks = topology_bottlenecks;
      topo_cfg.protocol_specs = cfg.protocol_specs;
      topo_cfg.jobs = cfg.jobs;
      topo_cfg.scope.enabled = true;
      topo_cfg.scope.window_steps = args.get_int("scope-window", 0);
      if (record) {
        topo_cfg.record.enabled = true;
        topo_cfg.record_dir = record->dir;
        if (!record->classes.empty()) {
          topo_cfg.record.classes =
              recorder::parse_class_mask(record->classes.c_str());
        }
      }
      WallTimer topo_timer;
      topo_result = exp::run_topology_crosscheck(topo_cfg);
      topo_seconds = topo_timer.seconds();
    }

    BenchReport bench("crosscheck");
    bench.set_jobs(cfg.jobs);
    bench.add_phase("run_crosscheck", run_seconds);
    if (topology_bottlenecks > 0) {
      bench.add_phase("run_topology_crosscheck", topo_seconds);
      bench.add_counter("topology_entries",
                        static_cast<double>(topo_result.entries.size()));
      bench.add_counter("topology_agreeing",
                        static_cast<double>(topo_result.agreeing_entries()));
      // Worst-case run-channel scope estimates across protocols, per
      // backend: the floor of the good-is-high axes and the ceiling of
      // loss avoidance (lower is better), so benchdiff trends the weakest
      // metric view rather than an average that hides regressions.
      for (const auto* side : {"fluid", "packet"}) {
        const bool is_fluid = side == std::string("fluid");
        double eff = 1.0;
        double fair = 1.0;
        double loss = 0.0;
        for (const auto& e : topo_result.entries) {
          const scope::ScopeSeries& s =
              is_fluid ? e.fluid_scope : e.packet_scope;
          eff = std::min(eff, s.last(scope::SubjectKind::kRun, -1,
                                     scope::Axis::kEfficiency, 1.0));
          fair = std::min(fair, s.last(scope::SubjectKind::kRun, -1,
                                       scope::Axis::kFairness, 1.0));
          loss = std::max(loss, s.last(scope::SubjectKind::kRun, -1,
                                       scope::Axis::kLossAvoidance, 0.0));
        }
        const std::string prefix = std::string("scope_") + side + "_";
        bench.add_counter(prefix + "efficiency", eff);
        bench.add_counter(prefix + "fairness", fair);
        bench.add_counter(prefix + "loss", loss);
      }
    }
    bench.add_counter("protocols",
                      static_cast<double>(result.entries.size()));
    bench.add_counter("metrics",
                      static_cast<double>(result.agreements.size()));
    bench.add_counter("agreeing_metrics",
                      static_cast<double>(result.agreeing_metrics()));
    double pairs = 0.0;
    double agreeing_pairs = 0.0;
    for (const auto& a : result.agreements) {
      pairs += a.pairs;
      agreeing_pairs += a.agreeing_pairs;
    }
    bench.add_counter("hierarchy_pairs", pairs);
    bench.add_counter("agreement_rate",
                      pairs > 0.0 ? agreeing_pairs / pairs : 1.0);
    telemetry.finish(bench);
    const std::string artifact = bench.write(args.artifacts_dir());
    ledger::maybe_append(args, bench, "both");

    if (args.has("csv")) {
      // stdout stays pure CSV; the artifact path goes to stderr.
      std::fprintf(stderr, "Bench artifact: %s\n", artifact.c_str());
      std::ostringstream out;
      exp::write_crosscheck_csv(result, out);
      if (topology_bottlenecks > 0) {
        exp::write_topology_crosscheck_csv(topo_result, out);
      }
      std::printf("%s", out.str().c_str());
      return 0;
    }

    const auto format = args.has("markdown") ? TextTable::Format::kMarkdown
                                             : TextTable::Format::kAscii;

    TextTable scores;
    scores.set_header({"Protocol", "Backend", "Eff", "Loss", "Fair", "Conv",
                       "Friendly", "FastUtil", "Robust", "Latency"});
    for (const auto& e : result.entries) {
      for (const auto* side : {"fluid", "packet"}) {
        const core::MetricReport& r =
            side == std::string("fluid") ? e.fluid : e.packet;
        scores.add_row({e.protocol, side, fmt(r.efficiency),
                        fmt(r.loss_avoidance), fmt(r.fairness),
                        fmt(r.convergence), fmt(r.tcp_friendliness),
                        fmt(r.fast_utilization), fmt(r.robustness),
                        fmt(r.latency_avoidance)});
      }
    }
    std::printf("%s\n", scores.render(format).c_str());

    TextTable agreement;
    agreement.set_header(
        {"Metric", "Pairs", "Agree", "Match", "Fluid order (worst→best)",
         "Packet order (worst→best)"});
    for (const auto& a : result.agreements) {
      agreement.add_row({core::metric_name(a.metric), std::to_string(a.pairs),
                         std::to_string(a.agreeing_pairs),
                         a.matches ? "yes" : "NO", a.fluid_order,
                         a.packet_order});
    }
    std::printf("%s\n", agreement.render(format).c_str());

    if (topology_bottlenecks > 0) {
      TextTable topo;
      topo.set_header({"Protocol", "Bottlenecks", "FluidShare", "PacketShare",
                       "FairShare", "BeatDown"});
      for (const auto& e : topo_result.entries) {
        topo.add_row({e.protocol, std::to_string(e.bottlenecks),
                      fmt(e.fluid_long_share), fmt(e.packet_long_share),
                      fmt(e.fair_share),
                      e.beat_down_agrees ? "agree" : "DISAGREE"});
      }
      std::printf("%s\n", topo.render(format).c_str());
      std::printf(
          "Topology: %d of %zu parking-lot entries agree on the long flow's\n"
          "multi-hop beat-down.\n",
          topo_result.agreeing_entries(), topo_result.entries.size());
    }

    std::printf(
        "Agreement: %d of %zu metrics, %.0f of %.0f hierarchy pairs "
        "(%.0f%%).\n"
        "Notes:\n"
        " * absolute scores are NOT expected to match across substrates —\n"
        "   only the pairwise orderings the fluid side separates cleanly.\n"
        " * fast-utilization/robustness/latency columns are informational:\n"
        "   the packet probes run under PacketLimits clamps, so their\n"
        "   scales differ (see docs/architecture.md).\n",
        result.agreeing_metrics(), result.agreements.size(), agreeing_pairs,
        pairs, pairs > 0.0 ? 100.0 * agreeing_pairs / pairs : 100.0);
    std::printf("Bench artifact: %s\n", artifact.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
