// bench_crosscheck — fluid vs packet cross-validation of Table 1.
//
// Every Table 1 protocol is evaluated through core::evaluate_protocol on
// BOTH simulation backends, and the per-metric protocol hierarchies are
// compared pairwise. Exact scores differ across substrates by design; the
// paper's ordinal claims ("AIMD loses less than MIMD", ...) are what must
// survive the substrate change. This is the end-to-end check that the
// engine layer's two backends describe the same physical situation.
//
// Usage: bench_crosscheck [--mbps=30] [--rtt-ms=42] [--buffer=100]
//                         [--senders=2] [--steps=4000]
//                         [--protocols=aimd(1,0.5),cubic(0.4,0.8)]
//                         [--topology=K] [--jobs=N] [--csv] [--markdown]
//
// --jobs=N fans the protocol × backend matrix out over N workers (default:
// AXIOMCC_JOBS env, else hardware concurrency; 1 = serial). Timing lands in
// BENCH_crosscheck.json. The packet side runs under the EvalConfig
// PacketLimits clamps (see docs/architecture.md); --steps bounds the fluid
// side only once it exceeds them.
// --topology=K appends a parking-lot cross-check: every protocol runs the
// same K-bottleneck ScenarioSpec on both backends and the long flow's
// multi-hop beat-down (its tail share vs the single-link fair share) must
// land on the same side of fair on both substrates.
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "exp/crosscheck.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

/// Splits "aimd(1,0.5),cubic(0.4,0.8)" on the commas BETWEEN specs only
/// (same rule as bench_gauntlet).
std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  int depth = 0;
  for (const char c : csv) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      if (!token.empty()) out.push_back(token);
      token.clear();
      continue;
    }
    token.push_back(c);
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

std::string fmt(double v) { return TextTable::num(v, 3); }

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "crosscheck");

    exp::CrosscheckConfig cfg;
    cfg.base.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                          args.get_double("rtt-ms", 42.0),
                                          args.get_double("buffer", 100.0));
    cfg.base.num_senders = static_cast<int>(args.get_int("senders", 2));
    cfg.base.steps = args.get_int("steps", 4000);
    if (const auto protocols = args.get("protocols")) {
      cfg.protocol_specs = split_specs(*protocols);
    }
    cfg.jobs = args.get_jobs();

    if (!args.has("csv")) {
      std::printf("=== Fluid vs packet cross-check (Table 1 protocols) ===\n");
      std::printf(
          "Link: %.0f Mbps, %.0f ms RTT, %.0f MSS buffer, %d senders; %ld "
          "jobs\n\n",
          args.get_double("mbps", 30.0), args.get_double("rtt-ms", 42.0),
          args.get_double("buffer", 100.0), cfg.base.num_senders, cfg.jobs);
    }

    const int topology_bottlenecks =
        static_cast<int>(args.get_int("topology", 0));

    WallTimer timer;
    const exp::CrosscheckResult result = exp::run_crosscheck(cfg);
    const double run_seconds = timer.seconds();

    // --topology=K: the parking-lot structural check rides along after the
    // single-link matrix, reusing the link and protocol flags.
    exp::TopologyCheckResult topo_result;
    double topo_seconds = 0.0;
    if (topology_bottlenecks > 0) {
      exp::TopologyCheckConfig topo_cfg;
      topo_cfg.per_link = cfg.base.link;
      topo_cfg.bottlenecks = topology_bottlenecks;
      topo_cfg.protocol_specs = cfg.protocol_specs;
      topo_cfg.jobs = cfg.jobs;
      WallTimer topo_timer;
      topo_result = exp::run_topology_crosscheck(topo_cfg);
      topo_seconds = topo_timer.seconds();
    }

    BenchReport bench("crosscheck");
    bench.set_jobs(cfg.jobs);
    bench.add_phase("run_crosscheck", run_seconds);
    if (topology_bottlenecks > 0) {
      bench.add_phase("run_topology_crosscheck", topo_seconds);
      bench.add_counter("topology_entries",
                        static_cast<double>(topo_result.entries.size()));
      bench.add_counter("topology_agreeing",
                        static_cast<double>(topo_result.agreeing_entries()));
    }
    bench.add_counter("protocols",
                      static_cast<double>(result.entries.size()));
    bench.add_counter("metrics",
                      static_cast<double>(result.agreements.size()));
    bench.add_counter("agreeing_metrics",
                      static_cast<double>(result.agreeing_metrics()));
    double pairs = 0.0;
    double agreeing_pairs = 0.0;
    for (const auto& a : result.agreements) {
      pairs += a.pairs;
      agreeing_pairs += a.agreeing_pairs;
    }
    bench.add_counter("hierarchy_pairs", pairs);
    bench.add_counter("agreement_rate",
                      pairs > 0.0 ? agreeing_pairs / pairs : 1.0);
    telemetry.finish(bench);
    const std::string artifact = bench.write(args.artifacts_dir());
    ledger::maybe_append(args, bench, "both");

    if (args.has("csv")) {
      // stdout stays pure CSV; the artifact path goes to stderr.
      std::fprintf(stderr, "Bench artifact: %s\n", artifact.c_str());
      std::ostringstream out;
      exp::write_crosscheck_csv(result, out);
      if (topology_bottlenecks > 0) {
        exp::write_topology_crosscheck_csv(topo_result, out);
      }
      std::printf("%s", out.str().c_str());
      return 0;
    }

    const auto format = args.has("markdown") ? TextTable::Format::kMarkdown
                                             : TextTable::Format::kAscii;

    TextTable scores;
    scores.set_header({"Protocol", "Backend", "Eff", "Loss", "Fair", "Conv",
                       "Friendly", "FastUtil", "Robust", "Latency"});
    for (const auto& e : result.entries) {
      for (const auto* side : {"fluid", "packet"}) {
        const core::MetricReport& r =
            side == std::string("fluid") ? e.fluid : e.packet;
        scores.add_row({e.protocol, side, fmt(r.efficiency),
                        fmt(r.loss_avoidance), fmt(r.fairness),
                        fmt(r.convergence), fmt(r.tcp_friendliness),
                        fmt(r.fast_utilization), fmt(r.robustness),
                        fmt(r.latency_avoidance)});
      }
    }
    std::printf("%s\n", scores.render(format).c_str());

    TextTable agreement;
    agreement.set_header(
        {"Metric", "Pairs", "Agree", "Match", "Fluid order (worst→best)",
         "Packet order (worst→best)"});
    for (const auto& a : result.agreements) {
      agreement.add_row({core::metric_name(a.metric), std::to_string(a.pairs),
                         std::to_string(a.agreeing_pairs),
                         a.matches ? "yes" : "NO", a.fluid_order,
                         a.packet_order});
    }
    std::printf("%s\n", agreement.render(format).c_str());

    if (topology_bottlenecks > 0) {
      TextTable topo;
      topo.set_header({"Protocol", "Bottlenecks", "FluidShare", "PacketShare",
                       "FairShare", "BeatDown"});
      for (const auto& e : topo_result.entries) {
        topo.add_row({e.protocol, std::to_string(e.bottlenecks),
                      fmt(e.fluid_long_share), fmt(e.packet_long_share),
                      fmt(e.fair_share),
                      e.beat_down_agrees ? "agree" : "DISAGREE"});
      }
      std::printf("%s\n", topo.render(format).c_str());
      std::printf(
          "Topology: %d of %zu parking-lot entries agree on the long flow's\n"
          "multi-hop beat-down.\n",
          topo_result.agreeing_entries(), topo_result.entries.size());
    }

    std::printf(
        "Agreement: %d of %zu metrics, %.0f of %.0f hierarchy pairs "
        "(%.0f%%).\n"
        "Notes:\n"
        " * absolute scores are NOT expected to match across substrates —\n"
        "   only the pairwise orderings the fluid side separates cleanly.\n"
        " * fast-utilization/robustness/latency columns are informational:\n"
        "   the packet probes run under PacketLimits clamps, so their\n"
        "   scales differ (see docs/architecture.md).\n",
        result.agreeing_metrics(), result.agreements.size(), agreeing_pairs,
        pairs, pairs > 0.0 ? 100.0 * agreeing_pairs / pairs : 100.0);
    std::printf("Bench artifact: %s\n", artifact.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
