// bench_ablation — ablations of the design choices DESIGN.md calls out:
//
//   1. synchronized vs. staggered sender starts (the paper's synchronized-
//      feedback assumption, relaxed on the packet simulator);
//   2. droptail vs. RED at the bottleneck;
//   3. estimator tail-fraction sensitivity;
//   4. Robust-AIMD's eps sweep (robustness vs. friendliness trade).
//
// Usage: bench_ablation [--duration=20] [--steps=3000]
#include <cstdio>
#include <exception>

#include "cc/presets.h"
#include "cc/robust_aimd.h"
#include "core/evaluator.h"
#include "core/metrics.h"
#include "sim/dumbbell.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

sim::DumbbellConfig base_dumbbell(double duration) {
  sim::DumbbellConfig cfg;
  cfg.bottleneck_mbps = 20.0;
  cfg.rtt_ms = 42.0;
  cfg.buffer_packets = 100;
  cfg.duration_seconds = duration;
  return cfg;
}

void ablate_synchronization(double duration) {
  std::printf("--- ablation 1: synchronized vs staggered starts (2x Reno, "
              "packet sim) ---\n");
  TextTable table;
  table.set_header({"start offsets", "fairness", "convergence", "efficiency"});
  for (double stagger : {0.0, 0.25, 1.0, 3.0}) {
    sim::DumbbellExperiment exp(base_dumbbell(duration));
    exp.add_flow(cc::presets::reno(), 0.0);
    exp.add_flow(cc::presets::reno(), stagger);
    exp.run();
    const core::EstimatorConfig est{0.5};
    table.add_row({TextTable::num(stagger, 2) + "s",
                   TextTable::num(core::measure_fairness(exp.trace(), est), 3),
                   TextTable::num(core::measure_convergence(exp.trace(), est), 3),
                   TextTable::num(core::measure_efficiency(exp.trace(), est), 3)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablate_queue_discipline(double duration) {
  std::printf("--- ablation 2: droptail vs RED (1x Reno, deep buffer) ---\n");
  TextTable table;
  table.set_header({"queue", "avg rtt (ms)", "loss", "throughput (Mbps)"});
  for (bool use_red : {false, true}) {
    sim::DumbbellConfig cfg = base_dumbbell(duration);
    cfg.use_red = use_red;
    cfg.red.min_threshold = 15.0;
    cfg.red.max_threshold = 60.0;
    cfg.red.max_drop_probability = 0.1;
    sim::DumbbellExperiment exp(cfg);
    exp.add_flow(cc::presets::reno());
    exp.run();
    const auto report = exp.flow_reports()[0];
    table.add_row({use_red ? "RED" : "droptail",
                   TextTable::num(report.avg_rtt_ms, 1),
                   TextTable::num(report.loss_rate, 4),
                   TextTable::num(report.throughput_mbps, 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablate_tail_fraction(long steps) {
  std::printf("--- ablation 3: estimator tail-fraction sensitivity "
              "(AIMD(1,0.5), fluid) ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;
  const auto reno = cc::presets::reno();
  const fluid::Trace trace = core::run_shared_link(*reno, cfg);

  TextTable table;
  table.set_header({"tail fraction", "efficiency", "convergence", "loss"});
  for (double tail : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const core::EstimatorConfig est{tail};
    table.add_row({TextTable::num(tail, 2),
                   TextTable::num(core::measure_efficiency(trace, est), 4),
                   TextTable::num(core::measure_convergence(trace, est), 4),
                   TextTable::num(core::measure_loss_avoidance(trace, est), 4)});
  }
  std::printf("%s(scores must stabilize once the transient is excluded)\n\n",
              table.render().c_str());
}

void ablate_robust_eps(long steps) {
  std::printf("--- ablation 4: Robust-AIMD eps sweep (robustness vs "
              "friendliness) ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;

  TextTable table;
  table.set_header({"eps", "robustness", "tcp-friendliness", "efficiency"});
  for (double eps : {0.005, 0.007, 0.01, 0.02, 0.05}) {
    const cc::RobustAimd proto(1.0, 0.8, eps);
    const double robustness = core::measure_robustness_score(proto, cfg);
    const double friendliness =
        core::measure_tcp_friendliness_score(proto, cfg);
    const fluid::Trace t = core::run_shared_link(proto, cfg);
    table.add_row({TextTable::num(eps, 3), TextTable::num(robustness, 4),
                   TextTable::num(friendliness, 4),
                   TextTable::num(core::measure_efficiency(t, cfg.estimator()), 3)});
  }
  std::printf("%s(the paper's Pareto story: each eps buys robustness at a "
              "friendliness cost)\n",
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const double duration = args.get_double("duration", 20.0);
    const long steps = args.get_int("steps", 3000);

    std::printf("=== ablation benches (DESIGN.md section 5) ===\n\n");
    ablate_synchronization(duration);
    ablate_queue_discipline(duration);
    ablate_tail_fraction(steps);
    ablate_robust_eps(steps);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
