// bench_ablation — ablations of the design choices DESIGN.md calls out:
//
//   1. synchronized vs. staggered sender starts (the paper's synchronized-
//      feedback assumption, relaxed on the packet simulator);
//   2. droptail vs. RED at the bottleneck;
//   3. estimator tail-fraction sensitivity;
//   4. Robust-AIMD's eps sweep (robustness vs. friendliness trade).
//
// Usage: bench_ablation [--duration=20] [--steps=3000]
//                       [--backend=fluid|packet] [--jobs=N]
//
// --jobs=N fans each ablation's independent cells out over N workers
// (default: AXIOMCC_JOBS env, else hardware concurrency; 1 = serial).
// Per-ablation timing lands in BENCH_ablation.json.
// --backend selects the simulator for ablations 3 and 4 (default:
// AXIOMCC_BACKEND env, else fluid); ablations 1 and 2 are packet-level by
// construction.
#include <array>
#include <cstdio>
#include <exception>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "cc/presets.h"
#include "cc/robust_aimd.h"
#include "core/evaluator.h"
#include "engine/scenario.h"
#include "core/metrics.h"
#include "sim/dumbbell.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/task_pool.h"

using namespace axiomcc;

namespace {

sim::DumbbellConfig base_dumbbell(double duration) {
  sim::DumbbellConfig cfg;
  cfg.bottleneck_mbps = 20.0;
  cfg.rtt_ms = 42.0;
  cfg.buffer_packets = 100;
  cfg.duration_seconds = duration;
  return cfg;
}

void ablate_synchronization(double duration, long jobs) {
  std::printf("--- ablation 1: synchronized vs staggered starts (2x Reno, "
              "packet sim) ---\n");
  const std::vector<double> staggers{0.0, 0.25, 1.0, 3.0};
  const auto rows = parallel_map(
      staggers,
      [&](double stagger) {
        sim::DumbbellExperiment exp(base_dumbbell(duration));
        exp.add_flow(cc::presets::reno(), 0.0);
        exp.add_flow(cc::presets::reno(), stagger);
        exp.run();
        const core::EstimatorConfig est{0.5};
        return std::array<double, 3>{
            core::measure_fairness(exp.trace(), est),
            core::measure_convergence(exp.trace(), est),
            core::measure_efficiency(exp.trace(), est)};
      },
      jobs);

  TextTable table;
  table.set_header({"start offsets", "fairness", "convergence", "efficiency"});
  for (std::size_t i = 0; i < staggers.size(); ++i) {
    table.add_row({TextTable::num(staggers[i], 2) + "s",
                   TextTable::num(rows[i][0], 3), TextTable::num(rows[i][1], 3),
                   TextTable::num(rows[i][2], 3)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablate_queue_discipline(double duration, long jobs) {
  std::printf("--- ablation 2: droptail vs RED (1x Reno, deep buffer) ---\n");
  const auto reports = parallel_map(
      std::size_t{2},
      [&](std::size_t i) {
        sim::DumbbellConfig cfg = base_dumbbell(duration);
        cfg.use_red = i == 1;
        cfg.red.min_threshold = 15.0;
        cfg.red.max_threshold = 60.0;
        cfg.red.max_drop_probability = 0.1;
        sim::DumbbellExperiment exp(cfg);
        exp.add_flow(cc::presets::reno());
        exp.run();
        return exp.flow_reports()[0];
      },
      jobs);

  TextTable table;
  table.set_header({"queue", "avg rtt (ms)", "loss", "throughput (Mbps)"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    table.add_row({i == 1 ? "RED" : "droptail",
                   TextTable::num(reports[i].avg_rtt_ms, 1),
                   TextTable::num(reports[i].loss_rate, 4),
                   TextTable::num(reports[i].throughput_mbps, 2)});
  }
  std::printf("%s\n", table.render().c_str());
}

void ablate_tail_fraction(long steps, engine::BackendKind backend) {
  std::printf("--- ablation 3: estimator tail-fraction sensitivity "
              "(AIMD(1,0.5), %s) ---\n",
              engine::backend_name(backend));
  core::EvalConfig cfg;
  cfg.steps = steps;
  cfg.backend = backend;
  const auto reno = cc::presets::reno();
  const fluid::Trace trace = core::run_shared_link(*reno, cfg);

  TextTable table;
  table.set_header({"tail fraction", "efficiency", "convergence", "loss"});
  for (double tail : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const core::EstimatorConfig est{tail};
    table.add_row({TextTable::num(tail, 2),
                   TextTable::num(core::measure_efficiency(trace, est), 4),
                   TextTable::num(core::measure_convergence(trace, est), 4),
                   TextTable::num(core::measure_loss_avoidance(trace, est), 4)});
  }
  std::printf("%s(scores must stabilize once the transient is excluded)\n\n",
              table.render().c_str());
}

void ablate_robust_eps(long steps, engine::BackendKind backend, long jobs) {
  std::printf("--- ablation 4: Robust-AIMD eps sweep (robustness vs "
              "friendliness) ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;
  cfg.backend = backend;

  const std::vector<double> eps_grid{0.005, 0.007, 0.01, 0.02, 0.05};
  const auto rows = parallel_map(
      eps_grid,
      [&](double eps) {
        const cc::RobustAimd proto(1.0, 0.8, eps);
        const fluid::Trace t = core::run_shared_link(proto, cfg);
        return std::array<double, 3>{
            core::measure_robustness_score(proto, cfg),
            core::measure_tcp_friendliness_score(proto, cfg),
            core::measure_efficiency(t, cfg.estimator())};
      },
      jobs);

  TextTable table;
  table.set_header({"eps", "robustness", "tcp-friendliness", "efficiency"});
  for (std::size_t i = 0; i < eps_grid.size(); ++i) {
    table.add_row({TextTable::num(eps_grid[i], 3),
                   TextTable::num(rows[i][0], 4), TextTable::num(rows[i][1], 4),
                   TextTable::num(rows[i][2], 3)});
  }
  std::printf("%s(the paper's Pareto story: each eps buys robustness at a "
              "friendliness cost)\n",
              table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "ablation");
    const double duration = args.get_double("duration", 20.0);
    const long steps = args.get_int("steps", 3000);
    const engine::BackendKind backend =
        engine::parse_backend(args.get_backend());
    const long jobs = args.get_jobs();

    std::printf("=== ablation benches (DESIGN.md section 5; %ld jobs) ===\n\n",
                jobs);
    BenchReport bench("ablation");
    bench.set_jobs(jobs);
    WallTimer timer;
    ablate_synchronization(duration, jobs);
    bench.add_phase("synchronization", timer.seconds());
    timer.reset();
    ablate_queue_discipline(duration, jobs);
    bench.add_phase("queue_discipline", timer.seconds());
    timer.reset();
    ablate_tail_fraction(steps, backend);
    bench.add_phase("tail_fraction", timer.seconds());
    timer.reset();
    ablate_robust_eps(steps, backend, jobs);
    bench.add_phase("robust_eps", timer.seconds());
    bench.add_counter("cells", 16.0);  // 4 + 2 + 5 + 5 ablation cells
    bench.add_counter("cells_per_sec", 16.0 / bench.total_seconds());
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, args.get_backend());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
