// bench_figure1 — regenerates Figure 1: the Pareto frontier of
// (fast-utilization α, efficiency β, TCP-friendliness 3(1−β)/(α(1+β))).
//
// Prints the analytic surface as series (one per α, swept over β), verifies
// that no grid point Pareto-dominates another, and measures AIMD(α, β) at
// sample points to confirm each surface point is attained by a real protocol.
//
// Usage: bench_figure1 [--skip-attainment] [--steps=4000]
//                      [--backend=fluid|packet] [--jobs=N] [--markdown]
//
// --jobs=N fans the attainment sample points out over N workers (default:
// AXIOMCC_JOBS env, else hardware concurrency; 1 = serial). Timing lands in
// BENCH_figure1.json.
// --backend selects the simulator for the attainment measurements (default:
// AXIOMCC_BACKEND env, else fluid; the analytic surface itself is exact).
#include <cstdio>
#include <exception>
#include <map>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "engine/scenario.h"
#include "exp/figure1.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "figure1");
    const long jobs = args.get_jobs();

    std::printf("=== Figure 1: Pareto frontier of efficiency, friendliness, "
                "fast-utilization ===\n\n");

    BenchReport bench("figure1");
    bench.set_jobs(jobs);
    WallTimer timer;

    const auto grid = exp::figure1_grid();
    bench.add_phase("surface", timer.seconds());

    // Group into series by alpha for a plot-like rendering.
    std::map<double, std::vector<core::Figure1Point>> series;
    for (const auto& p : grid) series[p.fast_utilization_alpha].push_back(p);

    TextTable table;
    table.set_header({"fast-util alpha", "efficiency beta",
                      "TCP-friendliness (frontier)"});
    for (const auto& [alpha, points] : series) {
      for (const auto& p : points) {
        table.add_row({TextTable::num(alpha, 2),
                       TextTable::num(p.efficiency_beta, 2),
                       TextTable::num(p.tcp_friendliness, 4)});
      }
    }
    std::printf("%s\n", table.render(args.has("markdown")
                                         ? TextTable::Format::kMarkdown
                                         : TextTable::Format::kAscii)
                            .c_str());

    timer.reset();
    const auto frontier = exp::frontier_of(grid);
    bench.add_phase("pareto_check", timer.seconds());
    std::printf("Pareto check: %zu of %zu grid points are non-dominated "
                "(expected: all — the surface IS the frontier)\n\n",
                frontier.size(), grid.size());

    std::size_t attainment_cells = 0;
    if (!args.has("skip-attainment")) {
      std::printf("Attainment check: AIMD(alpha,beta) measured on the fluid "
                  "model at sample points (%ld jobs)\n",
                  jobs);
      core::EvalConfig cfg;
      cfg.steps = args.get_int("steps", 4000);
      cfg.backend = engine::parse_backend(args.get_backend());
      timer.reset();
      const auto checks = exp::verify_attainment(cfg, jobs);
      bench.add_phase("verify_attainment", timer.seconds());
      attainment_cells = checks.size();

      TextTable verify;
      verify.set_header({"AIMD(a,b)", "alpha (meas/analytic)",
                         "beta (meas/analytic-worst)",
                         "friendliness (meas/analytic)"});
      for (const auto& v : checks) {
        const std::string name =
            "AIMD(" + TextTable::num(v.analytic.fast_utilization_alpha, 1) +
            "," + TextTable::num(v.analytic.efficiency_beta, 1) + ")";
        verify.add_row(
            {name,
             TextTable::num(v.measured_fast_utilization, 3) + " / " +
                 TextTable::num(v.analytic.fast_utilization_alpha, 3),
             TextTable::num(v.measured_efficiency, 3) + " / " +
                 TextTable::num(v.analytic.efficiency_beta, 3),
             TextTable::num(v.measured_friendliness, 3) + " / " +
                 TextTable::num(v.analytic.tcp_friendliness, 3)});
      }
      std::printf("%s\n", verify.render().c_str());
      std::printf("(measured efficiency exceeds the analytic worst-case beta "
                  "on any single link; the bound is over ALL links)\n");
    }

    bench.add_counter("cells",
                      static_cast<double>(grid.size() + attainment_cells));
    bench.add_counter("cells_per_sec",
                      static_cast<double>(grid.size() + attainment_cells) /
                          bench.total_seconds());
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, args.get_backend());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
