// bench_table2 — regenerates the paper's Table 2: TCP-friendliness of
// Robust-AIMD(1,0.8,0.01) vs PCC across (n, BW) ∈ {2,3,4} × {20,30,60,100},
// RTT 42 ms, buffer 100 MSS.
//
// Each cell is the improvement factor friendliness(R-AIMD)/friendliness(PCC);
// the paper reports consistently >1.5×, 1.92× on average.
//
// By default the grid runs on the fluid model; --backend=packet (or the
// legacy --packet alias, or AXIOMCC_BACKEND=packet) re-measures it on the
// packet-level simulator (the substrate the paper's Emulab numbers came
// from; a few seconds of CPU).
//
// Usage: bench_table2 [--steps=4000] [--backend=fluid|packet] [--packet]
//                     [--duration=30] [--jobs=N] [--markdown]
//
// --jobs=N fans the (n, BW) grid out over N workers (default: AXIOMCC_JOBS
// env, else hardware concurrency; 1 = serial). Timing lands in
// BENCH_table2.json.
#include <cmath>
#include <cstdio>
#include <exception>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "engine/scenario.h"
#include "exp/table2.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "table2");
    exp::Table2Config cfg;
    cfg.steps = args.get_int("steps", 4000);
    cfg.jobs = args.get_jobs();

    const bool packet =
        args.has("packet") ||
        engine::parse_backend(args.get_backend()) ==
            engine::BackendKind::kPacket;
    std::printf("=== Table 2: TCP-friendliness of Robust-AIMD(1,0.8,0.01) vs "
                "PCC (%s substrate) ===\n",
                packet ? "packet-level" : "fluid");
    std::printf("RTT 42 ms, buffer 100 MSS; cell = improvement factor; "
                "%ld jobs\n\n",
                cfg.jobs);

    WallTimer timer;
    const auto cells =
        packet ? exp::build_table2_packet(cfg, args.get_double("duration", 30.0))
               : exp::build_table2(cfg);
    const double grid_seconds = timer.seconds();

    TextTable table;
    table.set_header({"(n,BW)", "R-AIMD friendliness", "PCC friendliness",
                      "improvement"});
    double product = 1.0;
    std::size_t above_1_5 = 0;
    for (const auto& cell : cells) {
      table.add_row({"(" + std::to_string(cell.n) + "," +
                         std::to_string(static_cast<int>(cell.bandwidth_mbps)) +
                         ")",
                     TextTable::num(cell.robust_aimd_friendliness, 4),
                     TextTable::num(cell.pcc_friendliness, 4),
                     TextTable::num(cell.improvement(), 2) + "x"});
      product *= cell.improvement();
      if (cell.improvement() > 1.5) ++above_1_5;
    }
    std::printf("%s\n", table.render(args.has("markdown")
                                         ? TextTable::Format::kMarkdown
                                         : TextTable::Format::kAscii)
                            .c_str());

    const double geomean =
        std::pow(product, 1.0 / static_cast<double>(cells.size()));
    std::printf("geometric-mean improvement: %.2fx (paper: 1.92x average)\n",
                geomean);
    std::printf("cells above 1.5x: %zu / %zu (paper: consistently >1.5x)\n",
                above_1_5, cells.size());

    BenchReport bench("table2");
    bench.set_jobs(cfg.jobs);
    bench.add_phase(packet ? "build_table2_packet" : "build_table2",
                    grid_seconds);
    bench.add_counter("cells", static_cast<double>(cells.size()));
    bench.add_counter("cells_per_sec",
                      static_cast<double>(cells.size()) / grid_seconds);
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, args.get_backend());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
