// bench_extensions — the paper's future-work directions, implemented and
// measured (DESIGN.md "substrate extensions"):
//
//   1. candidate additional axioms (responsiveness, smoothness, Jain
//      fairness) across the protocol zoo;
//   2. network-wide interaction: the parking-lot topology on BOTH substrates
//      (fluid network and packet-level multi-hop);
//   3. a pacing-style model-based protocol (BBR-like) placed in the
//      8-metric space next to the loss-based families.
//
// Usage: bench_extensions [--steps=3000] [--duration=20]
//                         [--backend=fluid|packet] [--jobs=N]
//
// --jobs=N fans each extension's independent cells out over N workers
// (default: AXIOMCC_JOBS env, else hardware concurrency; 1 = serial).
// Per-extension timing lands in BENCH_extensions.json.
// --backend selects the simulator for extensions 1 and 3 (default:
// AXIOMCC_BACKEND env, else fluid); extension 2 runs both substrates by
// construction.
#include <array>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "cc/bbr_like.h"
#include "cc/presets.h"
#include "cc/registry.h"
#include "cc/robust_aimd.h"
#include "core/evaluator.h"
#include "core/extra_metrics.h"
#include "engine/scenario.h"
#include "core/metrics.h"
#include "fluid/network.h"
#include "sim/network.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/task_pool.h"

using namespace axiomcc;

namespace {

void extra_axioms(long steps, engine::BackendKind backend, long jobs) {
  std::printf("--- extension 1: candidate additional axioms ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;
  cfg.backend = backend;

  const std::vector<std::string> specs{
      "reno",         "aimd(4,0.5)",              "cubic-linux",
      "scalable",     "bin(1,1,1,0)",             "robust_aimd(1,0.8,0.01)",
      "bbr",          "vegas(2,4)"};

  struct Row {
    std::string name;
    long responsiveness = 0;
    double smoothness = 0.0;
    double jain = 0.0;
  };
  const auto rows = parallel_map(
      specs,
      [&](const std::string& spec) {
        const auto proto = cc::make_protocol(spec);
        Row row;
        row.name = proto->name();
        row.responsiveness = core::measure_responsiveness(*proto, cfg);
        const fluid::Trace t = core::run_shared_link(*proto, cfg);
        row.smoothness = core::measure_smoothness(t, cfg.estimator());
        row.jain = core::measure_jain_fairness(t, cfg.estimator());
        return row;
      },
      jobs);

  TextTable table;
  table.set_header({"protocol", "responsiveness (steps to refill)",
                    "smoothness", "jain fairness"});
  for (const auto& row : rows) {
    table.add_row({row.name, std::to_string(row.responsiveness),
                   TextTable::num(row.smoothness, 4),
                   TextTable::num(row.jain, 4)});
  }
  std::printf("%s\n", table.render().c_str());
}

void parking_lots(long steps, double duration, long jobs) {
  std::printf("--- extension 2: parking-lot topologies (network-wide "
              "interaction) ---\n");
  TextTable table;
  table.set_header({"substrate", "protocol", "bottlenecks",
                    "long/short share ratio"});

  const std::vector<int> fluid_ks{1, 2, 3, 6};
  const auto fluid_ratios = parallel_map(
      fluid_ks,
      [&](int k) {
        fluid::NetworkOptions opt;
        opt.steps = steps;
        fluid::ParkingLot lot = fluid::make_parking_lot(
            fluid::make_link_mbps(20.0, 40.0, 20.0), k,
            cc::RobustAimd(1.0, 0.5, 0.01), opt);
        const fluid::Trace t = lot.network.run();
        return mean_of(tail_view(t.windows(lot.long_flow), 0.5)) /
               mean_of(tail_view(t.windows(lot.short_flows[0]), 0.5));
      },
      jobs);
  for (std::size_t i = 0; i < fluid_ks.size(); ++i) {
    table.add_row({"fluid", "Robust-AIMD(1,0.5,0.01)",
                   std::to_string(fluid_ks[i]),
                   TextTable::num(fluid_ratios[i], 3)});
  }

  const std::vector<int> packet_ks{1, 2, 3};
  const auto packet_ratios = parallel_map(
      packet_ks,
      [&](int k) {
        sim::MultiHopNetwork::Config cfg;
        cfg.duration_seconds = duration;
        sim::PacketParkingLot lot = sim::make_packet_parking_lot(
            10.0, 10.0, 25, k, *cc::presets::reno(), cfg);
        lot.network->run();
        double short_sum = 0.0;
        for (int f : lot.short_flows) {
          short_sum += lot.network->flow_throughput_mbps(f);
        }
        return lot.network->flow_throughput_mbps(lot.long_flow) /
               (short_sum / static_cast<double>(lot.short_flows.size()));
      },
      jobs);
  for (std::size_t i = 0; i < packet_ks.size(); ++i) {
    table.add_row({"packet", "AIMD(1,0.5) [Reno]",
                   std::to_string(packet_ks[i]),
                   TextTable::num(packet_ratios[i], 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(fluid AIMD would show ratio 1.0 under synchronized feedback; "
              "Robust-AIMD's\nloss-rate threshold and packet-level drop "
              "desynchronization expose the beat-down)\n\n");
}

void bbr_in_the_metric_space(long steps, engine::BackendKind backend,
                             long jobs) {
  std::printf("--- extension 3: a pacing-style protocol in the 8-metric "
              "space ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;
  cfg.backend = backend;

  const auto make_proto = [](std::size_t i) -> std::unique_ptr<cc::Protocol> {
    if (i == 0) return cc::presets::reno();
    if (i == 1) return std::make_unique<cc::BbrLike>();
    return cc::presets::robust_aimd_table2();
  };
  const auto rows = parallel_map(
      std::size_t{3},
      [&](std::size_t i) {
        const auto proto = make_proto(i);
        return std::pair<std::string, core::MetricReport>{
            proto->name(), core::evaluate_protocol(*proto, cfg)};
      },
      jobs);

  TextTable table;
  table.set_header({"protocol", "eff", "loss", "robust", "friendly",
                    "latency"});
  for (const auto& [name, m] : rows) {
    table.add_row({name, TextTable::num(m.efficiency, 3),
                   TextTable::num(m.loss_avoidance, 4),
                   TextTable::num(m.robustness, 4),
                   TextTable::num(m.tcp_friendliness, 3),
                   TextTable::num(m.latency_avoidance, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(BBR-like: high robustness and low latency without loss "
              "tolerance tuning —\na different Pareto-frontier point than "
              "Robust-AIMD)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "extensions");
    const long steps = args.get_int("steps", 3000);
    const engine::BackendKind backend =
        engine::parse_backend(args.get_backend());
    const double duration = args.get_double("duration", 20.0);
    const long jobs = args.get_jobs();

    std::printf("=== future-work extensions, measured (%ld jobs) ===\n\n",
                jobs);
    BenchReport bench("extensions");
    bench.set_jobs(jobs);
    WallTimer timer;
    extra_axioms(steps, backend, jobs);
    bench.add_phase("extra_axioms", timer.seconds());
    timer.reset();
    parking_lots(steps, duration, jobs);
    bench.add_phase("parking_lots", timer.seconds());
    timer.reset();
    bbr_in_the_metric_space(steps, backend, jobs);
    bench.add_phase("bbr_metric_space", timer.seconds());
    bench.add_counter("cells", 18.0);  // 8 + 4 + 3 + 3 extension cells
    bench.add_counter("cells_per_sec", 18.0 / bench.total_seconds());
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, args.get_backend());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
