// bench_extensions — the paper's future-work directions, implemented and
// measured (DESIGN.md "substrate extensions"):
//
//   1. candidate additional axioms (responsiveness, smoothness, Jain
//      fairness) across the protocol zoo;
//   2. network-wide interaction: the parking-lot topology on BOTH substrates
//      (fluid network and packet-level multi-hop);
//   3. a pacing-style model-based protocol (BBR-like) placed in the
//      8-metric space next to the loss-based families.
//
// Usage: bench_extensions [--steps=3000] [--duration=20]
#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

#include "cc/bbr_like.h"
#include "cc/presets.h"
#include "cc/registry.h"
#include "cc/robust_aimd.h"
#include "core/evaluator.h"
#include "core/extra_metrics.h"
#include "core/metrics.h"
#include "fluid/network.h"
#include "sim/network.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

void extra_axioms(long steps) {
  std::printf("--- extension 1: candidate additional axioms ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;

  const char* specs[] = {"reno",        "aimd(4,0.5)", "cubic-linux",
                         "scalable",    "bin(1,1,1,0)", "robust_aimd(1,0.8,0.01)",
                         "bbr",         "vegas(2,4)"};

  TextTable table;
  table.set_header({"protocol", "responsiveness (steps to refill)",
                    "smoothness", "jain fairness"});
  for (const char* spec : specs) {
    const auto proto = cc::make_protocol(spec);
    const long responsiveness = core::measure_responsiveness(*proto, cfg);
    const fluid::Trace t = core::run_shared_link(*proto, cfg);
    table.add_row({proto->name(), std::to_string(responsiveness),
                   TextTable::num(core::measure_smoothness(t, cfg.estimator()), 4),
                   TextTable::num(
                       core::measure_jain_fairness(t, cfg.estimator()), 4)});
  }
  std::printf("%s\n", table.render().c_str());
}

void parking_lots(long steps, double duration) {
  std::printf("--- extension 2: parking-lot topologies (network-wide "
              "interaction) ---\n");
  TextTable table;
  table.set_header({"substrate", "protocol", "bottlenecks",
                    "long/short share ratio"});

  for (int k : {1, 2, 3, 6}) {
    fluid::NetworkOptions opt;
    opt.steps = steps;
    fluid::ParkingLot lot = fluid::make_parking_lot(
        fluid::make_link_mbps(20.0, 40.0, 20.0), k,
        cc::RobustAimd(1.0, 0.5, 0.01), opt);
    const fluid::Trace t = lot.network.run();
    const double ratio =
        mean_of(tail_view(t.windows(lot.long_flow), 0.5)) /
        mean_of(tail_view(t.windows(lot.short_flows[0]), 0.5));
    table.add_row({"fluid", "Robust-AIMD(1,0.5,0.01)", std::to_string(k),
                   TextTable::num(ratio, 3)});
  }

  for (int k : {1, 2, 3}) {
    sim::MultiHopNetwork::Config cfg;
    cfg.duration_seconds = duration;
    sim::PacketParkingLot lot = sim::make_packet_parking_lot(
        10.0, 10.0, 25, k, *cc::presets::reno(), cfg);
    lot.network->run();
    double short_sum = 0.0;
    for (int f : lot.short_flows) {
      short_sum += lot.network->flow_throughput_mbps(f);
    }
    const double ratio =
        lot.network->flow_throughput_mbps(lot.long_flow) /
        (short_sum / static_cast<double>(lot.short_flows.size()));
    table.add_row({"packet", "AIMD(1,0.5) [Reno]", std::to_string(k),
                   TextTable::num(ratio, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(fluid AIMD would show ratio 1.0 under synchronized feedback; "
              "Robust-AIMD's\nloss-rate threshold and packet-level drop "
              "desynchronization expose the beat-down)\n\n");
}

void bbr_in_the_metric_space(long steps) {
  std::printf("--- extension 3: a pacing-style protocol in the 8-metric "
              "space ---\n");
  core::EvalConfig cfg;
  cfg.steps = steps;

  TextTable table;
  table.set_header({"protocol", "eff", "loss", "robust", "friendly",
                    "latency"});
  const std::unique_ptr<cc::Protocol> protos[] = {
      cc::presets::reno(), std::make_unique<cc::BbrLike>(),
      cc::presets::robust_aimd_table2()};
  for (const auto& proto : protos) {
    const core::MetricReport m = core::evaluate_protocol(*proto, cfg);
    table.add_row({proto->name(), TextTable::num(m.efficiency, 3),
                   TextTable::num(m.loss_avoidance, 4),
                   TextTable::num(m.robustness, 4),
                   TextTable::num(m.tcp_friendliness, 3),
                   TextTable::num(m.latency_avoidance, 3)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(BBR-like: high robustness and low latency without loss "
              "tolerance tuning —\na different Pareto-frontier point than "
              "Robust-AIMD)\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const long steps = args.get_int("steps", 3000);
    const double duration = args.get_double("duration", 20.0);

    std::printf("=== future-work extensions, measured ===\n\n");
    extra_axioms(steps);
    parking_lots(steps, duration);
    bbr_in_the_metric_space(steps);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
