// bench_gauntlet — the protocol robustness gauntlet.
//
// Every registered protocol family runs through the adversarial scenario
// library (outage, flap, oscillation, sawtooth, loss storm, RTT step, flow
// churn) across several seeds, each cell under the guarded runner, and the
// per-protocol scorecard is rendered alongside the eight axiom metrics.
// Cells that diverge appear as fault rows instead of aborting the sweep.
//
// Usage: bench_gauntlet [--mbps=30] [--rtt-ms=42] [--buffer=100]
//                       [--senders=2] [--steps=900] [--seeds=3]
//                       [--protocols=reno,cubic-linux] [--no-axioms]
//                       [--backend=fluid|packet] [--topology=K] [--jobs=N]
//                       [--cells] [--csv] [--markdown]
//                       [--record=dir[,classes=window+loss]]
//
// --jobs=N fans the protocol × scenario × seed matrix out over N workers
// (default: AXIOMCC_JOBS env, else hardware concurrency; 1 = serial). Timing
// lands in BENCH_gauntlet.json.
// --backend selects the simulator the cells run on (default: AXIOMCC_BACKEND
// env, else fluid). The packet backend runs the same scenario matrix on the
// dumbbell DES; RTT-step scenarios scale only the forward path there (see
// docs/stress.md).
// --topology=K runs every cell on a K-bottleneck parking lot (one long flow
// over all hops plus senders-1 cross flows per link) instead of the single
// shared link; 0 (the default) keeps the pre-topology gauntlet bit-identical.
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/telemetry_report.h"
#include "ledger/ledger.h"
#include "engine/scenario.h"
#include "exp/gauntlet.h"
#include "recorder/event.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

/// Splits "aimd(1,0.5),vegas(2,4)" on the commas BETWEEN specs only:
/// commas inside a parenthesized argument list belong to the spec.
std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::string token;
  int depth = 0;
  for (const char c : csv) {
    if (c == '(') ++depth;
    if (c == ')' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      if (!token.empty()) out.push_back(token);
      token.clear();
      continue;
    }
    token.push_back(c);
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

std::string fmt(double v, int precision = 3) {
  return TextTable::num(v, precision);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "gauntlet");

    exp::GauntletConfig cfg;
    cfg.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                     args.get_double("rtt-ms", 42.0),
                                     args.get_double("buffer", 100.0));
    cfg.num_senders = static_cast<int>(args.get_int("senders", 2));
    cfg.steps = args.get_int("steps", 900);
    cfg.seeds.clear();
    const long num_seeds = args.get_int("seeds", 3);
    for (long s = 1; s <= num_seeds; ++s) {
      cfg.seeds.push_back(static_cast<std::uint64_t>(s));
    }
    cfg.include_axiom_metrics = !args.has("no-axioms");
    // The gauntlet propagates the backend into axiom_cfg itself.
    cfg.backend = engine::parse_backend(args.get_backend());
    cfg.topology_bottlenecks = static_cast<int>(args.get_int("topology", 0));
    cfg.jobs = args.get_jobs();
    // --record[=dir[,classes=list]]: flight-record every cell and dump a
    // post-mortem for each faulting one next to the other artifacts. A
    // classes list narrows capture to the named event lanes.
    if (const auto record = args.record_spec()) {
      cfg.record.enabled = true;
      cfg.record_dir = record->dir;
      if (!record->classes.empty()) {
        cfg.record.classes = recorder::parse_class_mask(record->classes.c_str());
      }
    }
    // Trimmed axiom evaluation: the gauntlet's own scores carry the
    // stress story; the axiom columns are context.
    cfg.axiom_cfg.steps = 2000;
    cfg.axiom_cfg.fast_utilization_steps = 1000;
    cfg.axiom_cfg.robustness_steps = 1200;

    const std::vector<std::string> specs =
        args.get("protocols") ? split_specs(*args.get("protocols"))
                              : exp::default_gauntlet_specs();

    if (!args.has("csv")) {
      std::printf("=== Robustness gauntlet ===\n");
      std::printf(
          "Link: %.0f Mbps, %.0f ms RTT, %.0f MSS buffer; %d senders, %ld "
          "steps, %zu seeds, %zu protocols, %ld jobs\n\n",
          args.get_double("mbps", 30.0), args.get_double("rtt-ms", 42.0),
          args.get_double("buffer", 100.0), cfg.num_senders, cfg.steps,
          cfg.seeds.size(), specs.size(), cfg.jobs);
      if (cfg.topology_bottlenecks > 0) {
        std::printf("Topology: %d-bottleneck parking lot per cell\n\n",
                    cfg.topology_bottlenecks);
      }
    }

    WallTimer timer;
    const exp::GauntletResult result = exp::run_gauntlet(specs, cfg);
    const double run_seconds = timer.seconds();

    BenchReport bench("gauntlet");
    bench.set_jobs(cfg.jobs);
    bench.add_phase("run_gauntlet", run_seconds);
    bench.add_counter("cells", static_cast<double>(result.cells.size()));
    bench.add_counter("cells_per_sec",
                      static_cast<double>(result.cells.size()) / run_seconds);
    bench.add_counter("failed_cells",
                      static_cast<double>(result.failed_cells()));
    telemetry.finish(bench);  // flame summary goes to stderr; --csv stays pure
    const std::string artifact = bench.write(args.artifacts_dir());
    ledger::maybe_append(args, bench, args.get_backend());

    if (args.has("csv")) {
      // Keep stdout pure CSV (byte-comparable across job counts); the
      // artifact path goes to stderr.
      std::fprintf(stderr, "Bench artifact: %s\n", artifact.c_str());
      std::ostringstream out;
      if (args.has("cells")) {
        exp::write_gauntlet_csv(result.cells, out);
      } else {
        exp::write_scorecard_csv(result.scorecard, out);
      }
      std::printf("%s", out.str().c_str());
      return 0;
    }

    const auto format = args.has("markdown") ? TextTable::Format::kMarkdown
                                             : TextTable::Format::kAscii;

    if (args.has("cells")) {
      TextTable table;
      table.set_header({"Protocol", "Scenario", "Seed", "Status", "Util",
                        "Retention", "Recovery", "Fairness", "Loss"});
      for (const auto& cell : result.cells) {
        table.add_row({cell.protocol, cell.scenario,
                       std::to_string(cell.seed),
                       stress::fault_kind_name(cell.fault.kind),
                       fmt(cell.utilization), fmt(cell.throughput_retention),
                       fmt(cell.recovery_steps, 0), fmt(cell.fairness),
                       fmt(cell.loss_rate)});
      }
      std::printf("%s\n", table.render(format).c_str());
      std::printf("Bench artifact: %s\n", artifact.c_str());
      return 0;
    }

    TextTable table;
    table.set_header({"Protocol", "Cells", "Failed", "Util", "Retention",
                      "WorstRet", "Recovery", "Unrecovered", "WorstFair",
                      "Robust(VI)", "Efficiency", "Friendly"});
    for (const auto& s : result.scorecard) {
      table.add_row(
          {s.protocol, std::to_string(s.cells), std::to_string(s.failed_cells),
           fmt(s.mean_utilization), fmt(s.mean_retention),
           fmt(s.worst_retention), fmt(s.mean_recovery_steps, 0),
           std::to_string(s.unrecovered_cells), fmt(s.worst_fairness),
           cfg.include_axiom_metrics && s.axiom_fault.ok()
               ? fmt(s.axioms.robustness)
               : "-",
           cfg.include_axiom_metrics && s.axiom_fault.ok()
               ? fmt(s.axioms.efficiency)
               : "-",
           cfg.include_axiom_metrics && s.axiom_fault.ok()
               ? fmt(s.axioms.tcp_friendliness)
               : "-"});
    }
    std::printf("%s\n", table.render(format).c_str());

    std::printf(
        "Notes:\n"
        " * %d of %zu cells faulted (see --cells for the per-cell matrix,\n"
        "   --csv for machine-readable output).\n"
        " * Retention is tail utilization relative to the protocol's\n"
        "   unperturbed baseline; Recovery is in steps after the outage.\n",
        result.failed_cells(), result.cells.size());
    std::printf("Bench artifact: %s\n", artifact.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
