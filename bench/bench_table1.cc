// bench_table1 — regenerates the paper's Table 1 (protocol characterization).
//
// For each protocol family instance: the nuanced closed-form score (function
// of C, τ, n), the worst-case angle-bracket bound, and the score measured on
// the fluid model, for all eight metrics.
//
// Usage: bench_table1 [--mbps=30] [--rtt-ms=42] [--buffer=100] [--senders=2]
//                     [--steps=4000] [--backend=fluid|packet] [--jobs=N]
//                     [--markdown] [--telemetry[=dir]] [--out=dir]
//                     [--ledger[=path]]
//
// --jobs=N fans the rows out over N workers (default: AXIOMCC_JOBS env, else
// hardware concurrency; 1 = serial). Timing lands in BENCH_table1.json.
// --backend selects the simulator the measured column runs on (default:
// AXIOMCC_BACKEND env, else fluid; packet runs under PacketLimits clamps).
// --telemetry records the metrics registry + trace spans: the snapshot embeds
// in the artifact and trace_table1.json opens in Perfetto.
#include <cstdio>
#include <exception>

#include "analysis/telemetry_report.h"
#include "engine/scenario.h"
#include "exp/table1.h"
#include "ledger/ledger.h"
#include "util/bench_json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

std::string cell(double nuanced, double worst, double measured) {
  return TextTable::num(nuanced, 3) + " <" + TextTable::num(worst, 3) + "> | " +
         TextTable::num(measured, 3);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    analysis::BenchTelemetry telemetry(args, "table1");
    core::EvalConfig cfg;
    cfg.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                     args.get_double("rtt-ms", 42.0),
                                     args.get_double("buffer", 100.0));
    cfg.num_senders = static_cast<int>(args.get_int("senders", 2));
    cfg.steps = args.get_int("steps", 4000);
    cfg.backend = engine::parse_backend(args.get_backend());
    const long jobs = args.get_jobs();
    if (cfg.backend != engine::BackendKind::kFluid) {
      std::printf("Backend: %s (packet runs under PacketLimits clamps)\n",
                  engine::backend_name(cfg.backend));
    }

    std::printf("=== Table 1: protocol characterization ===\n");
    std::printf(
        "Link: %.0f Mbps, %.0f ms RTT, %.0f MSS buffer, %d senders, %ld "
        "jobs\n",
        args.get_double("mbps", 30.0), args.get_double("rtt-ms", 42.0),
        args.get_double("buffer", 100.0), cfg.num_senders, jobs);
    std::printf("Cell format: theory <worst-case> | measured\n\n");

    WallTimer timer;
    const auto rows = exp::build_table1(cfg, jobs);
    const double build_seconds = timer.seconds();

    TextTable table;
    table.set_header({"Protocol", "Efficiency", "Loss-Avoiding",
                      "Fast-Utilizing", "TCP-Friendly", "Fair", "Conv",
                      "Robust", "Latency"});
    for (const auto& row : rows) {
      const auto& th = row.theory_nuanced;
      const auto& wc = row.theory_worst;
      const auto& me = row.measured;
      table.add_row(
          {row.protocol,
           cell(th.efficiency, wc.efficiency, me.efficiency),
           cell(th.loss_avoidance, wc.loss_avoidance, me.loss_avoidance),
           cell(th.fast_utilization, wc.fast_utilization, me.fast_utilization),
           cell(th.tcp_friendliness, wc.tcp_friendliness, me.tcp_friendliness),
           cell(th.fairness, wc.fairness, me.fairness),
           cell(th.convergence, wc.convergence, me.convergence),
           cell(th.robustness, wc.robustness, me.robustness),
           cell(th.latency_avoidance, wc.latency_avoidance,
                me.latency_avoidance)});
    }
    std::printf("%s\n", table.render(args.has("markdown")
                                         ? TextTable::Format::kMarkdown
                                         : TextTable::Format::kAscii)
                            .c_str());

    std::printf(
        "Notes:\n"
        " * measured fast-utilization of super-linear protocols (MIMD) is\n"
        "   horizon-limited; the theory value is unbounded (<inf>).\n"
        " * MIMD/BIN loss cells use the model-derived bounds (see theory.h\n"
        "   and EXPERIMENTS.md for the discrepancy notes vs the printed\n"
        "   paper cells).\n");

    BenchReport bench("table1");
    bench.set_jobs(jobs);
    bench.add_phase("build_table1", build_seconds);
    bench.add_counter("cells", static_cast<double>(rows.size()));
    bench.add_counter("cells_per_sec",
                      static_cast<double>(rows.size()) / build_seconds);
    telemetry.finish(bench);
    std::printf("Bench artifact: %s\n",
                bench.write(args.artifacts_dir()).c_str());
    ledger::maybe_append(args, bench, args.get_backend());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
