file(REMOVE_RECURSE
  "libaxiomcc_cc.a"
)
