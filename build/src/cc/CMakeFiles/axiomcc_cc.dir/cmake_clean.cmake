file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_cc.dir/aimd.cc.o"
  "CMakeFiles/axiomcc_cc.dir/aimd.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/bbr_like.cc.o"
  "CMakeFiles/axiomcc_cc.dir/bbr_like.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/binomial.cc.o"
  "CMakeFiles/axiomcc_cc.dir/binomial.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/cautious_probe.cc.o"
  "CMakeFiles/axiomcc_cc.dir/cautious_probe.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/cubic.cc.o"
  "CMakeFiles/axiomcc_cc.dir/cubic.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/highspeed.cc.o"
  "CMakeFiles/axiomcc_cc.dir/highspeed.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/illinois.cc.o"
  "CMakeFiles/axiomcc_cc.dir/illinois.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/mimd.cc.o"
  "CMakeFiles/axiomcc_cc.dir/mimd.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/pcc.cc.o"
  "CMakeFiles/axiomcc_cc.dir/pcc.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/registry.cc.o"
  "CMakeFiles/axiomcc_cc.dir/registry.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/robust_aimd.cc.o"
  "CMakeFiles/axiomcc_cc.dir/robust_aimd.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/slow_start.cc.o"
  "CMakeFiles/axiomcc_cc.dir/slow_start.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/vegas.cc.o"
  "CMakeFiles/axiomcc_cc.dir/vegas.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/veno.cc.o"
  "CMakeFiles/axiomcc_cc.dir/veno.cc.o.d"
  "CMakeFiles/axiomcc_cc.dir/westwood.cc.o"
  "CMakeFiles/axiomcc_cc.dir/westwood.cc.o.d"
  "libaxiomcc_cc.a"
  "libaxiomcc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
