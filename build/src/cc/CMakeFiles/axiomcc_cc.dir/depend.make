# Empty dependencies file for axiomcc_cc.
# This may be replaced when dependencies are built.
