
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/aimd.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/aimd.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/aimd.cc.o.d"
  "/root/repo/src/cc/bbr_like.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/bbr_like.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/bbr_like.cc.o.d"
  "/root/repo/src/cc/binomial.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/binomial.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/binomial.cc.o.d"
  "/root/repo/src/cc/cautious_probe.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/cautious_probe.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/cautious_probe.cc.o.d"
  "/root/repo/src/cc/cubic.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/cubic.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/cubic.cc.o.d"
  "/root/repo/src/cc/highspeed.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/highspeed.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/highspeed.cc.o.d"
  "/root/repo/src/cc/illinois.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/illinois.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/illinois.cc.o.d"
  "/root/repo/src/cc/mimd.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/mimd.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/mimd.cc.o.d"
  "/root/repo/src/cc/pcc.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/pcc.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/pcc.cc.o.d"
  "/root/repo/src/cc/registry.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/registry.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/registry.cc.o.d"
  "/root/repo/src/cc/robust_aimd.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/robust_aimd.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/robust_aimd.cc.o.d"
  "/root/repo/src/cc/slow_start.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/slow_start.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/slow_start.cc.o.d"
  "/root/repo/src/cc/vegas.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/vegas.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/vegas.cc.o.d"
  "/root/repo/src/cc/veno.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/veno.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/veno.cc.o.d"
  "/root/repo/src/cc/westwood.cc" "src/cc/CMakeFiles/axiomcc_cc.dir/westwood.cc.o" "gcc" "src/cc/CMakeFiles/axiomcc_cc.dir/westwood.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/axiomcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
