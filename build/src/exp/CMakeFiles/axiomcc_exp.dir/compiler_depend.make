# Empty compiler generated dependencies file for axiomcc_exp.
# This may be replaced when dependencies are built.
