file(REMOVE_RECURSE
  "libaxiomcc_exp.a"
)
