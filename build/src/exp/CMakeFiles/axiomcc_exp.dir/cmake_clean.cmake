file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_exp.dir/emulab.cc.o"
  "CMakeFiles/axiomcc_exp.dir/emulab.cc.o.d"
  "CMakeFiles/axiomcc_exp.dir/figure1.cc.o"
  "CMakeFiles/axiomcc_exp.dir/figure1.cc.o.d"
  "CMakeFiles/axiomcc_exp.dir/sweep.cc.o"
  "CMakeFiles/axiomcc_exp.dir/sweep.cc.o.d"
  "CMakeFiles/axiomcc_exp.dir/table1.cc.o"
  "CMakeFiles/axiomcc_exp.dir/table1.cc.o.d"
  "CMakeFiles/axiomcc_exp.dir/table2.cc.o"
  "CMakeFiles/axiomcc_exp.dir/table2.cc.o.d"
  "CMakeFiles/axiomcc_exp.dir/theorems.cc.o"
  "CMakeFiles/axiomcc_exp.dir/theorems.cc.o.d"
  "libaxiomcc_exp.a"
  "libaxiomcc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
