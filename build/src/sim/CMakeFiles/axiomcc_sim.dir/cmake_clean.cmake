file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_sim.dir/dumbbell.cc.o"
  "CMakeFiles/axiomcc_sim.dir/dumbbell.cc.o.d"
  "CMakeFiles/axiomcc_sim.dir/event.cc.o"
  "CMakeFiles/axiomcc_sim.dir/event.cc.o.d"
  "CMakeFiles/axiomcc_sim.dir/link.cc.o"
  "CMakeFiles/axiomcc_sim.dir/link.cc.o.d"
  "CMakeFiles/axiomcc_sim.dir/network.cc.o"
  "CMakeFiles/axiomcc_sim.dir/network.cc.o.d"
  "CMakeFiles/axiomcc_sim.dir/queue.cc.o"
  "CMakeFiles/axiomcc_sim.dir/queue.cc.o.d"
  "CMakeFiles/axiomcc_sim.dir/sender.cc.o"
  "CMakeFiles/axiomcc_sim.dir/sender.cc.o.d"
  "libaxiomcc_sim.a"
  "libaxiomcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
