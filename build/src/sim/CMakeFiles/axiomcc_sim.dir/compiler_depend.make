# Empty compiler generated dependencies file for axiomcc_sim.
# This may be replaced when dependencies are built.
