
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dumbbell.cc" "src/sim/CMakeFiles/axiomcc_sim.dir/dumbbell.cc.o" "gcc" "src/sim/CMakeFiles/axiomcc_sim.dir/dumbbell.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/sim/CMakeFiles/axiomcc_sim.dir/event.cc.o" "gcc" "src/sim/CMakeFiles/axiomcc_sim.dir/event.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/sim/CMakeFiles/axiomcc_sim.dir/link.cc.o" "gcc" "src/sim/CMakeFiles/axiomcc_sim.dir/link.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/sim/CMakeFiles/axiomcc_sim.dir/network.cc.o" "gcc" "src/sim/CMakeFiles/axiomcc_sim.dir/network.cc.o.d"
  "/root/repo/src/sim/queue.cc" "src/sim/CMakeFiles/axiomcc_sim.dir/queue.cc.o" "gcc" "src/sim/CMakeFiles/axiomcc_sim.dir/queue.cc.o.d"
  "/root/repo/src/sim/sender.cc" "src/sim/CMakeFiles/axiomcc_sim.dir/sender.cc.o" "gcc" "src/sim/CMakeFiles/axiomcc_sim.dir/sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/axiomcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/axiomcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/axiomcc_fluid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
