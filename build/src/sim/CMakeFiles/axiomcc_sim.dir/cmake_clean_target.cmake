file(REMOVE_RECURSE
  "libaxiomcc_sim.a"
)
