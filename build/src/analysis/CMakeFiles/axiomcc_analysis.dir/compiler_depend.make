# Empty compiler generated dependencies file for axiomcc_analysis.
# This may be replaced when dependencies are built.
