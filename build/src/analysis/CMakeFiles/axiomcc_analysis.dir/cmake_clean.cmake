file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_analysis.dir/ascii_plot.cc.o"
  "CMakeFiles/axiomcc_analysis.dir/ascii_plot.cc.o.d"
  "CMakeFiles/axiomcc_analysis.dir/dynamics.cc.o"
  "CMakeFiles/axiomcc_analysis.dir/dynamics.cc.o.d"
  "CMakeFiles/axiomcc_analysis.dir/trace_io.cc.o"
  "CMakeFiles/axiomcc_analysis.dir/trace_io.cc.o.d"
  "libaxiomcc_analysis.a"
  "libaxiomcc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
