file(REMOVE_RECURSE
  "libaxiomcc_analysis.a"
)
