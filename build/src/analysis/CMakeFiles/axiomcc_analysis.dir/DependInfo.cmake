
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_plot.cc" "src/analysis/CMakeFiles/axiomcc_analysis.dir/ascii_plot.cc.o" "gcc" "src/analysis/CMakeFiles/axiomcc_analysis.dir/ascii_plot.cc.o.d"
  "/root/repo/src/analysis/dynamics.cc" "src/analysis/CMakeFiles/axiomcc_analysis.dir/dynamics.cc.o" "gcc" "src/analysis/CMakeFiles/axiomcc_analysis.dir/dynamics.cc.o.d"
  "/root/repo/src/analysis/trace_io.cc" "src/analysis/CMakeFiles/axiomcc_analysis.dir/trace_io.cc.o" "gcc" "src/analysis/CMakeFiles/axiomcc_analysis.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/axiomcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/axiomcc_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/axiomcc_cc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
