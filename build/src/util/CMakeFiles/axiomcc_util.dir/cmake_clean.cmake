file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_util.dir/cli.cc.o"
  "CMakeFiles/axiomcc_util.dir/cli.cc.o.d"
  "CMakeFiles/axiomcc_util.dir/table.cc.o"
  "CMakeFiles/axiomcc_util.dir/table.cc.o.d"
  "libaxiomcc_util.a"
  "libaxiomcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
