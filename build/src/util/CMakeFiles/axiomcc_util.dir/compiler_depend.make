# Empty compiler generated dependencies file for axiomcc_util.
# This may be replaced when dependencies are built.
