file(REMOVE_RECURSE
  "libaxiomcc_util.a"
)
