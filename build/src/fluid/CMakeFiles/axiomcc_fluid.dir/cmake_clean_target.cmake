file(REMOVE_RECURSE
  "libaxiomcc_fluid.a"
)
