file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_fluid.dir/link.cc.o"
  "CMakeFiles/axiomcc_fluid.dir/link.cc.o.d"
  "CMakeFiles/axiomcc_fluid.dir/network.cc.o"
  "CMakeFiles/axiomcc_fluid.dir/network.cc.o.d"
  "CMakeFiles/axiomcc_fluid.dir/sim.cc.o"
  "CMakeFiles/axiomcc_fluid.dir/sim.cc.o.d"
  "libaxiomcc_fluid.a"
  "libaxiomcc_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
