
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluid/link.cc" "src/fluid/CMakeFiles/axiomcc_fluid.dir/link.cc.o" "gcc" "src/fluid/CMakeFiles/axiomcc_fluid.dir/link.cc.o.d"
  "/root/repo/src/fluid/network.cc" "src/fluid/CMakeFiles/axiomcc_fluid.dir/network.cc.o" "gcc" "src/fluid/CMakeFiles/axiomcc_fluid.dir/network.cc.o.d"
  "/root/repo/src/fluid/sim.cc" "src/fluid/CMakeFiles/axiomcc_fluid.dir/sim.cc.o" "gcc" "src/fluid/CMakeFiles/axiomcc_fluid.dir/sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/axiomcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/axiomcc_cc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
