# Empty dependencies file for axiomcc_fluid.
# This may be replaced when dependencies are built.
