file(REMOVE_RECURSE
  "libaxiomcc_core.a"
)
