
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluator.cc" "src/core/CMakeFiles/axiomcc_core.dir/evaluator.cc.o" "gcc" "src/core/CMakeFiles/axiomcc_core.dir/evaluator.cc.o.d"
  "/root/repo/src/core/extra_metrics.cc" "src/core/CMakeFiles/axiomcc_core.dir/extra_metrics.cc.o" "gcc" "src/core/CMakeFiles/axiomcc_core.dir/extra_metrics.cc.o.d"
  "/root/repo/src/core/feasibility.cc" "src/core/CMakeFiles/axiomcc_core.dir/feasibility.cc.o" "gcc" "src/core/CMakeFiles/axiomcc_core.dir/feasibility.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/axiomcc_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/axiomcc_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/pareto.cc" "src/core/CMakeFiles/axiomcc_core.dir/pareto.cc.o" "gcc" "src/core/CMakeFiles/axiomcc_core.dir/pareto.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/core/CMakeFiles/axiomcc_core.dir/theory.cc.o" "gcc" "src/core/CMakeFiles/axiomcc_core.dir/theory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/axiomcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/axiomcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/axiomcc_fluid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
