file(REMOVE_RECURSE
  "CMakeFiles/axiomcc_core.dir/evaluator.cc.o"
  "CMakeFiles/axiomcc_core.dir/evaluator.cc.o.d"
  "CMakeFiles/axiomcc_core.dir/extra_metrics.cc.o"
  "CMakeFiles/axiomcc_core.dir/extra_metrics.cc.o.d"
  "CMakeFiles/axiomcc_core.dir/feasibility.cc.o"
  "CMakeFiles/axiomcc_core.dir/feasibility.cc.o.d"
  "CMakeFiles/axiomcc_core.dir/metrics.cc.o"
  "CMakeFiles/axiomcc_core.dir/metrics.cc.o.d"
  "CMakeFiles/axiomcc_core.dir/pareto.cc.o"
  "CMakeFiles/axiomcc_core.dir/pareto.cc.o.d"
  "CMakeFiles/axiomcc_core.dir/theory.cc.o"
  "CMakeFiles/axiomcc_core.dir/theory.cc.o.d"
  "libaxiomcc_core.a"
  "libaxiomcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiomcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
