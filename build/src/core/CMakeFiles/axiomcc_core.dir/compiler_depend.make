# Empty compiler generated dependencies file for axiomcc_core.
# This may be replaced when dependencies are built.
