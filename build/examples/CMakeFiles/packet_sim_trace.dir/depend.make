# Empty dependencies file for packet_sim_trace.
# This may be replaced when dependencies are built.
