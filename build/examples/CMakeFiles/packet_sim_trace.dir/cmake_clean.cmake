file(REMOVE_RECURSE
  "CMakeFiles/packet_sim_trace.dir/packet_sim_trace.cpp.o"
  "CMakeFiles/packet_sim_trace.dir/packet_sim_trace.cpp.o.d"
  "packet_sim_trace"
  "packet_sim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_sim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
