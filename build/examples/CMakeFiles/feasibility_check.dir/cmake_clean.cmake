file(REMOVE_RECURSE
  "CMakeFiles/feasibility_check.dir/feasibility_check.cpp.o"
  "CMakeFiles/feasibility_check.dir/feasibility_check.cpp.o.d"
  "feasibility_check"
  "feasibility_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
