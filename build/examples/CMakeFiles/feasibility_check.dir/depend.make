# Empty dependencies file for feasibility_check.
# This may be replaced when dependencies are built.
