# Empty compiler generated dependencies file for feasibility_check.
# This may be replaced when dependencies are built.
