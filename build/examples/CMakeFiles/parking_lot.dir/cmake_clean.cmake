file(REMOVE_RECURSE
  "CMakeFiles/parking_lot.dir/parking_lot.cpp.o"
  "CMakeFiles/parking_lot.dir/parking_lot.cpp.o.d"
  "parking_lot"
  "parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
