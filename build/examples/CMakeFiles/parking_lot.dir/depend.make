# Empty dependencies file for parking_lot.
# This may be replaced when dependencies are built.
