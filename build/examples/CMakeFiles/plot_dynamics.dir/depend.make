# Empty dependencies file for plot_dynamics.
# This may be replaced when dependencies are built.
