file(REMOVE_RECURSE
  "CMakeFiles/plot_dynamics.dir/plot_dynamics.cpp.o"
  "CMakeFiles/plot_dynamics.dir/plot_dynamics.cpp.o.d"
  "plot_dynamics"
  "plot_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plot_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
