file(REMOVE_RECURSE
  "CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o"
  "CMakeFiles/protocol_shootout.dir/protocol_shootout.cpp.o.d"
  "protocol_shootout"
  "protocol_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
