# Empty dependencies file for protocol_shootout.
# This may be replaced when dependencies are built.
