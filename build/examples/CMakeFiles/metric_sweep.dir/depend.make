# Empty dependencies file for metric_sweep.
# This may be replaced when dependencies are built.
