file(REMOVE_RECURSE
  "CMakeFiles/metric_sweep.dir/metric_sweep.cpp.o"
  "CMakeFiles/metric_sweep.dir/metric_sweep.cpp.o.d"
  "metric_sweep"
  "metric_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metric_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
