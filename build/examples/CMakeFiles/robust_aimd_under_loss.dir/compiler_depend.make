# Empty compiler generated dependencies file for robust_aimd_under_loss.
# This may be replaced when dependencies are built.
