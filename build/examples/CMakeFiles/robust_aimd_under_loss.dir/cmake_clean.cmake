file(REMOVE_RECURSE
  "CMakeFiles/robust_aimd_under_loss.dir/robust_aimd_under_loss.cpp.o"
  "CMakeFiles/robust_aimd_under_loss.dir/robust_aimd_under_loss.cpp.o.d"
  "robust_aimd_under_loss"
  "robust_aimd_under_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_aimd_under_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
