file(REMOVE_RECURSE
  "CMakeFiles/sim_event_test.dir/sim_event_test.cc.o"
  "CMakeFiles/sim_event_test.dir/sim_event_test.cc.o.d"
  "sim_event_test"
  "sim_event_test.pdb"
  "sim_event_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
