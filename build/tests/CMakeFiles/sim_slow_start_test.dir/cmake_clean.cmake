file(REMOVE_RECURSE
  "CMakeFiles/sim_slow_start_test.dir/sim_slow_start_test.cc.o"
  "CMakeFiles/sim_slow_start_test.dir/sim_slow_start_test.cc.o.d"
  "sim_slow_start_test"
  "sim_slow_start_test.pdb"
  "sim_slow_start_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_slow_start_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
