# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_slow_start_test.
