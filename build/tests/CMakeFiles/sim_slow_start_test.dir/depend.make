# Empty dependencies file for sim_slow_start_test.
# This may be replaced when dependencies are built.
