file(REMOVE_RECURSE
  "CMakeFiles/sim_network_test.dir/sim_network_test.cc.o"
  "CMakeFiles/sim_network_test.dir/sim_network_test.cc.o.d"
  "sim_network_test"
  "sim_network_test.pdb"
  "sim_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
