# Empty dependencies file for core_evaluator_test.
# This may be replaced when dependencies are built.
