file(REMOVE_RECURSE
  "CMakeFiles/core_evaluator_test.dir/core_evaluator_test.cc.o"
  "CMakeFiles/core_evaluator_test.dir/core_evaluator_test.cc.o.d"
  "core_evaluator_test"
  "core_evaluator_test.pdb"
  "core_evaluator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
