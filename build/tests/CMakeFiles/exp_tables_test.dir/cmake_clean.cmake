file(REMOVE_RECURSE
  "CMakeFiles/exp_tables_test.dir/exp_tables_test.cc.o"
  "CMakeFiles/exp_tables_test.dir/exp_tables_test.cc.o.d"
  "exp_tables_test"
  "exp_tables_test.pdb"
  "exp_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
