# Empty dependencies file for exp_tables_test.
# This may be replaced when dependencies are built.
