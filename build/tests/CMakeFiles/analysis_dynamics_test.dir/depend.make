# Empty dependencies file for analysis_dynamics_test.
# This may be replaced when dependencies are built.
