file(REMOVE_RECURSE
  "CMakeFiles/analysis_dynamics_test.dir/analysis_dynamics_test.cc.o"
  "CMakeFiles/analysis_dynamics_test.dir/analysis_dynamics_test.cc.o.d"
  "analysis_dynamics_test"
  "analysis_dynamics_test.pdb"
  "analysis_dynamics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_dynamics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
