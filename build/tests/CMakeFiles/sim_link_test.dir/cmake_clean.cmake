file(REMOVE_RECURSE
  "CMakeFiles/sim_link_test.dir/sim_link_test.cc.o"
  "CMakeFiles/sim_link_test.dir/sim_link_test.cc.o.d"
  "sim_link_test"
  "sim_link_test.pdb"
  "sim_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
