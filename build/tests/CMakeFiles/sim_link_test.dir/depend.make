# Empty dependencies file for sim_link_test.
# This may be replaced when dependencies are built.
