
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_link_test.cc" "tests/CMakeFiles/sim_link_test.dir/sim_link_test.cc.o" "gcc" "tests/CMakeFiles/sim_link_test.dir/sim_link_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/axiomcc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/axiomcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/axiomcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/axiomcc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/fluid/CMakeFiles/axiomcc_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/axiomcc_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/axiomcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
