file(REMOVE_RECURSE
  "CMakeFiles/cc_bbr_test.dir/cc_bbr_test.cc.o"
  "CMakeFiles/cc_bbr_test.dir/cc_bbr_test.cc.o.d"
  "cc_bbr_test"
  "cc_bbr_test.pdb"
  "cc_bbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_bbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
