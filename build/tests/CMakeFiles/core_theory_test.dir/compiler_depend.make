# Empty compiler generated dependencies file for core_theory_test.
# This may be replaced when dependencies are built.
