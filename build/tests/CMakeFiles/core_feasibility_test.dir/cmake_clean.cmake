file(REMOVE_RECURSE
  "CMakeFiles/core_feasibility_test.dir/core_feasibility_test.cc.o"
  "CMakeFiles/core_feasibility_test.dir/core_feasibility_test.cc.o.d"
  "core_feasibility_test"
  "core_feasibility_test.pdb"
  "core_feasibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_feasibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
