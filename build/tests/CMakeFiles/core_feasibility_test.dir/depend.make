# Empty dependencies file for core_feasibility_test.
# This may be replaced when dependencies are built.
