# Empty compiler generated dependencies file for analysis_plot_test.
# This may be replaced when dependencies are built.
