file(REMOVE_RECURSE
  "CMakeFiles/analysis_plot_test.dir/analysis_plot_test.cc.o"
  "CMakeFiles/analysis_plot_test.dir/analysis_plot_test.cc.o.d"
  "analysis_plot_test"
  "analysis_plot_test.pdb"
  "analysis_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
