file(REMOVE_RECURSE
  "CMakeFiles/cc_highspeed_westwood_test.dir/cc_highspeed_westwood_test.cc.o"
  "CMakeFiles/cc_highspeed_westwood_test.dir/cc_highspeed_westwood_test.cc.o.d"
  "cc_highspeed_westwood_test"
  "cc_highspeed_westwood_test.pdb"
  "cc_highspeed_westwood_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_highspeed_westwood_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
