# Empty dependencies file for cc_highspeed_westwood_test.
# This may be replaced when dependencies are built.
