# Empty compiler generated dependencies file for sim_rtt_bias_test.
# This may be replaced when dependencies are built.
