file(REMOVE_RECURSE
  "CMakeFiles/sim_rtt_bias_test.dir/sim_rtt_bias_test.cc.o"
  "CMakeFiles/sim_rtt_bias_test.dir/sim_rtt_bias_test.cc.o.d"
  "sim_rtt_bias_test"
  "sim_rtt_bias_test.pdb"
  "sim_rtt_bias_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_rtt_bias_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
