file(REMOVE_RECURSE
  "CMakeFiles/cc_protocols_test.dir/cc_protocols_test.cc.o"
  "CMakeFiles/cc_protocols_test.dir/cc_protocols_test.cc.o.d"
  "cc_protocols_test"
  "cc_protocols_test.pdb"
  "cc_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
