# Empty dependencies file for cc_protocols_test.
# This may be replaced when dependencies are built.
