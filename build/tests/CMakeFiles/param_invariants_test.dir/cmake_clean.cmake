file(REMOVE_RECURSE
  "CMakeFiles/param_invariants_test.dir/param_invariants_test.cc.o"
  "CMakeFiles/param_invariants_test.dir/param_invariants_test.cc.o.d"
  "param_invariants_test"
  "param_invariants_test.pdb"
  "param_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
