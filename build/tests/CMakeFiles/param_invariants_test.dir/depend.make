# Empty dependencies file for param_invariants_test.
# This may be replaced when dependencies are built.
