# Empty dependencies file for sim_protocol_mix_test.
# This may be replaced when dependencies are built.
