file(REMOVE_RECURSE
  "CMakeFiles/sim_protocol_mix_test.dir/sim_protocol_mix_test.cc.o"
  "CMakeFiles/sim_protocol_mix_test.dir/sim_protocol_mix_test.cc.o.d"
  "sim_protocol_mix_test"
  "sim_protocol_mix_test.pdb"
  "sim_protocol_mix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_protocol_mix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
