# Empty dependencies file for exp_emulab_test.
# This may be replaced when dependencies are built.
