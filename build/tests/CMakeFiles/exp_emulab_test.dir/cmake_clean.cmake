file(REMOVE_RECURSE
  "CMakeFiles/exp_emulab_test.dir/exp_emulab_test.cc.o"
  "CMakeFiles/exp_emulab_test.dir/exp_emulab_test.cc.o.d"
  "exp_emulab_test"
  "exp_emulab_test.pdb"
  "exp_emulab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_emulab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
