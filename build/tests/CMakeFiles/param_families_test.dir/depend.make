# Empty dependencies file for param_families_test.
# This may be replaced when dependencies are built.
