file(REMOVE_RECURSE
  "CMakeFiles/param_families_test.dir/param_families_test.cc.o"
  "CMakeFiles/param_families_test.dir/param_families_test.cc.o.d"
  "param_families_test"
  "param_families_test.pdb"
  "param_families_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_families_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
