file(REMOVE_RECURSE
  "CMakeFiles/sim_queue_test.dir/sim_queue_test.cc.o"
  "CMakeFiles/sim_queue_test.dir/sim_queue_test.cc.o.d"
  "sim_queue_test"
  "sim_queue_test.pdb"
  "sim_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
