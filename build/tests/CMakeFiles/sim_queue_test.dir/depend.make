# Empty dependencies file for sim_queue_test.
# This may be replaced when dependencies are built.
