# Empty dependencies file for fluid_unsync_test.
# This may be replaced when dependencies are built.
