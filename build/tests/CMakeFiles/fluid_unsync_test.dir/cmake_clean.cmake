file(REMOVE_RECURSE
  "CMakeFiles/fluid_unsync_test.dir/fluid_unsync_test.cc.o"
  "CMakeFiles/fluid_unsync_test.dir/fluid_unsync_test.cc.o.d"
  "fluid_unsync_test"
  "fluid_unsync_test.pdb"
  "fluid_unsync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_unsync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
