# Empty dependencies file for cc_illinois_veno_test.
# This may be replaced when dependencies are built.
