file(REMOVE_RECURSE
  "CMakeFiles/cc_illinois_veno_test.dir/cc_illinois_veno_test.cc.o"
  "CMakeFiles/cc_illinois_veno_test.dir/cc_illinois_veno_test.cc.o.d"
  "cc_illinois_veno_test"
  "cc_illinois_veno_test.pdb"
  "cc_illinois_veno_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_illinois_veno_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
