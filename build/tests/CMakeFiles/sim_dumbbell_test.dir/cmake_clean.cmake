file(REMOVE_RECURSE
  "CMakeFiles/sim_dumbbell_test.dir/sim_dumbbell_test.cc.o"
  "CMakeFiles/sim_dumbbell_test.dir/sim_dumbbell_test.cc.o.d"
  "sim_dumbbell_test"
  "sim_dumbbell_test.pdb"
  "sim_dumbbell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dumbbell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
