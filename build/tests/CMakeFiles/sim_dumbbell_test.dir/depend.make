# Empty dependencies file for sim_dumbbell_test.
# This may be replaced when dependencies are built.
