# Empty compiler generated dependencies file for fluid_link_test.
# This may be replaced when dependencies are built.
