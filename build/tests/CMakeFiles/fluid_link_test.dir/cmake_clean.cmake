file(REMOVE_RECURSE
  "CMakeFiles/fluid_link_test.dir/fluid_link_test.cc.o"
  "CMakeFiles/fluid_link_test.dir/fluid_link_test.cc.o.d"
  "fluid_link_test"
  "fluid_link_test.pdb"
  "fluid_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
