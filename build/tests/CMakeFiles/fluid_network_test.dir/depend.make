# Empty dependencies file for fluid_network_test.
# This may be replaced when dependencies are built.
