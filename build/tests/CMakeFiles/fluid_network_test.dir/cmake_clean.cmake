file(REMOVE_RECURSE
  "CMakeFiles/fluid_network_test.dir/fluid_network_test.cc.o"
  "CMakeFiles/fluid_network_test.dir/fluid_network_test.cc.o.d"
  "fluid_network_test"
  "fluid_network_test.pdb"
  "fluid_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
