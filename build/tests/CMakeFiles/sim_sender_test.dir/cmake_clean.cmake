file(REMOVE_RECURSE
  "CMakeFiles/sim_sender_test.dir/sim_sender_test.cc.o"
  "CMakeFiles/sim_sender_test.dir/sim_sender_test.cc.o.d"
  "sim_sender_test"
  "sim_sender_test.pdb"
  "sim_sender_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_sender_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
