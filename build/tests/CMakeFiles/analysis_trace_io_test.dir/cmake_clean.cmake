file(REMOVE_RECURSE
  "CMakeFiles/analysis_trace_io_test.dir/analysis_trace_io_test.cc.o"
  "CMakeFiles/analysis_trace_io_test.dir/analysis_trace_io_test.cc.o.d"
  "analysis_trace_io_test"
  "analysis_trace_io_test.pdb"
  "analysis_trace_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_trace_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
