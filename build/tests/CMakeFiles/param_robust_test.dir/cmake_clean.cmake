file(REMOVE_RECURSE
  "CMakeFiles/param_robust_test.dir/param_robust_test.cc.o"
  "CMakeFiles/param_robust_test.dir/param_robust_test.cc.o.d"
  "param_robust_test"
  "param_robust_test.pdb"
  "param_robust_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_robust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
