# Empty compiler generated dependencies file for param_robust_test.
# This may be replaced when dependencies are built.
