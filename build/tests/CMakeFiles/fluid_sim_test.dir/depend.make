# Empty dependencies file for fluid_sim_test.
# This may be replaced when dependencies are built.
