file(REMOVE_RECURSE
  "CMakeFiles/fluid_sim_test.dir/fluid_sim_test.cc.o"
  "CMakeFiles/fluid_sim_test.dir/fluid_sim_test.cc.o.d"
  "fluid_sim_test"
  "fluid_sim_test.pdb"
  "fluid_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fluid_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
