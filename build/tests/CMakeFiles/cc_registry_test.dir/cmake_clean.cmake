file(REMOVE_RECURSE
  "CMakeFiles/cc_registry_test.dir/cc_registry_test.cc.o"
  "CMakeFiles/cc_registry_test.dir/cc_registry_test.cc.o.d"
  "cc_registry_test"
  "cc_registry_test.pdb"
  "cc_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
