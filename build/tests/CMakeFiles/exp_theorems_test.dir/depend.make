# Empty dependencies file for exp_theorems_test.
# This may be replaced when dependencies are built.
