file(REMOVE_RECURSE
  "CMakeFiles/exp_theorems_test.dir/exp_theorems_test.cc.o"
  "CMakeFiles/exp_theorems_test.dir/exp_theorems_test.cc.o.d"
  "exp_theorems_test"
  "exp_theorems_test.pdb"
  "exp_theorems_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_theorems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
