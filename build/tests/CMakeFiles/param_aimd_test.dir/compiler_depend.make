# Empty compiler generated dependencies file for param_aimd_test.
# This may be replaced when dependencies are built.
