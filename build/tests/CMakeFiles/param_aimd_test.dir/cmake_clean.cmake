file(REMOVE_RECURSE
  "CMakeFiles/param_aimd_test.dir/param_aimd_test.cc.o"
  "CMakeFiles/param_aimd_test.dir/param_aimd_test.cc.o.d"
  "param_aimd_test"
  "param_aimd_test.pdb"
  "param_aimd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_aimd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
