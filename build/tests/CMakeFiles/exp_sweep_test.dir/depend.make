# Empty dependencies file for exp_sweep_test.
# This may be replaced when dependencies are built.
