file(REMOVE_RECURSE
  "CMakeFiles/exp_sweep_test.dir/exp_sweep_test.cc.o"
  "CMakeFiles/exp_sweep_test.dir/exp_sweep_test.cc.o.d"
  "exp_sweep_test"
  "exp_sweep_test.pdb"
  "exp_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
