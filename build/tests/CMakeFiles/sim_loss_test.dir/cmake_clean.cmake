file(REMOVE_RECURSE
  "CMakeFiles/sim_loss_test.dir/sim_loss_test.cc.o"
  "CMakeFiles/sim_loss_test.dir/sim_loss_test.cc.o.d"
  "sim_loss_test"
  "sim_loss_test.pdb"
  "sim_loss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
