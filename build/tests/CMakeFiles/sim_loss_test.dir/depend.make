# Empty dependencies file for sim_loss_test.
# This may be replaced when dependencies are built.
