# Empty dependencies file for bench_emulab.
# This may be replaced when dependencies are built.
