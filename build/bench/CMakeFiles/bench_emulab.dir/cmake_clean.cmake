file(REMOVE_RECURSE
  "CMakeFiles/bench_emulab.dir/bench_emulab.cc.o"
  "CMakeFiles/bench_emulab.dir/bench_emulab.cc.o.d"
  "bench_emulab"
  "bench_emulab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emulab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
