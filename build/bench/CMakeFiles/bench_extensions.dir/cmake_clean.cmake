file(REMOVE_RECURSE
  "CMakeFiles/bench_extensions.dir/bench_extensions.cc.o"
  "CMakeFiles/bench_extensions.dir/bench_extensions.cc.o.d"
  "bench_extensions"
  "bench_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
