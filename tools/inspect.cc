// inspect.cc — axiomcc-inspect: flight-recording triage CLI.
//
// Reads back what the recorder wrote (recordings, post-mortems) or
// re-executes a `.scn` reproducer on both backends, and renders the result
// in the terminal. The headline mode is --align: step-align two timelines
// (fluid vs packet, or any two recording files) and localize the first
// divergence step with the surrounding events from each side.
//
// Usage:
//   axiomcc-inspect <recording.jsonl>           render the timeline
//   axiomcc-inspect <postmortem.jsonl>          render the post-mortem
//   axiomcc-inspect <repro.scn>                 run fluid+packet, show both
//   axiomcc-inspect --align <l.jsonl> <r.jsonl> align two recordings
//   axiomcc-inspect --align <repro.scn>         run fluid vs packet + align
//
// Options: --tolerance=R (sampled-value gap, default 0.25), --context=N
// (steps of events around the divergence), --with-cohort (compare batch
// execution-mode events too), --classes=<list> (restrict alignment to the
// named event classes — `--classes=metric` localizes the first divergent
// metric window instead of the first raw-lane gap), --stride=N / --depth=N
// (capture options for .scn runs), --scope-window=W (metric-scope window
// in steps for .scn runs; 0 disables the scope, default 64), --events=N
// (discrete-event lines rendered).
//
// Reproducer runs attach a streaming MetricScope, so timelines include the
// per-window axiom estimates (kMetric lanes) and --align localizes the
// first divergent metric window. Recordings carry the git SHA they were
// captured under; when two aligned recordings come from different SHAs the
// report is annotated with both, so captures from two checkouts of the
// repo can be diffed directly.
//
// Exit codes: 0 rendered / aligned, 2 aligned-and-diverged, 1 error.
#include <cstdio>
#include <exception>
#include <string>

#include "analysis/recorder_report.h"
#include "fuzz/fuzzer.h"
#include "fuzz/runner.h"
#include "ledger/provenance.h"
#include "recorder/align.h"
#include "recorder/io.h"
#include "recorder/postmortem.h"
#include "util/cli.h"

namespace {

using namespace axiomcc;

enum class FileKind { kScenario, kRecording, kPostMortem };

/// Sniffs a triage input by content, not extension: `.scn` reproducers
/// declare themselves with an "axiomcc-scenario" line (comments allowed
/// above it), recorder artifacts with a schema field in the JSONL header.
FileKind sniff(const std::string& text, const std::string& path) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("axiomcc-scenario", 0) == 0) return FileKind::kScenario;
    if (line.find("\"axiomcc-recording\"") != std::string::npos) {
      return FileKind::kRecording;
    }
    if (line.find("\"axiomcc-postmortem\"") != std::string::npos) {
      return FileKind::kPostMortem;
    }
    break;
  }
  throw std::runtime_error(path +
                           ": not a scenario, recording, or post-mortem");
}

recorder::AlignOptions align_options(const ArgParser& args) {
  recorder::AlignOptions options;
  options.tolerance = args.get_double("tolerance", options.tolerance);
  options.context = args.get_int("context", options.context);
  if (args.has("with-cohort")) {
    options.classes |= recorder::class_bit(recorder::EventClass::kCohort);
  }
  // --classes=metric asks the metric-view question alone: "where do the
  // backends' axiom estimates first disagree", skipping raw-lane gaps.
  if (const auto classes = args.get("classes")) {
    options.classes = recorder::parse_class_mask(classes->c_str());
  }
  return options;
}

fuzz::RunnerConfig runner_config(const ArgParser& args) {
  fuzz::RunnerConfig config;
  config.record.enabled = true;
  config.record.sample_stride = args.get_int("stride", 16);
  config.record.ring_depth = args.get_int("depth", 256);
  // Metric windows ride the recording as kMetric events; 0 turns the
  // scope off (e.g. to reproduce a pre-scope capture byte-for-byte).
  const long window = args.get_int("scope-window", 64);
  config.scope.enabled = window > 0;
  config.scope.window_steps = window;
  return config;
}

analysis::TimelineOptions timeline_options(const ArgParser& args) {
  analysis::TimelineOptions options;
  options.max_events = args.get_int("events", options.max_events);
  return options;
}

/// Runs a reproducer on both backends with recording on. Prints the
/// outcome line the fuzz oracle would classify it as.
fuzz::RecordedScenario run_reproducer(const std::string& text,
                                      const ArgParser& args) {
  const fuzz::ScenarioDesc desc = fuzz::parse_scenario(text);
  fuzz::RecordedScenario rs =
      fuzz::run_scenario_recorded(desc, runner_config(args));
  // Stamp provenance so a saved capture of this run can later be aligned
  // against one from another checkout.
  const std::string sha = ledger::current_provenance().git_sha;
  rs.fluid.git_sha = sha;
  rs.packet.git_sha = sha;
  std::printf("outcome: %s", fuzz::outcome_kind_name(rs.outcome.kind));
  if (rs.outcome.divergence > 0.0) {
    std::printf(" (metric divergence %.3f)", rs.outcome.divergence);
  }
  std::printf("\n");
  return rs;
}

/// A recording's SHA when it carries a usable one ("" otherwise).
std::string recorded_sha(const recorder::Recording& r) {
  if (r.git_sha.empty() || r.git_sha == "unknown") return "";
  return r.git_sha.substr(0, 12);
}

int align_and_render(const recorder::Recording& left,
                     const recorder::Recording& right,
                     const std::string& left_label,
                     const std::string& right_label, const ArgParser& args) {
  // Cross-SHA alignment: when the two recordings were captured under
  // different checkouts, say so up front and tag the side labels, so the
  // divergence report reads as "old code vs new code", not fluid-vs-packet.
  const std::string left_sha = recorded_sha(left);
  const std::string right_sha = recorded_sha(right);
  std::string ll = left_label;
  std::string rl = right_label;
  if (!left_sha.empty() && !right_sha.empty() && left_sha != right_sha) {
    std::printf("cross-SHA alignment: %s @%s vs %s @%s\n", left_label.c_str(),
                left_sha.c_str(), right_label.c_str(), right_sha.c_str());
    ll += "@" + left_sha;
    rl += "@" + right_sha;
  }
  const recorder::AlignResult result =
      recorder::align_recordings(left, right, align_options(args));
  std::fputs(analysis::render_alignment(result, ll, rl).c_str(), stdout);
  return result.diverged ? 2 : 0;
}

int run(const ArgParser& args) {
  const auto& files = args.positional();
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: axiomcc-inspect [--align] <file> [<file>]\n"
                 "       (see the header of tools/inspect.cc)\n");
    return 1;
  }

  if (args.has("align")) {
    if (files.size() == 2) {
      const recorder::Recording left =
          recorder::parse_recording_jsonl(recorder::read_text_file(files[0]));
      const recorder::Recording right =
          recorder::parse_recording_jsonl(recorder::read_text_file(files[1]));
      return align_and_render(left, right, files[0], files[1], args);
    }
    if (files.size() == 1) {
      const std::string text = recorder::read_text_file(files[0]);
      if (sniff(text, files[0]) != FileKind::kScenario) {
        std::fprintf(stderr,
                     "--align with one file needs a .scn reproducer; "
                     "pass two recording files to align artifacts\n");
        return 1;
      }
      if (!recorder::compiled_in()) {
        std::fprintf(stderr,
                     "recorder compiled out (AXIOMCC_RECORDER=OFF); "
                     "re-run against recording files instead\n");
        return 1;
      }
      const fuzz::RecordedScenario rs = run_reproducer(text, args);
      return align_and_render(rs.fluid, rs.packet, "fluid", "packet", args);
    }
    std::fprintf(stderr, "--align takes one .scn or two recording files\n");
    return 1;
  }

  int status = 0;
  for (const std::string& path : files) {
    const std::string text = recorder::read_text_file(path);
    switch (sniff(text, path)) {
      case FileKind::kScenario: {
        if (!recorder::compiled_in()) {
          std::fprintf(stderr,
                       "recorder compiled out (AXIOMCC_RECORDER=OFF); "
                       "cannot record a reproducer run\n");
          return 1;
        }
        const fuzz::RecordedScenario rs = run_reproducer(text, args);
        std::fputs(
            analysis::render_timeline(rs.fluid, timeline_options(args))
                .c_str(),
            stdout);
        std::fputs(
            analysis::render_timeline(rs.packet, timeline_options(args))
                .c_str(),
            stdout);
        const int rc =
            align_and_render(rs.fluid, rs.packet, "fluid", "packet", args);
        status = rc != 0 ? rc : status;
        break;
      }
      case FileKind::kRecording:
        std::fputs(
            analysis::render_timeline(recorder::parse_recording_jsonl(text),
                                      timeline_options(args))
                .c_str(),
            stdout);
        break;
      case FileKind::kPostMortem:
        std::fputs(
            analysis::render_postmortem(recorder::parse_postmortem_jsonl(text),
                                        timeline_options(args))
                .c_str(),
            stdout);
        break;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(ArgParser(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "axiomcc-inspect: %s\n", e.what());
    return 1;
  }
}
