// axiomcc-benchdiff — the regression sentinel's CLI.
//
// Compares bench runs recorded by the run ledger (--ledger on any bench
// binary) or raw BENCH_<name>.json artifacts, and reports per-metric deltas
// with noise-aware verdicts: deterministic telemetry counters must be
// byte-identical, workload counters must match exactly, and wall-clock
// timings are judged against a rolling median ± MAD band (window mode) or a
// relative threshold (two-record mode). Timings are skipped when the runs
// are not wall-clock comparable (different --jobs or build flavor), which
// is what keeps a same-SHA rerun at a different job count green.
//
// Usage:
//   axiomcc-benchdiff [--ledger[=path]] [--bench=NAME] [--window=8]
//                     [--threshold=0.20] [--mad-k=3] [--no-spark]
//   axiomcc-benchdiff --report [--ledger[=path]] [--bench=NAME] [--window=12]
//   axiomcc-benchdiff [options] BASELINE CURRENT
//
// Ledger mode (no positionals): loads the ledger (default
// <artifacts>/ledger.jsonl; --out / AXIOMCC_ARTIFACTS move <artifacts>),
// groups records by (bench, backend), and diffs each group's newest record
// against the window of prior runs. --bench restricts to one bench.
//
// Report mode (--report): instead of diffing, renders markdown trend
// tables across the whole ledger — one table per (bench, backend) group,
// newest value vs the rolling median plus a sparkline — ready to paste
// into a PR description. Always exits 0 (informational).
//
// Two-file mode: BASELINE and CURRENT are each either a BENCH_<name>.json
// artifact or a JSONL ledger (its last record — --bench filtered — is
// used).
//
// Exit codes: 0 clean, 1 any regression or deterministic mismatch,
// 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>
#include <functional>
#include <span>
#include <utility>

#include "analysis/ascii_plot.h"
#include "ledger/ledger.h"
#include "ledger/report.h"
#include "ledger/sentinel.h"
#include "util/cli.h"
#include "util/json.h"

using namespace axiomcc;

namespace {

/// Records loaded from one input file, any format.
std::vector<ledger::LedgerRecord> load_records(const std::string& path,
                                               const std::string& bench) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  std::vector<ledger::LedgerRecord> records;
  // The whole file parsing as one JSON document means a single record: a
  // BENCH_<name>.json artifact when "phases" is an array (the artifact
  // layout), a one-line ledger when it is an object. Otherwise treat the
  // file as multi-line JSONL.
  std::optional<ledger::LedgerRecord> single;
  try {
    const JsonValue doc = parse_json(content);
    const JsonValue* phases = doc.find("phases");
    single = (phases != nullptr && phases->is_array())
                 ? ledger::record_from_artifact(content)
                 : ledger::parse_record(content);
  } catch (const std::runtime_error&) {
    single = std::nullopt;
  }
  if (single) {
    records.push_back(std::move(*single));
  } else {
    const ledger::LedgerFile file = ledger::read_ledger(path);
    if (file.skipped_lines > 0) {
      std::fprintf(stderr, "[benchdiff] %s: skipped %zu unparseable line(s)\n",
                   path.c_str(), file.skipped_lines);
    }
    records = file.records;
  }
  if (!bench.empty()) {
    std::erase_if(records, [&bench](const ledger::LedgerRecord& r) {
      return r.bench != bench;
    });
  }
  return records;
}

int run(int argc, char** argv) {
  const ArgParser args(argc, argv);
  ledger::SentinelOptions options;
  options.timing_threshold = args.get_double("threshold", 0.20);
  options.mad_k = args.get_double("mad-k", 3.0);
  options.timing_floor_seconds = args.get_double("floor", 0.01);
  const long window_size = args.get_int("window", 8);
  const std::string bench_filter = args.get_or("bench", "");

  const auto spark = args.has("no-spark")
                         ? std::function<std::string(const std::vector<double>&)>()
                         : [](const std::vector<double>& values) {
                             return analysis::sparkline(values, 24);
                           };

  const auto& positional = args.positional();
  bool regression = false;
  bool compared_anything = false;

  if (args.has("report")) {
    if (!positional.empty()) {
      std::fprintf(stderr,
                   "usage: axiomcc-benchdiff --report [--ledger[=path]] "
                   "[--bench=NAME] [--window=12]\n");
      return 2;
    }
    const std::string path =
        args.ledger_path().value_or(args.artifacts_dir() + "/ledger.jsonl");
    const ledger::LedgerFile file = ledger::read_ledger(path);
    if (file.skipped_lines > 0) {
      std::fprintf(stderr, "[benchdiff] %s: skipped %zu unparseable line(s)\n",
                   path.c_str(), file.skipped_lines);
    }
    ledger::ReportOptions report_options;
    report_options.bench_filter = bench_filter;
    report_options.max_history = static_cast<std::size_t>(
        std::max(1L, args.get_int("window", 12)));
    std::fputs(
        ledger::render_ledger_report(file.records, report_options, spark)
            .c_str(),
        stdout);
    return 0;
  }

  if (positional.size() == 2) {
    // Two-file mode: last (filtered) record of each input.
    const auto baseline = load_records(positional[0], bench_filter);
    const auto current = load_records(positional[1], bench_filter);
    if (baseline.empty() || current.empty()) {
      std::fprintf(stderr, "error: no comparable records in %s\n",
                   (baseline.empty() ? positional[0] : positional[1]).c_str());
      return 2;
    }
    const ledger::DiffReport report =
        ledger::diff_records(baseline.back(), current.back(), options);
    std::fputs(ledger::render_report(report, spark).c_str(), stdout);
    return report.regression() ? 1 : 0;
  }
  if (!positional.empty()) {
    std::fprintf(stderr,
                 "usage: axiomcc-benchdiff [options] [BASELINE CURRENT]\n"
                 "       (exactly zero or two positional files)\n");
    return 2;
  }

  // Ledger mode.
  const std::string path =
      args.ledger_path().value_or(args.artifacts_dir() + "/ledger.jsonl");
  const ledger::LedgerFile file = ledger::read_ledger(path);
  if (file.skipped_lines > 0) {
    std::fprintf(stderr, "[benchdiff] %s: skipped %zu unparseable line(s)\n",
                 path.c_str(), file.skipped_lines);
  }

  std::map<std::pair<std::string, std::string>,
           std::vector<ledger::LedgerRecord>>
      groups;
  for (const ledger::LedgerRecord& record : file.records) {
    if (!bench_filter.empty() && record.bench != bench_filter) continue;
    groups[{record.bench, record.backend}].push_back(record);
  }
  if (groups.empty()) {
    std::fprintf(stderr, "error: no records%s%s in %s\n",
                 bench_filter.empty() ? "" : " for bench ",
                 bench_filter.c_str(), path.c_str());
    return 2;
  }

  for (const auto& [key, records] : groups) {
    if (records.size() < 2) {
      std::printf("=== benchdiff: %s — first recorded run (%s), nothing to "
                  "compare ===\n",
                  key.first.c_str(), records.back().timestamp_utc.c_str());
      continue;
    }
    compared_anything = true;
    const std::size_t prior = records.size() - 1;
    const std::size_t take = std::min(
        prior, static_cast<std::size_t>(window_size > 0 ? window_size : 1));
    const std::span<const ledger::LedgerRecord> window(
        records.data() + (prior - take), take);
    const ledger::DiffReport report =
        ledger::diff_against_window(window, records.back(), options);
    std::fputs(ledger::render_report(report, spark).c_str(), stdout);
    std::printf("\n");
    regression = regression || report.regression();
  }

  if (!compared_anything) return 0;  // a fresh ledger is not a failure
  return regression ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
