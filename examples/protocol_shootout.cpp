// protocol_shootout.cpp — evaluate an arbitrary list of protocols on the same
// link and print the 8-metric comparison, plus who survives the Pareto
// filter. This is the paper's core workflow: place protocols as points in the
// metric space and look at the frontier.
//
// Usage: protocol_shootout [--protocols=reno,cubic-linux,scalable,...]
//                          [--mbps=30] [--rtt-ms=42] [--buffer=100]
//                          [--senders=2] [--steps=4000] [--markdown]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "cc/registry.h"
#include "core/evaluator.h"
#include "core/pareto.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

// Comma-split that respects parentheses, so "aimd(1,0.5),reno" works.
std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || (csv[i] == ',' && depth == 0)) {
      if (i > start) out.push_back(csv.substr(start, i - start));
      start = i + 1;
    } else if (csv[i] == '(') {
      ++depth;
    } else if (csv[i] == ')') {
      --depth;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const auto specs = split_specs(args.get_or(
        "protocols",
        "reno,cubic-linux,scalable,bin(1,1,1,0),robust_aimd(1,0.8,0.01),pcc,"
        "vegas(2,4)"));

    core::EvalConfig cfg;
    cfg.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                     args.get_double("rtt-ms", 42.0),
                                     args.get_double("buffer", 100.0));
    cfg.num_senders = static_cast<int>(args.get_int("senders", 2));
    cfg.steps = args.get_int("steps", 4000);

    std::printf("=== protocol shootout: %zu protocols, %.0f Mbps / %.0f ms / "
                "%.0f MSS ===\n\n",
                specs.size(), args.get_double("mbps", 30.0),
                args.get_double("rtt-ms", 42.0), args.get_double("buffer", 100.0));

    std::vector<std::string> names;
    std::vector<core::MetricReport> reports;
    for (const auto& spec : specs) {
      const auto protocol = cc::make_protocol(spec);
      names.push_back(protocol->name());
      std::printf("evaluating %-28s ...\n", protocol->name().c_str());
      reports.push_back(core::evaluate_protocol(*protocol, cfg));
    }

    TextTable table;
    table.set_header({"protocol", "eff", "fast", "loss", "fair", "conv",
                      "robust", "friendly", "latency"});
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& m = reports[i];
      table.add_row({names[i], TextTable::num(m.efficiency, 3),
                     TextTable::num(m.fast_utilization, 2),
                     TextTable::num(m.loss_avoidance, 4),
                     TextTable::num(m.fairness, 3),
                     TextTable::num(m.convergence, 3),
                     TextTable::num(m.robustness, 4),
                     TextTable::num(m.tcp_friendliness, 3),
                     TextTable::num(m.latency_avoidance, 3)});
    }
    std::printf("\n%s\n", table.render(args.has("markdown")
                                           ? TextTable::Format::kMarkdown
                                           : TextTable::Format::kAscii)
                              .c_str());

    // Pareto filter over the oriented 8-D points.
    std::vector<std::vector<double>> points;
    for (const auto& r : reports) {
      const auto o = r.oriented();
      points.emplace_back(o.begin(), o.end());
    }
    const auto frontier = core::pareto_frontier_indices(points);
    std::printf("Pareto frontier (8-D, higher-better orientation):\n");
    for (std::size_t idx : frontier) {
      std::printf("  * %s\n", names[idx].c_str());
    }
    std::printf("dominated: %zu of %zu\n", names.size() - frontier.size(),
                names.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
