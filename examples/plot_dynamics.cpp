// plot_dynamics.cpp — watch congestion-control dynamics in the terminal:
// run protocols on the fluid link, plot the window sawtooth, and print the
// measured cycle structure next to the theory's predictions.
//
// Usage: plot_dynamics [--protocols=reno,cubic-linux] [--mbps=30]
//                      [--rtt-ms=42] [--buffer=100] [--steps=600]
//                      [--initial=1,60]
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "analysis/ascii_plot.h"
#include "analysis/dynamics.h"
#include "cc/registry.h"
#include "fluid/sim.h"
#include "util/cli.h"

using namespace axiomcc;

namespace {

std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || (csv[i] == ',' && depth == 0)) {
      if (i > start) out.push_back(csv.substr(start, i - start));
      start = i + 1;
    } else if (csv[i] == '(') {
      ++depth;
    } else if (csv[i] == ')') {
      --depth;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const auto specs = split_specs(args.get_or("protocols", "reno,reno"));
    const auto initials = split_specs(args.get_or("initial", "1,60"));

    fluid::SimOptions opt;
    opt.steps = args.get_int("steps", 600);
    fluid::FluidSimulation sim(
        fluid::make_link_mbps(args.get_double("mbps", 30.0),
                              args.get_double("rtt-ms", 42.0),
                              args.get_double("buffer", 100.0)),
        opt);

    for (std::size_t i = 0; i < specs.size(); ++i) {
      const double initial =
          i < initials.size() ? std::stod(initials[i]) : 1.0;
      sim.add_sender(*cc::make_protocol(specs[i]), initial);
    }
    const fluid::Trace trace = sim.run();

    analysis::PlotOptions plot_opts;
    plot_opts.title = "congestion windows (MSS) over " +
                      std::to_string(opt.steps) + " RTT steps";
    std::printf("%s\n", analysis::plot_windows(trace, plot_opts).c_str());

    for (int i = 0; i < trace.num_senders(); ++i) {
      const auto tail = trace.windows(i).subspan(trace.num_steps() / 2);
      const analysis::CycleStats stats = analysis::analyze_cycles(tail);
      if (stats.cycles == 0) {
        std::printf("sender %d: no limit cycle detected in the tail\n", i);
        continue;
      }
      std::printf(
          "sender %d: %zu cycles | period %.1f steps | peak %.1f | "
          "trough/peak %.3f\n",
          i, stats.cycles, stats.mean_period, stats.mean_peak,
          stats.mean_decrease_ratio);
    }
    std::printf("\n(AIMD theory: trough/peak = b, period = (1-b)·peak/a "
                "steps — docs/THEORY.md)\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
