// packet_sim_trace.cpp — run flows on the packet-level dumbbell and dump the
// per-monitor-interval evolution (time, window, loss, RTT) of one flow, plus
// end-of-run flow reports.
//
// Usage: packet_sim_trace [--protocol=reno[,cubic-linux,...]] [--mbps=20]
//                         [--rtt-ms=42] [--buffer=50] [--duration=20]
//                         [--watch=0] [--loss=0] [--csv] [--dump=trace.csv]
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/trace_io.h"
#include "cc/registry.h"
#include "sim/dumbbell.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || (csv[i] == ',' && depth == 0)) {
      if (i > start) out.push_back(csv.substr(start, i - start));
      start = i + 1;
    } else if (csv[i] == '(') {
      ++depth;
    } else if (csv[i] == ')') {
      --depth;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);

    sim::DumbbellConfig cfg;
    cfg.bottleneck_mbps = args.get_double("mbps", 20.0);
    cfg.rtt_ms = args.get_double("rtt-ms", 42.0);
    cfg.buffer_packets = static_cast<std::size_t>(args.get_int("buffer", 50));
    cfg.duration_seconds = args.get_double("duration", 20.0);
    cfg.random_loss_rate = args.get_double("loss", 0.0);

    sim::DumbbellExperiment exp(cfg);
    const auto specs = split_specs(args.get_or("protocol", "reno,reno"));
    for (const auto& spec : specs) {
      exp.add_flow(cc::make_protocol(spec));
    }
    exp.run();

    const int watch = static_cast<int>(args.get_int("watch", 0));
    std::printf("=== %zu flows over %.0f Mbps / %.0f ms / %zu-pkt buffer "
                "(capacity %.1f MSS) ===\n\n",
                specs.size(), cfg.bottleneck_mbps, cfg.rtt_ms,
                cfg.buffer_packets, exp.capacity_mss());

    TextTable trace;
    trace.set_header({"t (s)", "window (MSS)", "loss", "rtt (ms)", "sent",
                      "acked"});
    for (const auto& rec : exp.sender(watch).history()) {
      if (!rec.evaluated) continue;
      trace.add_row({TextTable::num(rec.start.seconds(), 2),
                     TextTable::num(rec.window, 1),
                     TextTable::num(rec.loss_rate, 4),
                     TextTable::num(rec.rtt_seconds * 1e3, 1),
                     std::to_string(rec.sent), std::to_string(rec.acked)});
    }
    std::printf("--- flow %d (%s) monitor intervals ---\n%s\n", watch,
                exp.sender(watch).protocol().name().c_str(),
                trace
                    .render(args.has("csv") ? TextTable::Format::kCsv
                                            : TextTable::Format::kAscii)
                    .c_str());

    TextTable reports;
    reports.set_header({"flow", "protocol", "avg window", "throughput (Mbps)",
                        "loss", "avg rtt (ms)"});
    int flow_id = 0;
    for (const auto& r : exp.flow_reports()) {
      reports.add_row({std::to_string(flow_id++), r.protocol_name,
                       TextTable::num(r.avg_window_mss, 1),
                       TextTable::num(r.throughput_mbps, 2),
                       TextTable::num(r.loss_rate, 4),
                       TextTable::num(r.avg_rtt_ms, 1)});
    }
    std::printf("--- flow reports (tail of run) ---\n%s", reports.render().c_str());
    std::printf("bottleneck utilization: %.1f%%, events processed: %zu\n",
                exp.bottleneck_utilization() * 100.0,
                exp.simulator().events_processed());

    if (const auto dump = args.get("dump")) {
      analysis::write_trace_csv_file(exp.trace(), *dump);
      std::printf("sampled window trace written to %s\n", dump->c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
