// feasibility_check.cpp — ask the axiomatic framework for a protocol with
// given metric guarantees; get back a concrete protocol or a theorem.
//
// Examples:
//   feasibility_check --min-efficiency=0.9 --min-friendliness=0.5
//   feasibility_check --min-robustness=0.01 --min-friendliness=0.04
//   feasibility_check --min-fast=2 --min-efficiency=0.9 --min-friendliness=1
//     (provably infeasible by Theorem 2)
//
// Flags (all optional): --min-efficiency --min-fast --max-loss
// --min-fairness --min-convergence --min-robustness --min-friendliness
// --max-latency, plus --mbps/--rtt-ms/--buffer/--steps for the scenario.
#include <cstdio>
#include <exception>

#include "core/feasibility.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);

    core::FeasibilityQuery query;
    const auto bind = [&](const char* flag, std::optional<double>& field) {
      if (args.has(flag)) field = args.get_double(flag, 0.0);
    };
    bind("min-efficiency", query.min_efficiency);
    bind("min-fast", query.min_fast_utilization);
    bind("max-loss", query.max_loss);
    bind("min-fairness", query.min_fairness);
    bind("min-convergence", query.min_convergence);
    bind("min-robustness", query.min_robustness);
    bind("min-friendliness", query.min_tcp_friendliness);
    bind("max-latency", query.max_latency);

    core::EvalConfig cfg;
    cfg.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                     args.get_double("rtt-ms", 42.0),
                                     args.get_double("buffer", 100.0));
    cfg.steps = args.get_int("steps", 3000);

    std::printf("query: %s\n", query.describe().c_str());
    std::printf("searching %zu candidate protocol instances...\n\n",
                core::feasibility_candidates().size());

    const core::FeasibilityResult result = core::resolve(query, cfg);
    switch (result.status) {
      case core::Feasibility::kProvablyInfeasible:
        std::printf("PROVABLY INFEASIBLE.\n%s\n", result.certificate.c_str());
        return 0;
      case core::Feasibility::kNoWitnessFound:
        std::printf("no witness found among %d candidates (not provably "
                    "impossible — the feasibility region's boundary may lie "
                    "between grid points).\n",
                    result.candidates_evaluated);
        return 0;
      case core::Feasibility::kFeasible:
        break;
    }

    std::printf("FEASIBLE — witness: %s (after %d evaluations)\n\n",
                result.witness_spec.c_str(), result.candidates_evaluated);
    TextTable table;
    table.set_header({"axiom", "witness score"});
    for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
      const auto m = static_cast<core::Metric>(i);
      table.add_row({core::metric_name(m),
                     TextTable::num(result.witness_scores.get(m), 4)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
