// metric_sweep.cpp — bulk evaluation: protocols × link shapes → CSV.
//
// The data generator behind "where does each protocol sit in the metric
// space as the network varies?" — feed the CSV to any plotting tool.
//
// Usage: metric_sweep [--protocols=reno,cubic-linux,scalable]
//                     [--bandwidths=20,30,60,100] [--rtts=42]
//                     [--buffers=10,100] [--steps=3000] [--out=sweep.csv]
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "util/cli.h"

using namespace axiomcc;

namespace {

std::vector<std::string> split_specs(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i == csv.size() || (csv[i] == ',' && depth == 0)) {
      if (i > start) out.push_back(csv.substr(start, i - start));
      start = i + 1;
    } else if (csv[i] == '(') {
      ++depth;
    } else if (csv[i] == ')') {
      --depth;
    }
  }
  return out;
}

std::vector<double> split_numbers(const std::string& csv) {
  std::vector<double> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) out.push_back(std::stod(token));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);

    const auto specs =
        split_specs(args.get_or("protocols", "reno,cubic-linux,scalable,"
                                             "robust_aimd(1,0.8,0.01),bbr"));
    exp::LinkGrid grid;
    if (args.has("bandwidths")) {
      grid.bandwidths_mbps = split_numbers(args.get_or("bandwidths", ""));
    }
    if (args.has("rtts")) grid.rtts_ms = split_numbers(args.get_or("rtts", ""));
    if (args.has("buffers")) {
      grid.buffers_mss = split_numbers(args.get_or("buffers", ""));
    }

    core::EvalConfig base;
    base.steps = args.get_int("steps", 3000);

    std::fprintf(stderr, "sweeping %zu protocols over %zu link shapes...\n",
                 specs.size(), grid.size());
    const auto rows = exp::run_metric_sweep(specs, grid, base);

    if (const auto out_path = args.get("out")) {
      std::ofstream out(*out_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path->c_str());
        return 1;
      }
      exp::write_sweep_csv(rows, out);
      std::fprintf(stderr, "%zu rows written to %s\n", rows.size(),
                   out_path->c_str());
    } else {
      exp::write_sweep_csv(rows, std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
