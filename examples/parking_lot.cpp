// parking_lot.cpp — network-wide protocol interaction (the paper's Section 6
// future work): the classic parking-lot topology on both substrates.
//
// One long flow crosses k identical bottlenecks; each bottleneck also
// carries one short cross-flow. Prints the long flow's share of a short
// flow's for k = 1..max, for a chosen protocol, on the fluid network and on
// the packet-level multi-hop simulator.
//
// Usage: parking_lot [--protocol=robust_aimd(1,0.5,0.01)] [--max-hops=4]
//                    [--mbps=20] [--steps=3000] [--duration=20]
#include <cstdio>
#include <exception>

#include "cc/registry.h"
#include "fluid/network.h"
#include "sim/network.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const std::string spec = args.get_or("protocol", "robust_aimd(1,0.5,0.01)");
    const int max_hops = static_cast<int>(args.get_int("max-hops", 4));
    const double mbps = args.get_double("mbps", 20.0);
    const auto prototype = cc::make_protocol(spec);

    std::printf("=== parking lot: %s over 1..%d bottlenecks ===\n\n",
                prototype->name().c_str(), max_hops);

    TextTable table;
    table.set_header({"bottlenecks", "fluid long/short ratio",
                      "packet long/short ratio"});
    for (int k = 1; k <= max_hops; ++k) {
      // Fluid network.
      fluid::NetworkOptions opt;
      opt.steps = args.get_int("steps", 3000);
      fluid::ParkingLot fluid_lot = fluid::make_parking_lot(
          fluid::make_link_mbps(mbps, 40.0, 20.0), k, *prototype, opt);
      const fluid::Trace trace = fluid_lot.network.run();
      double fluid_short = 0.0;
      for (int f : fluid_lot.short_flows) {
        fluid_short += mean_of(tail_view(trace.windows(f), 0.5));
      }
      fluid_short /= static_cast<double>(fluid_lot.short_flows.size());
      const double fluid_ratio =
          mean_of(tail_view(trace.windows(fluid_lot.long_flow), 0.5)) /
          fluid_short;

      // Packet-level network.
      sim::MultiHopNetwork::Config cfg;
      cfg.duration_seconds = args.get_double("duration", 20.0);
      sim::PacketParkingLot packet_lot = sim::make_packet_parking_lot(
          mbps, 10.0, 25, k, *prototype, cfg);
      packet_lot.network->run();
      double packet_short = 0.0;
      for (int f : packet_lot.short_flows) {
        packet_short += packet_lot.network->flow_throughput_mbps(f);
      }
      packet_short /= static_cast<double>(packet_lot.short_flows.size());
      const double packet_ratio =
          packet_lot.network->flow_throughput_mbps(packet_lot.long_flow) /
          packet_short;

      table.add_row({std::to_string(k), TextTable::num(fluid_ratio, 3),
                     TextTable::num(packet_ratio, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Crossing more bottlenecks exposes a flow to composed loss; how hard\n"
        "that bites depends on the protocol's loss response (try "
        "--protocol=reno\nvs --protocol=\"robust_aimd(1,0.5,0.01)\" on the "
        "fluid side).\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
