// pareto_explorer.cpp — sweep a protocol family's parameter grid, measure
// each instance's metric point, and extract the Pareto frontier (Section 5.2
// as an interactive tool). Defaults to the AIMD family; supports Robust-AIMD
// sweeps over (b, eps) too.
//
// Usage: pareto_explorer [--family=aimd|robust_aimd] [--mbps=30] [--rtt-ms=42]
//                        [--buffer=100] [--steps=3000] [--markdown]
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "cc/aimd.h"
#include "cc/robust_aimd.h"
#include "core/evaluator.h"
#include "core/pareto.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

namespace {

struct Candidate {
  std::unique_ptr<cc::Protocol> protocol;
  core::MetricReport report;
};

std::vector<Candidate> sweep_aimd(const core::EvalConfig& cfg) {
  std::vector<Candidate> out;
  for (double a : {0.5, 1.0, 2.0, 4.0}) {
    for (double b : {0.3, 0.5, 0.7, 0.9}) {
      Candidate c;
      c.protocol = std::make_unique<cc::Aimd>(a, b);
      c.report = core::evaluate_protocol(*c.protocol, cfg);
      out.push_back(std::move(c));
    }
  }
  return out;
}

std::vector<Candidate> sweep_robust_aimd(const core::EvalConfig& cfg) {
  std::vector<Candidate> out;
  for (double b : {0.5, 0.7, 0.8}) {
    for (double eps : {0.005, 0.01, 0.02, 0.05}) {
      Candidate c;
      c.protocol = std::make_unique<cc::RobustAimd>(1.0, b, eps);
      c.report = core::evaluate_protocol(*c.protocol, cfg);
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    core::EvalConfig cfg;
    cfg.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                     args.get_double("rtt-ms", 42.0),
                                     args.get_double("buffer", 100.0));
    cfg.steps = args.get_int("steps", 3000);

    const std::string family = args.get_or("family", "aimd");
    std::printf("=== Pareto exploration of the %s family ===\n", family.c_str());
    std::printf("(evaluating the parameter grid; ~1s)\n\n");

    std::vector<Candidate> candidates;
    if (family == "aimd") {
      candidates = sweep_aimd(cfg);
    } else if (family == "robust_aimd") {
      candidates = sweep_robust_aimd(cfg);
    } else {
      std::fprintf(stderr, "unknown --family=%s (aimd | robust_aimd)\n",
                   family.c_str());
      return 1;
    }

    std::vector<std::vector<double>> points;
    for (const auto& c : candidates) {
      const auto o = c.report.oriented();
      points.emplace_back(o.begin(), o.end());
    }
    const auto frontier = core::pareto_frontier_indices(points);
    std::vector<bool> on_frontier(candidates.size(), false);
    for (std::size_t idx : frontier) on_frontier[idx] = true;

    TextTable table;
    table.set_header({"protocol", "eff", "fast", "loss", "conv", "robust",
                      "friendly", "on frontier"});
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto& m = candidates[i].report;
      table.add_row({candidates[i].protocol->name(),
                     TextTable::num(m.efficiency, 3),
                     TextTable::num(m.fast_utilization, 2),
                     TextTable::num(m.loss_avoidance, 4),
                     TextTable::num(m.convergence, 3),
                     TextTable::num(m.robustness, 4),
                     TextTable::num(m.tcp_friendliness, 3),
                     on_frontier[i] ? "*" : ""});
    }
    std::printf("%s\n", table.render(args.has("markdown")
                                         ? TextTable::Format::kMarkdown
                                         : TextTable::Format::kAscii)
                            .c_str());
    std::printf("%zu of %zu instances are Pareto-optimal in the 8-metric "
                "space.\n",
                frontier.size(), candidates.size());
    std::printf("The frontier is where protocol DESIGN should live "
                "(paper, Section 5.2).\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
