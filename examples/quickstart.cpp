// quickstart.cpp — the five-minute tour of the axiomatic framework.
//
// Evaluates TCP Reno (AIMD(1,0.5)) on the paper's default setting (30 Mbps,
// 42 ms RTT, 100-MSS buffer, 2 senders) and prints its scores in all eight
// axioms, next to Table 1's theoretical predictions.
//
// Usage: quickstart [--protocol=aimd(1,0.5)] [--mbps=30] [--rtt-ms=42]
//                   [--buffer=100] [--senders=2] [--steps=4000]
#include <cstdio>
#include <exception>

#include "cc/registry.h"
#include "core/evaluator.h"
#include "exp/table1.h"
#include "util/cli.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const std::string spec = args.get_or("protocol", "aimd(1,0.5)");
    const auto protocol = cc::make_protocol(spec);

    core::EvalConfig cfg;
    cfg.link = fluid::make_link_mbps(args.get_double("mbps", 30.0),
                                     args.get_double("rtt-ms", 42.0),
                                     args.get_double("buffer", 100.0));
    cfg.num_senders = static_cast<int>(args.get_int("senders", 2));
    cfg.steps = args.get_int("steps", 4000);

    std::printf("Evaluating %s on a %.0f Mbps / %.0f ms RTT / %.0f MSS "
                "buffer link with %d senders...\n\n",
                protocol->name().c_str(), args.get_double("mbps", 30.0),
                args.get_double("rtt-ms", 42.0), args.get_double("buffer", 100.0),
                cfg.num_senders);

    const core::MetricReport measured = core::evaluate_protocol(*protocol, cfg);

    TextTable table;
    table.set_header({"axiom", "score", "orientation"});
    const auto add = [&](core::Metric m) {
      table.add_row({core::metric_name(m), TextTable::num(measured.get(m), 4),
                     core::lower_is_better(m) ? "lower is better"
                                              : "higher is better"});
    };
    for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
      add(static_cast<core::Metric>(i));
    }
    std::printf("%s\n", table.render().c_str());

    std::printf(
        "Interpretation: the protocol utilizes at least %.0f%% of capacity,\n"
        "keeps loss under %.2f%%, gives every sender at least %.0f%% of any\n"
        "other's share, and tolerates up to %.2f%% non-congestion loss.\n",
        measured.efficiency * 100.0, measured.loss_avoidance * 100.0,
        measured.fairness * 100.0, measured.robustness * 100.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
