// robust_aimd_under_loss.cpp — the paper's Metric VI motivation as a demo:
// a sender on a clean-but-lossy path (e.g. wireless corruption) under TCP
// Reno vs Robust-AIMD vs PCC. Runs both the fluid model and the packet-level
// simulator so the substrates can be compared side by side.
//
// Usage: robust_aimd_under_loss [--loss=0.008] [--mbps=20] [--rtt-ms=42]
//                               [--duration=30] [--steps=2000]
#include <cstdio>
#include <exception>
#include <memory>
#include <vector>

#include "cc/presets.h"
#include "fluid/loss_model.h"
#include "fluid/sim.h"
#include "sim/dumbbell.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"

using namespace axiomcc;

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const double loss = args.get_double("loss", 0.008);
    const double mbps = args.get_double("mbps", 20.0);
    const double rtt_ms = args.get_double("rtt-ms", 42.0);

    std::printf("=== non-congestion loss demo: %.2f%% random loss on a "
                "%.0f Mbps path ===\n\n",
                loss * 100.0, mbps);

    const auto contenders = [] {
      std::vector<std::unique_ptr<cc::Protocol>> out;
      out.push_back(cc::presets::reno());
      out.push_back(cc::presets::robust_aimd_table2());
      out.push_back(cc::presets::pcc());
      return out;
    }();

    // --- fluid model: lone sender, effectively infinite capacity ---
    std::printf("--- fluid model (lone sender, infinite capacity, constant "
                "loss rate) ---\n");
    TextTable fluid_table;
    fluid_table.set_header({"protocol", "final window (MSS)",
                            "tail-average window"});
    for (const auto& proto : contenders) {
      fluid::LinkParams link = fluid::make_link_mbps(mbps, rtt_ms, 100.0);
      link.bandwidth = Bandwidth::from_mss_per_sec(1e15);
      link.buffer_mss = 1e15;
      fluid::SimOptions opt;
      opt.steps = args.get_int("steps", 2000);
      fluid::FluidSimulation sim(link, opt);
      sim.add_sender(*proto, 2.0);
      sim.set_loss_injector(std::make_unique<fluid::ConstantLoss>(loss));
      const fluid::Trace trace = sim.run();
      fluid_table.add_row(
          {proto->name(), TextTable::num(trace.windows(0).back(), 1),
           TextTable::num(mean_of(tail_view(trace.windows(0), 0.5)), 1)});
    }
    std::printf("%s\n", fluid_table.render().c_str());

    // --- packet-level: dumbbell with a Bernoulli loss channel ---
    std::printf("--- packet-level simulator (dumbbell + Bernoulli loss "
                "channel) ---\n");
    TextTable packet_table;
    packet_table.set_header(
        {"protocol", "throughput (Mbps)", "link utilization"});
    for (const auto& proto : contenders) {
      sim::DumbbellConfig cfg;
      cfg.bottleneck_mbps = mbps;
      cfg.rtt_ms = rtt_ms;
      cfg.buffer_packets = 100;
      cfg.duration_seconds = args.get_double("duration", 30.0);
      cfg.random_loss_rate = loss;
      sim::DumbbellExperiment exp(cfg);
      exp.add_flow(proto->clone());
      exp.run();
      packet_table.add_row(
          {proto->name(),
           TextTable::num(exp.flow_reports()[0].throughput_mbps, 2),
           TextTable::num(exp.bottleneck_utilization(), 3)});
    }
    std::printf("%s\n", packet_table.render().c_str());

    std::printf(
        "Reading: Reno treats every loss as congestion and collapses; \n"
        "Robust-AIMD tolerates loss below its eps=1%% threshold and PCC "
        "below its\n~5%% utility knee, so both keep the pipe full (paper "
        "Sections 3 and 5.2).\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
