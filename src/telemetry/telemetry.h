// telemetry.h — the instrumentation surface.
//
// Hot paths use the TELEMETRY_* macros below, never the registry directly.
// Two gates stack:
//
//   * Compile time: building with -DAXIOMCC_TELEMETRY_DISABLED (CMake option
//     AXIOMCC_TELEMETRY=OFF) expands every macro to ((void)0) — zero code,
//     zero data, behavior byte-comparable to an uninstrumented build. Probe
//     arguments must therefore be side-effect free: they are NOT evaluated
//     in that configuration.
//   * Run time: telemetry is off unless set_enabled(true) (benches flip it
//     on under --telemetry). A disabled probe costs one relaxed atomic load
//     and a predicted branch.
//
// Metric handles resolve once into a function-local static on the first
// enabled hit, so the registry mutex is off the steady-state path entirely.
#pragma once

#include <optional>

#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace axiomcc::telemetry {

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// Whether probes record anything right now.
[[nodiscard]] inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Whether this binary was built with telemetry probes compiled in.
[[nodiscard]] constexpr bool compiled_in() {
#ifdef AXIOMCC_TELEMETRY_DISABLED
  return false;
#else
  return true;
#endif
}

#ifndef AXIOMCC_TELEMETRY_DISABLED

/// RAII helper backing TELEMETRY_SCOPED_TIMER_US: records the enclosing
/// scope's wall time, in microseconds, into `histogram`.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram)
      : histogram_(histogram), start_us_(Tracer::global().now_us()) {}

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

  ~ScopedHistogramTimer() {
    histogram_.record(
        static_cast<double>(Tracer::global().now_us() - start_us_));
  }

 private:
  Histogram& histogram_;
  std::int64_t start_us_;
};

#endif  // !AXIOMCC_TELEMETRY_DISABLED

}  // namespace axiomcc::telemetry

#define AXIOMCC_TELEMETRY_CONCAT_INNER(a, b) a##b
#define AXIOMCC_TELEMETRY_CONCAT(a, b) AXIOMCC_TELEMETRY_CONCAT_INNER(a, b)

#ifndef AXIOMCC_TELEMETRY_DISABLED

/// Adds `delta` to the deterministic counter `name` (a string literal).
/// Deterministic counters must land on identical values at any --jobs level.
#define TELEMETRY_COUNT(name, delta)                                     \
  do {                                                                   \
    if (::axiomcc::telemetry::enabled()) {                               \
      static ::axiomcc::telemetry::Counter& axiomcc_telemetry_counter =  \
          ::axiomcc::telemetry::Registry::global().counter(              \
              (name), ::axiomcc::telemetry::Stability::kDeterministic);  \
      axiomcc_telemetry_counter.add(delta);                              \
    }                                                                    \
  } while (false)

/// Adds `delta` to the schedule-dependent counter `name` (steals, spins —
/// anything whose value depends on thread interleaving).
#define TELEMETRY_COUNT_SCHED(name, delta)                                  \
  do {                                                                      \
    if (::axiomcc::telemetry::enabled()) {                                  \
      static ::axiomcc::telemetry::Counter& axiomcc_telemetry_counter =     \
          ::axiomcc::telemetry::Registry::global().counter(                 \
              (name), ::axiomcc::telemetry::Stability::kScheduleDependent); \
      axiomcc_telemetry_counter.add(delta);                                 \
    }                                                                       \
  } while (false)

/// Adds `delta` (signed) to the gauge `name`.
#define TELEMETRY_GAUGE_ADD(name, delta)                              \
  do {                                                                \
    if (::axiomcc::telemetry::enabled()) {                            \
      static ::axiomcc::telemetry::Gauge& axiomcc_telemetry_gauge =   \
          ::axiomcc::telemetry::Registry::global().gauge((name));     \
      axiomcc_telemetry_gauge.add(delta);                             \
    }                                                                 \
  } while (false)

/// Records `value` into the histogram `name` with the given bucket bounds
/// (an expression yielding const std::vector<double>&).
#define TELEMETRY_HISTOGRAM_RECORD(name, bounds, value)                 \
  do {                                                                  \
    if (::axiomcc::telemetry::enabled()) {                              \
      static ::axiomcc::telemetry::Histogram& axiomcc_telemetry_hist =  \
          ::axiomcc::telemetry::Registry::global().histogram((name),    \
                                                            (bounds));  \
      axiomcc_telemetry_hist.record(value);                             \
    }                                                                   \
  } while (false)

/// Times the rest of the enclosing scope into the µs-latency histogram
/// `name` (default exponential bounds). No-op when telemetry is disabled at
/// runtime — the optional holds nothing.
#define TELEMETRY_SCOPED_TIMER_US(name)                                      \
  std::optional<::axiomcc::telemetry::ScopedHistogramTimer>                  \
      AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_timer_, __LINE__);          \
  if (::axiomcc::telemetry::enabled()) {                                     \
    static ::axiomcc::telemetry::Histogram& AXIOMCC_TELEMETRY_CONCAT(        \
        axiomcc_telemetry_timer_hist_, __LINE__) =                           \
        ::axiomcc::telemetry::Registry::global().latency_histogram((name));  \
    AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_timer_, __LINE__)             \
        .emplace(AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_timer_hist_,     \
                                          __LINE__));                        \
  }

/// RAII span over the rest of the enclosing scope. `category` and `name`
/// are string literals.
#define TELEMETRY_SPAN(category, name)                                \
  std::optional<::axiomcc::telemetry::ScopedSpan>                     \
      AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_span_, __LINE__);    \
  if (::axiomcc::telemetry::enabled()) {                              \
    AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_span_, __LINE__)       \
        .emplace((category), std::string(name));                      \
  }

/// Like TELEMETRY_SPAN but `label_expr` (any expression convertible to
/// std::string) is evaluated only when telemetry is enabled — use for
/// per-cell labels built with string concatenation.
#define TELEMETRY_SPAN_DYN(category, label_expr)                      \
  std::optional<::axiomcc::telemetry::ScopedSpan>                     \
      AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_span_, __LINE__);    \
  if (::axiomcc::telemetry::enabled()) {                              \
    AXIOMCC_TELEMETRY_CONCAT(axiomcc_telemetry_span_, __LINE__)       \
        .emplace((category), std::string(label_expr));                \
  }

#else  // AXIOMCC_TELEMETRY_DISABLED

#define TELEMETRY_COUNT(name, delta) ((void)0)
#define TELEMETRY_COUNT_SCHED(name, delta) ((void)0)
#define TELEMETRY_GAUGE_ADD(name, delta) ((void)0)
#define TELEMETRY_HISTOGRAM_RECORD(name, bounds, value) ((void)0)
#define TELEMETRY_SCOPED_TIMER_US(name) ((void)0)
#define TELEMETRY_SPAN(category, name) ((void)0)
#define TELEMETRY_SPAN_DYN(category, label_expr) ((void)0)

#endif  // AXIOMCC_TELEMETRY_DISABLED
