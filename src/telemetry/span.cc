#include "telemetry/span.h"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "util/json.h"

namespace axiomcc::telemetry {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

std::int64_t Tracer::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

detail::SpanRing& Tracer::this_thread_ring() {
  thread_local detail::SpanRing* ring = nullptr;
  if (ring == nullptr) {
    const std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::make_unique<detail::SpanRing>(
        kRingCapacity, static_cast<int>(rings_.size())));
    ring = rings_.back().get();
  }
  return *ring;
}

void Tracer::record(std::string category, std::string name,
                    std::int64_t start_us, std::int64_t duration_us) {
  detail::SpanRing& ring = this_thread_ring();
  const std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.size == ring.events.size()) ++ring.dropped;
  SpanEvent& slot = ring.events[ring.head];
  slot.category = std::move(category);
  slot.name = std::move(name);
  slot.thread_id = ring.thread_id;
  slot.start_us = start_us;
  slot.duration_us = duration_us;
  ring.head = (ring.head + 1) % ring.events.size();
  if (ring.size < ring.events.size()) ++ring.size;
}

std::vector<SpanEvent> Tracer::collect() const {
  std::vector<SpanEvent> out;
  const std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> lock(ring->mutex);
    const std::size_t cap = ring->events.size();
    const std::size_t oldest = (ring->head + cap - ring->size) % cap;
    for (std::size_t i = 0; i < ring->size; ++i) {
      out.push_back(ring->events[(oldest + i) % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

void Tracer::reset() {
  const std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> lock(ring->mutex);
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

SpanToken begin_span() { return SpanToken{Tracer::global().now_us()}; }

void end_span(const SpanToken& token, std::string category, std::string name) {
  Tracer& tracer = Tracer::global();
  tracer.record(std::move(category), std::move(name), token.start_us,
                tracer.now_us() - token.start_us);
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"axiomcc\"}}";
  for (const SpanEvent& e : events) {
    out += ",{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":";
    append_json_string(out, e.category);
    out += ",\"ph\":\"X\",\"ts\":";
    out += std::to_string(e.start_us);
    out += ",\"dur\":";
    out += std::to_string(e.duration_us);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.thread_id);
    out += "}";
  }
  out += "]}\n";
  std::ofstream file(path);
  if (!file) return false;
  file << out;
  return static_cast<bool>(file);
}

std::vector<SpanEvent> parse_chrome_trace(const std::string& text) {
  const JsonValue doc = parse_json(text);
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("trace document has no traceEvents array");
  }
  std::vector<SpanEvent> out;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    SpanEvent span;
    if (const JsonValue* v = e.find("name")) span.name = v->string;
    if (const JsonValue* v = e.find("cat")) span.category = v->string;
    if (const JsonValue* v = e.find("tid")) {
      span.thread_id = static_cast<int>(v->number);
    }
    if (const JsonValue* v = e.find("ts")) {
      span.start_us = static_cast<std::int64_t>(v->number);
    }
    if (const JsonValue* v = e.find("dur")) {
      span.duration_us = static_cast<std::int64_t>(v->number);
    }
    out.push_back(std::move(span));
  }
  return out;
}

}  // namespace axiomcc::telemetry
