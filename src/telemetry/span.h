// span.h — trace spans with Chrome trace-event JSON export.
//
// A span is one timed interval on one thread: category, name, start, and
// duration in microseconds relative to the tracer's epoch. Spans land in
// per-thread ring buffers (fixed capacity, oldest-dropped) so recording from
// inside the task pool never allocates and never contends across threads;
// each buffer is guarded by its own mutex, uncontended except during a
// collect(). Export is the Chrome trace-event "complete event" (ph:"X")
// format, loadable in chrome://tracing and https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace axiomcc::telemetry {

struct SpanEvent {
  std::string category;
  std::string name;
  int thread_id = 0;        ///< Small per-thread index, not an OS tid.
  std::int64_t start_us = 0;  ///< Relative to Tracer epoch (process start).
  std::int64_t duration_us = 0;
};

namespace detail {

/// Fixed-capacity per-thread span store. Oldest events are overwritten when
/// full; `dropped` counts the overwrites.
struct SpanRing {
  SpanRing(std::size_t capacity, int thread_id_in)
      : thread_id(thread_id_in), events(capacity) {}

  int thread_id = 0;  ///< Registration order; doubles as the trace tid.
  std::mutex mutex;
  std::vector<SpanEvent> events;
  std::size_t head = 0;  ///< Next write slot.
  std::size_t size = 0;
  std::uint64_t dropped = 0;
};

}  // namespace detail

/// Process-wide span store. Threads register a ring lazily on first record;
/// rings live for the process lifetime (threads are pooled, not churned).
class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 1 << 14;  ///< Per thread.

  [[nodiscard]] static Tracer& global();

  /// Microseconds since this tracer's epoch (first use in the process).
  [[nodiscard]] std::int64_t now_us() const;

  /// Records one completed span on the calling thread's ring.
  void record(std::string category, std::string name, std::int64_t start_us,
              std::int64_t duration_us);

  /// All recorded spans, merged across threads, sorted by start time.
  [[nodiscard]] std::vector<SpanEvent> collect() const;

  /// Total spans overwritten because a ring filled up.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Discards all recorded spans (rings stay registered).
  void reset();

 private:
  Tracer();

  detail::SpanRing& this_thread_ring();

  std::int64_t epoch_ns_ = 0;
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<detail::SpanRing>> rings_;
};

/// RAII span: records [construction, destruction) on the calling thread.
/// `category` and `name` must outlive the scope (string literals in
/// practice); the strings are copied only at destruction.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, std::string name)
      : category_(category),
        name_(std::move(name)),
        start_us_(Tracer::global().now_us()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    Tracer& tracer = Tracer::global();
    tracer.record(category_, std::move(name_), start_us_,
                  tracer.now_us() - start_us_);
  }

 private:
  const char* category_;
  std::string name_;
  std::int64_t start_us_;
};

/// Explicit begin/end for spans that cross scopes (async work). The token is
/// plain data; end_span may run on a different thread than begin_span (the
/// span is attributed to the ending thread's ring).
struct SpanToken {
  std::int64_t start_us = 0;
};

[[nodiscard]] SpanToken begin_span();
void end_span(const SpanToken& token, std::string category, std::string name);

/// Writes `events` (plus process metadata) as Chrome trace-event JSON to
/// `path`. Returns false if the file could not be opened.
bool write_chrome_trace(const std::string& path,
                        const std::vector<SpanEvent>& events);

/// Parses a Chrome trace-event JSON document (as written by
/// write_chrome_trace) back into spans; throws std::runtime_error on
/// malformed input. Metadata events (ph != "X") are skipped.
[[nodiscard]] std::vector<SpanEvent> parse_chrome_trace(
    const std::string& text);

}  // namespace axiomcc::telemetry
