// metrics.h — the process-wide metrics registry.
//
// Counters, gauges, and fixed-bucket histograms for the hot paths (task
// pool, fluid tick loop, guarded stress runner, experiment fan-outs). Every
// metric is sharded into per-thread cells — an instrumented hot path does a
// relaxed fetch_add on a cache line no other thread touches — and the shards
// are summed only when a snapshot is taken. Telemetry is off by default
// (telemetry.h's macros check `enabled()` first), so uninstrumented runs pay
// one predicted branch per probe.
//
// Determinism contract: every counter is registered with a Stability tag.
// kDeterministic counters count simulation *content* (ticks, loss events,
// cells, faults) and must land on identical values at any --jobs level;
// RegistrySnapshot::deterministic_json() renders exactly those, sorted by
// name, so two snapshots of the same workload are byte-comparable.
// kScheduleDependent metrics (steals, queue depth, latency histograms)
// describe the *execution*, vary run to run, and render in a separate block.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace axiomcc::telemetry {

/// Whether a metric's value is a pure function of the workload
/// (kDeterministic) or of thread scheduling (kScheduleDependent).
enum class Stability : int { kDeterministic = 0, kScheduleDependent = 1 };

/// Number of per-thread cells per metric. Threads beyond this share cells
/// round-robin — values stay exact (the cells are atomic), only contention
/// rises. 32 comfortably covers TaskPool's 1024-worker cap in practice.
inline constexpr int kMaxShards = 32;

namespace detail {

/// Shard index of the calling thread (assigned round-robin on first use).
[[nodiscard]] int this_thread_shard();

/// One cache line per cell so concurrent writers never false-share.
struct alignas(64) Cell {
  std::atomic<std::int64_t> value{0};
};

/// Lock-free min/max tracking for histogram tails.
inline void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic (in intent) event counter. add() is wait-free on the calling
/// thread's shard; value() sums the shards (approximate only while writers
/// are mid-add — exact once the instrumented work has joined).
class Counter {
 public:
  explicit Counter(Stability stability) : stability_(stability) {}

  void add(std::int64_t delta) {
    shards_[detail::this_thread_shard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const {
    std::int64_t sum = 0;
    for (const detail::Cell& cell : shards_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  [[nodiscard]] Stability stability() const { return stability_; }

  void reset() {
    for (detail::Cell& cell : shards_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<detail::Cell, kMaxShards> shards_;
  Stability stability_;
};

/// Up/down level indicator (queue depth, in-flight cells). Implemented as a
/// sharded sum of signed deltas; always schedule-dependent.
class Gauge {
 public:
  void add(std::int64_t delta) {
    shards_[detail::this_thread_shard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t value() const {
    std::int64_t sum = 0;
    for (const detail::Cell& cell : shards_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() {
    for (detail::Cell& cell : shards_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::array<detail::Cell, kMaxShards> shards_;
};

/// Fixed-bucket histogram. `upper_bounds` are ascending, upper-inclusive
/// bucket edges (value v lands in the first bucket with v <= bound); values
/// above the last bound land in an implicit overflow bucket. Bucket counts
/// are sharded like counters; sum/min/max are tracked exactly so quantile
/// summaries can clamp interpolation to the observed range.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value);

  /// Aggregated view (bucket_counts has upper_bounds.size() + 1 entries;
  /// the final entry is the overflow bucket).
  struct Data {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  [[nodiscard]] Data data() const;

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }

  void reset();

 private:
  std::vector<double> bounds_;
  /// counts_[bucket * kMaxShards + shard].
  std::vector<detail::Cell> counts_;
  std::array<std::atomic<double>, kMaxShards> sums_;
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Exponential µs buckets 1, 2, 4, ..., ~8.4s — the default latency scale
/// for per-task and per-tick timings.
[[nodiscard]] const std::vector<double>& default_latency_bounds_us();

struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
  Stability stability = Stability::kDeterministic;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  Histogram::Data data;

  /// Quantile estimate (p in [0,100]) via util/stats.h histogram_quantile:
  /// linear interpolation inside the containing bucket, clamped to the
  /// exact observed [min, max]. NaN when the histogram is empty.
  [[nodiscard]] double quantile(double p) const;
};

/// Point-in-time aggregation of every registered metric, sorted by name.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Only the kDeterministic counters, as a flat sorted JSON object —
  /// byte-identical for the same workload at any --jobs level.
  [[nodiscard]] std::string deterministic_json() const;

  /// The full snapshot: {"counters": {...deterministic...},
  /// "scheduling": {"counters": {...}, "gauges": {...}},
  /// "histograms": {name: {count,sum,min,max,mean,p50,p90,p99}}}.
  [[nodiscard]] std::string to_json() const;
};

/// The process-wide registry. Registration (the `counter`/`gauge`/
/// `histogram` lookups) takes a mutex; the returned references are stable
/// for the process lifetime, so instrumentation sites resolve them once
/// into a function-local static and never touch the lock again.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  /// Registers (or looks up) a counter. Re-registration must agree on
  /// `stability`.
  Counter& counter(const std::string& name, Stability stability);

  Gauge& gauge(const std::string& name);

  /// Registers (or looks up) a histogram. Re-registration must agree on
  /// the bucket bounds.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds);

  /// histogram(name, default_latency_bounds_us()).
  Histogram& latency_histogram(const std::string& name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zeroes every value; registrations (names, bounds) are kept.
  void reset_values();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace axiomcc::telemetry
