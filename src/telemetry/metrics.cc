#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/json.h"
#include "util/stats.h"

namespace axiomcc::telemetry {

namespace detail {

int this_thread_shard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
  return shard;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_((bounds_.size() + 1) * kMaxShards),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  AXIOMCC_EXPECTS(!bounds_.empty());
  AXIOMCC_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (const double b : bounds_) AXIOMCC_EXPECTS(std::isfinite(b));
  for (std::atomic<double>& sum : sums_) {
    sum.store(0.0, std::memory_order_relaxed);
  }
}

void Histogram::record(double value) {
  if (!std::isfinite(value)) return;  // non-finite timings carry no signal
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  const int shard = detail::this_thread_shard();
  counts_[bucket * kMaxShards + static_cast<std::size_t>(shard)]
      .value.fetch_add(1, std::memory_order_relaxed);
  double cur = sums_[shard].load(std::memory_order_relaxed);
  while (!sums_[shard].compare_exchange_weak(cur, cur + value,
                                             std::memory_order_relaxed)) {
  }
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

Histogram::Data Histogram::data() const {
  Data out;
  out.upper_bounds = bounds_;
  out.bucket_counts.resize(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < out.bucket_counts.size(); ++b) {
    std::uint64_t count = 0;
    for (int s = 0; s < kMaxShards; ++s) {
      count += static_cast<std::uint64_t>(
          counts_[b * kMaxShards + static_cast<std::size_t>(s)].value.load(
              std::memory_order_relaxed));
    }
    out.bucket_counts[b] = count;
    out.count += count;
  }
  for (const std::atomic<double>& sum : sums_) {
    out.sum += sum.load(std::memory_order_relaxed);
  }
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (detail::Cell& cell : counts_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (std::atomic<double>& sum : sums_) {
    sum.store(0.0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> bounds = [] {
    std::vector<double> out;
    for (double b = 1.0; b <= 8.5e6; b *= 2.0) out.push_back(b);
    return out;
  }();
  return bounds;
}

double HistogramSnapshot::quantile(double p) const {
  return histogram_quantile(data.upper_bounds, data.bucket_counts, data.min,
                            data.max, p);
}

namespace {

void append_i64(std::string& out, std::int64_t v) {
  out += std::to_string(v);
}

/// {"name": value, ...} over (name, int64) pairs, already sorted by name.
template <typename Range, typename ValueOf>
void append_flat_object(std::string& out, const Range& range,
                        ValueOf&& value_of) {
  out.push_back('{');
  bool first = true;
  for (const auto& entry : range) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, entry.name);
    out.push_back(':');
    append_i64(out, value_of(entry));
  }
  out.push_back('}');
}

}  // namespace

std::string RegistrySnapshot::deterministic_json() const {
  std::vector<CounterSnapshot> det;
  for (const CounterSnapshot& c : counters) {
    if (c.stability == Stability::kDeterministic) det.push_back(c);
  }
  std::string out;
  append_flat_object(out, det,
                     [](const CounterSnapshot& c) { return c.value; });
  return out;
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\"counters\":";
  out += deterministic_json();

  out += ",\"scheduling\":{\"counters\":";
  std::vector<CounterSnapshot> sched;
  for (const CounterSnapshot& c : counters) {
    if (c.stability == Stability::kScheduleDependent) sched.push_back(c);
  }
  append_flat_object(out, sched,
                     [](const CounterSnapshot& c) { return c.value; });
  out += ",\"gauges\":";
  append_flat_object(out, gauges,
                     [](const GaugeSnapshot& g) { return g.value; });
  out += "}";

  out += ",\"histograms\":{";
  bool first = true;
  for (const HistogramSnapshot& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, h.name);
    out += ":{\"count\":";
    append_i64(out, static_cast<std::int64_t>(h.data.count));
    out += ",\"sum\":";
    append_json_number(out, h.data.count > 0 ? h.data.sum : 0.0);
    out += ",\"min\":";
    append_json_number(out, h.data.count > 0 ? h.data.min : 0.0);
    out += ",\"max\":";
    append_json_number(out, h.data.count > 0 ? h.data.max : 0.0);
    out += ",\"mean\":";
    append_json_number(
        out, h.data.count > 0 ? h.data.sum / static_cast<double>(h.data.count)
                              : 0.0);
    for (const auto& [label, p] :
         {std::pair<const char*, double>{"p50", 50.0},
          {"p90", 90.0},
          {"p99", 99.0}}) {
      out += ",\"";
      out += label;
      out += "\":";
      append_json_number(out, h.data.count > 0 ? h.quantile(p) : 0.0);
    }
    out += "}";
  }
  out += "}}";
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name, Stability stability) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(stability)).first;
  } else {
    AXIOMCC_EXPECTS_MSG(it->second->stability() == stability,
                        "counter " + name +
                            " re-registered with a different stability tag");
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(upper_bounds))
             .first;
  } else {
    AXIOMCC_EXPECTS_MSG(it->second->upper_bounds() == upper_bounds,
                        "histogram " + name +
                            " re-registered with different bucket bounds");
  }
  return *it->second;
}

Histogram& Registry::latency_histogram(const std::string& name) {
  return histogram(name, default_latency_bounds_us());
}

RegistrySnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(
        CounterSnapshot{name, counter->value(), counter->stability()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSnapshot{name, gauge->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.push_back(HistogramSnapshot{name, histogram->data()});
  }
  return snap;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [_, counter] : counters_) counter->reset();
  for (const auto& [_, gauge] : gauges_) gauge->reset();
  for (const auto& [_, histogram] : histograms_) histogram->reset();
}

}  // namespace axiomcc::telemetry
