// perturbation.h — composable, deterministically-seeded fault scenarios.
//
// The paper's Metric VI is the only axiom that stresses a protocol under
// adverse conditions; real paths fault in far richer ways — outages, link
// flaps, capacity oscillation, loss storms, RTT inflation, flow churn. This
// module packages those faults as reusable perturbation schedules that
// compose onto the hooks the simulators already expose: fluid-side
// FluidSimulation::set_bandwidth_schedule / set_rtt_schedule /
// set_loss_injector and per-sender start/stop steps; packet-side
// sim::PacketFilter wrappers and SimLink rate retargeting. Every stochastic
// element takes an explicit seed, so a scenario is a pure function of
// (parameters, seed) and gauntlet scorecards are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "engine/scenario.h"
#include "fluid/loss_model.h"
#include "fluid/sim.h"
#include "sim/event.h"
#include "sim/link.h"
#include "sim/loss.h"
#include "util/rng.h"

namespace axiomcc::stress {

/// A per-step multiplicative scale factor (applied to bandwidth or RTT).
using StepSchedule = std::function<double(long)>;

/// The identity schedule: scale ≡ `scale`.
[[nodiscard]] StepSchedule constant_schedule(double scale = 1.0);

/// Link outage: scale drops to `residual` (≈0; must stay positive for the
/// fluid model) on steps [start, start+duration), then restores to 1.
[[nodiscard]] StepSchedule outage_schedule(long start, long duration,
                                           double residual = 1e-3);

/// Square-wave oscillation: `high` for the first half of each period,
/// `low` for the second half. With a small `low` this is a link flap.
[[nodiscard]] StepSchedule square_wave_schedule(long period, double high,
                                                double low, long phase = 0);

/// Sawtooth oscillation: ramps linearly from `low` to `high` over each
/// period, then snaps back (repeated capacity build-up and collapse).
[[nodiscard]] StepSchedule sawtooth_schedule(long period, double low,
                                             double high);

/// Step change: `before` on steps < at, `after` from step `at` onwards
/// (e.g. a persistent RTT inflation after a path change).
[[nodiscard]] StepSchedule step_change_schedule(long at, double before,
                                                double after);

/// Pointwise product of two schedules (compose an outage onto a sawtooth…).
[[nodiscard]] StepSchedule compose_schedules(StepSchedule a, StepSchedule b);

/// Gilbert-Elliott channel parameters for a loss-storm episode.
struct StormParams {
  double p_good_to_bad = 0.2;
  double p_bad_to_good = 0.3;
  double good_rate = 0.0;
  double bad_rate = 0.3;
};

/// Time-windowed Gilbert-Elliott loss: the two-state channel runs only on
/// steps in [start, end); outside the window no loss is injected and no
/// randomness is consumed, so storms compose deterministically.
class LossStorm final : public fluid::LossInjector {
 public:
  LossStorm(long start_step, long end_step, const StormParams& params,
            std::uint64_t seed);

  double sample(long step, int sender) override;

  /// Full-state copy (RNG and channel state), like the base injectors.
  [[nodiscard]] std::unique_ptr<fluid::LossInjector> clone() const override {
    return std::make_unique<LossStorm>(*this);
  }

 private:
  long start_;
  long end_;
  StormParams params_;
  Rng rng_;
  bool in_bad_state_ = false;
};

/// One churned flow: joins at `start_step`, leaves at `stop_step`
/// (negative → stays until the end of the run).
struct ChurnSlot {
  long start_step = 0;
  long stop_step = -1;
  double initial_window_mss = 1.0;
};

/// Flows joining and leaving mid-run, on top of the base senders.
struct SenderChurnSchedule {
  std::vector<ChurnSlot> slots;

  [[nodiscard]] bool empty() const { return slots.empty(); }
};

/// A named, self-describing bundle of perturbations. Unset members perturb
/// nothing, so scenarios stay composable: a Scenario is just "which hooks to
/// install". `perturb_start`/`perturb_end` mark the main disturbance window
/// for scoring (recovery time is measured from `perturb_end`); -1 means the
/// perturbation spans the whole run (or there is none).
struct Scenario {
  std::string name;
  StepSchedule bandwidth_scale;  ///< nullable.
  StepSchedule rtt_scale;        ///< nullable.
  /// Builds the scenario's loss injector from a run seed; nullable.
  std::function<std::unique_ptr<fluid::LossInjector>(std::uint64_t)>
      loss_factory;
  SenderChurnSchedule churn;  ///< empty → no churned flows.
  long perturb_start = -1;
  long perturb_end = -1;
};

/// Installs every perturbation of `s` onto a configured simulation: the
/// schedules, the loss injector (seeded from `seed`), and one extra sender
/// per churn slot, cloned from `churn_prototype`.
void apply_scenario(const Scenario& s, fluid::FluidSimulation& sim,
                    const cc::Protocol& churn_prototype, std::uint64_t seed);

/// Backend-neutral variant: installs the perturbations onto a ScenarioSpec
/// (schedules, loss factory, the run seed, one churn sender slot per churn
/// slot). `churn_prototype` is referenced, not cloned — it must outlive the
/// backend run, like every other slot prototype.
void apply_scenario(const Scenario& s, engine::ScenarioSpec& spec,
                    const cc::Protocol& churn_prototype, std::uint64_t seed);

/// The standard adversarial scenario library for a run of `steps` steps:
/// baseline, deep outage, link flap, square-wave oscillation, sawtooth,
/// loss storm, RTT inflation step, and flow churn.
[[nodiscard]] std::vector<Scenario> standard_gauntlet(long steps);

// --- Packet-level counterparts -------------------------------------------

/// Applies `inner` only while the simulator clock is in [start, end);
/// outside the window every packet passes. Drops are counted on this
/// filter as well as the inner one.
class WindowedPacketFilter final : public sim::PacketFilter {
 public:
  WindowedPacketFilter(const sim::Simulator& sim, SimTime start, SimTime end,
                       std::unique_ptr<sim::PacketFilter> inner);

  bool drop(const sim::Packet& p) override;

 private:
  const sim::Simulator& sim_;
  SimTime start_;
  SimTime end_;
  std::unique_ptr<sim::PacketFilter> inner_;
};

/// Schedules `link.set_rate_bps(base_rate × scale(k))` at time k·interval
/// for k = 0..steps-1: the packet-level counterpart of the fluid bandwidth
/// schedules (drive both with the same StepSchedule for matched scenarios).
/// `link` must outlive the simulation run.
void schedule_link_rate(sim::Simulator& simulator, sim::SimLink& link,
                        StepSchedule scale, SimTime interval, long steps);

}  // namespace axiomcc::stress
