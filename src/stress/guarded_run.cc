#include "stress/guarded_run.h"

#include <cmath>
#include <sstream>

#include "engine/topology.h"
#include "engine/workload.h"
#include "recorder/postmortem.h"
#include "telemetry/telemetry.h"

namespace axiomcc::stress {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "ok";
    case FaultKind::kNonFiniteWindow: return "non_finite_window";
    case FaultKind::kNegativeWindow: return "negative_window";
    case FaultKind::kAggregateBlowup: return "aggregate_blowup";
    case FaultKind::kQueueGrowth: return "queue_growth";
    case FaultKind::kStepBudget: return "step_budget";
    case FaultKind::kContractViolation: return "contract_violation";
    case FaultKind::kException: return "exception";
    case FaultKind::kNonFiniteScore: return "non_finite_score";
  }
  return "unknown";
}

namespace {

/// The guard's step monitor: watches every step for invariant violations and
/// records the first one in `fault` (which must outlive the run). Shared by
/// the fluid-specific and the backend-generic runners — the monitor shape is
/// identical on both sides of the engine. When `sink` is non-null the
/// monitor also narrates itself into the flight recorder: a sampled kCheck
/// on the run lane (a = aggregate window) and a kTrip on the offending
/// sender's lane (a = offending value, b = FaultKind) the moment it fires.
engine::StepMonitor make_guard_monitor(FaultReport& fault,
                                       const GuardConfig& config,
                                       double capacity,
                                       recorder::Recorder* sink) {
  return [&fault, config, capacity, sink](long step,
                                          std::span<const double> windows,
                                          double /*rtt_seconds*/,
                                          double /*congestion_loss*/) {
    ++fault.steps_observed;
    const bool record = sink != nullptr &&
                        sink->wants(recorder::EventClass::kGuard);
    const auto trip = [&](FaultKind kind, int sender, double value,
                          const std::string& why) {
      fault.kind = kind;
      fault.step = step;
      fault.sender = sender;
      fault.detail = why;
      TELEMETRY_COUNT("stress.invariant_trips", 1);
      if (record) {
        recorder::Event ev;
        ev.step = step;
        ev.cls = recorder::EventClass::kGuard;
        ev.code = recorder::EventCode::kTrip;
        ev.subject_kind = sender >= 0 ? recorder::Subject::kSender
                                      : recorder::Subject::kRun;
        ev.subject = sender;
        ev.a = value;
        ev.b = static_cast<double>(kind);
        sink->emit(ev);
      }
      return false;  // stop the run
    };

    if (step >= config.step_budget) {
      return trip(FaultKind::kStepBudget, -1, static_cast<double>(step),
                  "step budget " + std::to_string(config.step_budget) +
                      " exhausted");
    }

    double total = 0.0;
    for (int i = 0; i < static_cast<int>(windows.size()); ++i) {
      const double w = windows[i];
      if (!std::isfinite(w)) {
        std::ostringstream os;
        os << "window of sender " << i << " is " << w;
        return trip(FaultKind::kNonFiniteWindow, i, w, os.str());
      }
      if (w < 0.0) {
        std::ostringstream os;
        os << "window of sender " << i << " is " << w;
        return trip(FaultKind::kNegativeWindow, i, w, os.str());
      }
      if (w > config.max_window_mss) {
        std::ostringstream os;
        os << "window of sender " << i << " is " << w << " > bound "
           << config.max_window_mss;
        return trip(FaultKind::kAggregateBlowup, i, w, os.str());
      }
      total += w;
    }
    if (total > config.max_aggregate_window_mss) {
      std::ostringstream os;
      os << "aggregate window " << total << " > bound "
         << config.max_aggregate_window_mss;
      return trip(FaultKind::kAggregateBlowup, -1, total, os.str());
    }
    if (config.max_queue_mss > 0.0 && total - capacity > config.max_queue_mss) {
      std::ostringstream os;
      os << "standing queue " << (total - capacity) << " MSS > bound "
         << config.max_queue_mss;
      return trip(FaultKind::kQueueGrowth, -1, total - capacity, os.str());
    }
    if (record && sink->sample_due(step)) {
      recorder::Event ev;
      ev.step = step;
      ev.cls = recorder::EventClass::kGuard;
      ev.code = recorder::EventCode::kCheck;
      ev.a = total;
      sink->emit(ev);
    }
    return true;
  };
}

/// Dumps a fault post-mortem next to the other artifacts when the config
/// asks for one and the spec carried a recorder. Dump failure (an I/O
/// error) is swallowed — the guard's contract is to report the simulation
/// fault, not to trade it for a filesystem one.
std::string maybe_dump_postmortem(recorder::Recorder* sink,
                                  const GuardConfig& config,
                                  const FaultReport& fault) {
  if (fault.ok() || config.postmortem_dir.empty() || sink == nullptr ||
      !recorder::compiled_in()) {
    return {};
  }
  recorder::PostMortem pm;
  pm.kind = "fault";
  pm.title = config.postmortem_label;
  recorder::PostMortemSide side;
  side.recording = sink->snapshot();
  side.label =
      side.recording.backend.empty() ? "run" : side.recording.backend;
  side.fault_kind = fault_kind_name(fault.kind);
  side.fault_step = fault.step;
  side.fault_sender = fault.sender;
  side.detail = fault.detail;
  pm.sides.push_back(std::move(side));
  try {
    return recorder::write_postmortem(config.postmortem_dir,
                                      config.postmortem_label, pm);
  } catch (const std::exception&) {
    TELEMETRY_COUNT("stress.postmortem_write_failures", 1);
    return {};
  }
}

void check_guard_config(const GuardConfig& config) {
  AXIOMCC_EXPECTS(config.max_window_mss > 0.0);
  AXIOMCC_EXPECTS(config.max_aggregate_window_mss >= config.max_window_mss);
  AXIOMCC_EXPECTS(config.step_budget > 0);
}

}  // namespace

GuardedResult run_guarded(fluid::FluidSimulation& sim,
                          const GuardConfig& config) {
  check_guard_config(config);

  FaultReport fault;
  sim.set_step_monitor(make_guard_monitor(fault, config,
                                          sim.link().capacity_mss(),
                                          sim.options().record_sink));

  const int n = sim.num_senders() > 0 ? sim.num_senders() : 1;
  recorder::Recorder* const sink = sim.options().record_sink;
  TELEMETRY_SPAN("stress", "guarded_run");
  TELEMETRY_COUNT("stress.guard_runs", 1);
  try {
    fluid::Trace trace = sim.run();
    TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
    std::string pm = maybe_dump_postmortem(sink, config, fault);
    return GuardedResult{std::move(trace), std::move(fault), std::move(pm)};
  } catch (const ContractViolation& e) {
    fault.kind = FaultKind::kContractViolation;
    fault.detail = e.what();
  } catch (const std::exception& e) {
    fault.kind = FaultKind::kException;
    fault.detail = e.what();
  }
  TELEMETRY_COUNT("stress.guard_exceptions", 1);
  TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
  // The in-progress trace died with the exception; return an empty stand-in
  // so downstream scoring sees zero steps rather than garbage.
  std::string pm = maybe_dump_postmortem(sink, config, fault);
  return GuardedResult{
      fluid::Trace(n, sim.link().capacity_mss(),
                   sim.link().min_rtt().value()),
      std::move(fault), std::move(pm)};
}

GuardedResult run_guarded(const engine::SimBackend& backend,
                          engine::ScenarioSpec spec,
                          const GuardConfig& config) {
  check_guard_config(config);
  AXIOMCC_EXPECTS_MSG(spec.step_monitor == nullptr,
                      "the guard owns the spec's step monitor");

  FaultReport fault;
  // Topology-aware capacity: the binding (minimum) link capacity, the same
  // convention the routed substrates use for their traces.
  const double capacity_mss = engine::scenario_capacity_mss(spec);
  const double min_rtt_s = engine::scenario_min_rtt_seconds(spec);
  spec.step_monitor =
      make_guard_monitor(fault, config, capacity_mss, spec.record_sink);

  // The exception-fallback trace must match the sender population the
  // backend would have produced (workloads expand the slot list).
  long n = 0;
  if (spec.workload.empty()) {
    n = spec.total_senders();
  } else {
    try {
      for (const engine::SenderSlot& s : engine::expand_workload(spec)) {
        n += s.count;
      }
    } catch (const std::exception&) {
      n = spec.total_senders();
    }
  }
  if (n <= 0) n = 1;
  TELEMETRY_SPAN("stress", "guarded_run");
  TELEMETRY_COUNT("stress.guard_runs", 1);
  try {
    engine::RunTrace rt = backend.run(spec);
    TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
    std::string pm = maybe_dump_postmortem(spec.record_sink, config, fault);
    return GuardedResult{std::move(rt.trace), std::move(fault), std::move(pm)};
  } catch (const ContractViolation& e) {
    fault.kind = FaultKind::kContractViolation;
    fault.detail = e.what();
  } catch (const std::exception& e) {
    fault.kind = FaultKind::kException;
    fault.detail = e.what();
  }
  TELEMETRY_COUNT("stress.guard_exceptions", 1);
  TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
  std::string pm = maybe_dump_postmortem(spec.record_sink, config, fault);
  return GuardedResult{
      fluid::Trace(static_cast<int>(n), capacity_mss, min_rtt_s),
      std::move(fault), std::move(pm)};
}

}  // namespace axiomcc::stress
