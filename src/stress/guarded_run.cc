#include "stress/guarded_run.h"

#include <cmath>
#include <sstream>

#include "telemetry/telemetry.h"

namespace axiomcc::stress {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "ok";
    case FaultKind::kNonFiniteWindow: return "non_finite_window";
    case FaultKind::kNegativeWindow: return "negative_window";
    case FaultKind::kAggregateBlowup: return "aggregate_blowup";
    case FaultKind::kQueueGrowth: return "queue_growth";
    case FaultKind::kStepBudget: return "step_budget";
    case FaultKind::kContractViolation: return "contract_violation";
    case FaultKind::kException: return "exception";
    case FaultKind::kNonFiniteScore: return "non_finite_score";
  }
  return "unknown";
}

namespace {

/// The guard's step monitor: watches every step for invariant violations and
/// records the first one in `fault` (which must outlive the run). Shared by
/// the fluid-specific and the backend-generic runners — the monitor shape is
/// identical on both sides of the engine.
engine::StepMonitor make_guard_monitor(FaultReport& fault,
                                       const GuardConfig& config,
                                       double capacity) {
  return [&fault, config, capacity](long step, std::span<const double> windows,
                                    double /*rtt_seconds*/,
                                    double /*congestion_loss*/) {
    ++fault.steps_observed;
    const auto trip = [&](FaultKind kind, int sender, const std::string& why) {
      fault.kind = kind;
      fault.step = step;
      fault.sender = sender;
      fault.detail = why;
      TELEMETRY_COUNT("stress.invariant_trips", 1);
      return false;  // stop the run
    };

    if (step >= config.step_budget) {
      return trip(FaultKind::kStepBudget, -1,
                  "step budget " + std::to_string(config.step_budget) +
                      " exhausted");
    }

    double total = 0.0;
    for (int i = 0; i < static_cast<int>(windows.size()); ++i) {
      const double w = windows[i];
      if (!std::isfinite(w)) {
        std::ostringstream os;
        os << "window of sender " << i << " is " << w;
        return trip(FaultKind::kNonFiniteWindow, i, os.str());
      }
      if (w < 0.0) {
        std::ostringstream os;
        os << "window of sender " << i << " is " << w;
        return trip(FaultKind::kNegativeWindow, i, os.str());
      }
      if (w > config.max_window_mss) {
        std::ostringstream os;
        os << "window of sender " << i << " is " << w << " > bound "
           << config.max_window_mss;
        return trip(FaultKind::kAggregateBlowup, i, os.str());
      }
      total += w;
    }
    if (total > config.max_aggregate_window_mss) {
      std::ostringstream os;
      os << "aggregate window " << total << " > bound "
         << config.max_aggregate_window_mss;
      return trip(FaultKind::kAggregateBlowup, -1, os.str());
    }
    if (config.max_queue_mss > 0.0 && total - capacity > config.max_queue_mss) {
      std::ostringstream os;
      os << "standing queue " << (total - capacity) << " MSS > bound "
         << config.max_queue_mss;
      return trip(FaultKind::kQueueGrowth, -1, os.str());
    }
    return true;
  };
}

void check_guard_config(const GuardConfig& config) {
  AXIOMCC_EXPECTS(config.max_window_mss > 0.0);
  AXIOMCC_EXPECTS(config.max_aggregate_window_mss >= config.max_window_mss);
  AXIOMCC_EXPECTS(config.step_budget > 0);
}

}  // namespace

GuardedResult run_guarded(fluid::FluidSimulation& sim,
                          const GuardConfig& config) {
  check_guard_config(config);

  FaultReport fault;
  sim.set_step_monitor(
      make_guard_monitor(fault, config, sim.link().capacity_mss()));

  const int n = sim.num_senders() > 0 ? sim.num_senders() : 1;
  TELEMETRY_SPAN("stress", "guarded_run");
  TELEMETRY_COUNT("stress.guard_runs", 1);
  try {
    fluid::Trace trace = sim.run();
    TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
    return GuardedResult{std::move(trace), std::move(fault)};
  } catch (const ContractViolation& e) {
    fault.kind = FaultKind::kContractViolation;
    fault.detail = e.what();
  } catch (const std::exception& e) {
    fault.kind = FaultKind::kException;
    fault.detail = e.what();
  }
  TELEMETRY_COUNT("stress.guard_exceptions", 1);
  TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
  // The in-progress trace died with the exception; return an empty stand-in
  // so downstream scoring sees zero steps rather than garbage.
  return GuardedResult{
      fluid::Trace(n, sim.link().capacity_mss(),
                   sim.link().min_rtt().value()),
      std::move(fault)};
}

GuardedResult run_guarded(const engine::SimBackend& backend,
                          engine::ScenarioSpec spec,
                          const GuardConfig& config) {
  check_guard_config(config);
  AXIOMCC_EXPECTS_MSG(spec.step_monitor == nullptr,
                      "the guard owns the spec's step monitor");

  FaultReport fault;
  const fluid::FluidLink link(spec.link);
  spec.step_monitor = make_guard_monitor(fault, config, link.capacity_mss());

  const int n =
      spec.senders.empty() ? 1 : static_cast<int>(spec.senders.size());
  TELEMETRY_SPAN("stress", "guarded_run");
  TELEMETRY_COUNT("stress.guard_runs", 1);
  try {
    engine::RunTrace rt = backend.run(spec);
    TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
    return GuardedResult{std::move(rt.trace), std::move(fault)};
  } catch (const ContractViolation& e) {
    fault.kind = FaultKind::kContractViolation;
    fault.detail = e.what();
  } catch (const std::exception& e) {
    fault.kind = FaultKind::kException;
    fault.detail = e.what();
  }
  TELEMETRY_COUNT("stress.guard_exceptions", 1);
  TELEMETRY_COUNT("stress.guard_steps", fault.steps_observed);
  return GuardedResult{
      fluid::Trace(n, link.capacity_mss(), link.min_rtt().value()),
      std::move(fault)};
}

}  // namespace axiomcc::stress
