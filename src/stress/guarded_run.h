// guarded_run.h — runs a simulation under invariant monitors.
//
// A stress sweep multiplies protocols × scenarios × seeds; one pathological
// cell must degrade gracefully instead of killing the whole matrix. The
// guarded runner watches every step for divergence — NaN/Inf or negative
// windows, aggregate-window blowup, unbounded queue growth, a step-budget
// watchdog — and converts the first violation (or any exception thrown by a
// protocol or a contract check) into a structured FaultReport alongside the
// trace recorded up to the fault, rather than aborting.
#pragma once

#include <string>
#include <utility>

#include "engine/backend.h"
#include "fluid/sim.h"
#include "fluid/trace.h"
#include "recorder/recorder.h"
#include "util/check.h"

namespace axiomcc::stress {

/// What kind of fault the guard detected.
enum class FaultKind : int {
  kNone = 0,            ///< the run completed cleanly.
  kNonFiniteWindow,     ///< a sender window became NaN or ±Inf.
  kNegativeWindow,      ///< a sender window went below 0.
  kAggregateBlowup,     ///< the aggregate window exceeded its bound.
  kQueueGrowth,         ///< the standing queue exceeded its bound.
  kStepBudget,          ///< the watchdog step budget was exhausted.
  kContractViolation,   ///< a ContractViolation escaped the simulation.
  kException,           ///< any other exception escaped the simulation.
  kNonFiniteScore,      ///< a derived metric score came out NaN/Inf.
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// The structured outcome of a guard trip.
struct FaultReport {
  FaultKind kind = FaultKind::kNone;
  long step = -1;    ///< step at which the fault was detected (-1: n/a).
  int sender = -1;   ///< offending sender, when one is identifiable.
  /// Steps the guard actually watched before the run ended (clean or not);
  /// scorecards read this instead of recomputing it from the trace.
  long steps_observed = 0;
  std::string detail;

  [[nodiscard]] bool ok() const { return kind == FaultKind::kNone; }
};

/// Invariant thresholds. Defaults are far above anything a sane protocol
/// reaches on the standard links but below the simulator's own window cap,
/// so blowups trip the guard before the clamp masks them.
struct GuardConfig {
  double max_window_mss = 1e8;            ///< per-sender window bound.
  double max_aggregate_window_mss = 5e8;  ///< Σ windows bound.
  /// Bound on the standing queue (aggregate window − capacity), in MSS.
  /// Non-positive disables the check (robustness runs use near-infinite
  /// links where "queue" is meaningless).
  double max_queue_mss = 0.0;
  long step_budget = 2'000'000;           ///< watchdog on total steps.
  /// When non-empty and the spec carries a flight-recorder sink, a guard
  /// fault dumps a post-mortem JSONL (`postmortem-<label>.jsonl`) into this
  /// directory: the fault classification plus the last recorded events.
  /// Reproducer text is unknown at this layer — the fuzz runner attaches it
  /// at its own. Empty (the default) disables dumping.
  std::string postmortem_dir;
  /// File-name stem and side title for the dump above.
  std::string postmortem_label = "run";
};

/// A (possibly truncated) trace plus the fault that ended it, if any.
struct GuardedResult {
  fluid::Trace trace;
  FaultReport fault;
  /// Path of the post-mortem dumped for this fault, "" when none was
  /// written (clean run, no recorder attached, or dumping disabled).
  std::string postmortem_path;
};

/// Runs `sim` (fully configured: senders, injectors, schedules) under the
/// guard. On a clean run, `fault.ok()` and the full trace; on divergence or
/// an exception, the trace up to the fault step and a populated report.
/// Installs the simulation's step monitor — callers must not set their own.
[[nodiscard]] GuardedResult run_guarded(fluid::FluidSimulation& sim,
                                        const GuardConfig& config = {});

/// Backend-generic guarded run: executes `spec` on `backend` (fluid or
/// packet) with the guard installed as the spec's step monitor — the spec
/// must not carry its own. Taken by value because the runner owns the
/// monitor it installs. Fault semantics match the fluid overload; on an
/// escaping exception the trace is an empty stand-in with the spec's sender
/// count and link geometry.
[[nodiscard]] GuardedResult run_guarded(const engine::SimBackend& backend,
                                        engine::ScenarioSpec spec,
                                        const GuardConfig& config = {});

/// Invokes `fn` and converts an escaping exception into a FaultReport
/// (kContractViolation or kException); returns kNone when `fn` returns
/// normally. For guarding code that is not a FluidSimulation — e.g. one
/// cell of a metric sweep.
template <typename Fn>
[[nodiscard]] FaultReport guard_invoke(Fn&& fn) {
  FaultReport report;
  try {
    std::forward<Fn>(fn)();
  } catch (const ContractViolation& e) {
    report.kind = FaultKind::kContractViolation;
    report.detail = e.what();
  } catch (const std::exception& e) {
    report.kind = FaultKind::kException;
    report.detail = e.what();
  }
  return report;
}

}  // namespace axiomcc::stress
