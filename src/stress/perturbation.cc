#include "stress/perturbation.h"

#include <utility>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace axiomcc::stress {

StepSchedule constant_schedule(double scale) {
  AXIOMCC_EXPECTS(scale > 0.0);
  return [scale](long) { return scale; };
}

StepSchedule outage_schedule(long start, long duration, double residual) {
  AXIOMCC_EXPECTS(start >= 0);
  AXIOMCC_EXPECTS(duration > 0);
  AXIOMCC_EXPECTS(residual > 0.0 && residual <= 1.0);
  const long end = start + duration;
  return [start, end, residual](long step) {
    return (step >= start && step < end) ? residual : 1.0;
  };
}

StepSchedule square_wave_schedule(long period, double high, double low,
                                  long phase) {
  AXIOMCC_EXPECTS(period >= 2);
  AXIOMCC_EXPECTS(high > 0.0 && low > 0.0);
  AXIOMCC_EXPECTS(phase >= 0);
  return [period, high, low, phase](long step) {
    const long pos = (step + phase) % period;
    return pos < period / 2 ? high : low;
  };
}

StepSchedule sawtooth_schedule(long period, double low, double high) {
  AXIOMCC_EXPECTS(period >= 2);
  AXIOMCC_EXPECTS(low > 0.0 && high >= low);
  return [period, low, high](long step) {
    const long pos = step % period;
    return low + (high - low) * static_cast<double>(pos) /
                     static_cast<double>(period - 1);
  };
}

StepSchedule step_change_schedule(long at, double before, double after) {
  AXIOMCC_EXPECTS(at >= 0);
  AXIOMCC_EXPECTS(before > 0.0 && after > 0.0);
  return [at, before, after](long step) { return step < at ? before : after; };
}

StepSchedule compose_schedules(StepSchedule a, StepSchedule b) {
  AXIOMCC_EXPECTS(a != nullptr && b != nullptr);
  return [a = std::move(a), b = std::move(b)](long step) {
    return a(step) * b(step);
  };
}

LossStorm::LossStorm(long start_step, long end_step, const StormParams& params,
                     std::uint64_t seed)
    : start_(start_step), end_(end_step), params_(params), rng_(seed) {
  AXIOMCC_EXPECTS(start_step >= 0);
  AXIOMCC_EXPECTS(end_step > start_step);
  AXIOMCC_EXPECTS(params.p_good_to_bad >= 0.0 && params.p_good_to_bad <= 1.0);
  AXIOMCC_EXPECTS(params.p_bad_to_good >= 0.0 && params.p_bad_to_good <= 1.0);
  AXIOMCC_EXPECTS(params.good_rate >= 0.0 && params.good_rate < 1.0);
  AXIOMCC_EXPECTS(params.bad_rate >= 0.0 && params.bad_rate < 1.0);
}

double LossStorm::sample(long step, int /*sender*/) {
  if (step < start_ || step >= end_) return 0.0;
  if (in_bad_state_) {
    if (rng_.bernoulli(params_.p_bad_to_good)) in_bad_state_ = false;
  } else {
    if (rng_.bernoulli(params_.p_good_to_bad)) {
      in_bad_state_ = true;
      // Burst count is a function of (seed, steps) only — deterministic.
      TELEMETRY_COUNT("stress.storm_bursts", 1);
    }
  }
  return in_bad_state_ ? params_.bad_rate : params_.good_rate;
}

void apply_scenario(const Scenario& s, fluid::FluidSimulation& sim,
                    const cc::Protocol& churn_prototype, std::uint64_t seed) {
  TELEMETRY_COUNT("stress.scenarios_applied", 1);
  if (s.bandwidth_scale) sim.set_bandwidth_schedule(s.bandwidth_scale);
  if (s.rtt_scale) sim.set_rtt_schedule(s.rtt_scale);
  if (s.loss_factory) sim.set_loss_injector(s.loss_factory(seed));
  for (const ChurnSlot& slot : s.churn.slots) {
    fluid::SenderSpec spec;
    spec.protocol = churn_prototype.clone();
    spec.initial_window_mss = slot.initial_window_mss;
    spec.start_step = slot.start_step;
    spec.stop_step = slot.stop_step;
    sim.add_sender(std::move(spec));
  }
}

void apply_scenario(const Scenario& s, engine::ScenarioSpec& spec,
                    const cc::Protocol& churn_prototype, std::uint64_t seed) {
  TELEMETRY_COUNT("stress.scenarios_applied", 1);
  if (s.bandwidth_scale) spec.bandwidth_scale = s.bandwidth_scale;
  if (s.rtt_scale) spec.rtt_scale = s.rtt_scale;
  if (s.loss_factory) spec.loss = s.loss_factory;
  spec.seed = seed;
  for (const ChurnSlot& slot : s.churn.slots) {
    if (spec.topology.empty()) {
      spec.add_sender(churn_prototype, slot.initial_window_mss,
                      static_cast<double>(slot.start_step),
                      static_cast<double>(slot.stop_step));
    } else {
      // Topology mode: churned flows join on the first slot's route (the
      // long path in the parking-lot builder), so the perturbation stresses
      // every bottleneck the resident flows cross.
      std::vector<int> route = spec.senders.empty()
                                   ? std::vector<int>{0}
                                   : spec.senders.front().route;
      spec.add_routed_sender(churn_prototype, std::move(route),
                             slot.initial_window_mss,
                             static_cast<double>(slot.start_step),
                             static_cast<double>(slot.stop_step));
    }
  }
}

std::vector<Scenario> standard_gauntlet(long steps) {
  AXIOMCC_EXPECTS(steps >= 100);
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "baseline";
    out.push_back(std::move(s));
  }
  {
    // One deep outage in the middle third: bandwidth → ~0 for steps/10.
    Scenario s;
    s.name = "outage";
    s.perturb_start = steps * 2 / 5;
    s.perturb_end = s.perturb_start + steps / 10;
    s.bandwidth_scale = outage_schedule(
        s.perturb_start, s.perturb_end - s.perturb_start, 1e-3);
    out.push_back(std::move(s));
  }
  {
    // Fast flapping: full rate / 5% of rate every 8 steps.
    Scenario s;
    s.name = "flap";
    s.perturb_start = 0;
    s.perturb_end = -1;
    s.bandwidth_scale = square_wave_schedule(16, 1.0, 0.05);
    out.push_back(std::move(s));
  }
  {
    // Slow square-wave capacity oscillation between 100% and 40%.
    Scenario s;
    s.name = "oscillation";
    s.perturb_start = 0;
    s.perturb_end = -1;
    s.bandwidth_scale = square_wave_schedule(steps / 5, 1.0, 0.4);
    out.push_back(std::move(s));
  }
  {
    // Sawtooth capacity: ramps 30% → 100%, collapses, repeats.
    Scenario s;
    s.name = "sawtooth";
    s.perturb_start = 0;
    s.perturb_end = -1;
    s.bandwidth_scale = sawtooth_schedule(steps / 6, 0.3, 1.0);
    out.push_back(std::move(s));
  }
  {
    // A Gilbert-Elliott loss storm over the middle third of the run.
    Scenario s;
    s.name = "loss_storm";
    s.perturb_start = steps / 3;
    s.perturb_end = 2 * steps / 3;
    const long start = s.perturb_start;
    const long end = s.perturb_end;
    s.loss_factory = [start, end](std::uint64_t seed) {
      return std::make_unique<LossStorm>(start, end, StormParams{}, seed);
    };
    out.push_back(std::move(s));
  }
  {
    // Persistent 3× RTT inflation from mid-run (path change).
    Scenario s;
    s.name = "rtt_step";
    s.perturb_start = steps / 2;
    s.perturb_end = -1;
    s.rtt_scale = step_change_schedule(s.perturb_start, 1.0, 3.0);
    out.push_back(std::move(s));
  }
  {
    // Flow churn: two extra flows join in the middle third; one leaves.
    Scenario s;
    s.name = "churn";
    s.perturb_start = steps / 3;
    s.perturb_end = 2 * steps / 3;
    s.churn.slots.push_back(ChurnSlot{steps / 3, 2 * steps / 3, 1.0});
    s.churn.slots.push_back(ChurnSlot{steps / 2, -1, 1.0});
    out.push_back(std::move(s));
  }
  return out;
}

WindowedPacketFilter::WindowedPacketFilter(
    const sim::Simulator& sim, SimTime start, SimTime end,
    std::unique_ptr<sim::PacketFilter> inner)
    : sim_(sim), start_(start), end_(end), inner_(std::move(inner)) {
  AXIOMCC_EXPECTS(inner_ != nullptr);
  AXIOMCC_EXPECTS(end > start);
}

bool WindowedPacketFilter::drop(const sim::Packet& p) {
  const SimTime now = sim_.now();
  if (now < start_ || now >= end_) return false;
  if (inner_->drop(p)) {
    count_drop();
    return true;
  }
  return false;
}

void schedule_link_rate(sim::Simulator& simulator, sim::SimLink& link,
                        StepSchedule scale, SimTime interval, long steps) {
  AXIOMCC_EXPECTS(scale != nullptr);
  AXIOMCC_EXPECTS(interval.ns() > 0);
  AXIOMCC_EXPECTS(steps > 0);
  const double base_rate = link.rate_bps();
  for (long k = 0; k < steps; ++k) {
    const SimTime at(interval.ns() * k);
    simulator.schedule_at(at, [&link, scale, base_rate, k] {
      link.set_rate_bps(base_rate * scale(k));
    });
  }
}

}  // namespace axiomcc::stress
