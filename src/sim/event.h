// event.h — the discrete-event simulation kernel.
//
// A minimal ns-3-style engine: events are (time, callback) pairs executed in
// time order. Ties are broken by insertion order (FIFO), which together with
// the integral nanosecond clock makes every run exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/check.h"
#include "util/units.h"

namespace axiomcc::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must not be in the past).
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay` (must be non-negative).
  void schedule_in(SimTime delay, EventFn fn);

  /// Runs events until the queue is empty or `end` is reached; events at
  /// exactly `end` are executed. Returns the number of events processed.
  std::size_t run_until(SimTime end);

  /// Runs until the event queue is empty.
  std::size_t run();

  /// Asks the current run loop to stop after the event being executed
  /// returns; pending events stay queued. The next run()/run_until() call
  /// clears the flag and resumes normally. The hook backend step monitors
  /// use to end a guarded run early (divergence caught mid-simulation).
  void request_stop() { stop_requested_ = true; }

  /// True when request_stop() was called during the current/last run.
  [[nodiscard]] bool stop_requested() const { return stop_requested_; }

  /// Total events executed over the simulator's lifetime.
  [[nodiscard]] std::size_t events_processed() const {
    return events_processed_;
  }

  /// Events currently pending.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t sequence;  // FIFO tie-break
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  SimTime now_{0};
  std::uint64_t next_sequence_ = 0;
  std::size_t events_processed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace axiomcc::sim
