// loss.h — per-packet non-congestion loss for the packet simulator.
//
// The fluid model injects loss as a rate (fluid/loss_model.h); here loss is a
// per-packet Bernoulli (or Gilbert-Elliott) coin flip, which is the behaviour
// the paper's Metric VI abstracts. A PacketFilter sits between a link's
// delivery side and the receiver.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "sim/packet.h"
#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::sim {

/// Decides packet-by-packet whether to drop. Stateless callers simply wrap
/// their delivery callback with `filtered`.
class PacketFilter {
 public:
  virtual ~PacketFilter() = default;
  /// True when the packet should be DROPPED.
  [[nodiscard]] virtual bool drop(const Packet& p) = 0;

  [[nodiscard]] std::size_t dropped() const { return dropped_; }

 protected:
  void count_drop() { ++dropped_; }

 private:
  std::size_t dropped_ = 0;
};

/// Independent per-packet drops with probability `rate`.
class BernoulliPacketLoss final : public PacketFilter {
 public:
  BernoulliPacketLoss(double rate, std::uint64_t seed)
      : rate_(rate), rng_(seed) {
    AXIOMCC_EXPECTS(rate >= 0.0 && rate < 1.0);
  }

  bool drop(const Packet& /*p*/) override {
    if (rate_ > 0.0 && rng_.bernoulli(rate_)) {
      count_drop();
      return true;
    }
    return false;
  }

 private:
  double rate_;
  Rng rng_;
};

/// Two-state bursty loss channel (good/bad states with geometric dwell).
class GilbertElliottPacketLoss final : public PacketFilter {
 public:
  GilbertElliottPacketLoss(double p_good_to_bad, double p_bad_to_good,
                           double good_loss, double bad_loss,
                           std::uint64_t seed)
      : p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        good_loss_(good_loss),
        bad_loss_(bad_loss),
        rng_(seed) {
    AXIOMCC_EXPECTS(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0);
    AXIOMCC_EXPECTS(p_bad_to_good >= 0.0 && p_bad_to_good <= 1.0);
    AXIOMCC_EXPECTS(good_loss >= 0.0 && good_loss < 1.0);
    AXIOMCC_EXPECTS(bad_loss >= 0.0 && bad_loss < 1.0);
  }

  bool drop(const Packet& /*p*/) override {
    if (bad_state_) {
      if (rng_.bernoulli(p_bg_)) bad_state_ = false;
    } else {
      if (rng_.bernoulli(p_gb_)) bad_state_ = true;
    }
    const double rate = bad_state_ ? bad_loss_ : good_loss_;
    if (rate > 0.0 && rng_.bernoulli(rate)) {
      count_drop();
      return true;
    }
    return false;
  }

 private:
  double p_gb_;
  double p_bg_;
  double good_loss_;
  double bad_loss_;
  Rng rng_;
  bool bad_state_ = false;
};

/// Wraps `next` so packets pass through `filter` first. The filter must
/// outlive the returned callback.
[[nodiscard]] inline std::function<void(const Packet&)> filtered(
    PacketFilter& filter, std::function<void(const Packet&)> next) {
  return [&filter, next = std::move(next)](const Packet& p) {
    if (!filter.drop(p)) next(p);
  };
}

}  // namespace axiomcc::sim
