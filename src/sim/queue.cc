#include "sim/queue.h"

#include <algorithm>

#include "util/check.h"

namespace axiomcc::sim {

// --- DropTail ----------------------------------------------------------------

DropTailQueue::DropTailQueue(std::size_t capacity_packets)
    : capacity_(capacity_packets) {
  AXIOMCC_EXPECTS_MSG(capacity_packets > 0, "queue capacity must be positive");
}

bool DropTailQueue::enqueue(const Packet& p) {
  if (queue_.size() >= capacity_) {
    count_drop();
    return false;
  }
  queue_.push_back(p);
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  return p;
}

// --- RED ----------------------------------------------------------------------

REDQueue::REDQueue(const Params& params) : params_(params), rng_(params.seed) {
  AXIOMCC_EXPECTS(params.capacity_packets > 0);
  AXIOMCC_EXPECTS(params.min_threshold >= 0.0);
  AXIOMCC_EXPECTS(params.max_threshold > params.min_threshold);
  AXIOMCC_EXPECTS(params.max_drop_probability > 0.0 &&
                  params.max_drop_probability <= 1.0);
  AXIOMCC_EXPECTS(params.queue_weight > 0.0 && params.queue_weight <= 1.0);
}

bool REDQueue::enqueue(const Packet& p) {
  avg_queue_ = (1.0 - params_.queue_weight) * avg_queue_ +
               params_.queue_weight * static_cast<double>(queue_.size());

  bool drop = false;
  if (queue_.size() >= params_.capacity_packets) {
    drop = true;  // physical overflow
  } else if (avg_queue_ >= params_.max_threshold) {
    drop = true;
  } else if (avg_queue_ > params_.min_threshold) {
    const double fraction = (avg_queue_ - params_.min_threshold) /
                            (params_.max_threshold - params_.min_threshold);
    double p_base = params_.max_drop_probability * fraction;
    // Spread drops out (Floyd & Jacobson's count correction).
    const double denom =
        1.0 - static_cast<double>(count_since_drop_) * p_base;
    const double p_actual = denom > 0.0 ? std::min(1.0, p_base / denom) : 1.0;
    drop = rng_.bernoulli(p_actual);
  }

  if (drop) {
    count_since_drop_ = 0;
    count_drop();
    return false;
  }
  ++count_since_drop_;
  queue_.push_back(p);
  bytes_ += static_cast<std::size_t>(p.size_bytes);
  return true;
}

std::optional<Packet> REDQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  bytes_ -= static_cast<std::size_t>(p.size_bytes);
  return p;
}

}  // namespace axiomcc::sim
