// receiver.h — the data sink: ACKs every packet it receives.
//
// ACKs echo the data packet's sequence number, send timestamp, and monitor
// interval (selective-ACK-style per-packet feedback, which is what the
// monitor-interval accounting in sender.h needs).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/packet.h"
#include "util/check.h"

namespace axiomcc::sim {

// NOTE on delayed ACKs: the sender's loss detection treats "an ACK for seq s
// with an older packet unACKed" as proof of loss (valid on a FIFO path with
// per-packet ACKs). A delayed-ACK receiver that skips every other ACK would
// make skipped packets indistinguishable from drops, so ACK thinning is
// deliberately NOT offered here; it would need cumulative-ACK semantics end
// to end.
class Receiver {
 public:
  /// `send_ack` carries the ACK back toward the sender (reverse path).
  explicit Receiver(std::function<void(const Packet&)> send_ack)
      : send_ack_(std::move(send_ack)) {
    AXIOMCC_EXPECTS(send_ack_ != nullptr);
  }

  void on_packet(const Packet& p) {
    AXIOMCC_EXPECTS(!p.is_ack);
    ++packets_received_;
    bytes_received_ += static_cast<std::uint64_t>(p.size_bytes);

    Packet ack;
    ack.flow_id = p.flow_id;
    ack.seq = p.seq;
    ack.size_bytes = kAckBytes;
    ack.is_ack = true;
    ack.sent_at = p.sent_at;
    ack.monitor_interval = p.monitor_interval;
    send_ack_(ack);
  }

  [[nodiscard]] std::uint64_t packets_received() const {
    return packets_received_;
  }
  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  std::function<void(const Packet&)> send_ack_;
  std::uint64_t packets_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace axiomcc::sim
