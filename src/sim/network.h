// network.h — multi-hop packet-level topologies (beyond the dumbbell).
//
// Generalizes dumbbell.h to arbitrary per-flow routes over shared links:
// packets are forwarded hop by hop through each link's queue; the last hop
// delivers to the flow's receiver, whose ACK returns after the route's
// reverse propagation delay. This is the packet-level counterpart of
// fluid/network.h (the paper's "network-wide interaction" future work) and
// ships the same parking-lot builder.
//
// The network carries the full engine-substrate hook set the dumbbell has:
// flow churn (start/stop times), a forward-path packet filter for injected
// loss, a step monitor that can stop the run at a trace sample, per-flow tail
// reports, and mutable link access for mid-run rate/delay schedules —
// engine::PacketBackend routes topology scenarios here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "cc/protocol.h"
#include "fluid/trace.h"
#include "sim/dumbbell.h"
#include "sim/event.h"
#include "sim/link.h"
#include "sim/loss.h"
#include "sim/receiver.h"
#include "sim/sender.h"

namespace axiomcc::sim {

class MultiHopNetwork {
 public:
  struct Config {
    double duration_seconds = 30.0;
    int mss_bytes = 1500;
    /// Window-sampling cadence for the Trace view; 0 picks the smallest
    /// route round-trip.
    double sample_interval_ms = 0.0;
    double tail_fraction = 0.5;
    /// Hard cwnd cap passed to every sender (see DumbbellConfig: runaway
    /// windows scale the event count, so they must be capped).
    double max_window_mss = 1e7;
  };

  explicit MultiHopNetwork(const Config& config);

  MultiHopNetwork(const MultiHopNetwork&) = delete;
  MultiHopNetwork& operator=(const MultiHopNetwork&) = delete;

  /// Adds a unidirectional link (droptail); returns its id.
  int add_link(double mbps, double one_way_delay_ms,
               std::size_t buffer_packets);

  /// Adds a flow routed over `route` (ordered link ids). The reverse path is
  /// modeled as a fixed delay equal to the route's total one-way propagation.
  /// A non-negative `stop_seconds` removes the flow at that time (churn).
  int add_flow(std::unique_ptr<cc::Protocol> protocol, std::vector<int> route,
               double start_seconds = 0.0, double initial_window = 2.0,
               double stop_seconds = -1.0);

  /// Same shape as DumbbellExperiment's monitor: called after every trace
  /// sample with (step, windows, rtt_seconds, congestion_loss); returning
  /// false stops the simulation at that sample. Must be set before run().
  using StepMonitorFn = std::function<bool(
      long step, std::span<const double> windows, double rtt_seconds,
      double congestion_loss)>;
  void set_step_monitor(StepMonitorFn monitor);

  /// Injected (non-congestion) loss applied to forward data packets on final
  /// delivery, as in the dumbbell. Default: none. Must be set before run().
  void set_forward_filter(std::unique_ptr<PacketFilter> filter);

  void run();

  [[nodiscard]] int num_flows() const {
    return static_cast<int>(senders_.size());
  }
  [[nodiscard]] int num_links() const {
    return static_cast<int>(links_.size());
  }
  [[nodiscard]] const Sender& sender(int flow) const;
  [[nodiscard]] const SimLink& link(int id) const;
  /// Mutable link access for mid-run perturbation (rate or delay schedules
  /// installed by the engine backend).
  [[nodiscard]] SimLink& mutable_link(int id);
  [[nodiscard]] double link_mbps(int id) const;
  [[nodiscard]] double link_delay_ms(int id) const;
  [[nodiscard]] Simulator& simulator() { return simulator_; }

  /// Sampled per-flow window trace (valid after run()); capacity is the
  /// minimum link capacity (in MSS) over any route, min-RTT the smallest
  /// route round-trip. The congestion series records the binding (maximum)
  /// per-link drop rate over each sampling window.
  [[nodiscard]] const fluid::Trace& trace() const;

  /// Tail-average goodput of a flow in Mbps (valid after run()).
  [[nodiscard]] double flow_throughput_mbps(int flow) const;

  /// Per-flow tail summaries, as in DumbbellExperiment (valid after run()).
  [[nodiscard]] std::vector<FlowReport> flow_reports() const;

  /// Delivered bits over capacity·duration of the MOST utilized link — the
  /// network-wide analogue of the dumbbell's bottleneck utilization (valid
  /// after run()).
  [[nodiscard]] double max_link_utilization() const;

 private:
  void sample_trace();

  Config config_;
  Simulator simulator_;

  struct LinkInfo {
    std::unique_ptr<SimLink> link;
    double one_way_delay_ms = 0.0;
    double mbps = 0.0;
    std::size_t drops_at_last_sample = 0;
    std::size_t accepted_at_last_sample = 0;
  };
  struct FlowInfo {
    std::vector<int> route;
    /// next_hop[link_id] = index into route of the hop AFTER link_id.
    std::unordered_map<int, std::size_t> next_hop;
    double start_seconds = 0.0;
    double stop_seconds = -1.0;
    double route_rtt_ms = 0.0;
  };

  void deliver_from_link(int link_id, const Packet& p);

  std::vector<LinkInfo> links_;
  std::vector<FlowInfo> flows_;
  std::vector<std::unique_ptr<Sender>> senders_;
  std::vector<std::unique_ptr<Receiver>> receivers_;

  std::unique_ptr<PacketFilter> forward_filter_;
  StepMonitorFn step_monitor_;
  bool monitor_stopped_ = false;

  std::unique_ptr<fluid::Trace> trace_;
  std::vector<std::size_t> eval_frontier_;
  bool ran_ = false;
};

/// Packet-level parking lot: `bottlenecks` equal links in series; flow 0 runs
/// over all of them, one short flow per link. All flows clone `prototype`.
struct PacketParkingLot {
  std::unique_ptr<MultiHopNetwork> network;
  int long_flow = 0;
  std::vector<int> short_flows;
};
[[nodiscard]] PacketParkingLot make_packet_parking_lot(
    double mbps, double per_link_delay_ms, std::size_t buffer_packets,
    int bottlenecks, const cc::Protocol& prototype,
    const MultiHopNetwork::Config& config = {});

}  // namespace axiomcc::sim
