// packet.h — the unit of transmission in the packet-level simulator.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace axiomcc::sim {

/// A data packet or an acknowledgment. ACKs echo the data packet's sequence
/// number and send timestamp so the sender can take an RTT sample without
/// keeping a timer wheel.
struct Packet {
  int flow_id = 0;
  std::uint64_t seq = 0;        ///< per-flow sequence number.
  int size_bytes = 1500;        ///< MSS for data, 40 for ACKs.
  bool is_ack = false;
  SimTime sent_at{0};           ///< when the DATA packet was sent (echoed in ACKs).
  std::uint64_t monitor_interval = 0;  ///< sender-side MI id (echoed in ACKs).
};

/// Conventional ACK size in bytes.
inline constexpr int kAckBytes = 40;

}  // namespace axiomcc::sim
