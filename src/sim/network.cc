#include "sim/network.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "sim/queue.h"
#include "util/check.h"

namespace axiomcc::sim {

MultiHopNetwork::MultiHopNetwork(const Config& config) : config_(config) {
  AXIOMCC_EXPECTS(config.duration_seconds > 0.0);
  AXIOMCC_EXPECTS(config.mss_bytes > 0);
  AXIOMCC_EXPECTS(config.tail_fraction >= 0.0 && config.tail_fraction < 1.0);
  AXIOMCC_EXPECTS(config.max_window_mss > 0.0);
}

int MultiHopNetwork::add_link(double mbps, double one_way_delay_ms,
                              std::size_t buffer_packets) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_link must precede run()");
  AXIOMCC_EXPECTS(mbps > 0.0);
  AXIOMCC_EXPECTS(one_way_delay_ms >= 0.0);

  const int link_id = static_cast<int>(links_.size());
  LinkInfo info;
  info.one_way_delay_ms = one_way_delay_ms;
  info.mbps = mbps;
  info.link = std::make_unique<SimLink>(
      simulator_, mbps * 1e6, SimTime::from_millis(one_way_delay_ms),
      std::make_unique<DropTailQueue>(buffer_packets),
      [this, link_id](const Packet& p) { deliver_from_link(link_id, p); });
  links_.push_back(std::move(info));
  return link_id;
}

int MultiHopNetwork::add_flow(std::unique_ptr<cc::Protocol> protocol,
                              std::vector<int> route, double start_seconds,
                              double initial_window, double stop_seconds) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_flow must precede run()");
  AXIOMCC_EXPECTS(protocol != nullptr);
  AXIOMCC_EXPECTS(!route.empty());
  AXIOMCC_EXPECTS(start_seconds >= 0.0);
  AXIOMCC_EXPECTS(stop_seconds < 0.0 || stop_seconds > start_seconds);

  const int flow_id = num_flows();

  FlowInfo flow;
  flow.route = route;
  flow.start_seconds = start_seconds;
  flow.stop_seconds = stop_seconds;
  double one_way_ms = 0.0;
  for (std::size_t hop = 0; hop < route.size(); ++hop) {
    const int link_id = route[hop];
    AXIOMCC_EXPECTS(link_id >= 0 &&
                    link_id < static_cast<int>(links_.size()));
    AXIOMCC_EXPECTS_MSG(!flow.next_hop.contains(link_id),
                        "a route may not repeat a link");
    flow.next_hop[link_id] = hop + 1;
    one_way_ms += links_[link_id].one_way_delay_ms;
  }
  flow.route_rtt_ms = 2.0 * one_way_ms;
  flows_.push_back(std::move(flow));

  const SimTime reverse_delay = SimTime::from_millis(one_way_ms);
  receivers_.push_back(
      std::make_unique<Receiver>([this, reverse_delay](const Packet& ack) {
        simulator_.schedule_in(reverse_delay, [this, ack] {
          senders_[ack.flow_id]->on_ack(ack);
        });
      }));

  SenderConfig sc;
  sc.flow_id = flow_id;
  sc.mss_bytes = config_.mss_bytes;
  sc.initial_window = initial_window;
  sc.max_window = config_.max_window_mss;
  sc.initial_mi = SimTime::from_millis(std::max(flows_.back().route_rtt_ms, 1.0));

  const int first_link = route.front();
  senders_.push_back(std::make_unique<Sender>(
      simulator_, sc, std::move(protocol), [this, first_link](const Packet& p) {
        links_[first_link].link->send(p);
      }));
  return flow_id;
}

void MultiHopNetwork::set_step_monitor(StepMonitorFn monitor) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_step_monitor must precede run()");
  AXIOMCC_EXPECTS(monitor != nullptr);
  step_monitor_ = std::move(monitor);
}

void MultiHopNetwork::set_forward_filter(std::unique_ptr<PacketFilter> filter) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_forward_filter must precede run()");
  AXIOMCC_EXPECTS(filter != nullptr);
  forward_filter_ = std::move(filter);
}

void MultiHopNetwork::deliver_from_link(int link_id, const Packet& p) {
  AXIOMCC_EXPECTS(p.flow_id >= 0 && p.flow_id < num_flows());
  const FlowInfo& flow = flows_[p.flow_id];
  const auto it = flow.next_hop.find(link_id);
  AXIOMCC_EXPECTS_MSG(it != flow.next_hop.end(),
                      "packet delivered by a link not on its flow's route");
  const std::size_t next = it->second;
  if (next >= flow.route.size()) {
    // Injected loss on final delivery, as in the dumbbell: the packet
    // crossed every queue (consuming capacity) but never reaches the
    // receiver, so the sender observes it as loss.
    if (forward_filter_ && forward_filter_->drop(p)) return;
    receivers_[p.flow_id]->on_packet(p);
  } else {
    links_[flow.route[next]].link->send(p);
  }
}

void MultiHopNetwork::run() {
  AXIOMCC_EXPECTS_MSG(!ran_, "run() may be called only once");
  AXIOMCC_EXPECTS_MSG(num_flows() > 0, "add at least one flow before run()");
  ran_ = true;

  // Trace conventions as in fluid/network.h.
  double min_capacity = std::numeric_limits<double>::infinity();
  double min_rtt_ms = std::numeric_limits<double>::infinity();
  for (const FlowInfo& f : flows_) {
    for (int l : f.route) {
      const double capacity_mss =
          links_[l].mbps * 1e6 * (f.route_rtt_ms / 1e3) /
          (8.0 * static_cast<double>(config_.mss_bytes));
      min_capacity = std::min(min_capacity, capacity_mss);
    }
    min_rtt_ms = std::min(min_rtt_ms, f.route_rtt_ms);
  }
  trace_ = std::make_unique<fluid::Trace>(num_flows(), min_capacity,
                                          min_rtt_ms / 1e3);
  eval_frontier_.assign(num_flows(), 0);

  for (int f = 0; f < num_flows(); ++f) {
    senders_[f]->start(SimTime::from_seconds(flows_[f].start_seconds));
    if (flows_[f].stop_seconds >= 0.0) {
      senders_[f]->stop_at(SimTime::from_seconds(flows_[f].stop_seconds));
    }
  }

  const double interval_ms = config_.sample_interval_ms > 0.0
                                 ? config_.sample_interval_ms
                                 : std::max(min_rtt_ms, 1.0);
  const SimTime interval = SimTime::from_millis(interval_ms);
  const SimTime end = SimTime::from_seconds(config_.duration_seconds);
  for (SimTime t = interval; t <= end; t = t + interval) {
    simulator_.schedule_at(t, [this] { sample_trace(); });
  }
  simulator_.run_until(end);
}

void MultiHopNetwork::sample_trace() {
  const int n = num_flows();
  std::vector<double> windows(n);
  std::vector<double> observed_loss(n);
  double rtt_sum = 0.0;
  int rtt_count = 0;
  for (int i = 0; i < n; ++i) {
    const Sender& s = *senders_[i];
    // Churned-away (or not-yet-started) flows contribute no window,
    // matching the fluid network's churn semantics.
    windows[i] = s.active() ? s.cwnd() : 0.0;
    const auto& records = s.history();
    std::size_t& frontier = eval_frontier_[i];
    while (frontier < records.size() && records[frontier].evaluated) {
      ++frontier;
    }
    observed_loss[i] = frontier > 0 ? records[frontier - 1].loss_rate : 0.0;
    if (s.srtt_seconds() > 0.0) {
      rtt_sum += s.srtt_seconds();
      ++rtt_count;
    }
  }

  // Congestion loss over the sampling window: the binding (max) per-link
  // drop rate, from queue counter deltas — the packet analogue of the fluid
  // network's max-link-loss series.
  double congestion_loss = 0.0;
  for (LinkInfo& info : links_) {
    const std::size_t drops = info.link->packets_dropped();
    const std::size_t accepted = info.link->packets_accepted();
    const std::size_t d_drops = drops - info.drops_at_last_sample;
    const std::size_t d_offered =
        (accepted - info.accepted_at_last_sample) + d_drops;
    info.drops_at_last_sample = drops;
    info.accepted_at_last_sample = accepted;
    if (d_offered > 0) {
      congestion_loss = std::max(
          congestion_loss,
          static_cast<double>(d_drops) / static_cast<double>(d_offered));
    }
  }

  const double rtt = rtt_count > 0
                         ? rtt_sum / static_cast<double>(rtt_count)
                         : trace_->min_rtt_seconds();
  trace_->add_step(windows, rtt, congestion_loss, observed_loss);

  if (step_monitor_ && !monitor_stopped_) {
    const long step = static_cast<long>(trace_->num_steps()) - 1;
    if (!step_monitor_(step, std::span<const double>(windows), rtt,
                       congestion_loss)) {
      monitor_stopped_ = true;
      simulator_.request_stop();
    }
  }
}

const Sender& MultiHopNetwork::sender(int flow) const {
  AXIOMCC_EXPECTS(flow >= 0 && flow < num_flows());
  return *senders_[flow];
}

const SimLink& MultiHopNetwork::link(int id) const {
  AXIOMCC_EXPECTS(id >= 0 && id < num_links());
  return *links_[id].link;
}

SimLink& MultiHopNetwork::mutable_link(int id) {
  AXIOMCC_EXPECTS(id >= 0 && id < num_links());
  return *links_[id].link;
}

double MultiHopNetwork::link_mbps(int id) const {
  AXIOMCC_EXPECTS(id >= 0 && id < num_links());
  return links_[id].mbps;
}

double MultiHopNetwork::link_delay_ms(int id) const {
  AXIOMCC_EXPECTS(id >= 0 && id < num_links());
  return links_[id].one_way_delay_ms;
}

const fluid::Trace& MultiHopNetwork::trace() const {
  AXIOMCC_EXPECTS_MSG(trace_ != nullptr, "trace() requires run() first");
  return *trace_;
}

double MultiHopNetwork::flow_throughput_mbps(int flow) const {
  AXIOMCC_EXPECTS_MSG(ran_, "flow_throughput_mbps() requires run() first");
  AXIOMCC_EXPECTS(flow >= 0 && flow < num_flows());

  const double tail_start =
      config_.duration_seconds * config_.tail_fraction;
  std::uint64_t acked = 0;
  for (const MonitorRecord& rec : senders_[flow]->history()) {
    if (!rec.evaluated || rec.start.seconds() < tail_start) continue;
    acked += rec.acked;
  }
  const double tail_seconds = config_.duration_seconds - tail_start;
  return static_cast<double>(acked) *
         static_cast<double>(config_.mss_bytes) * 8.0 / tail_seconds / 1e6;
}

std::vector<FlowReport> MultiHopNetwork::flow_reports() const {
  AXIOMCC_EXPECTS_MSG(ran_, "flow_reports() requires run() first");
  std::vector<FlowReport> reports;
  reports.reserve(senders_.size());

  const double tail_start_s = config_.duration_seconds * config_.tail_fraction;

  for (const auto& sender : senders_) {
    FlowReport r;
    r.protocol_name = sender->protocol().name();

    double window_sum = 0.0;
    double rtt_sum = 0.0;
    std::uint64_t sent = 0;
    std::uint64_t acked = 0;
    std::size_t count = 0;
    for (const MonitorRecord& rec : sender->history()) {
      if (!rec.evaluated) continue;
      if (rec.start.seconds() < tail_start_s) continue;
      window_sum += rec.window;
      rtt_sum += rec.rtt_seconds;
      sent += rec.sent;
      acked += rec.acked;
      ++count;
    }
    if (count > 0) {
      r.avg_window_mss = window_sum / static_cast<double>(count);
      r.avg_rtt_ms = rtt_sum / static_cast<double>(count) * 1e3;
      r.loss_rate = sent > 0 ? 1.0 - static_cast<double>(acked) /
                                         static_cast<double>(sent)
                             : 0.0;
      const double tail_seconds = config_.duration_seconds - tail_start_s;
      r.throughput_mbps = static_cast<double>(acked) *
                          static_cast<double>(config_.mss_bytes) * 8.0 /
                          tail_seconds / 1e6;
    }
    reports.push_back(std::move(r));
  }
  return reports;
}

double MultiHopNetwork::max_link_utilization() const {
  AXIOMCC_EXPECTS_MSG(ran_, "max_link_utilization() requires run() first");
  double max_util = 0.0;
  for (const LinkInfo& info : links_) {
    const double delivered_bits =
        static_cast<double>(info.link->bytes_delivered()) * 8.0;
    const double capacity_bits =
        info.mbps * 1e6 * config_.duration_seconds;
    max_util = std::max(max_util, delivered_bits / capacity_bits);
  }
  return max_util;
}

PacketParkingLot make_packet_parking_lot(double mbps, double per_link_delay_ms,
                                         std::size_t buffer_packets,
                                         int bottlenecks,
                                         const cc::Protocol& prototype,
                                         const MultiHopNetwork::Config& config) {
  AXIOMCC_EXPECTS(bottlenecks >= 1);
  PacketParkingLot lot;
  lot.network = std::make_unique<MultiHopNetwork>(config);

  std::vector<int> long_route;
  for (int i = 0; i < bottlenecks; ++i) {
    long_route.push_back(
        lot.network->add_link(mbps, per_link_delay_ms, buffer_packets));
  }
  lot.long_flow = lot.network->add_flow(prototype.clone(), long_route);
  for (int i = 0; i < bottlenecks; ++i) {
    lot.short_flows.push_back(
        lot.network->add_flow(prototype.clone(), {long_route[i]}));
  }
  return lot;
}

}  // namespace axiomcc::sim
