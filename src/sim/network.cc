#include "sim/network.h"

#include <algorithm>
#include <limits>

#include "sim/queue.h"
#include "util/check.h"

namespace axiomcc::sim {

MultiHopNetwork::MultiHopNetwork(const Config& config) : config_(config) {
  AXIOMCC_EXPECTS(config.duration_seconds > 0.0);
  AXIOMCC_EXPECTS(config.mss_bytes > 0);
  AXIOMCC_EXPECTS(config.tail_fraction >= 0.0 && config.tail_fraction < 1.0);
}

int MultiHopNetwork::add_link(double mbps, double one_way_delay_ms,
                              std::size_t buffer_packets) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_link must precede run()");
  AXIOMCC_EXPECTS(mbps > 0.0);
  AXIOMCC_EXPECTS(one_way_delay_ms >= 0.0);

  const int link_id = static_cast<int>(links_.size());
  LinkInfo info;
  info.one_way_delay_ms = one_way_delay_ms;
  info.mbps = mbps;
  info.link = std::make_unique<SimLink>(
      simulator_, mbps * 1e6, SimTime::from_millis(one_way_delay_ms),
      std::make_unique<DropTailQueue>(buffer_packets),
      [this, link_id](const Packet& p) { deliver_from_link(link_id, p); });
  links_.push_back(std::move(info));
  return link_id;
}

int MultiHopNetwork::add_flow(std::unique_ptr<cc::Protocol> protocol,
                              std::vector<int> route, double start_seconds,
                              double initial_window) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_flow must precede run()");
  AXIOMCC_EXPECTS(protocol != nullptr);
  AXIOMCC_EXPECTS(!route.empty());
  AXIOMCC_EXPECTS(start_seconds >= 0.0);

  const int flow_id = num_flows();

  FlowInfo flow;
  flow.route = route;
  flow.start_seconds = start_seconds;
  double one_way_ms = 0.0;
  for (std::size_t hop = 0; hop < route.size(); ++hop) {
    const int link_id = route[hop];
    AXIOMCC_EXPECTS(link_id >= 0 &&
                    link_id < static_cast<int>(links_.size()));
    AXIOMCC_EXPECTS_MSG(!flow.next_hop.contains(link_id),
                        "a route may not repeat a link");
    flow.next_hop[link_id] = hop + 1;
    one_way_ms += links_[link_id].one_way_delay_ms;
  }
  flow.route_rtt_ms = 2.0 * one_way_ms;
  flows_.push_back(std::move(flow));

  const SimTime reverse_delay = SimTime::from_millis(one_way_ms);
  receivers_.push_back(
      std::make_unique<Receiver>([this, reverse_delay](const Packet& ack) {
        simulator_.schedule_in(reverse_delay, [this, ack] {
          senders_[ack.flow_id]->on_ack(ack);
        });
      }));

  SenderConfig sc;
  sc.flow_id = flow_id;
  sc.mss_bytes = config_.mss_bytes;
  sc.initial_window = initial_window;
  sc.initial_mi = SimTime::from_millis(std::max(flows_.back().route_rtt_ms, 1.0));

  const int first_link = route.front();
  senders_.push_back(std::make_unique<Sender>(
      simulator_, sc, std::move(protocol), [this, first_link](const Packet& p) {
        links_[first_link].link->send(p);
      }));
  return flow_id;
}

void MultiHopNetwork::deliver_from_link(int link_id, const Packet& p) {
  AXIOMCC_EXPECTS(p.flow_id >= 0 && p.flow_id < num_flows());
  const FlowInfo& flow = flows_[p.flow_id];
  const auto it = flow.next_hop.find(link_id);
  AXIOMCC_EXPECTS_MSG(it != flow.next_hop.end(),
                      "packet delivered by a link not on its flow's route");
  const std::size_t next = it->second;
  if (next >= flow.route.size()) {
    receivers_[p.flow_id]->on_packet(p);
  } else {
    links_[flow.route[next]].link->send(p);
  }
}

void MultiHopNetwork::run() {
  AXIOMCC_EXPECTS_MSG(!ran_, "run() may be called only once");
  AXIOMCC_EXPECTS_MSG(num_flows() > 0, "add at least one flow before run()");
  ran_ = true;

  // Trace conventions as in fluid/network.h.
  double min_capacity = std::numeric_limits<double>::infinity();
  double min_rtt_ms = std::numeric_limits<double>::infinity();
  for (const FlowInfo& f : flows_) {
    for (int l : f.route) {
      const double capacity_mss =
          links_[l].mbps * 1e6 * (f.route_rtt_ms / 1e3) /
          (8.0 * static_cast<double>(config_.mss_bytes));
      min_capacity = std::min(min_capacity, capacity_mss);
    }
    min_rtt_ms = std::min(min_rtt_ms, f.route_rtt_ms);
  }
  trace_ = std::make_unique<fluid::Trace>(num_flows(), min_capacity,
                                          min_rtt_ms / 1e3);
  eval_frontier_.assign(num_flows(), 0);

  for (int f = 0; f < num_flows(); ++f) {
    senders_[f]->start(SimTime::from_seconds(flows_[f].start_seconds));
  }

  const double interval_ms = config_.sample_interval_ms > 0.0
                                 ? config_.sample_interval_ms
                                 : std::max(min_rtt_ms, 1.0);
  const SimTime interval = SimTime::from_millis(interval_ms);
  const SimTime end = SimTime::from_seconds(config_.duration_seconds);
  for (SimTime t = interval; t <= end; t = t + interval) {
    simulator_.schedule_at(t, [this] { sample_trace(); });
  }
  simulator_.run_until(end);
}

void MultiHopNetwork::sample_trace() {
  const int n = num_flows();
  std::vector<double> windows(n);
  std::vector<double> observed_loss(n);
  double rtt_sum = 0.0;
  int rtt_count = 0;
  for (int i = 0; i < n; ++i) {
    const Sender& s = *senders_[i];
    windows[i] = s.cwnd();
    const auto& records = s.history();
    std::size_t& frontier = eval_frontier_[i];
    while (frontier < records.size() && records[frontier].evaluated) {
      ++frontier;
    }
    observed_loss[i] = frontier > 0 ? records[frontier - 1].loss_rate : 0.0;
    if (s.srtt_seconds() > 0.0) {
      rtt_sum += s.srtt_seconds();
      ++rtt_count;
    }
  }
  const double max_loss =
      observed_loss.empty()
          ? 0.0
          : *std::max_element(observed_loss.begin(), observed_loss.end());
  const double rtt = rtt_count > 0
                         ? rtt_sum / static_cast<double>(rtt_count)
                         : trace_->min_rtt_seconds();
  trace_->add_step(windows, rtt, max_loss, observed_loss);
}

const Sender& MultiHopNetwork::sender(int flow) const {
  AXIOMCC_EXPECTS(flow >= 0 && flow < num_flows());
  return *senders_[flow];
}

const SimLink& MultiHopNetwork::link(int id) const {
  AXIOMCC_EXPECTS(id >= 0 && id < static_cast<int>(links_.size()));
  return *links_[id].link;
}

const fluid::Trace& MultiHopNetwork::trace() const {
  AXIOMCC_EXPECTS_MSG(trace_ != nullptr, "trace() requires run() first");
  return *trace_;
}

double MultiHopNetwork::flow_throughput_mbps(int flow) const {
  AXIOMCC_EXPECTS_MSG(ran_, "flow_throughput_mbps() requires run() first");
  AXIOMCC_EXPECTS(flow >= 0 && flow < num_flows());

  const double tail_start =
      config_.duration_seconds * config_.tail_fraction;
  std::uint64_t acked = 0;
  for (const MonitorRecord& rec : senders_[flow]->history()) {
    if (!rec.evaluated || rec.start.seconds() < tail_start) continue;
    acked += rec.acked;
  }
  const double tail_seconds = config_.duration_seconds - tail_start;
  return static_cast<double>(acked) *
         static_cast<double>(config_.mss_bytes) * 8.0 / tail_seconds / 1e6;
}

PacketParkingLot make_packet_parking_lot(double mbps, double per_link_delay_ms,
                                         std::size_t buffer_packets,
                                         int bottlenecks,
                                         const cc::Protocol& prototype,
                                         const MultiHopNetwork::Config& config) {
  AXIOMCC_EXPECTS(bottlenecks >= 1);
  PacketParkingLot lot;
  lot.network = std::make_unique<MultiHopNetwork>(config);

  std::vector<int> long_route;
  for (int i = 0; i < bottlenecks; ++i) {
    long_route.push_back(
        lot.network->add_link(mbps, per_link_delay_ms, buffer_packets));
  }
  lot.long_flow = lot.network->add_flow(prototype.clone(), long_route);
  for (int i = 0; i < bottlenecks; ++i) {
    lot.short_flows.push_back(
        lot.network->add_flow(prototype.clone(), {long_route[i]}));
  }
  return lot;
}

}  // namespace axiomcc::sim
