// dumbbell.h — the paper's experimental topology: n flows over one bottleneck.
//
// This is the packet-level replacement for the paper's Emulab setup
// (Section 5.1): senders on the left, receivers on the right, a single
// droptail (or RED) bottleneck in the middle, symmetric propagation delay,
// and an optional Bernoulli loss channel on the forward path for
// non-congestion-loss experiments.
//
// Besides raw per-flow statistics, the experiment samples every sender's
// window at a fixed cadence into a fluid::Trace, so the axiomatic metric
// estimators in src/core run unchanged on packet-level data.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "fluid/link.h"
#include "fluid/trace.h"
#include "sim/event.h"
#include "sim/link.h"
#include "sim/loss.h"
#include "sim/receiver.h"
#include "sim/sender.h"

namespace axiomcc::sim {

struct DumbbellConfig {
  double bottleneck_mbps = 30.0;
  double rtt_ms = 42.0;            ///< total two-way propagation delay.
  std::size_t buffer_packets = 100;
  int mss_bytes = 1500;
  double duration_seconds = 60.0;
  /// Bernoulli loss applied to forward data packets (non-congestion loss).
  double random_loss_rate = 0.0;
  std::uint64_t seed = 42;
  /// Queue discipline: droptail (paper) or RED (extension).
  bool use_red = false;
  REDQueue::Params red{};
  /// Window-sampling cadence for the fluid::Trace view; 0 selects one RTT.
  double sample_interval_ms = 0.0;
  double tail_fraction = 0.5;
  /// Hard cwnd cap passed to every sender. The fluid model tolerates
  /// essentially unbounded windows; a packet simulation's event count scales
  /// with the real window, so runaway protocols must be capped.
  double max_window_mss = 1e7;
};

/// Converts the fluid model's link parameters into a packet-level dumbbell
/// configuration. This is the ONE place where the MSS-denominated fluid units
/// (B in MSS/s, Θ one-way seconds, buffer in MSS) become packet-level units
/// (Mbps, two-way ms, whole packets) — keep any future conversion tweaks
/// here so both simulators stay in agreement about what a "link" means.
[[nodiscard]] DumbbellConfig dumbbell_config_from_link(
    const fluid::LinkParams& link, int mss_bytes = 1500);

/// Tail-of-run summary for one flow.
struct FlowReport {
  std::string protocol_name;
  double avg_window_mss = 0.0;
  double throughput_mbps = 0.0;
  double loss_rate = 0.0;
  double avg_rtt_ms = 0.0;
};

class DumbbellExperiment {
 public:
  explicit DumbbellExperiment(const DumbbellConfig& config);

  DumbbellExperiment(const DumbbellExperiment&) = delete;
  DumbbellExperiment& operator=(const DumbbellExperiment&) = delete;

  /// Adds a flow; returns its id. Must be called before run(). A
  /// non-negative `stop_seconds` removes the flow at that time (flow churn).
  int add_flow(std::unique_ptr<cc::Protocol> protocol,
               double start_seconds = 0.0, double initial_window = 2.0,
               double stop_seconds = -1.0);

  /// Same shape as fluid::FluidSimulation's StepMonitor: called after every
  /// trace sample with (step, windows, rtt_seconds, congestion_loss);
  /// returning false stops the simulation at that sample (the trace keeps
  /// the steps recorded so far). Must be set before run().
  using StepMonitorFn = std::function<bool(
      long step, std::span<const double> windows, double rtt_seconds,
      double congestion_loss)>;
  void set_step_monitor(StepMonitorFn monitor);

  /// Replaces the forward-path loss filter (default: Bernoulli at
  /// `random_loss_rate`). Must be called before run().
  void set_forward_filter(std::unique_ptr<PacketFilter> filter);

  /// Runs the experiment for the configured duration. Call once.
  void run();

  /// The sampled window/loss/RTT trace (valid after run()).
  [[nodiscard]] const fluid::Trace& trace() const;

  /// Per-flow tail summaries (valid after run()).
  [[nodiscard]] std::vector<FlowReport> flow_reports() const;

  /// Delivered bits over capacity·duration (valid after run()).
  [[nodiscard]] double bottleneck_utilization() const;

  /// C = B·2Θ in MSS for this configuration.
  [[nodiscard]] double capacity_mss() const;

  [[nodiscard]] int num_flows() const {
    return static_cast<int>(senders_.size());
  }
  [[nodiscard]] const Sender& sender(int flow) const;
  [[nodiscard]] Simulator& simulator() { return simulator_; }
  [[nodiscard]] const SimLink& bottleneck() const { return *bottleneck_; }
  /// Mutable bottleneck access for mid-run perturbation (rate or delay
  /// schedules installed by the engine backend).
  [[nodiscard]] SimLink& bottleneck_link() { return *bottleneck_; }

 private:
  void sample_trace();
  [[nodiscard]] std::uint64_t splitmix_seed();

  DumbbellConfig config_;
  Simulator simulator_;
  std::unique_ptr<PacketFilter> forward_loss_;
  std::unique_ptr<SimLink> bottleneck_;
  std::vector<std::unique_ptr<Sender>> senders_;
  std::vector<std::unique_ptr<Receiver>> receivers_;
  std::vector<double> flow_start_seconds_;
  std::vector<double> flow_stop_seconds_;

  StepMonitorFn step_monitor_;
  bool monitor_stopped_ = false;

  std::unique_ptr<fluid::Trace> trace_;
  std::vector<std::size_t> eval_frontier_;  ///< per-sender evaluated-MI cursor.
  std::size_t drops_at_last_sample_ = 0;
  std::size_t accepted_at_last_sample_ = 0;
  bool ran_ = false;
};

}  // namespace axiomcc::sim
