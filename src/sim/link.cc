#include "sim/link.h"

#include <utility>

#include "util/check.h"

namespace axiomcc::sim {

SimLink::SimLink(Simulator& simulator, double rate_bps,
                 SimTime propagation_delay,
                 std::unique_ptr<QueueDiscipline> queue, DeliverFn deliver)
    : simulator_(simulator),
      rate_bps_(rate_bps),
      propagation_delay_(propagation_delay),
      queue_(std::move(queue)),
      deliver_(std::move(deliver)) {
  AXIOMCC_EXPECTS_MSG(rate_bps > 0.0, "link rate must be positive");
  AXIOMCC_EXPECTS(propagation_delay.ns() >= 0);
  AXIOMCC_EXPECTS(queue_ != nullptr);
  AXIOMCC_EXPECTS(deliver_ != nullptr);
}

SimTime SimLink::serialization_time(int size_bytes) const {
  AXIOMCC_EXPECTS(size_bytes > 0);
  const double seconds = static_cast<double>(size_bytes) * 8.0 / rate_bps_;
  return SimTime::from_seconds(seconds);
}

void SimLink::send(const Packet& p) {
  if (!queue_->enqueue(p)) return;  // dropped; queue counts it
  ++accepted_;
  if (!transmitting_) begin_transmission();
}

void SimLink::begin_transmission() {
  const auto next = queue_->dequeue();
  if (!next) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const Packet packet = *next;
  const SimTime tx_done = serialization_time(packet.size_bytes);

  // Last bit leaves at tx_done; the packet arrives a propagation delay later.
  simulator_.schedule_in(tx_done, [this, packet] {
    simulator_.schedule_in(propagation_delay_, [this, packet] {
      ++delivered_;
      bytes_delivered_ += static_cast<std::size_t>(packet.size_bytes);
      deliver_(packet);
    });
    begin_transmission();  // start the next packet, if any
  });
}

}  // namespace axiomcc::sim
