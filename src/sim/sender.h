// sender.h — a window-based transport endpoint driven by a cc::Protocol.
//
// The sender is ACK-clocked: it keeps `in_flight < cwnd`. Loss is accounted
// per *monitor interval* (MI), the mechanism PCC and the paper's Robust-AIMD
// use: time is sliced into intervals of roughly one RTT; each packet is
// stamped with its MI; when an MI's ACKs have had time to return, the sender
// computes the interval's loss rate and average RTT and feeds them to the
// congestion-control protocol as one Observation — exactly the per-RTT-step
// feedback of the fluid model, but measured rather than oracle-provided.
//
// Packets the MI evaluation deems lost are written off (removed from
// in_flight) rather than retransmitted: the simulator measures congestion
// dynamics and goodput, not reliable-delivery semantics (see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cc/protocol.h"
#include "sim/event.h"
#include "sim/packet.h"
#include "util/units.h"

namespace axiomcc::sim {

/// Callback that injects a packet into the sender's first link.
using SendFn = std::function<void(const Packet&)>;

struct SenderConfig {
  int flow_id = 0;
  int mss_bytes = 1500;
  double initial_window = 2.0;
  double min_window = 1.0;
  double max_window = 1e7;
  /// MI length before the first RTT sample arrives.
  SimTime initial_mi = SimTime::from_millis(50);
  SimTime min_mi = SimTime::from_millis(1);
  SimTime max_mi = SimTime::from_millis(2000);
  /// The MI is evaluated `grace_factor` × max(srtt, MI length) after it ends,
  /// giving the last packets' ACKs time to return.
  double grace_factor = 1.5;
  /// Maximum packets emitted back-to-back by one send opportunity. Window
  /// jumps larger than this are spread across the RTT (micro-pacing), like
  /// TCP's maxburst/pacing — an un-paced jump would slam a burst into a
  /// shallow buffer that an equivalent fluid rate would not lose.
  int max_burst_packets = 6;
  /// TCP slow start: double the window each loss-free interval until the
  /// first loss (which sets ssthresh = cwnd/2 and hands control to the
  /// congestion-control protocol) or until `ssthresh` is reached. Off by
  /// default — the paper's model starts in congestion avoidance.
  bool slow_start = false;
  double initial_ssthresh = 1e9;
};

/// One completed monitor interval (the packet-level analogue of a fluid step).
struct MonitorRecord {
  SimTime start{0};
  SimTime end{0};
  double window = 0.0;      ///< cwnd while the MI was active.
  std::uint64_t sent = 0;   ///< data packets sent during the MI.
  std::uint64_t acked = 0;  ///< of those, ACKed by evaluation time.
  double loss_rate = 0.0;   ///< lost/(acked+lost) at evaluation time.
  double rtt_seconds = 0.0; ///< mean RTT sample of the MI's ACKs.
  bool ended = false;       ///< no longer the active interval.
  bool evaluated = false;   ///< observation consumed by the protocol.
};

class Sender {
 public:
  Sender(Simulator& simulator, const SenderConfig& config,
         std::unique_ptr<cc::Protocol> protocol, SendFn send);

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  /// Begins sending at absolute time `at`.
  void start(SimTime at);

  /// Stops the flow at absolute time `at` (flow-churn scenarios): no packets
  /// are emitted from then on, in-flight packets simply drain, and the
  /// protocol is no longer consulted. Must be called before the stop time.
  void stop_at(SimTime at);

  /// True from the scheduled start time until the scheduled stop (the window
  /// a trace sample should report this sender's cwnd; outside it the flow
  /// contributes nothing and samples read 0).
  [[nodiscard]] bool active() const { return begun_ && !stopped_; }

  /// Delivery point for returning ACKs.
  void on_ack(const Packet& ack);

  [[nodiscard]] int flow_id() const { return config_.flow_id; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double srtt_seconds() const { return srtt_seconds_; }
  [[nodiscard]] const cc::Protocol& protocol() const { return *protocol_; }

  /// True while the sender is still in slow start (always false when the
  /// config disables it).
  [[nodiscard]] bool in_slow_start() const { return in_slow_start_; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return bytes_acked_; }

  /// All monitor intervals so far (the last ones may be unevaluated).
  [[nodiscard]] const std::vector<MonitorRecord>& history() const {
    return monitor_records_;
  }

 private:
  enum class PacketState : std::uint8_t { kInFlight, kAcked, kWrittenOff };

  void try_send();
  void begin_monitor_interval();
  void end_monitor_interval(std::uint64_t mi);
  /// Writes off still-unACKed packets of an ended MI (grace-timer path).
  void writeoff_stragglers(std::uint64_t mi);
  /// Marks one in-flight packet as lost and classifies its congestion epoch.
  void record_loss(std::uint64_t seq);
  /// Computes the MI's loss/RTT observation and updates the window. Safe to
  /// call more than once; only the first call takes effect.
  void finalize_monitor_interval(std::uint64_t mi);
  [[nodiscard]] SimTime current_mi_duration() const;

  Simulator& simulator_;
  SenderConfig config_;
  std::unique_ptr<cc::Protocol> protocol_;
  SendFn send_;

  bool started_ = false;
  bool begun_ = false;    ///< the start event has fired.
  bool stopped_ = false;  ///< the stop event has fired.
  double cwnd_;
  bool in_slow_start_ = false;
  double ssthresh_ = 1e9;
  double srtt_seconds_ = 0.0;  ///< 0 until the first sample.
  std::uint64_t in_flight_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t current_mi_ = 0;
  /// Losses among packets with seq below this belong to an epoch the window
  /// already reacted to (one decrease per congestion epoch).
  std::uint64_t recovery_until_seq_ = 0;

  std::vector<PacketState> packet_states_;          // indexed by seq
  std::vector<std::uint64_t> packet_mi_;            // indexed by seq
  struct MiSeqRange {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
  };
  std::vector<MiSeqRange> mi_seqs_;                 // indexed by MI id
  std::vector<MonitorRecord> monitor_records_;
  std::vector<double> mi_rtt_sum_;                  // indexed by MI id
  std::vector<std::uint64_t> mi_rtt_count_;         // indexed by MI id
  std::vector<std::uint64_t> mi_lost_;              // indexed by MI id
  /// Of mi_lost_, those belonging to the CURRENT congestion epoch (packets
  /// sent after the last window reduction); only these may trigger another
  /// reduction.
  std::vector<std::uint64_t> mi_lost_new_epoch_;    // indexed by MI id
  bool pacing_rearm_scheduled_ = false;
  /// All packets below this seq are resolved (ACKed or written off). The
  /// delivery path is FIFO per flow, so an ACK for seq s proves every older
  /// unACKed packet was dropped — the dup-ACK analogue, giving one-RTT loss
  /// detection instead of waiting for the MI grace timer.
  std::uint64_t lowest_unresolved_seq_ = 0;
  std::uint64_t eval_cursor_ = 0;  ///< first not-yet-evaluated MI.

  std::uint64_t packets_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t bytes_acked_ = 0;
};

}  // namespace axiomcc::sim
