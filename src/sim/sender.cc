#include "sim/sender.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace axiomcc::sim {

Sender::Sender(Simulator& simulator, const SenderConfig& config,
               std::unique_ptr<cc::Protocol> protocol, SendFn send)
    : simulator_(simulator),
      config_(config),
      protocol_(std::move(protocol)),
      send_(std::move(send)),
      cwnd_(config.initial_window),
      in_slow_start_(config.slow_start),
      ssthresh_(config.initial_ssthresh) {
  AXIOMCC_EXPECTS(protocol_ != nullptr);
  AXIOMCC_EXPECTS(send_ != nullptr);
  AXIOMCC_EXPECTS(config.mss_bytes > 0);
  AXIOMCC_EXPECTS(config.min_window >= 1.0);
  AXIOMCC_EXPECTS(config.initial_window >= config.min_window);
  AXIOMCC_EXPECTS(config.max_window > config.min_window);
  AXIOMCC_EXPECTS(config.grace_factor >= 1.0);
}

void Sender::start(SimTime at) {
  AXIOMCC_EXPECTS_MSG(!started_, "sender already started");
  started_ = true;
  simulator_.schedule_at(at, [this] {
    begun_ = true;
    begin_monitor_interval();
    try_send();
  });
}

void Sender::stop_at(SimTime at) {
  AXIOMCC_EXPECTS_MSG(started_, "stop_at requires start first");
  simulator_.schedule_at(at, [this] { stopped_ = true; });
}

SimTime Sender::current_mi_duration() const {
  if (srtt_seconds_ <= 0.0) return config_.initial_mi;
  const SimTime srtt = SimTime::from_seconds(srtt_seconds_);
  return std::clamp(srtt, config_.min_mi, config_.max_mi);
}

void Sender::begin_monitor_interval() {
  current_mi_ = monitor_records_.size();
  MonitorRecord rec;
  rec.start = simulator_.now();
  rec.window = cwnd_;
  monitor_records_.push_back(rec);
  mi_seqs_.push_back(MiSeqRange{next_seq_, 0});
  mi_rtt_sum_.push_back(0.0);
  mi_rtt_count_.push_back(0);
  mi_lost_.push_back(0);
  mi_lost_new_epoch_.push_back(0);

  const std::uint64_t mi = current_mi_;
  simulator_.schedule_in(current_mi_duration(),
                         [this, mi] { end_monitor_interval(mi); });
}

void Sender::end_monitor_interval(std::uint64_t mi) {
  MonitorRecord& rec = monitor_records_[mi];
  if (rec.ended) return;  // force-ended by loss detection; timer is stale
  rec.ended = true;
  rec.end = simulator_.now();
  // The next MI starts immediately — unless the flow was churned away, in
  // which case the MI chain (and its timer events) ends here.
  if (!stopped_) begin_monitor_interval();

  // Give the tail of the finished MI one-and-a-half RTTs for its ACKs; if
  // everything resolves earlier (all ACKed, or a loss is detected via the
  // FIFO gap rule), on_ack finalizes the interval without waiting.
  const SimTime grace = SimTime::from_seconds(
      config_.grace_factor *
      std::max(current_mi_duration().seconds(),
               srtt_seconds_ > 0.0 ? srtt_seconds_ : 0.0));
  simulator_.schedule_in(grace, [this, mi] {
    writeoff_stragglers(mi);
    finalize_monitor_interval(mi);
    try_send();
  });
}

void Sender::writeoff_stragglers(std::uint64_t mi) {
  const MiSeqRange range = mi_seqs_[mi];
  for (std::uint64_t seq = range.first; seq < range.first + range.count;
       ++seq) {
    if (packet_states_[seq] == PacketState::kInFlight) {
      record_loss(seq);
    }
  }
}

void Sender::record_loss(std::uint64_t seq) {
  AXIOMCC_EXPECTS(packet_states_[seq] == PacketState::kInFlight);
  packet_states_[seq] = PacketState::kWrittenOff;
  AXIOMCC_ENSURES(in_flight_ > 0);
  --in_flight_;
  const std::uint64_t mi = packet_mi_[seq];
  ++mi_lost_[mi];
  // Epoch classification happens at detection time: the recovery marker only
  // ever advances, and a packet sent before the last window reduction can
  // never become "new" again.
  if (seq >= recovery_until_seq_) ++mi_lost_new_epoch_[mi];
}

void Sender::finalize_monitor_interval(std::uint64_t mi) {
  MonitorRecord& rec = monitor_records_[mi];
  if (rec.evaluated) return;

  // Loss estimate: drops are contiguous queue-overflow bursts, so packets
  // still in flight at a forced (loss-triggered) finalization are expected
  // to be delivered — lost/sent is the interval's final rate to first
  // order, where lost/(acked+lost) would wildly overestimate it.
  const std::uint64_t lost = mi_lost_[mi];
  const std::uint64_t resolved = rec.acked + lost;
  rec.loss_rate =
      rec.sent > 0 ? static_cast<double>(lost) / static_cast<double>(rec.sent)
      : resolved > 0
          ? static_cast<double>(lost) / static_cast<double>(resolved)
          : 0.0;
  rec.rtt_seconds = mi_rtt_count_[mi] > 0
                        ? mi_rtt_sum_[mi] / static_cast<double>(mi_rtt_count_[mi])
                        : srtt_seconds_;
  rec.evaluated = true;

  // An interval that carried no data gives the protocol no feedback —
  // feeding it a fabricated "no loss" step would grow the window through a
  // total blackout. Skip the update (TCP's recovery freeze behaves alike).
  if (rec.sent == 0) return;

  // One decrease per congestion epoch (TCP fast-recovery semantics): a loss
  // burst at the queue spans several monitor intervals' packets, but the
  // window must only react once. Only losses among packets sent AFTER the
  // last window reduction (classified at detection time in record_loss) may
  // trigger another one; pure old-epoch loss is reported as loss-free.
  const bool loss_already_handled = mi_lost_new_epoch_[mi] == 0;
  const double effective_loss = loss_already_handled ? 0.0 : rec.loss_rate;

  // TCP slow start: exponential growth handled by the transport, not the
  // congestion-control protocol, until the first loss or ssthresh.
  if (in_slow_start_) {
    if (effective_loss > 0.0) {
      ssthresh_ = std::max(cwnd_ / 2.0, config_.min_window);
      in_slow_start_ = false;  // fall through: the protocol reacts to the loss
    } else {
      cwnd_ = std::min(cwnd_ * 2.0, config_.max_window);
      if (cwnd_ >= ssthresh_) {
        cwnd_ = std::min(cwnd_, ssthresh_);
        in_slow_start_ = false;
      }
      return;
    }
  }

  const double previous_cwnd = cwnd_;
  const cc::Observation obs{cwnd_, effective_loss, rec.rtt_seconds};
  cwnd_ = std::clamp(protocol_->next_window(obs), config_.min_window,
                     config_.max_window);
  if (effective_loss > 0.0 && cwnd_ < previous_cwnd) {
    recovery_until_seq_ = next_seq_;
  }
}

void Sender::try_send() {
  if (stopped_) return;  // churned away: in-flight packets just drain.
  // ACK-clocked: keep at most floor-with-tolerance(cwnd) packets in flight —
  // but never blast more than max_burst_packets back-to-back; the remainder
  // of a large window jump is micro-paced across a fraction of the RTT.
  int burst = 0;
  while (static_cast<double>(in_flight_) + 1.0 <= cwnd_ + 1e-9) {
    if (burst >= config_.max_burst_packets) {
      if (!pacing_rearm_scheduled_) {
        pacing_rearm_scheduled_ = true;
        const double srtt =
            srtt_seconds_ > 0.0 ? srtt_seconds_ : config_.initial_mi.seconds();
        simulator_.schedule_in(SimTime::from_seconds(srtt / 10.0), [this] {
          pacing_rearm_scheduled_ = false;
          try_send();
        });
      }
      return;
    }
    ++burst;
    Packet p;
    p.flow_id = config_.flow_id;
    p.seq = next_seq_++;
    p.size_bytes = config_.mss_bytes;
    p.is_ack = false;
    p.sent_at = simulator_.now();
    p.monitor_interval = current_mi_;

    packet_states_.push_back(PacketState::kInFlight);
    packet_mi_.push_back(current_mi_);
    ++mi_seqs_[current_mi_].count;
    ++monitor_records_[current_mi_].sent;
    ++in_flight_;
    ++packets_sent_;
    send_(p);
  }
}

void Sender::on_ack(const Packet& ack) {
  AXIOMCC_EXPECTS(ack.is_ack);
  AXIOMCC_EXPECTS(ack.seq < packet_states_.size());
  ++acks_received_;

  PacketState& state = packet_states_[ack.seq];
  if (state == PacketState::kAcked) return;  // duplicate; FIFO paths don't dup,
                                             // but stay defensive
  const bool was_in_flight = state == PacketState::kInFlight;
  state = PacketState::kAcked;
  if (was_in_flight) {
    AXIOMCC_ENSURES(in_flight_ > 0);
    --in_flight_;
  }
  bytes_acked_ += static_cast<std::size_t>(config_.mss_bytes);

  // RTT sample from the echoed send timestamp.
  const double sample = (simulator_.now() - ack.sent_at).seconds();
  srtt_seconds_ =
      srtt_seconds_ <= 0.0 ? sample : 0.875 * srtt_seconds_ + 0.125 * sample;

  // Credit the MI the packet belonged to. The delivery count always updates
  // (flow reports want true goodput), but a late ACK must not retroactively
  // change an already-consumed Observation's RTT sample set.
  const std::uint64_t mi = packet_mi_[ack.seq];
  ++monitor_records_[mi].acked;
  if (!monitor_records_[mi].evaluated) {
    mi_rtt_sum_[mi] += sample;
    ++mi_rtt_count_[mi];
  }

  // The per-flow path is FIFO: this ACK proves every older unACKed packet
  // was dropped. Write them off now (dup-ACK-style one-RTT loss detection)
  // instead of waiting for the MI grace timer.
  while (lowest_unresolved_seq_ < ack.seq) {
    const std::uint64_t seq = lowest_unresolved_seq_;
    if (packet_states_[seq] == PacketState::kInFlight) record_loss(seq);
    ++lowest_unresolved_seq_;
  }
  while (lowest_unresolved_seq_ < packet_states_.size() &&
         packet_states_[lowest_unresolved_seq_] != PacketState::kInFlight) {
    ++lowest_unresolved_seq_;
  }

  // A fresh (new-epoch) loss in the ACTIVE interval: react now, as TCP's
  // fast retransmit does — close the interval on the spot and consume its
  // observation, instead of letting the window keep growing until the
  // interval timer fires. Same trustworthiness guard as above: the early
  // verdict needs a majority of the interval resolved.
  {
    const MonitorRecord& active_rec = monitor_records_[current_mi_];
    const std::uint64_t resolved =
        active_rec.acked + mi_lost_[current_mi_];
    if (mi_lost_new_epoch_[current_mi_] > 0 &&
        2 * resolved >= active_rec.sent) {
      const std::uint64_t active = current_mi_;
      end_monitor_interval(active);
      finalize_monitor_interval(active);
    }
  }

  // Finalize ended monitor intervals as soon as their verdict is known:
  // either every packet is accounted for, or a loss has been detected (TCP
  // reacts to the first loss signal, not to the end of an accounting
  // period) AND a majority of the interval has resolved — the lost/sent
  // estimate is only trustworthy once most packets have reported back;
  // finalizing a barely-resolved interval under sustained overload would
  // report a sliver of the true loss rate.
  while (eval_cursor_ < current_mi_) {
    const MonitorRecord& rec = monitor_records_[eval_cursor_];
    if (rec.evaluated) {
      ++eval_cursor_;
      continue;
    }
    const std::uint64_t resolved = rec.acked + mi_lost_[eval_cursor_];
    const bool fully_resolved = resolved >= rec.sent;
    const bool loss_verdict_trustworthy =
        mi_lost_new_epoch_[eval_cursor_] > 0 && 2 * resolved >= rec.sent;
    if (fully_resolved || loss_verdict_trustworthy) {
      finalize_monitor_interval(eval_cursor_);
      ++eval_cursor_;
    } else {
      break;
    }
  }

  try_send();
}

}  // namespace axiomcc::sim
