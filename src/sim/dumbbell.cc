#include "sim/dumbbell.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace axiomcc::sim {

DumbbellConfig dumbbell_config_from_link(const fluid::LinkParams& link,
                                         int mss_bytes) {
  AXIOMCC_EXPECTS(mss_bytes > 0);
  DumbbellConfig dc;
  dc.mss_bytes = mss_bytes;
  // B (MSS/s) -> Mbps via the shared Bandwidth unit, so the round-trip
  // through make_link_mbps is exact.
  dc.bottleneck_mbps = link.bandwidth.mbps(mss_bytes);
  // Θ is one-way; the dumbbell's rtt_ms is the two-way propagation delay.
  dc.rtt_ms = (link.propagation_delay * 2.0).millis();
  // Buffer: MSS -> whole packets (1 MSS = 1 packet); never below 1 packet.
  dc.buffer_packets = static_cast<std::size_t>(
      std::max<long long>(1, std::llround(link.buffer_mss)));
  return dc;
}

DumbbellExperiment::DumbbellExperiment(const DumbbellConfig& config)
    : config_(config) {
  AXIOMCC_EXPECTS(config.bottleneck_mbps > 0.0);
  AXIOMCC_EXPECTS(config.rtt_ms > 0.0);
  AXIOMCC_EXPECTS(config.buffer_packets > 0);
  AXIOMCC_EXPECTS(config.mss_bytes > 0);
  AXIOMCC_EXPECTS(config.duration_seconds > 0.0);
  AXIOMCC_EXPECTS(config.tail_fraction >= 0.0 && config.tail_fraction < 1.0);

  forward_loss_ = std::make_unique<BernoulliPacketLoss>(
      config.random_loss_rate, splitmix_seed());

  std::unique_ptr<QueueDiscipline> queue;
  if (config.use_red) {
    REDQueue::Params red = config.red;
    red.capacity_packets = config.buffer_packets;
    queue = std::make_unique<REDQueue>(red);
  } else {
    queue = std::make_unique<DropTailQueue>(config.buffer_packets);
  }

  const SimTime forward_delay = SimTime::from_millis(config.rtt_ms / 2.0);
  bottleneck_ = std::make_unique<SimLink>(
      simulator_, config.bottleneck_mbps * 1e6, forward_delay, std::move(queue),
      [this](const Packet& p) {
        if (forward_loss_->drop(p)) return;
        AXIOMCC_EXPECTS(p.flow_id >= 0 &&
                        p.flow_id < static_cast<int>(receivers_.size()));
        receivers_[p.flow_id]->on_packet(p);
      });
}

std::uint64_t DumbbellExperiment::splitmix_seed() {
  // Derive the loss channel's stream from the experiment seed so that
  // distinct seeds give independent loss processes.
  std::uint64_t s = config_.seed;
  return splitmix64_next(s);
}

int DumbbellExperiment::add_flow(std::unique_ptr<cc::Protocol> protocol,
                                 double start_seconds, double initial_window,
                                 double stop_seconds) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_flow must precede run()");
  AXIOMCC_EXPECTS(protocol != nullptr);
  AXIOMCC_EXPECTS(start_seconds >= 0.0);
  AXIOMCC_EXPECTS(stop_seconds < 0.0 || stop_seconds > start_seconds);

  const int flow_id = num_flows();

  SenderConfig sc;
  sc.flow_id = flow_id;
  sc.mss_bytes = config_.mss_bytes;
  sc.initial_window = initial_window;
  sc.max_window = config_.max_window_mss;
  // Before the first RTT sample, pace MIs at something of the order of the
  // configured propagation RTT.
  sc.initial_mi = SimTime::from_millis(config_.rtt_ms);

  const SimTime reverse_delay = SimTime::from_millis(config_.rtt_ms / 2.0);
  receivers_.push_back(
      std::make_unique<Receiver>([this, reverse_delay](const Packet& ack) {
        simulator_.schedule_in(reverse_delay, [this, ack] {
          senders_[ack.flow_id]->on_ack(ack);
        });
      }));

  senders_.push_back(std::make_unique<Sender>(
      simulator_, sc, std::move(protocol),
      [this](const Packet& p) { bottleneck_->send(p); }));
  flow_start_seconds_.push_back(start_seconds);
  flow_stop_seconds_.push_back(stop_seconds);
  return flow_id;
}

void DumbbellExperiment::set_step_monitor(StepMonitorFn monitor) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_step_monitor must precede run()");
  AXIOMCC_EXPECTS(monitor != nullptr);
  step_monitor_ = std::move(monitor);
}

void DumbbellExperiment::set_forward_filter(
    std::unique_ptr<PacketFilter> filter) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_forward_filter must precede run()");
  AXIOMCC_EXPECTS(filter != nullptr);
  forward_loss_ = std::move(filter);
}

double DumbbellExperiment::capacity_mss() const {
  const double rate_bps = config_.bottleneck_mbps * 1e6;
  const double rtt_s = config_.rtt_ms / 1e3;
  return rate_bps * rtt_s / (8.0 * static_cast<double>(config_.mss_bytes));
}

void DumbbellExperiment::sample_trace() {
  const int n = num_flows();
  std::vector<double> windows(n);
  std::vector<double> observed_loss(n);
  double rtt_sum = 0.0;
  int rtt_count = 0;

  for (int i = 0; i < n; ++i) {
    const Sender& s = *senders_[i];
    // A flow that has not started yet (or was churned away) contributes no
    // window — matching the fluid model's churn semantics.
    windows[i] = s.active() ? s.cwnd() : 0.0;
    // Advance to the most recently evaluated monitor interval.
    const auto& records = s.history();
    std::size_t& frontier = eval_frontier_[i];
    while (frontier < records.size() && records[frontier].evaluated) {
      ++frontier;
    }
    observed_loss[i] = frontier > 0 ? records[frontier - 1].loss_rate : 0.0;
    if (s.srtt_seconds() > 0.0) {
      rtt_sum += s.srtt_seconds();
      ++rtt_count;
    }
  }

  // Aggregate congestion loss over the sampling window from queue counters.
  const std::size_t drops = bottleneck_->packets_dropped();
  const std::size_t accepted = bottleneck_->packets_accepted();
  const std::size_t d_drops = drops - drops_at_last_sample_;
  const std::size_t d_offered =
      (accepted - accepted_at_last_sample_) + d_drops;
  drops_at_last_sample_ = drops;
  accepted_at_last_sample_ = accepted;
  const double congestion_loss =
      d_offered > 0
          ? static_cast<double>(d_drops) / static_cast<double>(d_offered)
          : 0.0;

  const double rtt =
      rtt_count > 0 ? rtt_sum / static_cast<double>(rtt_count)
                    : config_.rtt_ms / 1e3;
  trace_->add_step(windows, rtt, congestion_loss, observed_loss);

  if (step_monitor_ && !monitor_stopped_) {
    const long step = static_cast<long>(trace_->num_steps()) - 1;
    if (!step_monitor_(step, std::span<const double>(windows), rtt,
                       congestion_loss)) {
      monitor_stopped_ = true;
      simulator_.request_stop();
    }
  }
}

void DumbbellExperiment::run() {
  AXIOMCC_EXPECTS_MSG(!ran_, "run() may be called only once");
  AXIOMCC_EXPECTS_MSG(num_flows() > 0, "add at least one flow before run()");
  ran_ = true;

  const int n = num_flows();
  trace_ = std::make_unique<fluid::Trace>(n, capacity_mss(),
                                          config_.rtt_ms / 1e3);
  eval_frontier_.assign(n, 0);

  for (int i = 0; i < n; ++i) {
    senders_[i]->start(SimTime::from_seconds(flow_start_seconds_[i]));
    if (flow_stop_seconds_[i] >= 0.0) {
      senders_[i]->stop_at(SimTime::from_seconds(flow_stop_seconds_[i]));
    }
  }

  const double interval_ms = config_.sample_interval_ms > 0.0
                                 ? config_.sample_interval_ms
                                 : config_.rtt_ms;
  const SimTime interval = SimTime::from_millis(interval_ms);
  const SimTime end = SimTime::from_seconds(config_.duration_seconds);

  for (SimTime t = interval; t <= end; t = t + interval) {
    simulator_.schedule_at(t, [this] { sample_trace(); });
  }

  simulator_.run_until(end);
}

const fluid::Trace& DumbbellExperiment::trace() const {
  AXIOMCC_EXPECTS_MSG(trace_ != nullptr, "trace() requires run() first");
  return *trace_;
}

const Sender& DumbbellExperiment::sender(int flow) const {
  AXIOMCC_EXPECTS(flow >= 0 && flow < num_flows());
  return *senders_[flow];
}

double DumbbellExperiment::bottleneck_utilization() const {
  AXIOMCC_EXPECTS_MSG(ran_, "bottleneck_utilization() requires run() first");
  const double delivered_bits =
      static_cast<double>(bottleneck_->bytes_delivered()) * 8.0;
  const double capacity_bits =
      config_.bottleneck_mbps * 1e6 * config_.duration_seconds;
  return delivered_bits / capacity_bits;
}

std::vector<FlowReport> DumbbellExperiment::flow_reports() const {
  AXIOMCC_EXPECTS_MSG(ran_, "flow_reports() requires run() first");
  std::vector<FlowReport> reports;
  reports.reserve(senders_.size());

  const double tail_start_s =
      config_.duration_seconds * config_.tail_fraction;

  for (const auto& sender : senders_) {
    FlowReport r;
    r.protocol_name = sender->protocol().name();

    double window_sum = 0.0;
    double rtt_sum = 0.0;
    std::uint64_t sent = 0;
    std::uint64_t acked = 0;
    std::size_t count = 0;
    for (const MonitorRecord& rec : sender->history()) {
      if (!rec.evaluated) continue;
      if (rec.start.seconds() < tail_start_s) continue;
      window_sum += rec.window;
      rtt_sum += rec.rtt_seconds;
      sent += rec.sent;
      acked += rec.acked;
      ++count;
    }
    if (count > 0) {
      r.avg_window_mss = window_sum / static_cast<double>(count);
      r.avg_rtt_ms = rtt_sum / static_cast<double>(count) * 1e3;
      r.loss_rate = sent > 0 ? 1.0 - static_cast<double>(acked) /
                                         static_cast<double>(sent)
                             : 0.0;
      const double tail_seconds =
          config_.duration_seconds - tail_start_s;
      r.throughput_mbps = static_cast<double>(acked) *
                          static_cast<double>(config_.mss_bytes) * 8.0 /
                          tail_seconds / 1e6;
    }
    reports.push_back(std::move(r));
  }
  return reports;
}

}  // namespace axiomcc::sim
