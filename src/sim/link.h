// link.h — a unidirectional link with a queue, a serialization rate, and a
// propagation delay.
//
// Packets admitted by the queue are transmitted one at a time at `rate_bps`
// and delivered `propagation_delay` after their last bit leaves. This is the
// store-and-forward output-port model ns-3's point-to-point links use.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "sim/event.h"
#include "sim/packet.h"
#include "sim/queue.h"
#include "util/units.h"

namespace axiomcc::sim {

/// Downstream delivery callback.
using DeliverFn = std::function<void(const Packet&)>;

class SimLink {
 public:
  SimLink(Simulator& simulator, double rate_bps, SimTime propagation_delay,
          std::unique_ptr<QueueDiscipline> queue, DeliverFn deliver);

  /// Offers a packet to the link; it is queued, transmitted, and delivered,
  /// or dropped by the queue discipline.
  void send(const Packet& p);

  [[nodiscard]] double rate_bps() const { return rate_bps_; }

  /// Retargets the serialization rate (stress scenarios: outages, capacity
  /// oscillation). Takes effect from the next packet transmission; the
  /// packet currently on the wire keeps its original serialization time.
  void set_rate_bps(double rate_bps) {
    AXIOMCC_EXPECTS(rate_bps > 0.0);
    rate_bps_ = rate_bps;
  }
  [[nodiscard]] SimTime propagation_delay() const { return propagation_delay_; }

  /// Retargets the propagation delay (stress scenarios: RTT inflation after
  /// a path change). Takes effect for packets delivered from now on; packets
  /// already past the queue keep their original delay.
  void set_propagation_delay(SimTime delay) {
    AXIOMCC_EXPECTS(delay.ns() >= 0);
    propagation_delay_ = delay;
  }
  [[nodiscard]] const QueueDiscipline& queue() const { return *queue_; }

  [[nodiscard]] std::size_t packets_accepted() const { return accepted_; }
  [[nodiscard]] std::size_t packets_delivered() const { return delivered_; }
  [[nodiscard]] std::size_t packets_dropped() const { return queue_->drops(); }
  [[nodiscard]] std::size_t bytes_delivered() const { return bytes_delivered_; }

  /// Serialization time of a packet of `size_bytes` at this link's rate.
  [[nodiscard]] SimTime serialization_time(int size_bytes) const;

 private:
  void begin_transmission();

  Simulator& simulator_;
  double rate_bps_;
  SimTime propagation_delay_;
  std::unique_ptr<QueueDiscipline> queue_;
  DeliverFn deliver_;

  bool transmitting_ = false;
  std::size_t accepted_ = 0;
  std::size_t delivered_ = 0;
  std::size_t bytes_delivered_ = 0;
};

}  // namespace axiomcc::sim
