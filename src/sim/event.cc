#include "sim/event.h"

#include <utility>

namespace axiomcc::sim {

void Simulator::schedule_at(SimTime t, EventFn fn) {
  AXIOMCC_EXPECTS_MSG(t >= now_, "cannot schedule an event in the past");
  AXIOMCC_EXPECTS(fn != nullptr);
  queue_.push(Event{t, next_sequence_++, std::move(fn)});
}

void Simulator::schedule_in(SimTime delay, EventFn fn) {
  AXIOMCC_EXPECTS_MSG(delay.ns() >= 0, "delay must be non-negative");
  schedule_at(now_ + delay, std::move(fn));
}

std::size_t Simulator::run_until(SimTime end) {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.top().time <= end) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    ++executed;
    event.fn();
  }
  if (!stop_requested_ && now_ < end) now_ = end;
  return executed;
}

std::size_t Simulator::run() {
  stop_requested_ = false;
  std::size_t executed = 0;
  while (!stop_requested_ && !queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    ++executed;
    event.fn();
  }
  return executed;
}

}  // namespace axiomcc::sim
