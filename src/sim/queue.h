// queue.h — queueing disciplines for link buffers.
//
// The paper's model is FIFO droptail; RED is provided as an extension for the
// ablation benches (DESIGN.md Section 5).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "sim/packet.h"
#include "util/rng.h"

namespace axiomcc::sim {

/// A bounded packet queue. enqueue returns false when the packet is dropped.
class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  /// Attempts to admit `p`; returns false on drop.
  virtual bool enqueue(const Packet& p) = 0;

  /// Removes the next packet to transmit, or nullopt when empty.
  virtual std::optional<Packet> dequeue() = 0;

  [[nodiscard]] virtual std::size_t size_packets() const = 0;
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Total packets dropped by admission control so far.
  [[nodiscard]] std::size_t drops() const { return drops_; }

 protected:
  void count_drop() { ++drops_; }

 private:
  std::size_t drops_ = 0;
};

/// FIFO droptail with a capacity in packets (the paper's τ, in MSS).
class DropTailQueue final : public QueueDiscipline {
 public:
  explicit DropTailQueue(std::size_t capacity_packets);

  bool enqueue(const Packet& p) override;
  std::optional<Packet> dequeue() override;
  [[nodiscard]] std::size_t size_packets() const override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::string name() const override { return "droptail"; }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::deque<Packet> queue_;
};

/// Random Early Detection (Floyd & Jacobson 1993): probabilistic drops that
/// rise linearly between `min_threshold` and `max_threshold` of average
/// occupancy (EWMA with weight `queue_weight`), hard drops beyond.
class REDQueue final : public QueueDiscipline {
 public:
  struct Params {
    std::size_t capacity_packets = 100;
    double min_threshold = 20.0;   ///< packets
    double max_threshold = 80.0;   ///< packets
    double max_drop_probability = 0.1;
    double queue_weight = 0.002;   ///< EWMA weight for the average queue
    std::uint64_t seed = 1;
  };

  explicit REDQueue(const Params& params);

  bool enqueue(const Packet& p) override;
  std::optional<Packet> dequeue() override;
  [[nodiscard]] std::size_t size_packets() const override {
    return queue_.size();
  }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::string name() const override { return "red"; }

  /// The current EWMA of queue occupancy (exposed for tests).
  [[nodiscard]] double average_queue() const { return avg_queue_; }

 private:
  Params params_;
  std::size_t bytes_ = 0;
  double avg_queue_ = 0.0;
  std::size_t count_since_drop_ = 0;
  Rng rng_;
  std::deque<Packet> queue_;
};

}  // namespace axiomcc::sim
