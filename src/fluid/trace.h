// trace.h — the recorded evolution of a simulation run.
//
// A Trace is the common currency between the simulators (fluid and
// packet-level) and the axiomatic metric estimators in src/core: per step it
// stores every sender's window, the step's RTT, the congestion loss rate, and
// each sender's observed (congestion + injected) loss rate.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/check.h"

namespace axiomcc::fluid {

class Trace {
 public:
  Trace(int num_senders, double link_capacity_mss, double min_rtt_seconds)
      : num_senders_(num_senders),
        link_capacity_mss_(link_capacity_mss),
        min_rtt_seconds_(min_rtt_seconds),
        window_series_(static_cast<std::size_t>(num_senders)),
        observed_loss_series_(static_cast<std::size_t>(num_senders)) {
    AXIOMCC_EXPECTS(num_senders > 0);
  }

  /// Appends one step. `windows` and `observed_loss` are per-sender.
  void add_step(std::span<const double> windows, double rtt_seconds,
                double congestion_loss, std::span<const double> observed_loss) {
    AXIOMCC_EXPECTS(windows.size() == static_cast<std::size_t>(num_senders_));
    AXIOMCC_EXPECTS(observed_loss.size() ==
                    static_cast<std::size_t>(num_senders_));
    double total = 0.0;
    for (int i = 0; i < num_senders_; ++i) {
      window_series_[i].push_back(windows[i]);
      observed_loss_series_[i].push_back(observed_loss[i]);
      total += windows[i];
    }
    total_window_.push_back(total);
    rtt_seconds_.push_back(rtt_seconds);
    congestion_loss_.push_back(congestion_loss);
  }

  /// Reserves storage for `steps` steps (optional).
  void reserve(std::size_t steps) {
    for (auto& s : window_series_) s.reserve(steps);
    for (auto& s : observed_loss_series_) s.reserve(steps);
    total_window_.reserve(steps);
    rtt_seconds_.reserve(steps);
    congestion_loss_.reserve(steps);
  }

  [[nodiscard]] int num_senders() const { return num_senders_; }
  [[nodiscard]] std::size_t num_steps() const { return total_window_.size(); }

  /// The link capacity C the run used (for efficiency scores).
  [[nodiscard]] double link_capacity_mss() const { return link_capacity_mss_; }
  /// The link's minimum RTT 2Θ (for latency scores).
  [[nodiscard]] double min_rtt_seconds() const { return min_rtt_seconds_; }

  [[nodiscard]] std::span<const double> windows(int sender) const {
    AXIOMCC_EXPECTS(sender >= 0 && sender < num_senders_);
    return window_series_[sender];
  }
  [[nodiscard]] std::span<const double> observed_loss(int sender) const {
    AXIOMCC_EXPECTS(sender >= 0 && sender < num_senders_);
    return observed_loss_series_[sender];
  }
  [[nodiscard]] std::span<const double> total_window() const {
    return total_window_;
  }
  [[nodiscard]] std::span<const double> rtt_seconds() const {
    return rtt_seconds_;
  }
  [[nodiscard]] std::span<const double> congestion_loss() const {
    return congestion_loss_;
  }

 private:
  int num_senders_;
  double link_capacity_mss_;
  double min_rtt_seconds_;
  std::vector<std::vector<double>> window_series_;
  std::vector<std::vector<double>> observed_loss_series_;
  std::vector<double> total_window_;
  std::vector<double> rtt_seconds_;
  std::vector<double> congestion_loss_;
};

}  // namespace axiomcc::fluid
