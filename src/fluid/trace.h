// trace.h — the recorded evolution of a simulation run.
//
// A Trace is the common currency between the simulators (fluid and
// packet-level) and the axiomatic metric estimators in src/core: per step it
// stores every sender's window, the step's RTT, the congestion loss rate, and
// each sender's observed (congestion + injected) loss rate.
//
// Two detail levels exist. kFull (the default) keeps every sender's series —
// O(n·steps) memory, what the estimators consume. kAggregate keeps per-step
// population statistics (sum/min/max/mean over active senders plus the
// active-sender count) and full series for only a small tracked subset, so a
// million-sender run costs O(steps + k·steps) trace memory. Per-sender
// accessors in aggregate mode resolve tracked sender ids and reject the rest.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "util/check.h"

namespace axiomcc::fluid {

/// How much of a run a Trace retains.
enum class TraceDetail {
  kFull,       ///< every sender's window/loss series (the default).
  kAggregate,  ///< per-step population stats + k tracked sender series.
};

/// The deterministic tracked-sender selection for aggregate traces: k ids
/// spread evenly across [0, n) (id floor(j·n/k)), always including sender 0.
/// Independent of execution mode and job count.
[[nodiscard]] inline std::vector<int> default_tracked_senders(int n, int k) {
  AXIOMCC_EXPECTS(n > 0);
  AXIOMCC_EXPECTS(k > 0);
  if (k >= n) {
    std::vector<int> all(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }
  std::vector<int> ids(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    ids[static_cast<std::size_t>(j)] =
        static_cast<int>(static_cast<long>(j) * n / k);
  }
  return ids;
}

class Trace {
 public:
  /// Full-detail trace (every sender's series).
  Trace(int num_senders, double link_capacity_mss, double min_rtt_seconds)
      : Trace(num_senders, link_capacity_mss, min_rtt_seconds,
              TraceDetail::kFull, {}) {}

  /// Detail-selecting constructor. `tracked` (aggregate mode only) is the
  /// strictly ascending list of sender ids whose full series are kept;
  /// empty tracked in aggregate mode keeps statistics only.
  Trace(int num_senders, double link_capacity_mss, double min_rtt_seconds,
        TraceDetail detail, std::vector<int> tracked)
      : num_senders_(num_senders),
        link_capacity_mss_(link_capacity_mss),
        min_rtt_seconds_(min_rtt_seconds),
        detail_(detail),
        tracked_(std::move(tracked)) {
    AXIOMCC_EXPECTS(num_senders > 0);
    if (detail_ == TraceDetail::kFull) {
      AXIOMCC_EXPECTS(tracked_.empty());
      tracked_.resize(static_cast<std::size_t>(num_senders));
      for (int i = 0; i < num_senders; ++i) {
        tracked_[static_cast<std::size_t>(i)] = i;
      }
    } else {
      int prev = -1;
      for (const int id : tracked_) {
        AXIOMCC_EXPECTS_MSG(id > prev && id < num_senders,
                            "tracked sender ids must ascend within [0, n)");
        prev = id;
      }
    }
    window_series_.resize(tracked_.size());
    observed_loss_series_.resize(tracked_.size());
  }

  /// Appends one step. `windows` and `observed_loss` are per-sender (full
  /// population in either mode); aggregate mode reduces them here.
  void add_step(std::span<const double> windows, double rtt_seconds,
                double congestion_loss, std::span<const double> observed_loss) {
    AXIOMCC_EXPECTS(windows.size() == static_cast<std::size_t>(num_senders_));
    AXIOMCC_EXPECTS(observed_loss.size() ==
                    static_cast<std::size_t>(num_senders_));
    if (detail_ == TraceDetail::kFull) {
      double total = 0.0;
      for (int i = 0; i < num_senders_; ++i) {
        window_series_[static_cast<std::size_t>(i)].push_back(windows[i]);
        observed_loss_series_[static_cast<std::size_t>(i)].push_back(
            observed_loss[i]);
        total += windows[i];
      }
      total_window_.push_back(total);
      rtt_seconds_.push_back(rtt_seconds);
      congestion_loss_.push_back(congestion_loss);
      return;
    }
    // One ascending pass; the serial left-fold for the total matches the
    // simulator's own aggregate-window fold bit for bit, and min/max/count
    // are exactly associative, so a batch execution that reduces in fixed
    // shard order reproduces these values exactly.
    double total = 0.0;
    double wmin = std::numeric_limits<double>::infinity();
    double wmax = -std::numeric_limits<double>::infinity();
    long active = 0;
    for (int i = 0; i < num_senders_; ++i) {
      const double w = windows[i];
      total += w;
      if (w > 0.0) {
        ++active;
        if (w < wmin) wmin = w;
        if (w > wmax) wmax = w;
      }
    }
    add_step_aggregate(total, wmin, wmax, active, rtt_seconds, congestion_loss,
                       windows, observed_loss);
  }

  /// Aggregate-mode append with precomputed population statistics (the batch
  /// simulator folds them inside its sharded loops). `window_min`/`max` are
  /// over active (window > 0) senders and may be ±inf when none is active;
  /// `full_windows`/`full_observed` still span the whole population — only
  /// the tracked ids are read from them.
  void add_step_aggregate(double total_window, double window_min,
                          double window_max, long active_senders,
                          double rtt_seconds, double congestion_loss,
                          std::span<const double> full_windows,
                          std::span<const double> full_observed) {
    AXIOMCC_EXPECTS(detail_ == TraceDetail::kAggregate);
    AXIOMCC_EXPECTS(full_windows.size() ==
                    static_cast<std::size_t>(num_senders_));
    AXIOMCC_EXPECTS(full_observed.size() ==
                    static_cast<std::size_t>(num_senders_));
    for (std::size_t j = 0; j < tracked_.size(); ++j) {
      const auto id = static_cast<std::size_t>(tracked_[j]);
      window_series_[j].push_back(full_windows[id]);
      observed_loss_series_[j].push_back(full_observed[id]);
    }
    push_aggregate_stats(total_window, window_min, window_max, active_senders,
                         rtt_seconds, congestion_loss);
  }

  /// Aggregate-mode append when the caller has already gathered the tracked
  /// senders' values (the uniform-cohort batch path never materializes
  /// per-sender arrays). `tracked_windows`/`tracked_observed` are in
  /// tracked_senders() order.
  void add_step_aggregate_tracked(double total_window, double window_min,
                                  double window_max, long active_senders,
                                  double rtt_seconds, double congestion_loss,
                                  std::span<const double> tracked_windows,
                                  std::span<const double> tracked_observed) {
    AXIOMCC_EXPECTS(detail_ == TraceDetail::kAggregate);
    AXIOMCC_EXPECTS(tracked_windows.size() == tracked_.size());
    AXIOMCC_EXPECTS(tracked_observed.size() == tracked_.size());
    for (std::size_t j = 0; j < tracked_.size(); ++j) {
      window_series_[j].push_back(tracked_windows[j]);
      observed_loss_series_[j].push_back(tracked_observed[j]);
    }
    push_aggregate_stats(total_window, window_min, window_max, active_senders,
                         rtt_seconds, congestion_loss);
  }

  /// Reserves storage for `steps` steps (optional).
  void reserve(std::size_t steps) {
    for (auto& s : window_series_) s.reserve(steps);
    for (auto& s : observed_loss_series_) s.reserve(steps);
    total_window_.reserve(steps);
    rtt_seconds_.reserve(steps);
    congestion_loss_.reserve(steps);
    if (detail_ == TraceDetail::kAggregate) {
      window_min_.reserve(steps);
      window_max_.reserve(steps);
      window_mean_.reserve(steps);
      active_senders_.reserve(steps);
    }
  }

  [[nodiscard]] int num_senders() const { return num_senders_; }
  [[nodiscard]] std::size_t num_steps() const { return total_window_.size(); }
  [[nodiscard]] TraceDetail detail() const { return detail_; }

  /// The sender ids whose full series this trace retains (all of them in
  /// full mode), ascending.
  [[nodiscard]] std::span<const int> tracked_senders() const {
    return tracked_;
  }
  [[nodiscard]] bool tracks(int sender) const {
    return tracked_slot(sender) >= 0;
  }

  /// The link capacity C the run used (for efficiency scores).
  [[nodiscard]] double link_capacity_mss() const { return link_capacity_mss_; }
  /// The link's minimum RTT 2Θ (for latency scores).
  [[nodiscard]] double min_rtt_seconds() const { return min_rtt_seconds_; }

  /// Per-sender series, addressed by GLOBAL sender id. In aggregate mode the
  /// id must be one of tracked_senders().
  [[nodiscard]] std::span<const double> windows(int sender) const {
    return window_series_[slot_or_die(sender)];
  }
  [[nodiscard]] std::span<const double> observed_loss(int sender) const {
    return observed_loss_series_[slot_or_die(sender)];
  }
  [[nodiscard]] std::span<const double> total_window() const {
    return total_window_;
  }
  [[nodiscard]] std::span<const double> rtt_seconds() const {
    return rtt_seconds_;
  }
  [[nodiscard]] std::span<const double> congestion_loss() const {
    return congestion_loss_;
  }

  /// Per-step population statistics over active (window > 0) senders;
  /// aggregate mode only. Steps with no active sender record 0 for all three.
  [[nodiscard]] std::span<const double> window_min() const {
    AXIOMCC_EXPECTS(detail_ == TraceDetail::kAggregate);
    return window_min_;
  }
  [[nodiscard]] std::span<const double> window_max() const {
    AXIOMCC_EXPECTS(detail_ == TraceDetail::kAggregate);
    return window_max_;
  }
  [[nodiscard]] std::span<const double> window_mean() const {
    AXIOMCC_EXPECTS(detail_ == TraceDetail::kAggregate);
    return window_mean_;
  }
  [[nodiscard]] std::span<const long> active_senders() const {
    AXIOMCC_EXPECTS(detail_ == TraceDetail::kAggregate);
    return active_senders_;
  }

  /// Post-hoc reduction of a full trace to aggregate detail (used by the
  /// packet backend, whose experiment records full traces internally).
  [[nodiscard]] static Trace aggregated(const Trace& full,
                                        std::vector<int> tracked) {
    AXIOMCC_EXPECTS(full.detail() == TraceDetail::kFull);
    Trace out(full.num_senders(), full.link_capacity_mss(),
              full.min_rtt_seconds(), TraceDetail::kAggregate,
              std::move(tracked));
    out.reserve(full.num_steps());
    const int n = full.num_senders();
    std::vector<double> w(static_cast<std::size_t>(n));
    std::vector<double> l(static_cast<std::size_t>(n));
    for (std::size_t t = 0; t < full.num_steps(); ++t) {
      for (int i = 0; i < n; ++i) {
        w[static_cast<std::size_t>(i)] = full.windows(i)[t];
        l[static_cast<std::size_t>(i)] = full.observed_loss(i)[t];
      }
      out.add_step(w, full.rtt_seconds()[t], full.congestion_loss()[t], l);
    }
    return out;
  }

 private:
  void push_aggregate_stats(double total_window, double window_min,
                            double window_max, long active_senders,
                            double rtt_seconds, double congestion_loss) {
    const bool any = active_senders > 0;
    total_window_.push_back(total_window);
    window_min_.push_back(any ? window_min : 0.0);
    window_max_.push_back(any ? window_max : 0.0);
    window_mean_.push_back(
        any ? total_window / static_cast<double>(active_senders) : 0.0);
    active_senders_.push_back(active_senders);
    rtt_seconds_.push_back(rtt_seconds);
    congestion_loss_.push_back(congestion_loss);
  }

  /// Index into the series arrays for a global sender id, or -1.
  [[nodiscard]] long tracked_slot(int sender) const {
    if (sender < 0 || sender >= num_senders_) return -1;
    if (detail_ == TraceDetail::kFull) return sender;
    // Tracked ids ascend; binary search keeps k-tracked lookups cheap.
    long lo = 0;
    long hi = static_cast<long>(tracked_.size()) - 1;
    while (lo <= hi) {
      const long mid = lo + (hi - lo) / 2;
      const int id = tracked_[static_cast<std::size_t>(mid)];
      if (id == sender) return mid;
      if (id < sender) {
        lo = mid + 1;
      } else {
        hi = mid - 1;
      }
    }
    return -1;
  }

  [[nodiscard]] std::size_t slot_or_die(int sender) const {
    const long slot = tracked_slot(sender);
    AXIOMCC_EXPECTS_MSG(slot >= 0,
                        "sender series not retained at this trace detail");
    return static_cast<std::size_t>(slot);
  }

  int num_senders_;
  double link_capacity_mss_;
  double min_rtt_seconds_;
  TraceDetail detail_;
  std::vector<int> tracked_;  ///< global ids behind the series arrays.
  std::vector<std::vector<double>> window_series_;
  std::vector<std::vector<double>> observed_loss_series_;
  std::vector<double> total_window_;
  std::vector<double> window_min_;       ///< aggregate mode only.
  std::vector<double> window_max_;       ///< aggregate mode only.
  std::vector<double> window_mean_;      ///< aggregate mode only.
  std::vector<long> active_senders_;     ///< aggregate mode only.
  std::vector<double> rtt_seconds_;
  std::vector<double> congestion_loss_;
};

}  // namespace axiomcc::fluid
