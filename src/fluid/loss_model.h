// loss_model.h — non-congestion ("random") loss injection.
//
// Metric VI (robustness) studies a sender on an infinite-capacity link that
// experiences a constant random packet-loss rate. The injectors here model
// that loss: the observed per-step loss rate is combined with congestion loss
// as  1 − (1−L_cong)(1−L_inj)  (independent loss processes).
#pragma once

#include <algorithm>
#include <memory>

#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::fluid {

/// Per-sender, per-step non-congestion loss source.
class LossInjector {
 public:
  virtual ~LossInjector() = default;
  /// The injected loss rate observed by `sender` during step `step`.
  [[nodiscard]] virtual double sample(long step, int sender) = 0;
  [[nodiscard]] virtual std::unique_ptr<LossInjector> clone() const = 0;
  /// True when sample() is a pure function of the step — every sender sees
  /// the same value and no internal RNG or channel state advances per call.
  /// The batch simulator uses this to broadcast one sample per cohort (and
  /// to keep homogeneous cohorts provably uniform); stateful injectors keep
  /// the scalar path's exact ascending call sequence.
  [[nodiscard]] virtual bool stateless() const { return false; }
};

/// No injected loss (the default).
class NoLoss final : public LossInjector {
 public:
  double sample(long /*step*/, int /*sender*/) override { return 0.0; }
  [[nodiscard]] std::unique_ptr<LossInjector> clone() const override {
    return std::make_unique<NoLoss>();
  }
  [[nodiscard]] bool stateless() const override { return true; }
};

/// Constant injected loss rate — the paper's Metric VI setting.
class ConstantLoss final : public LossInjector {
 public:
  explicit ConstantLoss(double rate) : rate_(rate) {
    AXIOMCC_EXPECTS(rate >= 0.0 && rate < 1.0);
  }
  double sample(long /*step*/, int /*sender*/) override { return rate_; }
  [[nodiscard]] std::unique_ptr<LossInjector> clone() const override {
    return std::make_unique<ConstantLoss>(rate_);
  }
  [[nodiscard]] bool stateless() const override { return true; }

 private:
  double rate_;
};

/// Bernoulli loss episodes: in each step, with probability `episode_prob`,
/// the sender observes loss rate `episode_rate`; otherwise no injected loss.
/// Models bursty non-congestion loss (e.g. wireless corruption episodes).
class BernoulliLoss final : public LossInjector {
 public:
  BernoulliLoss(double episode_prob, double episode_rate, std::uint64_t seed)
      : prob_(episode_prob), rate_(episode_rate), seed_(seed), rng_(seed) {
    AXIOMCC_EXPECTS(episode_prob >= 0.0 && episode_prob <= 1.0);
    AXIOMCC_EXPECTS(episode_rate >= 0.0 && episode_rate < 1.0);
  }

  double sample(long /*step*/, int /*sender*/) override {
    return rng_.bernoulli(prob_) ? rate_ : 0.0;
  }

  /// Copies the full RNG state: a mid-run clone continues the original's
  /// loss sequence instead of silently replaying from the seed.
  [[nodiscard]] std::unique_ptr<LossInjector> clone() const override {
    return std::make_unique<BernoulliLoss>(*this);
  }

 private:
  double prob_;
  double rate_;
  std::uint64_t seed_;
  Rng rng_;
};

/// Gilbert-Elliott two-state channel: a "good" state with low loss and a
/// "bad" state with high loss, with geometric dwell times. An extension
/// beyond the paper used by the ablation benches.
class GilbertElliottLoss final : public LossInjector {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double good_rate, double bad_rate, std::uint64_t seed)
      : p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        good_rate_(good_rate),
        bad_rate_(bad_rate),
        seed_(seed),
        rng_(seed) {
    AXIOMCC_EXPECTS(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0);
    AXIOMCC_EXPECTS(p_bad_to_good >= 0.0 && p_bad_to_good <= 1.0);
    AXIOMCC_EXPECTS(good_rate >= 0.0 && good_rate < 1.0);
    AXIOMCC_EXPECTS(bad_rate >= 0.0 && bad_rate < 1.0);
  }

  double sample(long /*step*/, int /*sender*/) override {
    if (in_bad_state_) {
      if (rng_.bernoulli(p_bg_)) in_bad_state_ = false;
    } else {
      if (rng_.bernoulli(p_gb_)) in_bad_state_ = true;
    }
    return in_bad_state_ ? bad_rate_ : good_rate_;
  }

  /// Copies the full RNG *and* channel state (`in_bad_state_`): a clone
  /// taken mid-episode stays mid-episode rather than resetting to "good".
  [[nodiscard]] std::unique_ptr<LossInjector> clone() const override {
    return std::make_unique<GilbertElliottLoss>(*this);
  }

 private:
  double p_gb_;
  double p_bg_;
  double good_rate_;
  double bad_rate_;
  std::uint64_t seed_;
  Rng rng_;
  bool in_bad_state_ = false;
};

/// Combines independent congestion and injected loss rates.
[[nodiscard]] inline double combine_loss(double congestion, double injected) {
  const double combined = 1.0 - (1.0 - congestion) * (1.0 - injected);
  return std::clamp(combined, 0.0, 1.0);
}

}  // namespace axiomcc::fluid
