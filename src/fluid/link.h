// link.h — the paper's single-bottleneck fluid link (Section 2, Eq. 1).
//
// A link is parameterized by bandwidth B (MSS/s), propagation delay Θ, and
// buffer size τ (MSS). Its capacity is C = B·2Θ, the minimum bandwidth-delay
// product. Given the aggregate congestion window X(t), the link determines
// the step's RTT and the (synchronized) droptail loss rate:
//
//   RTT(X) = max(2Θ, (X−C)/B + 2Θ)     if X < C+τ
//          = Δ                          otherwise (timeout cap)
//   L(X)   = 1 − (C+τ)/X                if X > C+τ
//          = 0                          otherwise
#pragma once

#include "util/check.h"
#include "util/units.h"

namespace axiomcc::fluid {

/// Static parameters of the bottleneck link.
struct LinkParams {
  Bandwidth bandwidth;           ///< B, in MSS/s.
  Seconds propagation_delay;     ///< Θ (one-way), in seconds.
  double buffer_mss = 0.0;       ///< τ, in MSS.
  /// Δ: the timeout-triggered RTT cap used when the buffer overflows.
  /// A non-positive value selects the natural default 2Θ + τ/B (the RTT of a
  /// full buffer).
  Seconds timeout_rtt = Seconds(0.0);
};

/// The fluid bottleneck link: pure functions of the aggregate window.
class FluidLink {
 public:
  explicit FluidLink(const LinkParams& params);

  /// C = B·2Θ, in MSS.
  [[nodiscard]] double capacity_mss() const { return capacity_mss_; }

  /// τ, in MSS.
  [[nodiscard]] double buffer_mss() const { return params_.buffer_mss; }

  /// C + τ: the aggregate window beyond which droptail loss begins.
  [[nodiscard]] double loss_threshold_mss() const {
    return capacity_mss_ + params_.buffer_mss;
  }

  /// The minimum possible RTT, 2Θ.
  [[nodiscard]] Seconds min_rtt() const {
    return params_.propagation_delay * 2.0;
  }

  /// Eq. 1: the RTT when the aggregate window is `total_window_mss`.
  [[nodiscard]] Seconds rtt(double total_window_mss) const;

  /// The droptail loss rate when the aggregate window is `total_window_mss`.
  [[nodiscard]] double loss_rate(double total_window_mss) const;

  [[nodiscard]] const LinkParams& params() const { return params_; }

 private:
  LinkParams params_;
  double capacity_mss_;
  Seconds timeout_rtt_;
};

/// Convenience constructor for the paper's experimental setups: bandwidth in
/// Mbps, a full round-trip propagation delay in milliseconds, buffer in MSS.
[[nodiscard]] LinkParams make_link_mbps(double mbps, double rtt_ms,
                                        double buffer_mss);

}  // namespace axiomcc::fluid
