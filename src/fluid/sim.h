// sim.h — the discrete-time fluid-flow simulation (paper Section 2).
//
// n senders share one FluidLink. Time advances in steps of one RTT. At each
// step the link computes the RTT and the synchronized droptail loss rate from
// the aggregate window; every sender observes them (plus any injected
// non-congestion loss) and picks its next window via its Protocol.
//
// Two execution paths produce bit-identical traces:
//  - the scalar path (default): one virtual Protocol::next_window call per
//    sender per step, exactly the original tick loop;
//  - the batch path (SimOptions::batch): senders grouped into homogeneous
//    cohorts advance through SoA kernels (cc::BatchProtocol) in one pass per
//    cohort, with the per-sender elementwise loops sharded across
//    util/task_pool in fixed-size chunks. Families without a kernel fall
//    back to per-sender virtual dispatch inside their cohort. Determinism:
//    the aggregate-window fold and stateful loss sampling stay serial in
//    ascending sender order, and sharded loops are pure elementwise writes
//    over fixed ranges, so any jobs count yields the scalar path's bytes.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cc/protocol.h"
#include "fluid/link.h"
#include "fluid/loss_model.h"
#include "fluid/trace.h"
#include "recorder/recorder.h"
#include "scope/scope.h"

namespace axiomcc::fluid {

/// One sender: a protocol plus its initial window.
///
/// `update_period`/`update_phase` model UNSYNCHRONIZED feedback (a paper
/// future-work item): the sender consults its protocol only at steps t with
/// t ≡ phase (mod period), holding its window in between. The default
/// (period 1) is the paper's synchronized model. The observation delivered
/// at an update step aggregates the steps since the previous update: worst
/// (max) loss, mean RTT.
///
/// `start_step`/`stop_step` model flow churn (stress scenarios): the sender
/// is active on steps t with start ≤ t < stop (negative stop → forever).
/// While inactive its window is exactly 0 — it contributes nothing to the
/// aggregate and its protocol is not consulted; on joining it restarts from
/// `initial_window_mss` like a fresh connection.
struct SenderSpec {
  std::unique_ptr<cc::Protocol> protocol;
  double initial_window_mss = 1.0;
  long update_period = 1;
  long update_phase = 0;
  long start_step = 0;
  long stop_step = -1;
};

/// Simulation-wide options.
struct SimOptions {
  long steps = 2000;             ///< number of RTT steps to simulate.
  double min_window_mss = 1.0;   ///< window floor (avoids x^-k singularities).
  double max_window_mss = 1e9;   ///< the paper's M (1 << M).
  /// Trace retention: kFull keeps every sender's series; kAggregate keeps
  /// per-step population statistics plus `tracked_senders` full series, so
  /// trace memory is independent of the population size.
  TraceDetail trace_detail = TraceDetail::kFull;
  int tracked_senders = 8;       ///< k for kAggregate (clamped to n).
  /// Opts into the SoA cohort execution path (bit-identical to scalar).
  bool batch = false;
  /// Shard count for the batch path's elementwise loops: >0 explicit, 0 =
  /// resolve_jobs (AXIOMCC_JOBS / hardware). Traces are identical at any
  /// value; this is purely a throughput knob.
  long jobs = 1;
  /// Non-owning flight-recorder sink (null = no recording). All emission
  /// happens from the serial sections of the tick loops — churn/schedule/
  /// loss transitions plus stride-sampled windows — so recordings are
  /// byte-identical across execution paths and job counts.
  recorder::Recorder* record_sink = nullptr;
  /// Non-owning streaming-metric scope (null = no scope). Fed from the same
  /// serial sections as the recorder — one step_begin/observe/step_end
  /// sweep per step, with per-cohort repeated-add folds on the uniform
  /// path — so its series is byte-identical across execution paths and job
  /// counts. When `record_sink` is also installed, closed metric windows
  /// are forwarded to it as kMetric events.
  scope::MetricScope* scope_sink = nullptr;
};

/// Runs the fluid model and records a Trace.
class FluidSimulation {
 public:
  FluidSimulation(const LinkParams& link, SimOptions options = {});

  /// Adds a sender. The protocol prototype is cloned, so one prototype can
  /// seed many senders.
  void add_sender(const cc::Protocol& prototype, double initial_window_mss);
  void add_sender(SenderSpec spec);

  /// Adds `count` senders sharing one spec. The cohort stores ONE prototype
  /// regardless of count — the batch path runs kernel cohorts without any
  /// per-sender clone, and the scalar path clones per sender lazily at run
  /// time — so constructing a million-sender population is O(1) protocol
  /// allocations for batchable families.
  void add_senders(SenderSpec spec, long count);
  void add_senders(const cc::Protocol& prototype, long count,
                   double initial_window_mss);

  /// Installs a non-congestion loss injector (applies to all senders).
  /// Default: no injected loss.
  void set_loss_injector(std::unique_ptr<LossInjector> injector);

  /// Installs a time-varying bandwidth schedule: the link's bandwidth at
  /// step t is scale(t) × the configured bandwidth (buffer unchanged).
  /// Models capacity changes (handover, cross-traffic departure) for the
  /// responsiveness metric; default is the constant schedule scale ≡ 1.
  void set_bandwidth_schedule(std::function<double(long)> scale);

  /// Installs a time-varying propagation-delay schedule: the link's one-way
  /// delay at step t is scale(t) × the configured delay. Models RTT
  /// inflation (path changes, bufferbloat upstream). Note that scaling Θ
  /// also scales the capacity C = B·2Θ, as it does physically.
  void set_rtt_schedule(std::function<double(long)> scale);

  /// Per-step observer, called at the end of each step (after the step is
  /// recorded) with that step's index, the per-sender windows the protocols
  /// just chose for the NEXT step, the step RTT, and the congestion-loss
  /// rate. Returning false stops the run early (the trace keeps the steps
  /// recorded so far) — the hook the guarded stress runner uses to catch
  /// divergence (NaN, blowup) before the link's preconditions explode on it.
  using StepMonitor = std::function<bool(
      long step, std::span<const double> windows, double rtt_seconds,
      double congestion_loss)>;
  void set_step_monitor(StepMonitor monitor);

  /// Number of senders added so far.
  [[nodiscard]] int num_senders() const {
    return static_cast<int>(total_senders_);
  }

  [[nodiscard]] const FluidLink& link() const { return link_; }

  [[nodiscard]] const SimOptions& options() const { return options_; }

  /// Runs the configured number of steps and returns the trace.
  /// Requires at least one sender. May be called once per simulation object.
  [[nodiscard]] Trace run();

 private:
  /// A contiguous run of `count` senders sharing one SenderSpec (the
  /// protocol member is the shared prototype). add_sender makes count-1
  /// groups, so the sender index space is the concatenation of groups in
  /// insertion order — identical to the historical flat vector.
  struct SenderGroup {
    SenderSpec spec;
    long count = 1;
  };

  [[nodiscard]] Trace make_trace() const;
  [[nodiscard]] Trace run_scalar();
  [[nodiscard]] Trace run_batch();
  [[nodiscard]] Trace run_batch_uniform();

  FluidLink link_;
  SimOptions options_;
  std::vector<SenderGroup> groups_;
  long total_senders_ = 0;
  std::unique_ptr<LossInjector> injector_;
  std::function<double(long)> bandwidth_scale_;
  std::function<double(long)> rtt_scale_;
  StepMonitor step_monitor_;
  bool ran_ = false;
};

/// Convenience: runs `n` identical senders of `prototype` on `link` with the
/// given initial windows (broadcast if a single value is given).
[[nodiscard]] Trace run_homogeneous(const LinkParams& link,
                                    const cc::Protocol& prototype, int n,
                                    double initial_window_mss,
                                    const SimOptions& options = {});

}  // namespace axiomcc::fluid
