#include "fluid/sim.h"

#include <algorithm>
#include <optional>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace axiomcc::fluid {

FluidSimulation::FluidSimulation(const LinkParams& link, SimOptions options)
    : link_(link), options_(options), injector_(std::make_unique<NoLoss>()) {
  AXIOMCC_EXPECTS(options.steps > 0);
  AXIOMCC_EXPECTS(options.min_window_mss > 0.0);
  AXIOMCC_EXPECTS(options.max_window_mss > options.min_window_mss);
}

void FluidSimulation::add_sender(const cc::Protocol& prototype,
                                 double initial_window_mss) {
  add_sender(SenderSpec{prototype.clone(), initial_window_mss});
}

void FluidSimulation::add_sender(SenderSpec spec) {
  AXIOMCC_EXPECTS(spec.protocol != nullptr);
  AXIOMCC_EXPECTS(spec.initial_window_mss >= 0.0);
  AXIOMCC_EXPECTS(spec.update_period >= 1);
  AXIOMCC_EXPECTS(spec.update_phase >= 0 &&
                  spec.update_phase < spec.update_period);
  AXIOMCC_EXPECTS(spec.start_step >= 0);
  AXIOMCC_EXPECTS(spec.stop_step < 0 || spec.stop_step > spec.start_step);
  senders_.push_back(std::move(spec));
}

void FluidSimulation::set_loss_injector(std::unique_ptr<LossInjector> injector) {
  AXIOMCC_EXPECTS(injector != nullptr);
  injector_ = std::move(injector);
}

void FluidSimulation::set_bandwidth_schedule(std::function<double(long)> scale) {
  AXIOMCC_EXPECTS(scale != nullptr);
  bandwidth_scale_ = std::move(scale);
}

void FluidSimulation::set_rtt_schedule(std::function<double(long)> scale) {
  AXIOMCC_EXPECTS(scale != nullptr);
  rtt_scale_ = std::move(scale);
}

void FluidSimulation::set_step_monitor(StepMonitor monitor) {
  AXIOMCC_EXPECTS(monitor != nullptr);
  step_monitor_ = std::move(monitor);
}

Trace FluidSimulation::run() {
  AXIOMCC_EXPECTS_MSG(!senders_.empty(), "add at least one sender before run()");
  AXIOMCC_EXPECTS_MSG(!ran_, "FluidSimulation::run may be called only once");
  ran_ = true;

  const int n = num_senders();
  Trace trace(n, link_.capacity_mss(), link_.min_rtt().value());
  trace.reserve(static_cast<std::size_t>(options_.steps));

  const auto clamp_window = [&](double w) {
    return std::clamp(w, options_.min_window_mss, options_.max_window_mss);
  };

  const auto active_at = [](const SenderSpec& spec, long step) {
    return step >= spec.start_step &&
           (spec.stop_step < 0 || step < spec.stop_step);
  };

  std::vector<double> windows(n);
  for (int i = 0; i < n; ++i) {
    windows[i] = active_at(senders_[i], 0)
                     ? clamp_window(senders_[i].initial_window_mss)
                     : 0.0;
  }

  std::vector<double> observed_loss(n);
  std::vector<double> next_windows(n);
  // Per-sender aggregation between (possibly unsynchronized) update steps.
  std::vector<double> pending_max_loss(n, 0.0);
  std::vector<double> pending_rtt_sum(n, 0.0);
  std::vector<long> pending_steps(n, 0);

  TELEMETRY_SPAN("fluid", "sim.run");
  // Tick/loss tallies accumulate in locals and flush to the registry once
  // after the loop, so the hot loop never touches shared metric state. The
  // totals count simulation content and are deterministic at any --jobs.
  const bool record_telemetry =
      telemetry::compiled_in() && telemetry::enabled();
  long ticks = 0;
  long loss_event_steps = 0;
  long injected_loss_samples = 0;

  for (long step = 0; step < options_.steps; ++step) {
#ifndef AXIOMCC_TELEMETRY_DISABLED
    // A tick costs tens of nanoseconds, so timing every one would multiply
    // the loop's cost; sampling 1-in-64 keeps the distribution while the
    // untimed ticks pay only the enabled() branch.
    std::optional<telemetry::ScopedHistogramTimer> tick_timer;
    if (record_telemetry && (step & 63) == 0) {
      static telemetry::Histogram& tick_hist =
          telemetry::Registry::global().latency_histogram("fluid.tick_us");
      tick_timer.emplace(tick_hist);
    }
#endif
    // Churn: senders joining at this step restart from their initial
    // window; departed senders stop contributing immediately.
    for (int i = 0; i < n; ++i) {
      const SenderSpec& spec = senders_[i];
      if (!active_at(spec, step)) {
        windows[i] = 0.0;
      } else if (step == spec.start_step && step != 0) {
        windows[i] = clamp_window(spec.initial_window_mss);
      }
    }

    double total = 0.0;
    for (double w : windows) total += w;

    // With a bandwidth or RTT schedule the active link is rebuilt at the
    // scaled parameters (cheap: FluidLink is a couple of doubles).
    const FluidLink* active = &link_;
    FluidLink scaled = link_;
    if (bandwidth_scale_ || rtt_scale_) {
      LinkParams params = link_.params();
      if (bandwidth_scale_) {
        const double scale = bandwidth_scale_(step);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "bandwidth scale must be positive");
        params.bandwidth =
            Bandwidth::from_mss_per_sec(params.bandwidth.mss_per_sec() * scale);
      }
      if (rtt_scale_) {
        const double scale = rtt_scale_(step);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "RTT scale must be positive");
        params.propagation_delay = params.propagation_delay * scale;
      }
      scaled = FluidLink(params);
      active = &scaled;
    }

    const double congestion_loss = active->loss_rate(total);
    const Seconds rtt = active->rtt(total);

    for (int i = 0; i < n; ++i) {
      if (!active_at(senders_[i], step)) {
        observed_loss[i] = 0.0;
        continue;
      }
      const double injected = injector_->sample(step, i);
      observed_loss[i] = combine_loss(congestion_loss, injected);
      if (record_telemetry && injected > 0.0) ++injected_loss_samples;
    }
    if (record_telemetry) {
      ++ticks;
      if (congestion_loss > 0.0) ++loss_event_steps;
    }
    trace.add_step(windows, rtt.value(), congestion_loss, observed_loss);

    for (int i = 0; i < n; ++i) {
      const SenderSpec& spec = senders_[i];
      if (!active_at(spec, step)) {
        next_windows[i] = 0.0;
        pending_max_loss[i] = 0.0;
        pending_rtt_sum[i] = 0.0;
        pending_steps[i] = 0;
        continue;
      }

      pending_max_loss[i] = std::max(pending_max_loss[i], observed_loss[i]);
      pending_rtt_sum[i] += rtt.value();
      ++pending_steps[i];

      if (step % spec.update_period != spec.update_phase) {
        next_windows[i] = windows[i];  // hold between updates
        continue;
      }
      const cc::Observation obs{
          windows[i], pending_max_loss[i],
          pending_rtt_sum[i] / static_cast<double>(pending_steps[i])};
      next_windows[i] = clamp_window(spec.protocol->next_window(obs));
      pending_max_loss[i] = 0.0;
      pending_rtt_sum[i] = 0.0;
      pending_steps[i] = 0;
    }
    windows.swap(next_windows);

    // The monitor sees the windows the senders just chose for the NEXT step,
    // before the link consumes them — a diverging protocol (NaN, blowup) is
    // caught here rather than exploding inside the link's preconditions.
    if (step_monitor_ &&
        !step_monitor_(step, windows, rtt.value(), congestion_loss)) {
      break;
    }
  }
  if (record_telemetry) {
    TELEMETRY_COUNT("fluid.ticks", ticks);
    TELEMETRY_COUNT("fluid.loss_event_steps", loss_event_steps);
    TELEMETRY_COUNT("fluid.injected_loss_samples", injected_loss_samples);
  }
  return trace;
}

Trace run_homogeneous(const LinkParams& link, const cc::Protocol& prototype,
                      int n, double initial_window_mss,
                      const SimOptions& options) {
  AXIOMCC_EXPECTS(n > 0);
  FluidSimulation sim(link, options);
  for (int i = 0; i < n; ++i) sim.add_sender(prototype, initial_window_mss);
  return sim.run();
}

}  // namespace axiomcc::fluid
