#include "fluid/sim.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "cc/batch.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/task_pool.h"

namespace axiomcc::fluid {

namespace {

/// The active link under (possibly null) bandwidth/RTT schedules. The scaled
/// link is a pure function of the (bandwidth, RTT) scale pair, so it is
/// rebuilt only when the pair changes — piecewise-constant schedules (the
/// common gauntlet case) stop paying a rebuild per tick. Scale validation
/// still runs every step, preserving the original error behaviour.
class ScheduledLink {
 public:
  ScheduledLink(const FluidLink& base, const std::function<double(long)>& bw,
                const std::function<double(long)>& rtt)
      : base_(base), bw_(bw), rtt_(rtt), scaled_(base) {}

  const FluidLink& at(long step) {
    if (!bw_ && !rtt_) return base_;
    double bw_scale = 1.0;
    double rtt_scale = 1.0;
    if (bw_) {
      bw_scale = bw_(step);
      AXIOMCC_EXPECTS_MSG(bw_scale > 0.0, "bandwidth scale must be positive");
    }
    if (rtt_) {
      rtt_scale = rtt_(step);
      AXIOMCC_EXPECTS_MSG(rtt_scale > 0.0, "RTT scale must be positive");
    }
    if (!cached_ || bw_scale != last_bw_ || rtt_scale != last_rtt_) {
      LinkParams params = base_.params();
      if (bw_) {
        params.bandwidth = Bandwidth::from_mss_per_sec(
            params.bandwidth.mss_per_sec() * bw_scale);
      }
      if (rtt_) {
        params.propagation_delay = params.propagation_delay * rtt_scale;
      }
      scaled_ = FluidLink(params);
      cached_ = true;
      last_bw_ = bw_scale;
      last_rtt_ = rtt_scale;
    }
    return scaled_;
  }

 private:
  const FluidLink& base_;
  const std::function<double(long)>& bw_;
  const std::function<double(long)>& rtt_;
  FluidLink scaled_;
  double last_bw_ = 1.0;
  double last_rtt_ = 1.0;
  bool cached_ = false;
};

/// Flight-recorder emission, shared by all three run paths. Everything is
/// derived from the sender specs, the schedules, and the per-step values the
/// trace records — never from path-specific execution state — so the three
/// paths produce byte-identical recordings for the same scenario. All calls
/// happen in the serial sections of the loops, keeping recordings identical
/// at any job count. When the capture path is compiled out the stub
/// Recorder's `wants` is a constant false and every block below folds away.
class StepRecorder {
 public:
  struct CohortRef {
    const SenderSpec* spec;
    long begin;
    long count;
  };

  template <typename GroupVec>
  StepRecorder(recorder::Recorder* sink, const GroupVec& groups,
               const std::function<double(long)>& bw,
               const std::function<double(long)>& rtt, bool aggregate,
               long total_senders)
      : sink_(sink), bw_(&bw), rtt_(&rtt), aggregate_(aggregate) {
    if (sink_ == nullptr) return;
    sink_->set_backend("fluid");
    sink_->set_senders(total_senders);
    long begin = 0;
    for (const auto& group : groups) {
      cohorts_.push_back(CohortRef{&group.spec, begin, group.count});
      begin += group.count;
    }
    churn_active_.assign(cohorts_.size(), 0);
    injected_visible_.assign(cohorts_.size(), 0);
  }

  [[nodiscard]] bool recording() const { return sink_ != nullptr; }

  /// Batch-path execution decision (kernel / fallback / uniform), one
  /// setup event per cohort. The scalar path emits none, and the aligner
  /// masks this class by default — execution mode is metadata, not
  /// simulated behaviour.
  void cohort_mode(std::size_t cohort, recorder::EventCode mode) {
    if (sink_ == nullptr || !sink_->wants(recorder::EventClass::kCohort)) {
      return;
    }
    sink_->emit({0, recorder::EventClass::kCohort, mode,
                 recorder::Subject::kCohort, static_cast<int>(cohort),
                 static_cast<double>(cohorts_[cohort].count), 0.0});
  }

  /// Called once per step at the trace-record point, with the values the
  /// trace sees (pre-update windows). `cohort_window`/`cohort_observed`
  /// map (cohort index, begin) to the cohort representative's values;
  /// `sender_window` maps a sender index to its window (full detail only).
  template <typename CohortWindow, typename CohortObserved,
            typename SenderWindow>
  void on_step(long step, double total, double rtt_value,
               double congestion_loss, CohortWindow&& cohort_window,
               CohortObserved&& cohort_observed, SenderWindow&& sender_window,
               long num_senders) {
    using recorder::EventClass;
    using recorder::EventCode;
    using recorder::Subject;
    if (sink_ == nullptr) return;
    sink_->note_step(step);

    const auto active_at = [step](const CohortRef& c) {
      return step >= c.spec->start_step &&
             (c.spec->stop_step < 0 || step < c.spec->stop_step);
    };

    if (sink_->wants(EventClass::kChurn)) {
      for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
        const bool active = active_at(cohorts_[ci]);
        if (active != static_cast<bool>(churn_active_[ci])) {
          sink_->emit({step, EventClass::kChurn,
                       active ? EventCode::kJoin : EventCode::kLeave,
                       Subject::kCohort, static_cast<int>(ci),
                       static_cast<double>(cohorts_[ci].count), 0.0});
          churn_active_[ci] = active ? 1 : 0;
        }
      }
    }

    if (sink_->wants(EventClass::kSchedule)) {
      if (*bw_) {
        const double scale = (*bw_)(step);
        if (scale != last_bw_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kBandwidth,
                       Subject::kRun, -1, scale, last_bw_scale_});
          last_bw_scale_ = scale;
        }
      }
      if (*rtt_) {
        const double scale = (*rtt_)(step);
        if (scale != last_rtt_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kRtt,
                       Subject::kRun, -1, scale, last_rtt_scale_});
          last_rtt_scale_ = scale;
        }
      }
    }

    if (sink_->wants(EventClass::kLoss)) {
      const bool lossy = congestion_loss > 0.0;
      if (lossy != loss_active_) {
        sink_->emit({step, EventClass::kLoss,
                     lossy ? EventCode::kOnset : EventCode::kClear,
                     Subject::kRun, -1,
                     lossy ? congestion_loss : last_loss_, 0.0});
        loss_active_ = lossy;
      }
      if (lossy) last_loss_ = congestion_loss;
      // Injected (non-congestion) loss becoming visible to a cohort:
      // combine_loss is strictly increasing in the injected component, so
      // observed > congestion exactly when the injector contributed.
      for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
        const bool active = active_at(cohorts_[ci]);
        const double observed =
            active ? cohort_observed(ci, cohorts_[ci].begin) : 0.0;
        const bool visible = active && observed > congestion_loss;
        if (visible != static_cast<bool>(injected_visible_[ci])) {
          sink_->emit({step, EventClass::kLoss,
                       visible ? EventCode::kInjected : EventCode::kClear,
                       Subject::kCohort, static_cast<int>(ci), observed,
                       congestion_loss});
          injected_visible_[ci] = visible ? 1 : 0;
        }
      }
    }

    if (sink_->wants(EventClass::kWindow) && sink_->sample_due(step)) {
      sink_->emit({step, EventClass::kWindow, EventCode::kTotal, Subject::kRun,
                   -1, total, rtt_value});
      if (aggregate_) {
        for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
          if (!active_at(cohorts_[ci])) continue;
          const double w = cohort_window(ci, cohorts_[ci].begin);
          if (w > 0.0) {
            sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                         Subject::kCohort, static_cast<int>(ci), w, 0.0});
          }
        }
      } else {
        for (long i = 0; i < num_senders; ++i) {
          const double w = sender_window(i);
          if (w > 0.0) {
            sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                         Subject::kSender, static_cast<int>(i), w, 0.0});
          }
        }
      }
    }
  }

 private:
  recorder::Recorder* sink_;
  const std::function<double(long)>* bw_;
  const std::function<double(long)>* rtt_;
  bool aggregate_;
  std::vector<CohortRef> cohorts_;
  std::vector<char> churn_active_;
  std::vector<char> injected_visible_;
  double last_bw_scale_ = 1.0;
  double last_rtt_scale_ = 1.0;
  bool loss_active_ = false;
  double last_loss_ = 0.0;
};

}  // namespace

FluidSimulation::FluidSimulation(const LinkParams& link, SimOptions options)
    : link_(link), options_(options), injector_(std::make_unique<NoLoss>()) {
  AXIOMCC_EXPECTS(options.steps > 0);
  AXIOMCC_EXPECTS(options.min_window_mss > 0.0);
  AXIOMCC_EXPECTS(options.max_window_mss > options.min_window_mss);
  AXIOMCC_EXPECTS(options.jobs >= 0);
  if (options.trace_detail == TraceDetail::kAggregate) {
    AXIOMCC_EXPECTS(options.tracked_senders > 0);
  }
}

void FluidSimulation::add_sender(const cc::Protocol& prototype,
                                 double initial_window_mss) {
  add_sender(SenderSpec{prototype.clone(), initial_window_mss});
}

void FluidSimulation::add_sender(SenderSpec spec) {
  add_senders(std::move(spec), 1);
}

void FluidSimulation::add_senders(SenderSpec spec, long count) {
  AXIOMCC_EXPECTS(spec.protocol != nullptr);
  AXIOMCC_EXPECTS(spec.initial_window_mss >= 0.0);
  AXIOMCC_EXPECTS(spec.update_period >= 1);
  AXIOMCC_EXPECTS(spec.update_phase >= 0 &&
                  spec.update_phase < spec.update_period);
  AXIOMCC_EXPECTS(spec.start_step >= 0);
  AXIOMCC_EXPECTS(spec.stop_step < 0 || spec.stop_step > spec.start_step);
  AXIOMCC_EXPECTS(count >= 1);
  AXIOMCC_EXPECTS_MSG(
      total_senders_ + count <= std::numeric_limits<int>::max(),
      "sender population exceeds the index space");
  groups_.push_back(SenderGroup{std::move(spec), count});
  total_senders_ += count;
}

void FluidSimulation::add_senders(const cc::Protocol& prototype, long count,
                                  double initial_window_mss) {
  add_senders(SenderSpec{prototype.clone(), initial_window_mss}, count);
}

void FluidSimulation::set_loss_injector(std::unique_ptr<LossInjector> injector) {
  AXIOMCC_EXPECTS(injector != nullptr);
  injector_ = std::move(injector);
}

void FluidSimulation::set_bandwidth_schedule(std::function<double(long)> scale) {
  AXIOMCC_EXPECTS(scale != nullptr);
  bandwidth_scale_ = std::move(scale);
}

void FluidSimulation::set_rtt_schedule(std::function<double(long)> scale) {
  AXIOMCC_EXPECTS(scale != nullptr);
  rtt_scale_ = std::move(scale);
}

void FluidSimulation::set_step_monitor(StepMonitor monitor) {
  AXIOMCC_EXPECTS(monitor != nullptr);
  step_monitor_ = std::move(monitor);
}

Trace FluidSimulation::make_trace() const {
  const int n = num_senders();
  if (options_.trace_detail == TraceDetail::kAggregate) {
    return Trace(n, link_.capacity_mss(), link_.min_rtt().value(),
                 TraceDetail::kAggregate,
                 default_tracked_senders(n, options_.tracked_senders));
  }
  return Trace(n, link_.capacity_mss(), link_.min_rtt().value());
}

Trace FluidSimulation::run() {
  AXIOMCC_EXPECTS_MSG(!groups_.empty(), "add at least one sender before run()");
  AXIOMCC_EXPECTS_MSG(!ran_, "FluidSimulation::run may be called only once");
  ran_ = true;
  TELEMETRY_SPAN("fluid", "sim.run");
  // The scope observes each step from the serial section of whichever tick
  // loop runs, in ascending (cohort, member) order — the same fold order at
  // any path or job count. resolve() only adopts fields the caller left
  // unset, so an engine-layer resolve (which knows the tail fraction) wins.
  if (options_.scope_sink != nullptr) {
    options_.scope_sink->resolve(options_.steps, 0.0, link_.capacity_mss(),
                                 link_.min_rtt().value(),
                                 options_.max_window_mss);
    options_.scope_sink->begin_run(static_cast<int>(groups_.size()),
                                   /*num_links=*/0);
  }
  Trace trace = options_.batch ? run_batch() : run_scalar();
  if (options_.scope_sink != nullptr) options_.scope_sink->finish();
  return trace;
}

Trace FluidSimulation::run_scalar() {
  TELEMETRY_SPAN("fluid", "sim.tick_loop.scalar");
  const long n = total_senders_;

  // Flatten groups into the historical per-sender view: count-1 groups use
  // their stored instance directly (exactly the pre-cohort behaviour of
  // add_sender); larger groups clone their shared prototype per member.
  struct FlatSender {
    cc::Protocol* protocol;
    const SenderSpec* spec;
  };
  std::vector<std::unique_ptr<cc::Protocol>> owned;
  std::vector<FlatSender> senders;
  senders.reserve(static_cast<std::size_t>(n));
  for (const SenderGroup& group : groups_) {
    for (long j = 0; j < group.count; ++j) {
      if (group.count == 1) {
        senders.push_back(FlatSender{group.spec.protocol.get(), &group.spec});
      } else {
        owned.push_back(group.spec.protocol->clone());
        senders.push_back(FlatSender{owned.back().get(), &group.spec});
      }
    }
  }

  Trace trace = make_trace();
  trace.reserve(static_cast<std::size_t>(options_.steps));

  const auto clamp_window = [&](double w) {
    return std::clamp(w, options_.min_window_mss, options_.max_window_mss);
  };

  const auto active_at = [](const SenderSpec& spec, long step) {
    return step >= spec.start_step &&
           (spec.stop_step < 0 || step < spec.stop_step);
  };

  std::vector<double> windows(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    windows[i] = active_at(*senders[i].spec, 0)
                     ? clamp_window(senders[i].spec->initial_window_mss)
                     : 0.0;
  }

  std::vector<double> observed_loss(static_cast<std::size_t>(n));
  std::vector<double> next_windows(static_cast<std::size_t>(n));
  // Per-sender aggregation between (possibly unsynchronized) update steps.
  std::vector<double> pending_max_loss(static_cast<std::size_t>(n), 0.0);
  std::vector<double> pending_rtt_sum(static_cast<std::size_t>(n), 0.0);
  std::vector<long> pending_steps(static_cast<std::size_t>(n), 0);

  // Tick/loss tallies accumulate in locals and flush to the registry once
  // after the loop, so the hot loop never touches shared metric state. The
  // totals count simulation content and are deterministic at any --jobs.
  const bool record_telemetry =
      telemetry::compiled_in() && telemetry::enabled();
  long ticks = 0;
  long loss_event_steps = 0;
  long injected_loss_samples = 0;

  ScheduledLink sched(link_, bandwidth_scale_, rtt_scale_);
  StepRecorder srec(options_.record_sink, groups_, bandwidth_scale_,
                    rtt_scale_,
                    options_.trace_detail == TraceDetail::kAggregate, n);

  for (long step = 0; step < options_.steps; ++step) {
#ifndef AXIOMCC_TELEMETRY_DISABLED
    // A tick costs tens of nanoseconds, so timing every one would multiply
    // the loop's cost; sampling 1-in-64 keeps the distribution while the
    // untimed ticks pay only the enabled() branch.
    std::optional<telemetry::ScopedHistogramTimer> tick_timer;
    if (record_telemetry && (step & 63) == 0) {
      static telemetry::Histogram& tick_hist =
          telemetry::Registry::global().latency_histogram("fluid.tick_us");
      tick_timer.emplace(tick_hist);
    }
#endif
    // Churn: senders joining at this step restart from their initial
    // window; departed senders stop contributing immediately.
    for (long i = 0; i < n; ++i) {
      const SenderSpec& spec = *senders[i].spec;
      if (!active_at(spec, step)) {
        windows[i] = 0.0;
      } else if (step == spec.start_step && step != 0) {
        windows[i] = clamp_window(spec.initial_window_mss);
      }
    }

    double total = 0.0;
    for (double w : windows) total += w;

    const FluidLink& active = sched.at(step);
    const double congestion_loss = active.loss_rate(total);
    const Seconds rtt = active.rtt(total);

    for (long i = 0; i < n; ++i) {
      if (!active_at(*senders[i].spec, step)) {
        observed_loss[i] = 0.0;
        continue;
      }
      const double injected = injector_->sample(step, static_cast<int>(i));
      observed_loss[i] = combine_loss(congestion_loss, injected);
      if (record_telemetry && injected > 0.0) ++injected_loss_samples;
    }
    if (record_telemetry) {
      ++ticks;
      if (congestion_loss > 0.0) ++loss_event_steps;
    }
    trace.add_step(windows, rtt.value(), congestion_loss, observed_loss);
    srec.on_step(
        step, total, rtt.value(), congestion_loss,
        [&](std::size_t, long begin) { return windows[begin]; },
        [&](std::size_t, long begin) { return observed_loss[begin]; },
        [&](long i) { return windows[i]; }, n);
    if (scope::MetricScope* scope = options_.scope_sink; scope != nullptr) {
      scope->step_begin(step, total, rtt.value(), congestion_loss);
      long idx = 0;
      for (std::size_t g = 0; g < groups_.size(); ++g) {
        for (long j = 0; j < groups_[g].count; ++j, ++idx) {
          scope->observe_class(static_cast<int>(g), windows[idx],
                               observed_loss[idx]);
        }
      }
      scope->step_end();
    }

    for (long i = 0; i < n; ++i) {
      const SenderSpec& spec = *senders[i].spec;
      if (!active_at(spec, step)) {
        next_windows[i] = 0.0;
        pending_max_loss[i] = 0.0;
        pending_rtt_sum[i] = 0.0;
        pending_steps[i] = 0;
        continue;
      }

      pending_max_loss[i] = std::max(pending_max_loss[i], observed_loss[i]);
      pending_rtt_sum[i] += rtt.value();
      ++pending_steps[i];

      if (step % spec.update_period != spec.update_phase) {
        next_windows[i] = windows[i];  // hold between updates
        continue;
      }
      const cc::Observation obs{
          windows[i], pending_max_loss[i],
          pending_rtt_sum[i] / static_cast<double>(pending_steps[i])};
      next_windows[i] = clamp_window(senders[i].protocol->next_window(obs));
      pending_max_loss[i] = 0.0;
      pending_rtt_sum[i] = 0.0;
      pending_steps[i] = 0;
    }
    windows.swap(next_windows);

    // The monitor sees the windows the senders just chose for the NEXT step,
    // before the link consumes them — a diverging protocol (NaN, blowup) is
    // caught here rather than exploding inside the link's preconditions.
    if (step_monitor_ &&
        !step_monitor_(step, windows, rtt.value(), congestion_loss)) {
      break;
    }
  }
  if (record_telemetry) {
    TELEMETRY_COUNT("fluid.ticks", ticks);
    TELEMETRY_COUNT("fluid.loss_event_steps", loss_event_steps);
    TELEMETRY_COUNT("fluid.injected_loss_samples", injected_loss_samples);
  }
  return trace;
}

Trace FluidSimulation::run_batch() {
  const bool aggregate = options_.trace_detail == TraceDetail::kAggregate;
  // A homogeneous cohort whose members all see the same inputs every step —
  // shared spec, shared schedules, and a per-step-uniform (stateless) loss
  // injector — provably stays uniform: every member's window is bitwise
  // identical forever, so the whole cohort can advance through one
  // representative sender. That collapses the per-sender work to O(cohorts)
  // per step; only the byte-identity-mandated serial aggregate-window fold
  // stays O(n) (a register-only add chain). The step monitor needs a real
  // per-sender span and full-detail traces need real series, so those run
  // the materialized path below.
  if (aggregate && !step_monitor_ && injector_->stateless()) {
    return run_batch_uniform();
  }
  TELEMETRY_SPAN("fluid", "sim.tick_loop.batch");
  const long n = total_senders_;

  // One cohort per sender group. Kernel cohorts advance through the SoA
  // batch kernel with zero per-member protocol instances; fallback cohorts
  // mirror the scalar path's per-member clones and virtual dispatch.
  struct Cohort {
    const SenderSpec* spec;
    long begin;
    long end;
    bool active = false;
    const cc::BatchProtocol* kernel = nullptr;
    int state_size = 0;
    std::vector<double> state;           ///< kernel cohorts, member-major.
    std::vector<cc::Protocol*> members;  ///< fallback cohorts only.
    long pending_steps = 0;  ///< uniform across members (shared churn/phase).
  };
  std::vector<std::unique_ptr<cc::Protocol>> owned;
  std::vector<Cohort> cohorts;
  cohorts.reserve(groups_.size());
  long next_begin = 0;
  for (const SenderGroup& group : groups_) {
    Cohort c;
    c.spec = &group.spec;
    c.begin = next_begin;
    c.end = next_begin + group.count;
    next_begin = c.end;
    c.kernel = group.spec.protocol->batch_kernel();
    if (c.kernel != nullptr) {
      c.state_size = c.kernel->state_size();
      if (c.state_size > 0) {
        c.state.resize(static_cast<std::size_t>(group.count * c.state_size));
        for (long j = 0; j < group.count; ++j) {
          c.kernel->init_state(std::span<double>(
              c.state.data() + j * c.state_size,
              static_cast<std::size_t>(c.state_size)));
        }
      }
    } else {
      c.members.reserve(static_cast<std::size_t>(group.count));
      if (group.count == 1) {
        c.members.push_back(group.spec.protocol.get());
      } else {
        for (long j = 0; j < group.count; ++j) {
          owned.push_back(group.spec.protocol->clone());
          c.members.push_back(owned.back().get());
        }
      }
    }
    cohorts.push_back(std::move(c));
  }

  // Fixed-size chunking keeps shard boundaries independent of the job count
  // (docs/parallel.md's determinism contract); all sharded loops are pure
  // elementwise writes to disjoint ranges, so results cannot depend on the
  // schedule. One persistent pool serves every step — parallel_map's
  // per-call pool would pay a thread spawn per tick.
  constexpr long kChunk = 16384;
  const long jobs = resolve_jobs(options_.jobs);
  std::unique_ptr<TaskPool> pool;
  if (jobs > 1 && n >= 2 * kChunk) {
    pool = std::make_unique<TaskPool>(static_cast<int>(jobs));
  }
  const auto for_range = [&pool](long lo, long hi, const auto& body) {
    if (pool == nullptr || hi - lo < 2 * kChunk) {
      if (hi > lo) body(lo, hi);
      return;
    }
    for (long c0 = lo; c0 < hi; c0 += kChunk) {
      const long c1 = std::min(hi, c0 + kChunk);
      pool->submit([&body, c0, c1] { body(c0, c1); });
    }
    pool->wait_idle();
  };

  Trace trace = make_trace();
  trace.reserve(static_cast<std::size_t>(options_.steps));

  const double min_w = options_.min_window_mss;
  const double max_w = options_.max_window_mss;
  const auto clamp_window = [min_w, max_w](double w) {
    return std::clamp(w, min_w, max_w);
  };

  const auto cohort_active = [](const Cohort& c, long step) {
    return step >= c.spec->start_step &&
           (c.spec->stop_step < 0 || step < c.spec->stop_step);
  };

  std::vector<double> windows(static_cast<std::size_t>(n), 0.0);
  std::vector<double> next_windows(static_cast<std::size_t>(n), 0.0);
  std::vector<double> observed(static_cast<std::size_t>(n), 0.0);
  std::vector<double> loss_buf(static_cast<std::size_t>(n), 0.0);
  std::vector<double> rtt_buf(static_cast<std::size_t>(n), 0.0);
  std::vector<double> pending_max_loss(static_cast<std::size_t>(n), 0.0);
  std::vector<double> pending_rtt_sum(static_cast<std::size_t>(n), 0.0);

  for (Cohort& c : cohorts) {
    c.active = cohort_active(c, 0);
    if (c.active) {
      std::fill(windows.begin() + c.begin, windows.begin() + c.end,
                clamp_window(c.spec->initial_window_mss));
    }
  }

  const bool record_telemetry =
      telemetry::compiled_in() && telemetry::enabled();
  long ticks = 0;
  long loss_event_steps = 0;
  long injected_loss_samples = 0;
  const bool uniform_injector = injector_->stateless();

  ScheduledLink sched(link_, bandwidth_scale_, rtt_scale_);
  StepRecorder srec(options_.record_sink, groups_, bandwidth_scale_,
                    rtt_scale_, aggregate, n);
  for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
    srec.cohort_mode(ci, cohorts[ci].kernel != nullptr
                             ? recorder::EventCode::kKernel
                             : recorder::EventCode::kFallback);
  }

  for (long step = 0; step < options_.steps; ++step) {
#ifndef AXIOMCC_TELEMETRY_DISABLED
    std::optional<telemetry::ScopedHistogramTimer> tick_timer;
    if (record_telemetry && (step & 63) == 0) {
      static telemetry::Histogram& tick_hist =
          telemetry::Registry::global().latency_histogram("fluid.tick_us");
      tick_timer.emplace(tick_hist);
    }
#endif
    // Churn transitions. Within a cohort activity is uniform, and a sender's
    // [start, stop) interval is visited once, so the O(count) fills run only
    // at join/leave steps — the scalar path's per-step churn scan collapses
    // to O(cohorts) on quiet steps.
    for (Cohort& c : cohorts) {
      const bool active = cohort_active(c, step);
      if (!active && c.active) {
        std::fill(windows.begin() + c.begin, windows.begin() + c.end, 0.0);
        std::fill(next_windows.begin() + c.begin, next_windows.begin() + c.end,
                  0.0);
        std::fill(observed.begin() + c.begin, observed.begin() + c.end, 0.0);
        std::fill(pending_max_loss.begin() + c.begin,
                  pending_max_loss.begin() + c.end, 0.0);
        std::fill(pending_rtt_sum.begin() + c.begin,
                  pending_rtt_sum.begin() + c.end, 0.0);
        c.pending_steps = 0;
      } else if (active && step == c.spec->start_step && step != 0) {
        std::fill(windows.begin() + c.begin, windows.begin() + c.end,
                  clamp_window(c.spec->initial_window_mss));
      }
      c.active = active;
    }

    // The aggregate-window fold stays a SERIAL ascending pass: float
    // addition is non-associative, and this exact left fold is what the
    // scalar path (and Trace::add_step) computes. Min/max/count are exactly
    // associative, so folding them here too costs nothing in fidelity.
    double total = 0.0;
    double window_min = std::numeric_limits<double>::infinity();
    double window_max = -std::numeric_limits<double>::infinity();
    long active_senders = 0;
    if (aggregate) {
      for (long i = 0; i < n; ++i) {
        const double w = windows[i];
        total += w;
        if (w > 0.0) {
          ++active_senders;
          if (w < window_min) window_min = w;
          if (w > window_max) window_max = w;
        }
      }
    } else {
      for (double w : windows) total += w;
    }

    const FluidLink& active_link = sched.at(step);
    const double congestion_loss = active_link.loss_rate(total);
    const Seconds rtt = active_link.rtt(total);
    const double rtt_value = rtt.value();

    // Loss observation. A uniform (stateless) injector yields one value for
    // the whole step, so active cohorts take a sharded fill; a stateful
    // injector must see the scalar path's exact call sequence — active
    // senders only, ascending — so it samples serially.
    for (Cohort& c : cohorts) {
      if (!c.active) continue;
      if (uniform_injector) {
        const double injected =
            injector_->sample(step, static_cast<int>(c.begin));
        const double value = combine_loss(congestion_loss, injected);
        for_range(c.begin, c.end, [&observed, value](long lo, long hi) {
          std::fill(observed.begin() + lo, observed.begin() + hi, value);
        });
        if (record_telemetry && injected > 0.0) {
          injected_loss_samples += c.end - c.begin;
        }
      } else {
        for (long i = c.begin; i < c.end; ++i) {
          const double injected = injector_->sample(step, static_cast<int>(i));
          observed[i] = combine_loss(congestion_loss, injected);
          if (record_telemetry && injected > 0.0) ++injected_loss_samples;
        }
      }
    }
    if (record_telemetry) {
      ++ticks;
      if (congestion_loss > 0.0) ++loss_event_steps;
    }

    if (aggregate) {
      trace.add_step_aggregate(total, window_min, window_max, active_senders,
                               rtt_value, congestion_loss, windows, observed);
    } else {
      trace.add_step(windows, rtt_value, congestion_loss, observed);
    }
    srec.on_step(
        step, total, rtt_value, congestion_loss,
        [&](std::size_t, long begin) { return windows[begin]; },
        [&](std::size_t, long begin) { return observed[begin]; },
        [&](long i) { return windows[i]; }, n);
    if (scope::MetricScope* scope = options_.scope_sink; scope != nullptr) {
      scope->step_begin(step, total, rtt_value, congestion_loss);
      for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
        const Cohort& c = cohorts[ci];
        for (long i = c.begin; i < c.end; ++i) {
          scope->observe_class(static_cast<int>(ci), windows[i], observed[i]);
        }
      }
      scope->step_end();
    }

    // Window update, cohort by cohort.
    for (Cohort& c : cohorts) {
      if (!c.active) continue;  // arrays already zeroed at the transition
      const long period = c.spec->update_period;

      if (c.kernel != nullptr && period == 1) {
        // Synchronized fast path: the pending aggregates around an
        // every-step update are max(0, loss) and (0 + rtt)/1 — computed
        // inline, no pending arrays touched.
        for_range(c.begin, c.end, [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            loss_buf[i] = std::max(0.0, observed[i]);
          }
          for (long i = lo; i < hi; ++i) rtt_buf[i] = rtt_value;
          const std::size_t len = static_cast<std::size_t>(hi - lo);
          c.kernel->next_window_batch(
              std::span<const double>(windows.data() + lo, len),
              std::span<const double>(loss_buf.data() + lo, len),
              std::span<const double>(rtt_buf.data() + lo, len),
              std::span<double>(
                  c.state.empty()
                      ? nullptr
                      : c.state.data() + (lo - c.begin) * c.state_size,
                  len * static_cast<std::size_t>(c.state_size)),
              std::span<double>(next_windows.data() + lo, len));
          for (long i = lo; i < hi; ++i) {
            next_windows[i] = std::clamp(next_windows[i], min_w, max_w);
          }
        });
        continue;
      }

      // Unsynchronized or fallback cohorts aggregate pendings exactly like
      // the scalar path; due-ness is uniform across the cohort.
      for_range(c.begin, c.end, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) {
          pending_max_loss[i] = std::max(pending_max_loss[i], observed[i]);
        }
        for (long i = lo; i < hi; ++i) pending_rtt_sum[i] += rtt_value;
      });
      ++c.pending_steps;

      if (step % period != c.spec->update_phase) {
        for_range(c.begin, c.end, [&](long lo, long hi) {
          std::copy(windows.begin() + lo, windows.begin() + hi,
                    next_windows.begin() + lo);  // hold between updates
        });
        continue;
      }

      const double pending_count = static_cast<double>(c.pending_steps);
      if (c.kernel != nullptr) {
        for_range(c.begin, c.end, [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            rtt_buf[i] = pending_rtt_sum[i] / pending_count;
          }
          const std::size_t len = static_cast<std::size_t>(hi - lo);
          c.kernel->next_window_batch(
              std::span<const double>(windows.data() + lo, len),
              std::span<const double>(pending_max_loss.data() + lo, len),
              std::span<const double>(rtt_buf.data() + lo, len),
              std::span<double>(
                  c.state.empty()
                      ? nullptr
                      : c.state.data() + (lo - c.begin) * c.state_size,
                  len * static_cast<std::size_t>(c.state_size)),
              std::span<double>(next_windows.data() + lo, len));
          for (long i = lo; i < hi; ++i) {
            next_windows[i] = std::clamp(next_windows[i], min_w, max_w);
            pending_max_loss[i] = 0.0;
            pending_rtt_sum[i] = 0.0;
          }
        });
      } else {
        for_range(c.begin, c.end, [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            const cc::Observation obs{windows[i], pending_max_loss[i],
                                      pending_rtt_sum[i] / pending_count};
            next_windows[i] = std::clamp(
                c.members[static_cast<std::size_t>(i - c.begin)]
                    ->next_window(obs),
                min_w, max_w);
            pending_max_loss[i] = 0.0;
            pending_rtt_sum[i] = 0.0;
          }
        });
      }
      c.pending_steps = 0;
    }
    windows.swap(next_windows);

    if (step_monitor_ &&
        !step_monitor_(step, windows, rtt_value, congestion_loss)) {
      break;
    }
  }
  if (record_telemetry) {
    TELEMETRY_COUNT("fluid.ticks", ticks);
    TELEMETRY_COUNT("fluid.loss_event_steps", loss_event_steps);
    TELEMETRY_COUNT("fluid.injected_loss_samples", injected_loss_samples);
  }
  return trace;
}

Trace FluidSimulation::run_batch_uniform() {
  TELEMETRY_SPAN("fluid", "sim.tick_loop.uniform");
  // Uniform-cohort engine: aggregate trace, no step monitor, stateless
  // injector (see the dispatch in run_batch). State is one representative
  // sender per cohort — O(cohorts + tracked) memory regardless of the
  // population, which is what makes million-sender runs cheap.
  struct UniformCohort {
    const SenderSpec* spec;
    long begin = 0;
    long count = 0;
    bool active = false;
    const cc::BatchProtocol* kernel = nullptr;
    std::vector<double> state;        ///< one member's kernel state.
    cc::Protocol* protocol = nullptr; ///< fallback: one shared instance.
    double w = 0.0;                   ///< every member's window, bitwise.
    double obs = 0.0;                 ///< every member's observed loss.
    double pending_max = 0.0;
    double pending_rtt_sum = 0.0;
    long pending_steps = 0;
  };
  std::vector<std::unique_ptr<cc::Protocol>> owned;
  std::vector<UniformCohort> cohorts;
  cohorts.reserve(groups_.size());
  long next_begin = 0;
  for (const SenderGroup& group : groups_) {
    UniformCohort c;
    c.spec = &group.spec;
    c.begin = next_begin;
    c.count = group.count;
    next_begin += group.count;
    c.kernel = group.spec.protocol->batch_kernel();
    if (c.kernel != nullptr) {
      const int state_size = c.kernel->state_size();
      if (state_size > 0) {
        c.state.resize(static_cast<std::size_t>(state_size));
        c.kernel->init_state(c.state);
      }
    } else if (group.count == 1) {
      c.protocol = group.spec.protocol.get();
    } else {
      // All members start as identical clones and receive identical inputs,
      // so one instance stands in for the whole cohort (protocols are
      // deterministic functions of their state and observations).
      owned.push_back(group.spec.protocol->clone());
      c.protocol = owned.back().get();
    }
    cohorts.push_back(std::move(c));
  }

  Trace trace = make_trace();
  trace.reserve(static_cast<std::size_t>(options_.steps));

  const double min_w = options_.min_window_mss;
  const double max_w = options_.max_window_mss;

  const auto cohort_active = [](const UniformCohort& c, long step) {
    return step >= c.spec->start_step &&
           (c.spec->stop_step < 0 || step < c.spec->stop_step);
  };

  for (UniformCohort& c : cohorts) {
    c.active = cohort_active(c, 0);
    if (c.active) {
      c.w = std::clamp(c.spec->initial_window_mss, min_w, max_w);
    }
  }

  // Map each tracked sender id to its owning cohort once (ids and cohort
  // ranges both ascend).
  const std::span<const int> tracked = trace.tracked_senders();
  std::vector<std::size_t> tracked_cohort(tracked.size());
  for (std::size_t j = 0, ci = 0; j < tracked.size(); ++j) {
    while (tracked[j] >= cohorts[ci].begin + cohorts[ci].count) ++ci;
    tracked_cohort[j] = ci;
  }
  std::vector<double> tracked_w(tracked.size());
  std::vector<double> tracked_obs(tracked.size());

  const bool record_telemetry =
      telemetry::compiled_in() && telemetry::enabled();
  long ticks = 0;
  long loss_event_steps = 0;
  long injected_loss_samples = 0;

  ScheduledLink sched(link_, bandwidth_scale_, rtt_scale_);
  StepRecorder srec(options_.record_sink, groups_, bandwidth_scale_,
                    rtt_scale_, /*aggregate=*/true, total_senders_);
  for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
    srec.cohort_mode(ci, recorder::EventCode::kUniform);
  }

  for (long step = 0; step < options_.steps; ++step) {
#ifndef AXIOMCC_TELEMETRY_DISABLED
    std::optional<telemetry::ScopedHistogramTimer> tick_timer;
    if (record_telemetry && (step & 63) == 0) {
      static telemetry::Histogram& tick_hist =
          telemetry::Registry::global().latency_histogram("fluid.tick_us");
      tick_timer.emplace(tick_hist);
    }
#endif
    for (UniformCohort& c : cohorts) {
      const bool active = cohort_active(c, step);
      if (!active && c.active) {
        c.w = 0.0;
        c.obs = 0.0;
        c.pending_max = 0.0;
        c.pending_rtt_sum = 0.0;
        c.pending_steps = 0;
      } else if (active && step == c.spec->start_step && step != 0) {
        c.w = std::clamp(c.spec->initial_window_mss, min_w, max_w);
      }
      c.active = active;
    }

    // The serial ascending left fold the scalar path computes, member by
    // member. Inactive members contribute +0.0, which is the additive
    // identity for the non-negative (or NaN) partial sums here, so inactive
    // cohorts are skipped without changing a bit. The repeated-add chain
    // cannot be collapsed to a multiply — float addition is not associative
    // — which is why this loop, and only this loop, stays O(n).
    double total = 0.0;
    double window_min = std::numeric_limits<double>::infinity();
    double window_max = -std::numeric_limits<double>::infinity();
    long active_senders = 0;
    for (const UniformCohort& c : cohorts) {
      if (!c.active) continue;
      const double x = c.w;
      for (long k = 0; k < c.count; ++k) total += x;
      if (x > 0.0) {
        active_senders += c.count;
        if (x < window_min) window_min = x;
        if (x > window_max) window_max = x;
      }
    }

    const FluidLink& active_link = sched.at(step);
    const double congestion_loss = active_link.loss_rate(total);
    const double rtt_value = active_link.rtt(total).value();

    for (UniformCohort& c : cohorts) {
      if (!c.active) continue;
      const double injected =
          injector_->sample(step, static_cast<int>(c.begin));
      c.obs = combine_loss(congestion_loss, injected);
      if (record_telemetry && injected > 0.0) {
        injected_loss_samples += c.count;
      }
    }
    if (record_telemetry) {
      ++ticks;
      if (congestion_loss > 0.0) ++loss_event_steps;
    }

    for (std::size_t j = 0; j < tracked.size(); ++j) {
      const UniformCohort& c = cohorts[tracked_cohort[j]];
      tracked_w[j] = c.active ? c.w : 0.0;
      tracked_obs[j] = c.active ? c.obs : 0.0;
    }
    trace.add_step_aggregate_tracked(total, window_min, window_max,
                                     active_senders, rtt_value,
                                     congestion_loss, tracked_w, tracked_obs);
    srec.on_step(
        step, total, rtt_value, congestion_loss,
        [&](std::size_t ci, long) { return cohorts[ci].w; },
        [&](std::size_t ci, long) { return cohorts[ci].obs; },
        [](long) { return 0.0; }, total_senders_);
    if (scope::MetricScope* scope = options_.scope_sink; scope != nullptr) {
      // One observe per cohort with the member count: the scope folds it as
      // `count` repeated serial adds of the representative's (bitwise
      // shared) values, reproducing the materialized paths' member-by-member
      // fold exactly.
      scope->step_begin(step, total, rtt_value, congestion_loss);
      for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
        const UniformCohort& c = cohorts[ci];
        scope->observe_class(static_cast<int>(ci), c.active ? c.w : 0.0,
                             c.active ? c.obs : 0.0, c.count);
      }
      scope->step_end();
    }

    for (UniformCohort& c : cohorts) {
      if (!c.active) continue;
      // Identical to the scalar path's pending aggregation; for period 1
      // this reduces to max(0, obs) and (0 + rtt)/1, bitwise.
      c.pending_max = std::max(c.pending_max, c.obs);
      c.pending_rtt_sum += rtt_value;
      ++c.pending_steps;
      if (step % c.spec->update_period != c.spec->update_phase) continue;
      const double mean_rtt =
          c.pending_rtt_sum / static_cast<double>(c.pending_steps);
      double next = 0.0;
      if (c.kernel != nullptr) {
        const double win = c.w;
        const double loss_in = c.pending_max;
        const double rtt_in = mean_rtt;
        c.kernel->next_window_batch(std::span<const double>(&win, 1),
                                    std::span<const double>(&loss_in, 1),
                                    std::span<const double>(&rtt_in, 1),
                                    c.state, std::span<double>(&next, 1));
      } else {
        next = c.protocol->next_window(
            cc::Observation{c.w, c.pending_max, mean_rtt});
      }
      c.w = std::clamp(next, min_w, max_w);
      c.pending_max = 0.0;
      c.pending_rtt_sum = 0.0;
      c.pending_steps = 0;
    }
  }
  if (record_telemetry) {
    TELEMETRY_COUNT("fluid.ticks", ticks);
    TELEMETRY_COUNT("fluid.loss_event_steps", loss_event_steps);
    TELEMETRY_COUNT("fluid.injected_loss_samples", injected_loss_samples);
  }
  return trace;
}

Trace run_homogeneous(const LinkParams& link, const cc::Protocol& prototype,
                      int n, double initial_window_mss,
                      const SimOptions& options) {
  AXIOMCC_EXPECTS(n > 0);
  FluidSimulation sim(link, options);
  sim.add_senders(prototype, n, initial_window_mss);
  return sim.run();
}

}  // namespace axiomcc::fluid
