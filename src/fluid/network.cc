#include "fluid/network.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace axiomcc::fluid {

namespace {

/// Flight-recorder emission for the routed network, mirroring the
/// single-link StepRecorder: every event derives from the flow specs, the
/// shared schedule functions, or the per-step values the trace records, so
/// both topology backends' recordings live on the same lanes. Flows are
/// their own cohorts here (one member each) — the engine's topology path
/// flattens sender slots to per-flow order on both backends, so cohort id
/// == flow id and the recordings step-align.
class NetStepRecorder {
 public:
  NetStepRecorder(recorder::Recorder* sink,
                  const std::vector<FluidNetwork::FlowSpec>& flows,
                  const std::function<double(long)>& bw,
                  const std::function<double(long)>& rtt, bool aggregate)
      : sink_(sink), flows_(&flows), bw_(&bw), rtt_(&rtt),
        aggregate_(aggregate) {
    if (sink_ == nullptr) return;
    sink_->set_backend("fluid");
    sink_->set_senders(static_cast<long>(flows.size()));
    churn_active_.assign(flows.size(), 0);
    injected_visible_.assign(flows.size(), 0);
  }

  void on_step(long step, double total, double rtt_value,
               double congestion_loss, std::span<const double> windows,
               std::span<const double> observed) {
    using recorder::EventClass;
    using recorder::EventCode;
    using recorder::Subject;
    if (sink_ == nullptr) return;
    sink_->note_step(step);

    const auto active_at = [step](const FluidNetwork::FlowSpec& f) {
      return step >= f.start_step &&
             (f.stop_step < 0 || step < f.stop_step);
    };

    if (sink_->wants(EventClass::kChurn)) {
      for (std::size_t fi = 0; fi < flows_->size(); ++fi) {
        const bool active = active_at((*flows_)[fi]);
        if (active != static_cast<bool>(churn_active_[fi])) {
          sink_->emit({step, EventClass::kChurn,
                       active ? EventCode::kJoin : EventCode::kLeave,
                       Subject::kCohort, static_cast<int>(fi), 1.0, 0.0});
          churn_active_[fi] = active ? 1 : 0;
        }
      }
    }

    if (sink_->wants(EventClass::kSchedule)) {
      if (*bw_) {
        const double scale = (*bw_)(step);
        if (scale != last_bw_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kBandwidth,
                       Subject::kRun, -1, scale, last_bw_scale_});
          last_bw_scale_ = scale;
        }
      }
      if (*rtt_) {
        const double scale = (*rtt_)(step);
        if (scale != last_rtt_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kRtt,
                       Subject::kRun, -1, scale, last_rtt_scale_});
          last_rtt_scale_ = scale;
        }
      }
    }

    if (sink_->wants(EventClass::kLoss)) {
      const bool lossy = congestion_loss > 0.0;
      if (lossy != loss_active_) {
        sink_->emit({step, EventClass::kLoss,
                     lossy ? EventCode::kOnset : EventCode::kClear,
                     Subject::kRun, -1,
                     lossy ? congestion_loss : last_loss_, 0.0});
        loss_active_ = lossy;
      }
      if (lossy) last_loss_ = congestion_loss;
      for (std::size_t fi = 0; fi < flows_->size(); ++fi) {
        const bool active = active_at((*flows_)[fi]);
        const double obs = active ? observed[fi] : 0.0;
        // On a multi-hop route a flow's composed congestion loss can exceed
        // the per-link maximum, so "injected visible" compares against the
        // flow's own congestion-only composition, approximated by the
        // recorded (max-link) rate — good enough for timeline triage.
        const bool visible = active && obs > congestion_loss;
        if (visible != static_cast<bool>(injected_visible_[fi])) {
          sink_->emit({step, EventClass::kLoss,
                       visible ? EventCode::kInjected : EventCode::kClear,
                       Subject::kCohort, static_cast<int>(fi), obs,
                       congestion_loss});
          injected_visible_[fi] = visible ? 1 : 0;
        }
      }
    }

    if (sink_->wants(EventClass::kWindow) && sink_->sample_due(step)) {
      sink_->emit({step, EventClass::kWindow, EventCode::kTotal, Subject::kRun,
                   -1, total, rtt_value});
      for (std::size_t fi = 0; fi < windows.size(); ++fi) {
        if (windows[fi] > 0.0) {
          sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                       aggregate_ ? Subject::kCohort : Subject::kSender,
                       static_cast<int>(fi), windows[fi], 0.0});
        }
      }
    }
  }

 private:
  recorder::Recorder* sink_;
  const std::vector<FluidNetwork::FlowSpec>* flows_;
  const std::function<double(long)>* bw_;
  const std::function<double(long)>* rtt_;
  bool aggregate_;
  std::vector<char> churn_active_;
  std::vector<char> injected_visible_;
  double last_bw_scale_ = 1.0;
  double last_rtt_scale_ = 1.0;
  bool loss_active_ = false;
  double last_loss_ = 0.0;
};

/// The active link set under (possibly null) network-wide bandwidth/RTT
/// schedules: the single-link ScheduledLink, vectorized. All links share the
/// scale pair, so the rebuild is amortized across piecewise-constant
/// schedules exactly like the single-link path.
class ScheduledLinks {
 public:
  ScheduledLinks(const std::vector<FluidLink>& base,
                 const std::function<double(long)>& bw,
                 const std::function<double(long)>& rtt)
      : base_(base), bw_(bw), rtt_(rtt) {}

  const std::vector<FluidLink>& at(long step) {
    if (!bw_ && !rtt_) return base_;
    double bw_scale = 1.0;
    double rtt_scale = 1.0;
    if (bw_) {
      bw_scale = bw_(step);
      AXIOMCC_EXPECTS_MSG(bw_scale > 0.0, "bandwidth scale must be positive");
    }
    if (rtt_) {
      rtt_scale = rtt_(step);
      AXIOMCC_EXPECTS_MSG(rtt_scale > 0.0, "RTT scale must be positive");
    }
    if (!cached_ || bw_scale != last_bw_ || rtt_scale != last_rtt_) {
      scaled_.clear();
      scaled_.reserve(base_.size());
      for (const FluidLink& link : base_) {
        LinkParams params = link.params();
        if (bw_) {
          params.bandwidth = Bandwidth::from_mss_per_sec(
              params.bandwidth.mss_per_sec() * bw_scale);
        }
        if (rtt_) {
          params.propagation_delay = params.propagation_delay * rtt_scale;
        }
        scaled_.emplace_back(params);
      }
      cached_ = true;
      last_bw_ = bw_scale;
      last_rtt_ = rtt_scale;
    }
    return scaled_;
  }

 private:
  const std::vector<FluidLink>& base_;
  const std::function<double(long)>& bw_;
  const std::function<double(long)>& rtt_;
  std::vector<FluidLink> scaled_;
  double last_bw_ = 1.0;
  double last_rtt_ = 1.0;
  bool cached_ = false;
};

}  // namespace

FluidNetwork::FluidNetwork(Options options)
    : options_(options), injector_(std::make_unique<NoLoss>()) {
  AXIOMCC_EXPECTS(options.steps > 0);
  AXIOMCC_EXPECTS(options.min_window_mss > 0.0);
  AXIOMCC_EXPECTS(options.max_window_mss > options.min_window_mss);
  if (options.trace_detail == TraceDetail::kAggregate) {
    AXIOMCC_EXPECTS(options.tracked_senders > 0);
  }
}

int FluidNetwork::add_link(const LinkParams& params) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_link must precede run()");
  links_.emplace_back(params);
  return num_links() - 1;
}

int FluidNetwork::add_flow(std::unique_ptr<cc::Protocol> protocol,
                           std::vector<int> route, double initial_window_mss) {
  return add_flow(
      FlowSpec{std::move(protocol), std::move(route), initial_window_mss});
}

int FluidNetwork::add_flow(FlowSpec spec) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_flow must precede run()");
  AXIOMCC_EXPECTS(spec.protocol != nullptr);
  AXIOMCC_EXPECTS_MSG(!spec.route.empty(),
                      "a flow must traverse at least one link");
  for (int link_id : spec.route) {
    AXIOMCC_EXPECTS(link_id >= 0 && link_id < num_links());
  }
  AXIOMCC_EXPECTS(spec.initial_window_mss >= 0.0);
  AXIOMCC_EXPECTS(spec.start_step >= 0);
  AXIOMCC_EXPECTS(spec.stop_step < 0 || spec.stop_step > spec.start_step);
  flows_.push_back(std::move(spec));
  return num_flows() - 1;
}

void FluidNetwork::set_loss_injector(std::unique_ptr<LossInjector> injector) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_loss_injector must precede run()");
  AXIOMCC_EXPECTS(injector != nullptr);
  injector_ = std::move(injector);
}

void FluidNetwork::set_bandwidth_schedule(std::function<double(long)> scale) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_bandwidth_schedule must precede run()");
  AXIOMCC_EXPECTS(scale != nullptr);
  bandwidth_scale_ = std::move(scale);
}

void FluidNetwork::set_rtt_schedule(std::function<double(long)> scale) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_rtt_schedule must precede run()");
  AXIOMCC_EXPECTS(scale != nullptr);
  rtt_scale_ = std::move(scale);
}

void FluidNetwork::set_step_monitor(StepMonitor monitor) {
  AXIOMCC_EXPECTS_MSG(!ran_, "set_step_monitor must precede run()");
  AXIOMCC_EXPECTS(monitor != nullptr);
  step_monitor_ = std::move(monitor);
}

const FluidLink& FluidNetwork::link(int id) const {
  AXIOMCC_EXPECTS(id >= 0 && id < num_links());
  return links_[id];
}

Trace FluidNetwork::run() {
  AXIOMCC_EXPECTS_MSG(!ran_, "run() may be called only once");
  AXIOMCC_EXPECTS_MSG(!flows_.empty(), "add at least one flow before run()");
  ran_ = true;

  const int nf = num_flows();
  const int nl = num_links();

  // Trace conventions (see header): capacity = min link capacity on any
  // route; min-RTT = smallest route floor.
  double min_capacity = std::numeric_limits<double>::infinity();
  double min_route_rtt = std::numeric_limits<double>::infinity();
  for (const FlowSpec& f : flows_) {
    double route_rtt = 0.0;
    for (int l : f.route) {
      min_capacity = std::min(min_capacity, links_[l].capacity_mss());
      route_rtt += links_[l].min_rtt().value();
    }
    min_route_rtt = std::min(min_route_rtt, route_rtt);
  }

  const bool aggregate = options_.trace_detail == TraceDetail::kAggregate;
  Trace trace = aggregate
                    ? Trace(nf, min_capacity, min_route_rtt,
                            TraceDetail::kAggregate,
                            default_tracked_senders(nf,
                                                    options_.tracked_senders))
                    : Trace(nf, min_capacity, min_route_rtt);
  trace.reserve(static_cast<std::size_t>(options_.steps));

  const auto clamp_window = [&](double w) {
    return std::clamp(w, options_.min_window_mss, options_.max_window_mss);
  };
  const auto active_at = [](const FlowSpec& f, long step) {
    return step >= f.start_step && (f.stop_step < 0 || step < f.stop_step);
  };

  std::vector<double> windows(nf);
  for (int f = 0; f < nf; ++f) {
    windows[f] = active_at(flows_[f], 0)
                     ? clamp_window(flows_[f].initial_window_mss)
                     : 0.0;
  }

  std::vector<double> link_loss(nl, 0.0);
  std::vector<double> arrivals(nl, 0.0);
  std::vector<double> utilization_sum(nl, 0.0);
  std::vector<double> flow_loss(nf);
  std::vector<double> observed_loss(nf);
  std::vector<double> flow_rtt(nf);
  std::vector<double> next_windows(nf);

  ScheduledLinks sched(links_, bandwidth_scale_, rtt_scale_);
  NetStepRecorder srec(options_.record_sink, flows_, bandwidth_scale_,
                       rtt_scale_, aggregate);
  scope::MetricScope* scope = options_.scope_sink;
  if (scope != nullptr) {
    scope->resolve(options_.steps, 0.0, min_capacity, min_route_rtt,
                   options_.max_window_mss);
    scope->begin_run(nf, nl);
  }

  long steps_run = 0;
  for (long step = 0; step < options_.steps; ++step) {
    // Churn: flows joining at this step restart from their initial window;
    // departed flows stop contributing immediately.
    for (int f = 0; f < nf; ++f) {
      const FlowSpec& spec = flows_[f];
      if (!active_at(spec, step)) {
        windows[f] = 0.0;
      } else if (step == spec.start_step && step != 0) {
        windows[f] = clamp_window(spec.initial_window_mss);
      }
    }

    const std::vector<FluidLink>& active_links = sched.at(step);

    // Fixed-point iteration for consistent carried loads: upstream loss
    // thins downstream arrivals, and arrivals determine loss. A handful of
    // rounds converges because loss rates are small and monotone.
    std::fill(link_loss.begin(), link_loss.end(), 0.0);
    for (int round = 0; round < 4; ++round) {
      std::fill(arrivals.begin(), arrivals.end(), 0.0);
      for (int f = 0; f < nf; ++f) {
        double carried = windows[f];
        for (int l : flows_[f].route) {
          arrivals[l] += carried;
          carried *= 1.0 - link_loss[l];
        }
      }
      for (int l = 0; l < nl; ++l) {
        link_loss[l] = active_links[l].loss_rate(arrivals[l]);
      }
    }

    for (int l = 0; l < nl; ++l) {
      utilization_sum[l] +=
          std::min(1.0, arrivals[l] / active_links[l].capacity_mss());
    }
    ++steps_run;

    // Per-flow observations: loss composes, delay adds, across the route;
    // injected (non-congestion) loss composes on top, exactly like the
    // single-link model.
    double max_link_loss = 0.0;
    for (double loss : link_loss) max_link_loss = std::max(max_link_loss, loss);
    double total = 0.0;
    for (double w : windows) total += w;
    double rtt_sum = 0.0;
    int rtt_count = 0;
    for (int f = 0; f < nf; ++f) {
      if (!active_at(flows_[f], step)) {
        flow_loss[f] = 0.0;
        observed_loss[f] = 0.0;
        flow_rtt[f] = 0.0;
        continue;
      }
      double survive = 1.0;
      double rtt = 0.0;
      for (int l : flows_[f].route) {
        survive *= 1.0 - link_loss[l];
        rtt += active_links[l].rtt(arrivals[l]).value();
      }
      flow_loss[f] = 1.0 - survive;
      const double injected = injector_->sample(step, f);
      observed_loss[f] = combine_loss(flow_loss[f], injected);
      flow_rtt[f] = rtt;
      rtt_sum += rtt;
      ++rtt_count;
    }
    const double mean_rtt = rtt_count > 0
                                ? rtt_sum / static_cast<double>(rtt_count)
                                : min_route_rtt;

    trace.add_step(windows, mean_rtt, max_link_loss, observed_loss);
    srec.on_step(step, total, mean_rtt, max_link_loss, windows, observed_loss);
    if (scope != nullptr) {
      scope->step_begin(step, total, mean_rtt, max_link_loss);
      for (int f = 0; f < nf; ++f) {
        scope->observe_class(f, windows[f], observed_loss[f]);
      }
      for (int l = 0; l < nl; ++l) {
        // Per-link view: utilization against the step's (scheduled)
        // capacity, the link's own droptail loss, and the loaded/zero-load
        // RTT ratio against the CONFIGURED link so RTT schedules register
        // as latency inflation.
        const double base_rtt = links_[l].min_rtt().value();
        const double rtt_ratio =
            base_rtt > 0.0
                ? active_links[l].rtt(arrivals[l]).value() / base_rtt
                : 1.0;
        scope->observe_link(
            l, std::min(1.0, arrivals[l] / active_links[l].capacity_mss()),
            link_loss[l], rtt_ratio);
      }
      scope->step_end();
    }

    for (int f = 0; f < nf; ++f) {
      if (!active_at(flows_[f], step)) {
        next_windows[f] = 0.0;
        continue;
      }
      const cc::Observation obs{windows[f], observed_loss[f], flow_rtt[f]};
      next_windows[f] = clamp_window(flows_[f].protocol->next_window(obs));
    }
    windows.swap(next_windows);

    // The monitor sees the windows the flows just chose for the NEXT step,
    // matching FluidSimulation — a diverging protocol is caught here rather
    // than exploding inside a link's preconditions.
    if (step_monitor_ &&
        !step_monitor_(step, windows, mean_rtt, max_link_loss)) {
      break;
    }
  }

  if (scope != nullptr) scope->finish();

  link_mean_utilization_.assign(nl, 0.0);
  for (int l = 0; l < nl; ++l) {
    link_mean_utilization_[l] =
        utilization_sum[l] / static_cast<double>(std::max(steps_run, 1L));
  }
  return trace;
}

ParkingLot make_parking_lot(const LinkParams& per_link, int bottlenecks,
                            const cc::Protocol& prototype,
                            FluidNetwork::Options options) {
  AXIOMCC_EXPECTS(bottlenecks >= 1);
  ParkingLot lot{FluidNetwork(options), 0, {}};

  std::vector<int> long_route;
  for (int i = 0; i < bottlenecks; ++i) {
    long_route.push_back(lot.network.add_link(per_link));
  }
  lot.long_flow = lot.network.add_flow(prototype.clone(), long_route, 1.0);
  for (int i = 0; i < bottlenecks; ++i) {
    lot.short_flows.push_back(
        lot.network.add_flow(prototype.clone(), {long_route[i]}, 1.0));
  }
  return lot;
}

}  // namespace axiomcc::fluid
