#include "fluid/network.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace axiomcc::fluid {

FluidNetwork::FluidNetwork(Options options) : options_(options) {
  AXIOMCC_EXPECTS(options.steps > 0);
  AXIOMCC_EXPECTS(options.min_window_mss > 0.0);
  AXIOMCC_EXPECTS(options.max_window_mss > options.min_window_mss);
}

int FluidNetwork::add_link(const LinkParams& params) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_link must precede run()");
  links_.emplace_back(params);
  return num_links() - 1;
}

int FluidNetwork::add_flow(std::unique_ptr<cc::Protocol> protocol,
                           std::vector<int> route, double initial_window_mss) {
  AXIOMCC_EXPECTS_MSG(!ran_, "add_flow must precede run()");
  AXIOMCC_EXPECTS(protocol != nullptr);
  AXIOMCC_EXPECTS_MSG(!route.empty(), "a flow must traverse at least one link");
  for (int link_id : route) {
    AXIOMCC_EXPECTS(link_id >= 0 && link_id < num_links());
  }
  AXIOMCC_EXPECTS(initial_window_mss >= 0.0);
  flows_.push_back(Flow{std::move(protocol), std::move(route),
                        initial_window_mss});
  return num_flows() - 1;
}

const FluidLink& FluidNetwork::link(int id) const {
  AXIOMCC_EXPECTS(id >= 0 && id < num_links());
  return links_[id];
}

Trace FluidNetwork::run() {
  AXIOMCC_EXPECTS_MSG(!ran_, "run() may be called only once");
  AXIOMCC_EXPECTS_MSG(!flows_.empty(), "add at least one flow before run()");
  ran_ = true;

  const int nf = num_flows();
  const int nl = num_links();

  // Trace conventions (see header): capacity = min link capacity on any
  // route; min-RTT = smallest route floor.
  double min_capacity = std::numeric_limits<double>::infinity();
  double min_route_rtt = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    double route_rtt = 0.0;
    for (int l : f.route) {
      min_capacity = std::min(min_capacity, links_[l].capacity_mss());
      route_rtt += links_[l].min_rtt().value();
    }
    min_route_rtt = std::min(min_route_rtt, route_rtt);
  }

  Trace trace(nf, min_capacity, min_route_rtt);
  trace.reserve(static_cast<std::size_t>(options_.steps));

  const auto clamp_window = [&](double w) {
    return std::clamp(w, options_.min_window_mss, options_.max_window_mss);
  };

  std::vector<double> windows(nf);
  for (int f = 0; f < nf; ++f) {
    windows[f] = clamp_window(flows_[f].initial_window);
  }

  std::vector<double> link_loss(nl, 0.0);
  std::vector<double> arrivals(nl, 0.0);
  std::vector<double> utilization_sum(nl, 0.0);
  std::vector<double> flow_loss(nf);
  std::vector<double> flow_rtt(nf);
  std::vector<double> next_windows(nf);

  for (long step = 0; step < options_.steps; ++step) {
    // Fixed-point iteration for consistent carried loads: upstream loss
    // thins downstream arrivals, and arrivals determine loss. A handful of
    // rounds converges because loss rates are small and monotone.
    std::fill(link_loss.begin(), link_loss.end(), 0.0);
    for (int round = 0; round < 4; ++round) {
      std::fill(arrivals.begin(), arrivals.end(), 0.0);
      for (int f = 0; f < nf; ++f) {
        double carried = windows[f];
        for (int l : flows_[f].route) {
          arrivals[l] += carried;
          carried *= 1.0 - link_loss[l];
        }
      }
      for (int l = 0; l < nl; ++l) {
        link_loss[l] = links_[l].loss_rate(arrivals[l]);
      }
    }

    for (int l = 0; l < nl; ++l) {
      utilization_sum[l] +=
          std::min(1.0, arrivals[l] / links_[l].capacity_mss());
    }

    // Per-flow observations: loss composes, delay adds, across the route.
    double max_link_loss = 0.0;
    for (double loss : link_loss) max_link_loss = std::max(max_link_loss, loss);
    double rtt_sum = 0.0;
    for (int f = 0; f < nf; ++f) {
      double survive = 1.0;
      double rtt = 0.0;
      for (int l : flows_[f].route) {
        survive *= 1.0 - link_loss[l];
        rtt += links_[l].rtt(arrivals[l]).value();
      }
      flow_loss[f] = 1.0 - survive;
      flow_rtt[f] = rtt;
      rtt_sum += rtt;
    }

    trace.add_step(windows, rtt_sum / static_cast<double>(nf), max_link_loss,
                   flow_loss);

    for (int f = 0; f < nf; ++f) {
      const cc::Observation obs{windows[f], flow_loss[f], flow_rtt[f]};
      next_windows[f] = clamp_window(flows_[f].protocol->next_window(obs));
    }
    windows.swap(next_windows);
  }

  link_mean_utilization_.assign(nl, 0.0);
  for (int l = 0; l < nl; ++l) {
    link_mean_utilization_[l] =
        utilization_sum[l] / static_cast<double>(options_.steps);
  }
  return trace;
}

ParkingLot make_parking_lot(const LinkParams& per_link, int bottlenecks,
                            const cc::Protocol& prototype,
                            FluidNetwork::Options options) {
  AXIOMCC_EXPECTS(bottlenecks >= 1);
  ParkingLot lot{FluidNetwork(options), 0, {}};

  std::vector<int> long_route;
  for (int i = 0; i < bottlenecks; ++i) {
    long_route.push_back(lot.network.add_link(per_link));
  }
  lot.long_flow = lot.network.add_flow(prototype.clone(), long_route, 1.0);
  for (int i = 0; i < bottlenecks; ++i) {
    lot.short_flows.push_back(
        lot.network.add_flow(prototype.clone(), {long_route[i]}, 1.0));
  }
  return lot;
}

}  // namespace axiomcc::fluid
