// network.h — network-wide fluid model: multiple bottlenecks, per-flow routes.
//
// The paper's Section 6 lists "generalizing our model to capture network-wide
// protocol interaction" as future work; this module is that generalization.
// The single-link model of sim.h becomes a set of links L and flows F, each
// flow f traversing an ordered route R(f) ⊆ L:
//
//   * every link l computes its own droptail loss from the aggregate window
//     of the flows crossing it, iterated to a consistent carried load
//     (upstream loss thins downstream arrival);
//   * a flow's observed loss composes across its route:
//     L_f = 1 − Π_{l ∈ R(f)} (1 − L_l);
//   * a flow's RTT adds propagation and queueing across its route.
//
// The classic "parking lot" topology (one long flow crossing k bottlenecks,
// k short cross-flows) is provided as a builder; it exposes the beat-down of
// multi-hop flows that single-link analysis cannot see.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "fluid/link.h"
#include "fluid/trace.h"

namespace axiomcc::fluid {

/// A multi-link fluid network with per-flow routes.
struct NetworkOptions {
  long steps = 2000;
  double min_window_mss = 1.0;
  double max_window_mss = 1e9;
};

class FluidNetwork {
 public:
  using Options = NetworkOptions;

  explicit FluidNetwork(Options options = {});

  /// Adds a link; returns its id.
  int add_link(const LinkParams& params);

  /// Adds a flow with the given route (ordered link ids); returns its id.
  int add_flow(std::unique_ptr<cc::Protocol> protocol,
               std::vector<int> route, double initial_window_mss = 1.0);

  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] int num_flows() const { return static_cast<int>(flows_.size()); }

  [[nodiscard]] const FluidLink& link(int id) const;

  /// Runs the dynamics and returns the per-flow trace. The Trace's
  /// "congestion loss" series records the MAXIMUM per-link loss each step
  /// (the binding bottleneck), its capacity is the MINIMUM link capacity on
  /// any route, and its min-RTT is the smallest route RTT.
  [[nodiscard]] Trace run();

  /// Per-link peak utilization over the tail of the last run (diagnostics).
  [[nodiscard]] const std::vector<double>& link_mean_utilization() const {
    return link_mean_utilization_;
  }

 private:
  struct Flow {
    std::unique_ptr<cc::Protocol> protocol;
    std::vector<int> route;
    double initial_window;
  };

  Options options_;
  std::vector<FluidLink> links_;
  std::vector<Flow> flows_;
  std::vector<double> link_mean_utilization_;
  bool ran_ = false;
};

/// Builds the k-bottleneck parking lot: one long flow over links 0..k−1 and
/// one short flow per link, all running clones of `prototype`. Flow 0 is the
/// long flow. All links share the same parameters.
struct ParkingLot {
  FluidNetwork network;
  int long_flow = 0;
  std::vector<int> short_flows;
};
[[nodiscard]] ParkingLot make_parking_lot(const LinkParams& per_link,
                                          int bottlenecks,
                                          const cc::Protocol& prototype,
                                          FluidNetwork::Options options = {});

}  // namespace axiomcc::fluid
