// network.h — network-wide fluid model: multiple bottlenecks, per-flow routes.
//
// The paper's Section 6 lists "generalizing our model to capture network-wide
// protocol interaction" as future work; this module is that generalization.
// The single-link model of sim.h becomes a set of links L and flows F, each
// flow f traversing an ordered route R(f) ⊆ L:
//
//   * every link l computes its own droptail loss from the aggregate window
//     of the flows crossing it, iterated to a consistent carried load
//     (upstream loss thins downstream arrival);
//   * a flow's observed loss composes across its route:
//     L_f = 1 − Π_{l ∈ R(f)} (1 − L_l);
//   * a flow's RTT adds propagation and queueing across its route.
//
// The network is a first-class engine substrate: it supports the same hooks
// as FluidSimulation — flow churn ([start, stop) step intervals), an injected
// (non-congestion) loss process composed into each flow's observation,
// network-wide bandwidth/RTT perturbation schedules, a step monitor that can
// stop the run early, aggregate-detail traces, and flight-recorder emission.
// engine::FluidBackend routes topology scenarios here.
//
// The classic "parking lot" topology (one long flow crossing k bottlenecks,
// k short cross-flows) is provided as a builder; it exposes the beat-down of
// multi-hop flows that single-link analysis cannot see.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "fluid/link.h"
#include "fluid/loss_model.h"
#include "fluid/trace.h"
#include "recorder/recorder.h"
#include "scope/scope.h"

namespace axiomcc::fluid {

/// A multi-link fluid network with per-flow routes.
struct NetworkOptions {
  long steps = 2000;
  double min_window_mss = 1.0;
  double max_window_mss = 1e9;
  /// Trace retention, as in SimOptions: kAggregate keeps population stats
  /// plus `tracked_senders` full series.
  TraceDetail trace_detail = TraceDetail::kFull;
  int tracked_senders = 8;
  /// Non-owning flight-recorder sink (null = no recording).
  recorder::Recorder* record_sink = nullptr;
  /// Non-owning streaming-metric scope (null = no scope). Observes every
  /// flow (as a scope class) AND every link per step — the per-link
  /// channels are what single-link scopes cannot provide.
  scope::MetricScope* scope_sink = nullptr;
};

class FluidNetwork {
 public:
  using Options = NetworkOptions;
  /// Same shape as FluidSimulation::StepMonitor: sees the windows the flows
  /// just chose for the NEXT step; returning false stops the run, keeping
  /// the steps recorded so far.
  using StepMonitor = std::function<bool(
      long step, std::span<const double> windows, double rtt_seconds,
      double congestion_loss)>;

  /// A flow with churn: active on steps in [start_step, stop_step), with a
  /// negative stop meaning "forever". Rejoining is not modeled (one interval
  /// per flow, like fluid::SenderSpec).
  struct FlowSpec {
    std::unique_ptr<cc::Protocol> protocol;
    std::vector<int> route;  ///< ordered link ids, loop-free.
    double initial_window_mss = 1.0;
    long start_step = 0;
    long stop_step = -1;
  };

  explicit FluidNetwork(Options options = {});

  /// Adds a link; returns its id.
  int add_link(const LinkParams& params);

  /// Adds a flow with the given route (ordered link ids); returns its id.
  int add_flow(std::unique_ptr<cc::Protocol> protocol,
               std::vector<int> route, double initial_window_mss = 1.0);
  /// Adds a flow with full churn control; returns its id.
  int add_flow(FlowSpec spec);

  /// Injected (non-congestion) loss, composed into every active flow's
  /// observed loss exactly like FluidSimulation does. Default: none.
  void set_loss_injector(std::unique_ptr<LossInjector> injector);
  /// Network-wide multiplicative schedules: every link's bandwidth (or
  /// propagation delay) is scaled by the returned factor at each step.
  void set_bandwidth_schedule(std::function<double(long)> scale);
  void set_rtt_schedule(std::function<double(long)> scale);
  void set_step_monitor(StepMonitor monitor);

  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] int num_flows() const { return static_cast<int>(flows_.size()); }

  [[nodiscard]] const FluidLink& link(int id) const;

  /// Runs the dynamics and returns the per-flow trace. The Trace's
  /// "congestion loss" series records the MAXIMUM per-link loss each step
  /// (the binding bottleneck), its capacity is the MINIMUM link capacity on
  /// any route, and its min-RTT is the smallest route RTT.
  [[nodiscard]] Trace run();

  /// Per-link MEAN utilization of the last run (diagnostics): the average of
  /// min(1, arrivals/capacity) over EVERY executed step — the full horizon,
  /// no tail window is applied. When a step monitor stops the run early,
  /// the mean covers only the steps actually run.
  [[nodiscard]] const std::vector<double>& link_mean_utilization() const {
    return link_mean_utilization_;
  }

 private:
  Options options_;
  std::vector<FluidLink> links_;
  std::vector<FlowSpec> flows_;
  std::unique_ptr<LossInjector> injector_;
  std::function<double(long)> bandwidth_scale_;
  std::function<double(long)> rtt_scale_;
  StepMonitor step_monitor_;
  std::vector<double> link_mean_utilization_;
  bool ran_ = false;
};

/// Builds the k-bottleneck parking lot: one long flow over links 0..k−1 and
/// one short flow per link, all running clones of `prototype`. Flow 0 is the
/// long flow. All links share the same parameters.
struct ParkingLot {
  FluidNetwork network;
  int long_flow = 0;
  std::vector<int> short_flows;
};
[[nodiscard]] ParkingLot make_parking_lot(const LinkParams& per_link,
                                          int bottlenecks,
                                          const cc::Protocol& prototype,
                                          FluidNetwork::Options options = {});

}  // namespace axiomcc::fluid
