#include "fluid/link.h"

#include <algorithm>

namespace axiomcc::fluid {

FluidLink::FluidLink(const LinkParams& params)
    : params_(params),
      capacity_mss_(params.bandwidth.mss_over(params.propagation_delay * 2.0)) {
  AXIOMCC_EXPECTS_MSG(params.bandwidth.mss_per_sec() > 0.0,
                      "link bandwidth must be positive");
  AXIOMCC_EXPECTS_MSG(params.propagation_delay.value() > 0.0,
                      "propagation delay must be positive");
  AXIOMCC_EXPECTS_MSG(params.buffer_mss >= 0.0, "buffer size must be >= 0");

  if (params.timeout_rtt.value() > 0.0) {
    timeout_rtt_ = params.timeout_rtt;
  } else {
    // Natural default: the RTT of a full buffer, 2Θ + τ/B.
    timeout_rtt_ =
        min_rtt() + Seconds(params.buffer_mss / params.bandwidth.mss_per_sec());
  }
  AXIOMCC_ENSURES(timeout_rtt_ >= min_rtt());
}

Seconds FluidLink::rtt(double total_window_mss) const {
  AXIOMCC_EXPECTS(total_window_mss >= 0.0);
  if (total_window_mss >= loss_threshold_mss()) {
    return timeout_rtt_;  // Δ: timeout-triggered cap on the RTT under loss.
  }
  const double queueing_delay =
      (total_window_mss - capacity_mss_) / params_.bandwidth.mss_per_sec();
  const double base = min_rtt().value();
  return Seconds(std::max(base, base + queueing_delay));
}

double FluidLink::loss_rate(double total_window_mss) const {
  AXIOMCC_EXPECTS(total_window_mss >= 0.0);
  const double threshold = loss_threshold_mss();
  if (total_window_mss <= threshold) return 0.0;
  return 1.0 - threshold / total_window_mss;
}

LinkParams make_link_mbps(double mbps, double rtt_ms, double buffer_mss) {
  LinkParams p;
  p.bandwidth = Bandwidth::from_mbps(mbps);
  p.propagation_delay = Seconds::from_millis(rtt_ms / 2.0);
  p.buffer_mss = buffer_mss;
  return p;
}

}  // namespace axiomcc::fluid
