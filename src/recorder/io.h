#ifndef AXIOMCC_RECORDER_IO_H_
#define AXIOMCC_RECORDER_IO_H_

#include <string>
#include <string_view>

#include "recorder/recorder.h"
#include "util/json.h"

namespace axiomcc::recorder {

/// Schema stamped into every recording header line. Bump `version` (in
/// `Recording`) on any incompatible field change; the reader rejects
/// versions it does not know. Version history:
///   1 — PR 8 initial layout.
///   2 — adds the `git_sha` provenance field (absent = v1, reads as "").
inline constexpr std::string_view kRecordingSchema = "axiomcc-recording";
inline constexpr int kRecordingVersion = 2;
inline constexpr int kMinRecordingVersion = 1;

/// Serializes a recording as JSONL: one header object (schema, version,
/// backend, run metadata, capture options, drop count) followed by one
/// object per event in emission order. Numbers use the deterministic
/// "%.12g" writer, so identical recordings yield identical bytes.
[[nodiscard]] std::string recording_to_jsonl(const Recording& recording);

/// Appends one event as a JSON object (no trailing newline) to `out`.
/// Exposed for the post-mortem writer, which tags event lines with a side.
void append_event_json(std::string& out, const Event& event);

/// Parses an event object produced by `append_event_json`. Throws
/// std::runtime_error on unknown names or missing fields.
[[nodiscard]] Event parse_event_json(const JsonValue& value);

/// Inverse of `recording_to_jsonl`. Throws std::runtime_error on malformed
/// lines, a wrong schema, or an unknown schema version.
[[nodiscard]] Recording parse_recording_jsonl(std::string_view text);

/// Whole-file helpers shared by the post-mortem writer and the inspect
/// CLI. `write_text_file` creates parent directories; both throw
/// std::runtime_error on I/O failure.
[[nodiscard]] std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, std::string_view contents);

}  // namespace axiomcc::recorder

#endif  // AXIOMCC_RECORDER_IO_H_
