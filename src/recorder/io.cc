#include "recorder/io.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace axiomcc::recorder {

namespace {

void append_header_json(std::string& out, const Recording& r) {
  out += "{\"schema\":";
  append_json_string(out, kRecordingSchema);
  out += ",\"version\":" + std::to_string(r.version);
  out += ",\"backend\":";
  append_json_string(out, r.backend);
  out += ",\"git_sha\":";
  append_json_string(out, r.git_sha);
  out += ",\"senders\":" + std::to_string(r.senders);
  out += ",\"steps\":" + std::to_string(r.steps);
  out += ",\"classes\":" + std::to_string(r.options.classes);
  out += ",\"ring_depth\":" + std::to_string(r.options.ring_depth);
  out += ",\"sample_stride\":" + std::to_string(r.options.sample_stride);
  out += ",\"dropped\":" + std::to_string(r.dropped);
  out += "}";
}

double number_field(const JsonValue& value, const char* key) {
  const JsonValue* field = value.find(key);
  if (field == nullptr || field->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error(std::string("recording: missing numeric field '") +
                             key + "'");
  }
  return field->number;
}

std::string string_field(const JsonValue& value, const char* key) {
  const JsonValue* field = value.find(key);
  if (field == nullptr || field->kind != JsonValue::Kind::kString) {
    throw std::runtime_error(std::string("recording: missing string field '") +
                             key + "'");
  }
  return field->string;
}

}  // namespace

void append_event_json(std::string& out, const Event& event) {
  out += "{\"step\":" + std::to_string(event.step);
  out += ",\"class\":";
  append_json_string(out, event_class_name(event.cls));
  out += ",\"code\":";
  append_json_string(out, event_code_name(event.code));
  out += ",\"lane\":";
  append_json_string(out, subject_name(event.subject_kind));
  out += ",\"subject\":" + std::to_string(event.subject);
  out += ",\"a\":";
  append_json_number(out, event.a);
  out += ",\"b\":";
  append_json_number(out, event.b);
  out += "}";
}

Event parse_event_json(const JsonValue& value) {
  Event event;
  event.step = static_cast<long>(number_field(value, "step"));
  const std::string cls = string_field(value, "class");
  const std::string code = string_field(value, "code");
  const std::string lane = string_field(value, "lane");
  if (!event_class_from_name(cls.c_str(), event.cls)) {
    throw std::runtime_error("recording: unknown event class '" + cls + "'");
  }
  if (!event_code_from_name(code.c_str(), event.code)) {
    throw std::runtime_error("recording: unknown event code '" + code + "'");
  }
  if (!subject_from_name(lane.c_str(), event.subject_kind)) {
    throw std::runtime_error("recording: unknown lane '" + lane + "'");
  }
  event.subject = static_cast<int>(number_field(value, "subject"));
  event.a = number_field(value, "a");
  event.b = number_field(value, "b");
  return event;
}

std::string recording_to_jsonl(const Recording& recording) {
  std::string out;
  out.reserve(64 + recording.events.size() * 96);
  append_header_json(out, recording);
  out.push_back('\n');
  for (const Event& event : recording.events) {
    append_event_json(out, event);
    out.push_back('\n');
  }
  return out;
}

Recording parse_recording_jsonl(std::string_view text) {
  Recording out;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const JsonValue value = parse_json(line);
    if (!saw_header) {
      if (string_field(value, "schema") != kRecordingSchema) {
        throw std::runtime_error("recording: unexpected schema");
      }
      out.version = static_cast<int>(number_field(value, "version"));
      if (out.version < kMinRecordingVersion ||
          out.version > kRecordingVersion) {
        throw std::runtime_error("recording: unknown schema version " +
                                 std::to_string(out.version));
      }
      out.backend = string_field(value, "backend");
      // v1 headers predate provenance; leave git_sha empty for them.
      if (const JsonValue* sha = value.find("git_sha");
          sha != nullptr && sha->kind == JsonValue::Kind::kString) {
        out.git_sha = sha->string;
      }
      out.senders = static_cast<long>(number_field(value, "senders"));
      out.steps = static_cast<long>(number_field(value, "steps"));
      out.options.enabled = true;
      out.options.classes =
          static_cast<unsigned>(number_field(value, "classes"));
      out.options.ring_depth =
          static_cast<long>(number_field(value, "ring_depth"));
      out.options.sample_stride =
          static_cast<long>(number_field(value, "sample_stride"));
      out.dropped = static_cast<std::uint64_t>(number_field(value, "dropped"));
      saw_header = true;
      continue;
    }
    out.events.push_back(parse_event_json(value));
  }
  if (!saw_header) {
    throw std::runtime_error("recording: empty input (no header line)");
  }
  return out;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_text_file(const std::string& path, std::string_view contents) {
  const std::filesystem::path fs_path(path);
  if (fs_path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(fs_path.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  if (!out) throw std::runtime_error("short write to " + path);
}

}  // namespace axiomcc::recorder
