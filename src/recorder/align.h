#ifndef AXIOMCC_RECORDER_ALIGN_H_
#define AXIOMCC_RECORDER_ALIGN_H_

#include <string>
#include <vector>

#include "recorder/recorder.h"

namespace axiomcc::recorder {

/// Knobs for step-aligned comparison of two recordings.
struct AlignOptions {
  /// Classes that participate in the comparison. Cohort events describe
  /// HOW a run executed (kernel vs fallback vs uniform), not what the
  /// simulated system did, so they are excluded by default — a scalar run
  /// and its batch twin must still align.
  unsigned classes = kAllClasses & ~class_bit(EventClass::kCohort);
  /// Relative tolerance for sampled values (window samples/totals, guard
  /// checks): |a-b| / max(1, |a|, |b|) above this diverges. Discrete
  /// events (loss transitions, schedule breakpoints, churn, guard trips)
  /// compare by presence at the exact step, not by magnitude.
  double tolerance = 0.25;
  /// Steps of surrounding events reported from both sides on divergence.
  long context = 6;
};

/// Outcome of aligning two recordings step by step.
struct AlignResult {
  bool diverged = false;
  long first_divergence_step = -1;  ///< -1 when the runs align
  EventClass trigger = EventClass::kWindow;
  std::string reason;        ///< human-readable one-liner
  long steps_compared = 0;   ///< size of the comparable step range
  long compare_start = 0;    ///< first comparable step (ring truncation)
  /// Events within `context` steps of the divergence, per side.
  std::vector<Event> left_events;
  std::vector<Event> right_events;
};

/// Walks both timelines in step order and reports the first step where
/// they disagree: a discrete event present on one side only, or a sampled
/// value outside `tolerance`. Ring-truncated prefixes (dropped > 0) are
/// excluded from the comparison; differing run lengths diverge at the
/// shorter run's end if nothing earlier does.
[[nodiscard]] AlignResult align_recordings(const Recording& left,
                                           const Recording& right,
                                           const AlignOptions& options = {});

}  // namespace axiomcc::recorder

#endif  // AXIOMCC_RECORDER_ALIGN_H_
