#include "recorder/align.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>

namespace axiomcc::recorder {

namespace {

/// Discrete events compare by presence: a schedule breakpoint, churn
/// transition, run-lane loss transition, or guard trip missing from one
/// side at a step is a divergence. Sampled values (windows, checks)
/// compare by magnitude instead.
bool is_discrete(const Event& e) {
  switch (e.cls) {
    case EventClass::kSchedule:
    case EventClass::kChurn:
      return true;
    case EventClass::kGuard:
      return e.code == EventCode::kTrip;
    case EventClass::kLoss:
      // Cohort-lane loss detail (injected-loss transitions) is only
      // observable on the fluid side, so presence there is not comparable.
      return e.subject_kind == Subject::kRun;
    case EventClass::kWindow:
    case EventClass::kCohort:
    case EventClass::kMetric:
      return false;
  }
  return false;
}

bool is_sampled_value(const Event& e) {
  if (e.cls == EventClass::kWindow) return true;
  // Metric windows compare by magnitude. The denominator below is floored
  // at 1, so a 0-valued window (a fairness collapse both sides agree on)
  // compares at absolute scale and never reads as divergence against
  // another near-zero value.
  if (e.cls == EventClass::kMetric) return true;
  return e.cls == EventClass::kGuard && e.code == EventCode::kCheck;
}

using DiscreteKey = std::tuple<EventClass, EventCode, Subject, int>;
using ValueKey = std::tuple<EventClass, EventCode, Subject, int>;

std::string describe_key(const DiscreteKey& key) {
  const auto& [cls, code, kind, subject] = key;
  std::string out = std::string(event_class_name(cls)) + "/" +
                    event_code_name(code) + " on " + subject_name(kind);
  if (kind != Subject::kRun) out += " " + std::to_string(subject);
  return out;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

struct StepView {
  std::vector<DiscreteKey> discrete;
  std::map<ValueKey, double> values;
};

/// Events bucketed by step, restricted to the enabled classes.
std::map<long, StepView> bucket_by_step(const Recording& r, unsigned classes,
                                        long start, long horizon) {
  std::map<long, StepView> out;
  for (const Event& e : r.events) {
    if ((classes & class_bit(e.cls)) == 0) continue;
    if (e.step < start || e.step >= horizon) continue;
    StepView& view = out[e.step];
    if (is_discrete(e)) {
      view.discrete.emplace_back(e.cls, e.code, e.subject_kind, e.subject);
    } else if (is_sampled_value(e)) {
      view.values[{e.cls, e.code, e.subject_kind, e.subject}] = e.a;
    }
  }
  for (auto& [step, view] : out) {
    std::sort(view.discrete.begin(), view.discrete.end());
  }
  return out;
}

/// First comparable step: a side whose rings evicted events can only be
/// compared from its earliest retained event onward.
long truncation_floor(const Recording& r) {
  if (r.dropped == 0 || r.events.empty()) return 0;
  long min_step = r.events.front().step;
  for (const Event& e : r.events) min_step = std::min(min_step, e.step);
  return min_step;
}

std::vector<Event> context_window(const Recording& r, unsigned classes,
                                  long center, long context) {
  std::vector<Event> out;
  for (const Event& e : r.events) {
    if ((classes & class_bit(e.cls)) == 0) continue;
    if (e.step >= center - context && e.step <= center + context) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

AlignResult align_recordings(const Recording& left, const Recording& right,
                             const AlignOptions& options) {
  AlignResult result;
  const unsigned classes =
      options.classes & left.options.classes & right.options.classes;

  const long start =
      std::max(truncation_floor(left), truncation_floor(right));
  const long horizon = std::min(left.steps, right.steps);
  result.compare_start = start;
  result.steps_compared = std::max(0L, horizon - start);

  const std::map<long, StepView> lhs =
      bucket_by_step(left, classes, start, horizon);
  const std::map<long, StepView> rhs =
      bucket_by_step(right, classes, start, horizon);

  std::set<long> steps;
  for (const auto& [step, view] : lhs) steps.insert(step);
  for (const auto& [step, view] : rhs) steps.insert(step);

  static const StepView kEmpty;
  for (const long step : steps) {
    const auto lit = lhs.find(step);
    const auto rit = rhs.find(step);
    const StepView& lv = lit == lhs.end() ? kEmpty : lit->second;
    const StepView& rv = rit == rhs.end() ? kEmpty : rit->second;

    // Presence comparison for discrete events.
    if (lv.discrete != rv.discrete) {
      std::vector<DiscreteKey> only_left;
      std::set_difference(lv.discrete.begin(), lv.discrete.end(),
                          rv.discrete.begin(), rv.discrete.end(),
                          std::back_inserter(only_left));
      const bool from_left = !only_left.empty();
      DiscreteKey witness;
      if (from_left) {
        witness = only_left.front();
      } else {
        std::vector<DiscreteKey> only_right;
        std::set_difference(rv.discrete.begin(), rv.discrete.end(),
                            lv.discrete.begin(), lv.discrete.end(),
                            std::back_inserter(only_right));
        witness = only_right.front();
      }
      result.diverged = true;
      result.first_divergence_step = step;
      result.trigger = std::get<0>(witness);
      result.reason = "step " + std::to_string(step) + ": " +
                      (from_left ? "left" : "right") + " has " +
                      describe_key(witness) + "; the other side does not";
      break;
    }

    // Magnitude comparison for values sampled on both sides.
    bool value_diverged = false;
    for (const auto& [key, lval] : lv.values) {
      const auto rfound = rv.values.find(key);
      if (rfound == rv.values.end()) continue;
      const double rval = rfound->second;
      const double gap = std::abs(lval - rval) /
                         std::max({1.0, std::abs(lval), std::abs(rval)});
      if (gap > options.tolerance) {
        result.diverged = true;
        result.first_divergence_step = step;
        result.trigger = std::get<0>(key);
        result.reason = "step " + std::to_string(step) + ": " +
                        describe_key(key) + " differs, " + fmt_double(lval) +
                        " vs " + fmt_double(rval) + " (gap " +
                        fmt_double(gap) + " > tol " +
                        fmt_double(options.tolerance) + ")";
        value_diverged = true;
        break;
      }
    }
    if (value_diverged) break;
  }

  // Nothing diverged inside the shared horizon, but one run ended early
  // (typically a guard trip): that end is itself the divergence point.
  if (!result.diverged && left.steps != right.steps && left.steps > 0 &&
      right.steps > 0) {
    result.diverged = true;
    result.first_divergence_step = horizon;
    const Recording& shorter = left.steps < right.steps ? left : right;
    bool tripped = false;
    for (const Event& e : shorter.events) {
      if (e.cls == EventClass::kGuard && e.code == EventCode::kTrip) {
        tripped = true;
        break;
      }
    }
    result.trigger = tripped ? EventClass::kGuard : EventClass::kChurn;
    result.reason = "run lengths differ: left observed " +
                    std::to_string(left.steps) + " steps, right " +
                    std::to_string(right.steps) +
                    (tripped ? " (guard trip on the shorter side)" : "");
  }

  if (result.diverged) {
    result.left_events = context_window(left, classes,
                                        result.first_divergence_step,
                                        options.context);
    result.right_events = context_window(right, classes,
                                         result.first_divergence_step,
                                         options.context);
  }
  return result;
}

}  // namespace axiomcc::recorder
