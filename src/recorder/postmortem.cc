#include "recorder/postmortem.h"

#include <stdexcept>

#include "recorder/io.h"
#include "util/json.h"

namespace axiomcc::recorder {

namespace {

double number_field(const JsonValue& value, const char* key) {
  const JsonValue* field = value.find(key);
  if (field == nullptr || field->kind != JsonValue::Kind::kNumber) {
    throw std::runtime_error(
        std::string("postmortem: missing numeric field '") + key + "'");
  }
  return field->number;
}

std::string string_field(const JsonValue& value, const char* key) {
  const JsonValue* field = value.find(key);
  if (field == nullptr || field->kind != JsonValue::Kind::kString) {
    throw std::runtime_error(
        std::string("postmortem: missing string field '") + key + "'");
  }
  return field->string;
}

}  // namespace

std::string postmortem_to_jsonl(const PostMortem& pm, long last_k) {
  std::string out;
  out += "{\"schema\":";
  append_json_string(out, kPostMortemSchema);
  out += ",\"version\":" + std::to_string(pm.version);
  out += ",\"kind\":";
  append_json_string(out, pm.kind);
  out += ",\"title\":";
  append_json_string(out, pm.title);
  out += ",\"divergence\":";
  append_json_number(out, pm.divergence);
  out += ",\"scenario\":";
  append_json_string(out, pm.scenario_text);
  out += "}\n";
  for (const PostMortemSide& side : pm.sides) {
    const Recording& r = side.recording;
    std::size_t first = 0;
    if (last_k >= 0 && r.events.size() > static_cast<std::size_t>(last_k)) {
      first = r.events.size() - static_cast<std::size_t>(last_k);
    }
    out += "{\"side\":";
    append_json_string(out, side.label);
    out += ",\"fault\":";
    append_json_string(out, side.fault_kind);
    out += ",\"fault_step\":" + std::to_string(side.fault_step);
    out += ",\"fault_sender\":" + std::to_string(side.fault_sender);
    out += ",\"detail\":";
    append_json_string(out, side.detail);
    out += ",\"backend\":";
    append_json_string(out, r.backend);
    out += ",\"senders\":" + std::to_string(r.senders);
    out += ",\"steps\":" + std::to_string(r.steps);
    out += ",\"classes\":" + std::to_string(r.options.classes);
    out += ",\"ring_depth\":" + std::to_string(r.options.ring_depth);
    out += ",\"sample_stride\":" + std::to_string(r.options.sample_stride);
    out += ",\"dropped\":" +
           std::to_string(r.dropped + first);  // trimmed events count as lost
    out += ",\"events\":" + std::to_string(r.events.size() - first);
    out += "}\n";
    for (std::size_t i = first; i < r.events.size(); ++i) {
      std::string line = "{\"side\":";
      append_json_string(line, side.label);
      line += ",";
      std::string event_json;
      append_event_json(event_json, r.events[i]);
      line += event_json.substr(1);  // splice the side tag into the object
      out += line;
      out.push_back('\n');
    }
  }
  return out;
}

PostMortem parse_postmortem_jsonl(std::string_view text) {
  PostMortem out;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const JsonValue value = parse_json(line);
    if (!saw_header) {
      if (string_field(value, "schema") != kPostMortemSchema) {
        throw std::runtime_error("postmortem: unexpected schema");
      }
      out.version = static_cast<int>(number_field(value, "version"));
      if (out.version != kPostMortemVersion) {
        throw std::runtime_error("postmortem: unknown schema version " +
                                 std::to_string(out.version));
      }
      out.kind = string_field(value, "kind");
      out.title = string_field(value, "title");
      out.divergence = number_field(value, "divergence");
      out.scenario_text = string_field(value, "scenario");
      saw_header = true;
      continue;
    }
    if (value.find("fault") != nullptr) {
      PostMortemSide side;
      side.label = string_field(value, "side");
      side.fault_kind = string_field(value, "fault");
      side.fault_step = static_cast<long>(number_field(value, "fault_step"));
      side.fault_sender =
          static_cast<int>(number_field(value, "fault_sender"));
      side.detail = string_field(value, "detail");
      side.recording.backend = string_field(value, "backend");
      side.recording.senders =
          static_cast<long>(number_field(value, "senders"));
      side.recording.steps = static_cast<long>(number_field(value, "steps"));
      side.recording.options.enabled = true;
      side.recording.options.classes =
          static_cast<unsigned>(number_field(value, "classes"));
      side.recording.options.ring_depth =
          static_cast<long>(number_field(value, "ring_depth"));
      side.recording.options.sample_stride =
          static_cast<long>(number_field(value, "sample_stride"));
      side.recording.dropped =
          static_cast<std::uint64_t>(number_field(value, "dropped"));
      out.sides.push_back(std::move(side));
      continue;
    }
    if (out.sides.empty()) {
      throw std::runtime_error("postmortem: event line before any side");
    }
    out.sides.back().recording.events.push_back(parse_event_json(value));
  }
  if (!saw_header) {
    throw std::runtime_error("postmortem: empty input (no header line)");
  }
  return out;
}

std::string write_postmortem(const std::string& dir, const std::string& name,
                             const PostMortem& pm, long last_k) {
  const std::string path = dir + "/postmortem-" + name + ".jsonl";
  write_text_file(path, postmortem_to_jsonl(pm, last_k));
  return path;
}

}  // namespace axiomcc::recorder
