#include "recorder/event.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace axiomcc::recorder {

const char* event_class_name(EventClass cls) {
  switch (cls) {
    case EventClass::kWindow: return "window";
    case EventClass::kLoss: return "loss";
    case EventClass::kSchedule: return "schedule";
    case EventClass::kChurn: return "churn";
    case EventClass::kCohort: return "cohort";
    case EventClass::kGuard: return "guard";
    case EventClass::kMetric: return "metric";
  }
  return "window";
}

const char* event_code_name(EventCode code) {
  switch (code) {
    case EventCode::kSample: return "sample";
    case EventCode::kTotal: return "total";
    case EventCode::kOnset: return "onset";
    case EventCode::kClear: return "clear";
    case EventCode::kInjected: return "injected";
    case EventCode::kBandwidth: return "bandwidth";
    case EventCode::kRtt: return "rtt";
    case EventCode::kJoin: return "join";
    case EventCode::kLeave: return "leave";
    case EventCode::kKernel: return "kernel";
    case EventCode::kFallback: return "fallback";
    case EventCode::kUniform: return "uniform";
    case EventCode::kCheck: return "check";
    case EventCode::kTrip: return "trip";
    case EventCode::kEfficiency: return "efficiency";
    case EventCode::kFastUtilization: return "fast_utilization";
    case EventCode::kLossAvoidance: return "loss_avoidance";
    case EventCode::kFairness: return "fairness";
    case EventCode::kConvergence: return "convergence";
    case EventCode::kRobustness: return "robustness";
    case EventCode::kFriendliness: return "friendliness";
    case EventCode::kLatency: return "latency";
  }
  return "sample";
}

const char* subject_name(Subject subject) {
  switch (subject) {
    case Subject::kRun: return "run";
    case Subject::kCohort: return "cohort";
    case Subject::kSender: return "sender";
    case Subject::kLink: return "link";
  }
  return "run";
}

bool event_class_from_name(const char* name, EventClass& out) {
  for (int i = 0; i < kNumEventClasses; ++i) {
    const auto cls = static_cast<EventClass>(i);
    if (std::strcmp(name, event_class_name(cls)) == 0) {
      out = cls;
      return true;
    }
  }
  return false;
}

bool event_code_from_name(const char* name, EventCode& out) {
  for (int i = 0; i <= static_cast<int>(EventCode::kLatency); ++i) {
    const auto code = static_cast<EventCode>(i);
    if (std::strcmp(name, event_code_name(code)) == 0) {
      out = code;
      return true;
    }
  }
  return false;
}

unsigned parse_class_mask(const char* names) {
  const std::string list = names == nullptr ? "" : names;
  unsigned mask = 0;
  bool any = false;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t sep = list.find_first_of(",+", pos);
    const std::size_t end = sep == std::string::npos ? list.size() : sep;
    const std::string token = list.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) {
      if (sep == std::string::npos) break;  // trailing separator handled below
      throw std::invalid_argument(
          "empty event-class name in list '" + list + "'");
    }
    any = true;
    if (token == "all") {
      mask |= kAllClasses;
      continue;
    }
    EventClass cls;
    if (!event_class_from_name(token.c_str(), cls)) {
      throw std::invalid_argument(
          "unknown event class '" + token +
          "' (expected window|loss|schedule|churn|cohort|guard|metric|all)");
    }
    mask |= class_bit(cls);
  }
  if (!any) {
    throw std::invalid_argument(
        "empty event-class list (expected e.g. 'window+loss')");
  }
  return mask;
}

bool subject_from_name(const char* name, Subject& out) {
  for (int i = 0; i < kNumSubjects; ++i) {
    const auto subject = static_cast<Subject>(i);
    if (std::strcmp(name, subject_name(subject)) == 0) {
      out = subject;
      return true;
    }
  }
  return false;
}

}  // namespace axiomcc::recorder
