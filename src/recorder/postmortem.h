#ifndef AXIOMCC_RECORDER_POSTMORTEM_H_
#define AXIOMCC_RECORDER_POSTMORTEM_H_

#include <string>
#include <string_view>
#include <vector>

#include "recorder/recorder.h"

namespace axiomcc::recorder {

inline constexpr std::string_view kPostMortemSchema = "axiomcc-postmortem";
inline constexpr int kPostMortemVersion = 1;

/// One run's contribution to a post-mortem: its fault classification (all
/// empty/negative for a side that completed cleanly) and the tail of its
/// recorded timeline.
struct PostMortemSide {
  std::string label;       ///< "fluid" | "packet" | free text
  std::string fault_kind;  ///< stress::fault_kind_name, "" when clean
  long fault_step = -1;
  int fault_sender = -1;
  std::string detail;
  Recording recording;
};

/// A schema-versioned fault/divergence dump: the reproducer scenario text
/// plus the last-k recorded events from each participating run. Written as
/// JSONL next to the other ledger artifacts so CI can upload it wholesale.
struct PostMortem {
  int version = kPostMortemVersion;
  std::string kind;   ///< "fault" | "divergence" | outcome-kind name
  std::string title;  ///< free-form run identity (scenario name, cell, ...)
  double divergence = 0.0;
  std::string scenario_text;  ///< byte-exact .scn reproducer, "" if unknown
  std::vector<PostMortemSide> sides;
};

/// Serializes as JSONL: one post-mortem header, then per side a side
/// header followed by that side's last `last_k` events (tagged with the
/// side label). `last_k < 0` keeps every event.
[[nodiscard]] std::string postmortem_to_jsonl(const PostMortem& pm,
                                              long last_k = 64);

/// Inverse of `postmortem_to_jsonl`; throws std::runtime_error on
/// malformed input or unknown schema versions.
[[nodiscard]] PostMortem parse_postmortem_jsonl(std::string_view text);

/// Writes `pm` to `<dir>/postmortem-<name>.jsonl` (directories created)
/// and returns the path.
std::string write_postmortem(const std::string& dir, const std::string& name,
                             const PostMortem& pm, long last_k = 64);

}  // namespace axiomcc::recorder

#endif  // AXIOMCC_RECORDER_POSTMORTEM_H_
