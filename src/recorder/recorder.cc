#ifndef AXIOMCC_RECORDER_DISABLED

#include "recorder/recorder.h"

#include <algorithm>

namespace axiomcc::recorder {

Recorder::Recorder(RecordOptions options) : options_(options) {
  if (options_.ring_depth < 1) options_.ring_depth = 1;
  stride_ = options_.sample_stride < 1 ? 1 : options_.sample_stride;
}

Recorder::Lane& Recorder::lane_for(Subject kind, int subject) {
  const auto k = static_cast<std::size_t>(kind);
  std::uint32_t* slot;
  if (subject < 0) {
    slot = &neg_lane_slots_[k];
  } else {
    std::vector<std::uint32_t>& table = lane_slots_[k];
    const auto idx = static_cast<std::size_t>(subject);
    if (idx >= table.size()) table.resize(idx + 1, 0);
    slot = &table[idx];
  }
  if (*slot == 0) {
    lanes_.emplace_back();
    *slot = static_cast<std::uint32_t>(lanes_.size());
  }
  return lanes_[*slot - 1];
}

void Recorder::emit(const Event& event) {
  if (!wants(event.cls)) return;
  Lane& lane = lane_for(event.subject_kind, event.subject);
  const auto depth = static_cast<std::size_t>(options_.ring_depth);
  if (lane.ring.size() < depth) {
    lane.ring.push_back(Entry{seq_++, event});
  } else {
    lane.ring[lane.next] = Entry{seq_++, event};
    if (++lane.next == depth) lane.next = 0;
  }
  ++lane.total;
  note_step(event.step);
}

Recording Recorder::snapshot() const {
  Recording out;
  out.backend = backend_;
  out.senders = senders_;
  out.steps = steps_;
  out.options = options_;
  std::vector<Entry> merged;
  for (const Lane& lane : lanes_) {
    out.dropped += lane.total - lane.ring.size();
    merged.insert(merged.end(), lane.ring.begin(), lane.ring.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  out.events.reserve(merged.size());
  for (const Entry& entry : merged) out.events.push_back(entry.event);
  return out;
}

}  // namespace axiomcc::recorder

#endif  // AXIOMCC_RECORDER_DISABLED
