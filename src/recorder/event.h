#ifndef AXIOMCC_RECORDER_EVENT_H_
#define AXIOMCC_RECORDER_EVENT_H_

#include <cstdint>

namespace axiomcc::recorder {

/// Coarse event families. Each class can be enabled independently through
/// `RecordOptions::classes` (a bitmask of `class_bit` values), so a caller
/// chasing churn behaviour need not pay for per-step window samples.
enum class EventClass : unsigned char {
  kWindow = 0,   ///< sampled congestion windows (per sender/cohort + total)
  kLoss,         ///< loss-rate transitions (congestion + injected)
  kSchedule,     ///< bandwidth / RTT schedule breakpoints
  kChurn,        ///< sender-cohort arrivals and departures
  kCohort,       ///< batch-path execution decisions (kernel/fallback/uniform)
  kGuard,        ///< guarded-runner invariant checks and trips
  kMetric,       ///< streaming axiom-scope windows (one value per axis)
};

inline constexpr int kNumEventClasses = 7;

[[nodiscard]] constexpr unsigned class_bit(EventClass cls) {
  return 1u << static_cast<unsigned>(cls);
}

inline constexpr unsigned kAllClasses = (1u << kNumEventClasses) - 1;

/// What happened within the class. Codes are class-scoped but share one
/// enum so an `Event` stays a flat POD.
enum class EventCode : unsigned char {
  // kWindow
  kSample = 0,  ///< one sender's / cohort representative's window (a = mss)
  kTotal,       ///< aggregate window across active senders (a = mss, b = rtt)
  // kLoss
  kOnset,     ///< loss rate became positive (a = rate)
  kClear,     ///< loss rate returned to zero (a = previous rate)
  kInjected,  ///< injected (non-congestion) loss transition (a = observed)
  // kSchedule
  kBandwidth,  ///< bandwidth scale changed (a = new scale, b = previous)
  kRtt,        ///< RTT scale changed (a = new scale, b = previous)
  // kChurn
  kJoin,   ///< cohort became active (a = member count)
  kLeave,  ///< cohort became inactive (a = member count)
  // kCohort
  kKernel,    ///< cohort runs the SoA batch kernel (a = member count)
  kFallback,  ///< cohort fell back to per-sender dispatch (a = member count)
  kUniform,   ///< cohort runs the uniform O(1)-per-step path (a = count)
  // kGuard
  kCheck,  ///< sampled invariant check passed (a = aggregate window)
  kTrip,   ///< invariant tripped (a = offending value, b = FaultKind)
  // kMetric — one closed scope window per axis (a = value, b = the window's
  // first step; `step` is its last). Codes follow scope::Axis order.
  kEfficiency,       ///< Metric I
  kFastUtilization,  ///< Metric II
  kLossAvoidance,    ///< Metric III (lower is better)
  kFairness,         ///< Metric IV
  kConvergence,      ///< Metric V
  kRobustness,       ///< Metric VI (online escape-fraction proxy)
  kFriendliness,     ///< Metric VII
  kLatency,          ///< Metric VIII (lower is better)
};

/// Which timeline lane an event belongs to. Lanes bound memory: every lane
/// owns one fixed-depth ring, and aggregate-mode runs only materialize the
/// run lane plus one lane per cohort, keeping recording memory independent
/// of the sender population.
enum class Subject : unsigned char {
  kRun = 0,  ///< whole-run lane (subject id is -1)
  kCohort,   ///< one homogeneous sender group (subject id = cohort index)
  kSender,   ///< one individual sender (subject id = sender index)
  kLink,     ///< one bottleneck of a routed topology (subject id = link id)
};

inline constexpr int kNumSubjects = 4;

/// A single timeline entry. Plain data; meaning of `a`/`b` is per-code
/// (documented on `EventCode`). `step` is the simulation step (fluid: one
/// RTT per step; packet: one trace sample per step).
struct Event {
  long step = 0;
  EventClass cls = EventClass::kWindow;
  EventCode code = EventCode::kSample;
  Subject subject_kind = Subject::kRun;
  int subject = -1;
  double a = 0.0;
  double b = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

[[nodiscard]] const char* event_class_name(EventClass cls);
[[nodiscard]] const char* event_code_name(EventCode code);
[[nodiscard]] const char* subject_name(Subject subject);

/// Inverse lookups for the JSONL reader; return false on unknown names.
[[nodiscard]] bool event_class_from_name(const char* name, EventClass& out);
[[nodiscard]] bool event_code_from_name(const char* name, EventCode& out);
[[nodiscard]] bool subject_from_name(const char* name, Subject& out);

/// Parses a `','` or `'+'` separated list of event-class names ("window",
/// "loss", ...; "all" selects every class) into a `RecordOptions::classes`
/// bitmask — the conversion behind the CLI's `--record=dir,classes=<list>`
/// syntax. Throws std::invalid_argument naming the offending token on an
/// unknown class or an empty list.
[[nodiscard]] unsigned parse_class_mask(const char* names);

}  // namespace axiomcc::recorder

#endif  // AXIOMCC_RECORDER_EVENT_H_
