#ifndef AXIOMCC_RECORDER_RECORDER_H_
#define AXIOMCC_RECORDER_RECORDER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "recorder/event.h"

namespace axiomcc::recorder {

/// Capture configuration, carried on `engine::ScenarioSpec::record`.
/// Defaults keep a recording small and cheap: a few lanes of 256 events and
/// window samples every 16 steps cost well under a percent of tick-loop
/// time at bench scale.
struct RecordOptions {
  bool enabled = false;
  /// Bitmask of `class_bit(EventClass)`; everything by default.
  unsigned classes = kAllClasses;
  /// Fixed per-lane ring depth; the oldest events in a lane are dropped
  /// (and counted) once a lane exceeds this.
  long ring_depth = 256;
  /// Window samples (`kSample`/`kTotal`) are emitted on steps where
  /// `step % sample_stride == 0`. Discrete events (loss transitions,
  /// schedule breakpoints, churn, guard trips) always record.
  long sample_stride = 16;
};

/// An immutable captured timeline, decoupled from the capture machinery so
/// the JSONL reader, the aligner, and `axiomcc-inspect` work even in
/// builds where the recorder is compiled out.
struct Recording {
  int version = 2;
  std::string backend;  ///< "fluid" | "packet" | "" (unknown)
  /// Commit SHA of the binary that captured the timeline ("unknown" when
  /// provenance was unavailable, "" for schema-v1 files that predate the
  /// field). Stamped by the writer, not the Recorder — the recorder layer
  /// sits below the ledger's provenance resolver.
  std::string git_sha;
  long senders = 0;
  long steps = 0;  ///< steps observed by the run (0 if never set)
  RecordOptions options;
  std::uint64_t dropped = 0;  ///< events evicted from full lanes
  /// Emission order (the serial order of the run); stable across --jobs.
  std::vector<Event> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// True when the capture path is compiled in (AXIOMCC_RECORDER=ON).
[[nodiscard]] constexpr bool compiled_in() {
#ifdef AXIOMCC_RECORDER_DISABLED
  return false;
#else
  return true;
#endif
}

#ifndef AXIOMCC_RECORDER_DISABLED

/// Bounded deterministic event sink. One lane (fixed-depth ring) per
/// (subject kind, subject id); a global emission sequence preserves the
/// serial order of the run across lanes. All emission happens from the
/// serial sections of the simulation loops, so the recorder is
/// intentionally not thread-safe — one Recorder per run.
class Recorder {
 public:
  explicit Recorder(RecordOptions options);

  [[nodiscard]] bool wants(EventClass cls) const {
    return options_.enabled && (options_.classes & class_bit(cls)) != 0;
  }
  [[nodiscard]] long stride() const { return stride_; }
  /// True on steps where sampled (kWindow / kCheck) events are due.
  [[nodiscard]] bool sample_due(long step) const {
    return step % stride_ == 0;
  }

  void emit(const Event& event);

  /// Run metadata, stamped by the backend that drives the recorder.
  void set_backend(std::string backend) { backend_ = std::move(backend); }
  void set_senders(long senders) { senders_ = senders; }
  void note_step(long step) { steps_ = step + 1 > steps_ ? step + 1 : steps_; }

  /// Snapshot the captured timeline (events merged across lanes in
  /// emission order). Non-destructive; callable mid-run.
  [[nodiscard]] Recording snapshot() const;

 private:
  struct Entry {
    std::uint64_t seq = 0;
    Event event;
  };
  struct Lane {
    std::vector<Entry> ring;  ///< capacity ring_depth, oldest overwritten
    std::size_t next = 0;     ///< ring slot the next event lands in
    std::uint64_t total = 0;  ///< events ever emitted to this lane
  };

  Lane& lane_for(Subject kind, int subject);

  RecordOptions options_;
  long stride_ = 16;
  std::uint64_t seq_ = 0;
  std::string backend_;
  long senders_ = 0;
  long steps_ = 0;
  std::vector<Lane> lanes_;
  /// Lane lookup is on the emission fast path (one per event), so it is a
  /// direct index, not a hash: per subject kind, a subject-id-indexed table
  /// of lane-index-plus-one (0 = not yet created), grown on demand — the
  /// table only reaches ids that actually emit, so aggregate-mode runs
  /// never pay for the sender population. Negative subject ids (the run
  /// lane) get one scalar slot per kind.
  std::array<std::vector<std::uint32_t>, kNumSubjects> lane_slots_;
  std::array<std::uint32_t, kNumSubjects> neg_lane_slots_{};
};

#else  // AXIOMCC_RECORDER_DISABLED

/// No-op stand-in: every member is inline and trivially dead-code
/// eliminated, so `if (rec && rec->wants(...))` at the emission sites
/// vanishes entirely from the hot loops.
class Recorder {
 public:
  explicit Recorder(RecordOptions) {}

  [[nodiscard]] bool wants(EventClass) const { return false; }
  [[nodiscard]] long stride() const { return 1; }
  [[nodiscard]] bool sample_due(long) const { return false; }
  void emit(const Event&) {}
  void set_backend(std::string) {}
  void set_senders(long) {}
  void note_step(long) {}
  [[nodiscard]] Recording snapshot() const { return {}; }
};

#endif  // AXIOMCC_RECORDER_DISABLED

}  // namespace axiomcc::recorder

#endif  // AXIOMCC_RECORDER_RECORDER_H_
