// workload.h — deterministic workload expansion for ScenarioSpec.
//
// A WorkloadSpec turns each sender slot into a concrete arrival pattern:
// incast fan-in (many near-simultaneous arrivals) or heavy-tailed on-off
// sources (bounded-Pareto on-periods, exponential off-gaps — the
// websearch-style flow-size mix). Expansion is a pure function of
// (spec.workload, spec.senders, spec.steps, spec.seed): both backends call
// it and therefore simulate the SAME generated churn, which is what makes
// workload scenarios crosscheckable.
#pragma once

#include <vector>

#include "engine/scenario.h"

namespace axiomcc::engine {

/// The concrete slot list a backend should execute: spec.senders expanded
/// through spec.workload. kNone returns spec.senders verbatim (so the
/// pre-workload paths stay byte-identical). Every generated slot keeps its
/// template's prototype and route; on-off sources become one slot per
/// on-period (each on-period is a fresh connection, matching the engine's
/// churn semantics). The number of generated slots is capped — a pathological
/// parameter draw degrades to a truncated pattern, never unbounded memory.
[[nodiscard]] std::vector<SenderSlot> expand_workload(
    const ScenarioSpec& spec);

}  // namespace axiomcc::engine
