#include "engine/topology.h"

#include <algorithm>
#include <limits>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::engine {

void validate_scenario(const ScenarioSpec& spec) {
  const int nl = spec.topology.num_links();
  for (std::size_t si = 0; si < spec.senders.size(); ++si) {
    const SenderSlot& slot = spec.senders[si];
    const std::string label = "sender slot " + std::to_string(si);
    if (spec.topology.empty()) {
      if (!slot.route.empty()) {
        throw ScenarioError(label +
                            " carries a route but the scenario has no "
                            "topology (single-link mode routes over the one "
                            "implicit link)");
      }
      continue;
    }
    if (slot.route.empty()) {
      throw ScenarioError(label +
                          " has an empty route; topology scenarios must "
                          "route every sender over at least one link");
    }
    std::vector<char> seen(static_cast<std::size_t>(nl), 0);
    for (const int link_id : slot.route) {
      if (link_id < 0 || link_id >= nl) {
        throw ScenarioError(label + " routes over unknown link id " +
                            std::to_string(link_id) + " (topology has " +
                            std::to_string(nl) + " links)");
      }
      if (seen[static_cast<std::size_t>(link_id)]) {
        throw ScenarioError(label + " repeats link id " +
                            std::to_string(link_id) +
                            " on its route; routes must be loop-free");
      }
      seen[static_cast<std::size_t>(link_id)] = 1;
    }
  }
  if (!spec.workload.empty()) {
    if (spec.workload.flows < 1) {
      throw ScenarioError("workload needs at least one generated flow");
    }
    if (spec.workload.kind == WorkloadKind::kIncast &&
        spec.workload.spread_steps < 0.0) {
      throw ScenarioError("incast arrival spread must be non-negative");
    }
    if (spec.workload.kind == WorkloadKind::kOnOffHeavyTail &&
        (spec.workload.mean_on_steps <= 0.0 ||
         spec.workload.mean_off_steps <= 0.0 || spec.workload.alpha <= 0.0)) {
      throw ScenarioError(
          "on-off workload durations and Pareto shape must be positive");
    }
  }
}

TopologySpec dumbbell_topology(const fluid::LinkParams& link) {
  TopologySpec topology;
  topology.links.push_back(link);
  return topology;
}

void apply_parking_lot(ScenarioSpec& spec, const fluid::LinkParams& per_link,
                       int bottlenecks, const cc::Protocol& prototype,
                       long cross_flows_per_link, double initial_window_mss) {
  AXIOMCC_EXPECTS(bottlenecks >= 1);
  AXIOMCC_EXPECTS(cross_flows_per_link >= 0);
  AXIOMCC_EXPECTS(initial_window_mss >= 0.0);

  spec.topology.links.assign(static_cast<std::size_t>(bottlenecks), per_link);
  spec.senders.clear();

  std::vector<int> long_route(static_cast<std::size_t>(bottlenecks));
  for (int l = 0; l < bottlenecks; ++l) {
    long_route[static_cast<std::size_t>(l)] = l;
  }
  spec.add_routed_sender(prototype, std::move(long_route), initial_window_mss);
  for (int l = 0; l < bottlenecks; ++l) {
    for (long j = 0; j < cross_flows_per_link; ++j) {
      spec.add_routed_sender(prototype, {l}, initial_window_mss);
    }
  }
}

int FatTreeTopology::up_link(int leaf, int spine) const {
  AXIOMCC_EXPECTS(leaf >= 0 && leaf < leaves);
  AXIOMCC_EXPECTS(spine >= 0 && spine < spines);
  return leaf * spines + spine;
}

int FatTreeTopology::down_link(int spine, int leaf) const {
  AXIOMCC_EXPECTS(leaf >= 0 && leaf < leaves);
  AXIOMCC_EXPECTS(spine >= 0 && spine < spines);
  return leaves * spines + spine * leaves + leaf;
}

std::vector<int> FatTreeTopology::route(long flow_index, int src_leaf,
                                        int dst_leaf,
                                        std::uint64_t seed) const {
  AXIOMCC_EXPECTS(src_leaf >= 0 && src_leaf < leaves);
  AXIOMCC_EXPECTS(dst_leaf >= 0 && dst_leaf < leaves);
  AXIOMCC_EXPECTS_MSG(src_leaf != dst_leaf,
                      "intra-leaf flows never cross the fabric");
  // ECMP: hash the flow identity into a spine choice. Each splitmix round
  // mixes one component so (seed, flow, src, dst) permutations decorrelate.
  std::uint64_t s = seed;
  s ^= static_cast<std::uint64_t>(flow_index) + 0x9e3779b97f4a7c15ull;
  (void)splitmix64_next(s);
  s ^= static_cast<std::uint64_t>(src_leaf) * 0xff51afd7ed558ccdull;
  (void)splitmix64_next(s);
  s ^= static_cast<std::uint64_t>(dst_leaf) * 0xc4ceb9fe1a85ec53ull;
  const std::uint64_t hash = splitmix64_next(s);
  const int spine = static_cast<int>(hash % static_cast<std::uint64_t>(spines));
  return {up_link(src_leaf, spine), down_link(spine, dst_leaf)};
}

FatTreeTopology make_fat_tree(int leaves, int spines,
                              const fluid::LinkParams& per_link) {
  AXIOMCC_EXPECTS(leaves >= 2);
  AXIOMCC_EXPECTS(spines >= 1);
  FatTreeTopology tree;
  tree.leaves = leaves;
  tree.spines = spines;
  // Up links first (leaf-major), then down links (spine-major) — the layout
  // up_link/down_link index into.
  tree.topology.links.assign(static_cast<std::size_t>(2 * leaves * spines),
                             per_link);
  return tree;
}

double scenario_capacity_mss(const ScenarioSpec& spec) {
  if (spec.topology.empty()) {
    return fluid::FluidLink(spec.link).capacity_mss();
  }
  double min_capacity = std::numeric_limits<double>::infinity();
  for (const fluid::LinkParams& params : spec.topology.links) {
    min_capacity =
        std::min(min_capacity, fluid::FluidLink(params).capacity_mss());
  }
  return min_capacity;
}

double scenario_min_rtt_seconds(const ScenarioSpec& spec) {
  if (spec.topology.empty()) {
    return fluid::FluidLink(spec.link).min_rtt().value();
  }
  double min_rtt = std::numeric_limits<double>::infinity();
  for (const fluid::LinkParams& params : spec.topology.links) {
    min_rtt = std::min(min_rtt, fluid::FluidLink(params).min_rtt().value());
  }
  return min_rtt;
}

}  // namespace axiomcc::engine
