// topology.h — multi-bottleneck topology builders and route validation.
//
// A ScenarioSpec with a non-empty TopologySpec runs on the routed network
// substrates (fluid::FluidNetwork / sim::MultiHopNetwork) instead of the
// single shared link. This header provides the standard shapes:
//
//   * dumbbell_topology  — the degenerate one-link network (every flow
//     routed over link 0), useful for exercising the topology path against
//     the single-link path;
//   * apply_parking_lot  — the classic k-bottleneck parking lot: one long
//     flow over links 0..k−1 plus per-link cross traffic, the smallest
//     topology where multi-hop beat-down appears;
//   * make_fat_tree      — a two-tier leaf-spine "fat tree" with
//     ECMP-style deterministic multipath: each flow's spine is chosen by a
//     splitmix hash of (seed, flow, src, dst), so route assignment is
//     reproducible at any job count.
//
// validate_scenario is the typed guard both backends run before executing:
// malformed routes raise ScenarioError rather than tripping a contract
// check deep inside a simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/scenario.h"

namespace axiomcc::engine {

/// Validates the topology/route/workload axes of a spec. Throws
/// ScenarioError when
///  * the topology is empty but a slot carries a route (single-link mode
///    has no link ids to route over);
///  * the topology is non-empty and a slot's route is empty, names an
///    unknown link id, or repeats a link (the packet forwarder requires
///    loop-free routes, so both backends reject them);
///  * a workload is requested with a non-positive flow count or
///    non-positive durations.
void validate_scenario(const ScenarioSpec& spec);

/// The one-link topology equivalent to `link` (route every flow over {0}).
[[nodiscard]] TopologySpec dumbbell_topology(const fluid::LinkParams& link);

/// Configures `spec` as the k-bottleneck parking lot over clones of
/// `prototype`: k identical links; sender slot 0 is the long flow routed
/// over all of them, followed by `cross_flows_per_link` slots per link
/// carrying the cross traffic. Replaces spec.topology and spec.senders.
/// The prototype must outlive the run (slots hold non-owning pointers).
void apply_parking_lot(ScenarioSpec& spec, const fluid::LinkParams& per_link,
                       int bottlenecks, const cc::Protocol& prototype,
                       long cross_flows_per_link = 1,
                       double initial_window_mss = 1.0);

/// A two-tier leaf-spine fat tree: `leaves` edge switches, each wired to
/// every one of `spines` core switches with an up and a down link (all
/// sharing `per_link` parameters). A leaf-to-leaf flow takes one up link
/// and one down link through a single spine — the ECMP choice.
struct FatTreeTopology {
  TopologySpec topology;
  int leaves = 0;
  int spines = 0;

  /// Link id of leaf→spine (up) and spine→leaf (down) links.
  [[nodiscard]] int up_link(int leaf, int spine) const;
  [[nodiscard]] int down_link(int spine, int leaf) const;

  /// The ECMP route for flow `flow_index` from `src_leaf` to `dst_leaf`:
  /// {up(src, s), down(s, dst)} with the spine s picked by a deterministic
  /// splitmix hash of (seed, flow_index, src, dst). Same inputs → same
  /// route, on every backend and at any job count.
  [[nodiscard]] std::vector<int> route(long flow_index, int src_leaf,
                                       int dst_leaf,
                                       std::uint64_t seed) const;
};

[[nodiscard]] FatTreeTopology make_fat_tree(int leaves, int spines,
                                            const fluid::LinkParams& per_link);

/// Scoring capacity of a spec's network in MSS: the single link's C = B·2Θ,
/// or the minimum per-link capacity of the topology (the binding
/// bottleneck, matching the routed substrates' trace conventions). The
/// guarded runner sizes its blowup/queue invariants with this.
[[nodiscard]] double scenario_capacity_mss(const ScenarioSpec& spec);

/// Smallest per-link min-RTT of the spec's network in seconds (the single
/// link's 2Θ in single-link mode).
[[nodiscard]] double scenario_min_rtt_seconds(const ScenarioSpec& spec);

}  // namespace axiomcc::engine
