// fluid_backend.cc — executes a ScenarioSpec on the fluid model.
//
// Single-link scenarios run on fluid::FluidSimulation with a construction
// sequence (options, senders in slot order, loss injector, schedules,
// monitor) that mirrors the pre-engine call sites exactly, so a scenario run
// through this backend is bit-identical with the same scenario built against
// fluid::FluidSimulation by hand. Topology scenarios (spec.topology
// non-empty) run on fluid::FluidNetwork instead, with sender slots flattened
// to one routed flow per cohort member so cohort ids line up with the packet
// backend's flow ids.
#include <cmath>
#include <utility>

#include "engine/backend.h"
#include "engine/topology.h"
#include "engine/workload.h"
#include "fluid/network.h"
#include "fluid/sim.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace axiomcc::engine {
namespace {

RunTrace run_topology(const ScenarioSpec& spec,
                      const std::vector<SenderSlot>& slots) {
  fluid::NetworkOptions options;
  options.steps = spec.steps;
  options.min_window_mss = spec.min_window_mss;
  options.max_window_mss = spec.max_window_mss;
  options.trace_detail = spec.trace_detail;
  options.tracked_senders = spec.tracked_senders;
  options.record_sink = spec.record_sink;
  options.scope_sink = spec.scope_sink;

  fluid::FluidNetwork net(options);
  for (const fluid::LinkParams& params : spec.topology.links) {
    net.add_link(params);
  }
  for (const SenderSlot& slot : slots) {
    AXIOMCC_EXPECTS(slot.prototype != nullptr);
    // Cohorts flatten to one flow per member so flow ids match the packet
    // backend's (slot order, then member order).
    for (long j = 0; j < slot.count; ++j) {
      fluid::FluidNetwork::FlowSpec fs;
      fs.protocol = slot.prototype->clone();
      fs.route = slot.route;
      fs.initial_window_mss = slot.initial_window_mss;
      fs.start_step = std::lround(slot.start_step);
      fs.stop_step = slot.stop_step < 0.0 ? -1 : std::lround(slot.stop_step);
      net.add_flow(std::move(fs));
    }
  }
  if (spec.loss) net.set_loss_injector(spec.loss(spec.seed));
  if (spec.bandwidth_scale) net.set_bandwidth_schedule(spec.bandwidth_scale);
  if (spec.rtt_scale) net.set_rtt_schedule(spec.rtt_scale);
  if (spec.step_monitor) net.set_step_monitor(spec.step_monitor);

  TELEMETRY_COUNT("engine.fluid_topology_runs", 1);
  return RunTrace{net.run(), BackendKind::kFluid, {}, -1.0};
}

}  // namespace

RunTrace FluidBackend::run(const ScenarioSpec& spec) const {
  AXIOMCC_EXPECTS_MSG(!spec.senders.empty(),
                      "scenario needs at least one sender");
  TELEMETRY_SPAN("engine", "fluid.run");

  validate_scenario(spec);
  const std::vector<SenderSlot> slots = expand_workload(spec);
  if (slots.empty()) {
    throw ScenarioError("workload expansion produced no senders");
  }
  // Resolve the scope's warmup from the scenario's tail fraction (the fluid
  // layer does not know it) and chain the recorder so closed windows emit as
  // kMetric events. Link-derived fields are filled by the fluid layer.
  if (spec.scope_sink != nullptr) {
    spec.scope_sink->resolve(spec.steps, spec.tail_fraction, 0.0, 0.0, 0.0);
    spec.scope_sink->set_recorder(spec.record_sink);
  }
  if (!spec.topology.empty()) return run_topology(spec, slots);

  fluid::SimOptions options;
  options.steps = spec.steps;
  options.min_window_mss = spec.min_window_mss;
  options.max_window_mss = spec.max_window_mss;
  options.trace_detail = spec.trace_detail;
  options.tracked_senders = spec.tracked_senders;
  options.batch = spec.batch;
  options.jobs = spec.jobs;
  options.record_sink = spec.record_sink;
  options.scope_sink = spec.scope_sink;

  fluid::FluidSimulation sim(spec.link, options);
  for (const SenderSlot& slot : slots) {
    AXIOMCC_EXPECTS(slot.prototype != nullptr);
    fluid::SenderSpec fs;
    fs.protocol = slot.prototype->clone();
    fs.initial_window_mss = slot.initial_window_mss;
    // Fractional slot steps (the packet backend's sub-step staggered starts)
    // round to the nearest whole fluid step.
    fs.start_step = std::lround(slot.start_step);
    fs.stop_step = slot.stop_step < 0.0 ? -1 : std::lround(slot.stop_step);
    // A slot is one cohort: count senders share the single cloned prototype.
    sim.add_senders(std::move(fs), slot.count);
  }
  if (spec.loss) sim.set_loss_injector(spec.loss(spec.seed));
  if (spec.bandwidth_scale) sim.set_bandwidth_schedule(spec.bandwidth_scale);
  if (spec.rtt_scale) sim.set_rtt_schedule(spec.rtt_scale);
  if (spec.step_monitor) sim.set_step_monitor(spec.step_monitor);

  TELEMETRY_COUNT("engine.fluid_runs", 1);
  return RunTrace{sim.run(), BackendKind::kFluid, {}, -1.0};
}

const SimBackend& backend_for(BackendKind kind) {
  static const FluidBackend fluid_backend;
  static const PacketBackend packet_backend;
  if (kind == BackendKind::kFluid) return fluid_backend;
  return packet_backend;
}

}  // namespace axiomcc::engine
