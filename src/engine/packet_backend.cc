// packet_backend.cc — executes a ScenarioSpec on the packet-level dumbbell.
//
// The fluid model's step becomes one RTT of wall-clock time: a spec with S
// steps runs for S·RTT seconds and samples the trace every RTT, giving a
// Trace with (up to) S steps that the metric estimators consume exactly as
// they consume a fluid trace. Scenario elements map as follows:
//  - injected loss: the fluid per-step loss *rate* becomes a per-packet
//    Bernoulli drop at that step's rate (InjectedRateLoss below);
//  - bandwidth schedule: the bottleneck's serialization rate is retargeted
//    at each step boundary;
//  - RTT schedule: the forward propagation delay is retargeted so the
//    two-way delay matches scale·RTT (the reverse path is fixed at RTT/2,
//    so the scaling is applied asymmetrically — see docs/stress.md);
//  - step monitor: invoked at each trace sample; returning false stops the
//    event loop at that sample.
#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "engine/backend.h"
#include "recorder/recorder.h"
#include "sim/dumbbell.h"
#include "sim/loss.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::engine {
namespace {

/// Adapts a fluid::LossInjector (a per-step, per-sender loss rate) to the
/// packet world: each forward packet is dropped with the rate the injector
/// reports for the step containing the current simulation time. The per-flow
/// rate cache is advanced through every intervening step, so stateful
/// injectors (Gilbert-Elliott dwell times) keep their step-level dynamics
/// even when a flow sends nothing for a while.
class InjectedRateLoss final : public sim::PacketFilter {
 public:
  InjectedRateLoss(std::unique_ptr<fluid::LossInjector> injector,
                   const sim::Simulator& simulator, double step_seconds,
                   int num_flows, std::uint64_t seed)
      : injector_(std::move(injector)),
        simulator_(simulator),
        step_seconds_(step_seconds),
        last_step_(static_cast<std::size_t>(num_flows), -1),
        rate_(static_cast<std::size_t>(num_flows), 0.0),
        rng_(seed) {
    AXIOMCC_EXPECTS(injector_ != nullptr);
    AXIOMCC_EXPECTS(step_seconds > 0.0);
    AXIOMCC_EXPECTS(num_flows > 0);
  }

  bool drop(const sim::Packet& p) override {
    const auto flow = static_cast<std::size_t>(p.flow_id);
    AXIOMCC_EXPECTS(flow < rate_.size());
    const long step =
        static_cast<long>(simulator_.now().seconds() / step_seconds_);
    while (last_step_[flow] < step) {
      ++last_step_[flow];
      rate_[flow] = injector_->sample(last_step_[flow], p.flow_id);
    }
    if (rate_[flow] > 0.0 && rng_.bernoulli(rate_[flow])) {
      count_drop();
      return true;
    }
    return false;
  }

 private:
  std::unique_ptr<fluid::LossInjector> injector_;
  const sim::Simulator& simulator_;
  double step_seconds_;
  std::vector<long> last_step_;  ///< per-flow step of the cached rate.
  std::vector<double> rate_;     ///< per-flow cached step loss rate.
  Rng rng_;
};

/// Mirror of the fluid tick loop's StepRecorder: every event derives from
/// the spec (churn intervals rounded exactly like the fluid backend rounds
/// them, the shared schedule functions) or from the values each trace
/// sample records, so both backends' recordings live on the same lanes and
/// the aligner can step-match them. Invoked from the (serial) event loop
/// via a wrapping step monitor. Cohort-lane injected-loss detail is not
/// observable per-sample here and stays a fluid-only extra.
class PacketStepRecorder {
 public:
  explicit PacketStepRecorder(const ScenarioSpec& spec)
      : sink_(spec.record_sink),
        bw_(spec.bandwidth_scale),
        rtt_(spec.rtt_scale),
        aggregate_(spec.trace_detail == fluid::TraceDetail::kAggregate) {
    sink_->set_backend("packet");
    sink_->set_senders(spec.total_senders());
    long begin = 0;
    for (const SenderSlot& slot : spec.senders) {
      CohortRef c;
      c.begin = begin;
      c.count = slot.count;
      c.start = std::lround(slot.start_step);
      c.stop = slot.stop_step < 0.0 ? -1 : std::lround(slot.stop_step);
      cohorts_.push_back(c);
      begin += slot.count;
    }
    churn_active_.assign(cohorts_.size(), 0);
  }

  void on_step(long step, std::span<const double> windows, double rtt_seconds,
               double congestion_loss) {
    using recorder::EventClass;
    using recorder::EventCode;
    using recorder::Subject;
    sink_->note_step(step);

    const auto active_at = [step](const CohortRef& c) {
      return step >= c.start && (c.stop < 0 || step < c.stop);
    };

    if (sink_->wants(EventClass::kChurn)) {
      for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
        const bool active = active_at(cohorts_[ci]);
        if (active != static_cast<bool>(churn_active_[ci])) {
          sink_->emit({step, EventClass::kChurn,
                       active ? EventCode::kJoin : EventCode::kLeave,
                       Subject::kCohort, static_cast<int>(ci),
                       static_cast<double>(cohorts_[ci].count), 0.0});
          churn_active_[ci] = active ? 1 : 0;
        }
      }
    }

    if (sink_->wants(EventClass::kSchedule)) {
      if (bw_) {
        const double scale = bw_(step);
        if (scale != last_bw_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kBandwidth,
                       Subject::kRun, -1, scale, last_bw_scale_});
          last_bw_scale_ = scale;
        }
      }
      if (rtt_) {
        const double scale = rtt_(step);
        if (scale != last_rtt_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kRtt,
                       Subject::kRun, -1, scale, last_rtt_scale_});
          last_rtt_scale_ = scale;
        }
      }
    }

    if (sink_->wants(EventClass::kLoss)) {
      const bool lossy = congestion_loss > 0.0;
      if (lossy != loss_active_) {
        sink_->emit({step, EventClass::kLoss,
                     lossy ? EventCode::kOnset : EventCode::kClear,
                     Subject::kRun, -1,
                     lossy ? congestion_loss : last_loss_, 0.0});
        loss_active_ = lossy;
      }
      if (lossy) last_loss_ = congestion_loss;
    }

    if (sink_->wants(EventClass::kWindow) && sink_->sample_due(step)) {
      double total = 0.0;
      for (const double w : windows) total += w;
      sink_->emit({step, EventClass::kWindow, EventCode::kTotal, Subject::kRun,
                   -1, total, rtt_seconds});
      if (aggregate_) {
        for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
          if (!active_at(cohorts_[ci])) continue;
          const double w =
              windows[static_cast<std::size_t>(cohorts_[ci].begin)];
          if (w > 0.0) {
            sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                         Subject::kCohort, static_cast<int>(ci), w, 0.0});
          }
        }
      } else {
        for (std::size_t i = 0; i < windows.size(); ++i) {
          if (windows[i] > 0.0) {
            sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                         Subject::kSender, static_cast<int>(i), windows[i],
                         0.0});
          }
        }
      }
    }
  }

 private:
  struct CohortRef {
    long begin = 0;
    long count = 0;
    long start = 0;
    long stop = -1;
  };

  recorder::Recorder* sink_;
  StepSchedule bw_;
  StepSchedule rtt_;
  bool aggregate_;
  std::vector<CohortRef> cohorts_;
  std::vector<char> churn_active_;
  double last_bw_scale_ = 1.0;
  double last_rtt_scale_ = 1.0;
  bool loss_active_ = false;
  double last_loss_ = 0.0;
};

}  // namespace

RunTrace PacketBackend::run(const ScenarioSpec& spec) const {
  AXIOMCC_EXPECTS_MSG(!spec.senders.empty(),
                      "scenario needs at least one sender");
  TELEMETRY_SPAN("engine", "packet.run");

  sim::DumbbellConfig dc =
      sim::dumbbell_config_from_link(spec.link, options_.mss_bytes);
  const double step_seconds = dc.rtt_ms / 1e3;
  dc.duration_seconds = step_seconds * static_cast<double>(spec.steps);
  dc.seed = spec.seed;
  dc.tail_fraction = spec.tail_fraction;
  dc.max_window_mss = std::min(spec.max_window_mss, options_.max_window_mss);

  sim::DumbbellExperiment exp(dc);

  for (const SenderSlot& slot : spec.senders) {
    AXIOMCC_EXPECTS(slot.prototype != nullptr);
    const double initial =
        std::clamp(slot.initial_window_mss, 1.0, dc.max_window_mss);
    const double start_s = slot.start_step * step_seconds;
    const double stop_s =
        slot.stop_step < 0.0 ? -1.0 : slot.stop_step * step_seconds;
    // Cohort slots expand to count independent flows of the same protocol.
    for (long j = 0; j < slot.count; ++j) {
      exp.add_flow(slot.prototype->clone(), start_s, initial, stop_s);
    }
  }

  if (spec.loss) {
    // The injector itself is seeded exactly like the fluid backend seeds it
    // (spec.loss(spec.seed)); the per-packet coin flips draw from a separate
    // stream so the two stochastic processes stay independent.
    std::uint64_t s = spec.seed;
    (void)splitmix64_next(s);  // the dumbbell's own internal stream
    const std::uint64_t filter_seed = splitmix64_next(s);
    exp.set_forward_filter(std::make_unique<InjectedRateLoss>(
        spec.loss(spec.seed), exp.simulator(), step_seconds,
        static_cast<int>(spec.total_senders()), filter_seed));
  }

  if (spec.bandwidth_scale || spec.rtt_scale) {
    sim::Simulator& simulator = exp.simulator();
    const double base_bps = dc.bottleneck_mbps * 1e6;
    for (long k = 0; k < spec.steps; ++k) {
      const auto t = SimTime::from_seconds(
          static_cast<double>(k) * step_seconds);
      if (spec.bandwidth_scale) {
        const double scale = spec.bandwidth_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "bandwidth scale must be positive");
        simulator.schedule_at(
            t, [&link = exp.bottleneck_link(), base_bps, scale] {
              link.set_rate_bps(base_bps * scale);
            });
      }
      if (spec.rtt_scale) {
        const double scale = spec.rtt_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "RTT scale must be positive");
        // The reverse (ACK) path keeps its RTT/2 delay, so the forward path
        // absorbs the whole change: fwd = (scale − ½)·RTT, floored at 1% of
        // the RTT so extreme shrink schedules cannot go non-positive.
        const double fwd = std::max(scale - 0.5, 0.01) * step_seconds;
        simulator.schedule_at(t, [&link = exp.bottleneck_link(), fwd] {
          link.set_propagation_delay(SimTime::from_seconds(fwd));
        });
      }
    }
  }

  if (spec.record_sink != nullptr) {
    // Recording rides on the step-monitor hook: emit first, then chain the
    // caller's monitor (the guarded runner installs its checks there).
    const auto prec = std::make_shared<PacketStepRecorder>(spec);
    const StepMonitor user = spec.step_monitor;
    exp.set_step_monitor([prec, user](long step,
                                      std::span<const double> windows,
                                      double rtt_seconds,
                                      double congestion_loss) {
      prec->on_step(step, windows, rtt_seconds, congestion_loss);
      return user ? user(step, windows, rtt_seconds, congestion_loss) : true;
    });
  } else if (spec.step_monitor) {
    exp.set_step_monitor(spec.step_monitor);
  }

  exp.run();

  TELEMETRY_COUNT("engine.packet_runs", 1);
  // The dumbbell experiment records full per-flow series internally; an
  // aggregate-detail request is honoured by reducing post-hoc, so both
  // backends hand the caller the same trace shape.
  fluid::Trace trace =
      spec.trace_detail == fluid::TraceDetail::kAggregate
          ? fluid::Trace::aggregated(
                exp.trace(),
                fluid::default_tracked_senders(exp.trace().num_senders(),
                                               spec.tracked_senders))
          : exp.trace();
  return RunTrace{std::move(trace), BackendKind::kPacket, exp.flow_reports(),
                  exp.bottleneck_utilization()};
}

}  // namespace axiomcc::engine
