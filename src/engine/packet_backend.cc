// packet_backend.cc — executes a ScenarioSpec on the packet-level simulator.
//
// The fluid model's step becomes one RTT of wall-clock time: a spec with S
// steps runs for S·RTT seconds and samples the trace every RTT, giving a
// Trace with (up to) S steps that the metric estimators consume exactly as
// they consume a fluid trace. Scenario elements map as follows:
//  - injected loss: the fluid per-step loss *rate* becomes a per-packet
//    Bernoulli drop at that step's rate (InjectedRateLoss below);
//  - bandwidth schedule: each link's serialization rate is retargeted at
//    each step boundary;
//  - RTT schedule: the forward propagation delay is retargeted so the
//    two-way delay matches scale·RTT (the reverse path is fixed, so the
//    scaling is applied asymmetrically — see docs/stress.md);
//  - step monitor: invoked at each trace sample; returning false stops the
//    event loop at that sample.
//
// Single-link scenarios run on sim::DumbbellExperiment; topology scenarios
// (spec.topology non-empty) run on sim::MultiHopNetwork with the step length
// set to the smallest route RTT, sender slots flattened to one routed flow
// per cohort member (matching the fluid backend's flow-id order).
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "engine/backend.h"
#include "engine/topology.h"
#include "engine/workload.h"
#include "recorder/recorder.h"
#include "sim/dumbbell.h"
#include "sim/loss.h"
#include "sim/network.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::engine {
namespace {

long total_slot_senders(const std::vector<SenderSlot>& slots) {
  long total = 0;
  for (const SenderSlot& slot : slots) total += slot.count;
  return total;
}

/// Adapts a fluid::LossInjector (a per-step, per-sender loss rate) to the
/// packet world: each forward packet is dropped with the rate the injector
/// reports for the step containing the current simulation time. The per-flow
/// rate cache is advanced through every intervening step, so stateful
/// injectors (Gilbert-Elliott dwell times) keep their step-level dynamics
/// even when a flow sends nothing for a while.
class InjectedRateLoss final : public sim::PacketFilter {
 public:
  InjectedRateLoss(std::unique_ptr<fluid::LossInjector> injector,
                   const sim::Simulator& simulator, double step_seconds,
                   int num_flows, std::uint64_t seed)
      : injector_(std::move(injector)),
        simulator_(simulator),
        step_seconds_(step_seconds),
        last_step_(static_cast<std::size_t>(num_flows), -1),
        rate_(static_cast<std::size_t>(num_flows), 0.0),
        rng_(seed) {
    AXIOMCC_EXPECTS(injector_ != nullptr);
    AXIOMCC_EXPECTS(step_seconds > 0.0);
    AXIOMCC_EXPECTS(num_flows > 0);
  }

  bool drop(const sim::Packet& p) override {
    const auto flow = static_cast<std::size_t>(p.flow_id);
    AXIOMCC_EXPECTS(flow < rate_.size());
    const long step =
        static_cast<long>(simulator_.now().seconds() / step_seconds_);
    while (last_step_[flow] < step) {
      ++last_step_[flow];
      rate_[flow] = injector_->sample(last_step_[flow], p.flow_id);
    }
    if (rate_[flow] > 0.0 && rng_.bernoulli(rate_[flow])) {
      count_drop();
      return true;
    }
    return false;
  }

 private:
  std::unique_ptr<fluid::LossInjector> injector_;
  const sim::Simulator& simulator_;
  double step_seconds_;
  std::vector<long> last_step_;  ///< per-flow step of the cached rate.
  std::vector<double> rate_;     ///< per-flow cached step loss rate.
  Rng rng_;
};

/// Seeds the per-packet drop stream of InjectedRateLoss. The injector itself
/// is seeded exactly like the fluid backend seeds it (spec.loss(spec.seed));
/// the coin flips draw from a separate stream so the two stochastic
/// processes stay independent. The first draw is skipped: it belongs to the
/// simulator's own internal stream.
std::uint64_t filter_seed_for(const ScenarioSpec& spec) {
  std::uint64_t s = spec.seed;
  (void)splitmix64_next(s);
  return splitmix64_next(s);
}

/// Mirror of the fluid tick loop's StepRecorder: every event derives from
/// the executed slot list (churn intervals rounded exactly like the fluid
/// backend rounds them, the shared schedule functions) or from the values
/// each trace sample records, so both backends' recordings live on the same
/// lanes and the aligner can step-match them. Invoked from the (serial)
/// event loop via a wrapping step monitor. Cohort-lane injected-loss detail
/// is not observable per-sample here and stays a fluid-only extra.
class PacketStepRecorder {
 public:
  PacketStepRecorder(const ScenarioSpec& spec,
                     const std::vector<SenderSlot>& slots)
      : sink_(spec.record_sink),
        bw_(spec.bandwidth_scale),
        rtt_(spec.rtt_scale),
        aggregate_(spec.trace_detail == fluid::TraceDetail::kAggregate) {
    sink_->set_backend("packet");
    sink_->set_senders(total_slot_senders(slots));
    long begin = 0;
    for (const SenderSlot& slot : slots) {
      CohortRef c;
      c.begin = begin;
      c.count = slot.count;
      c.start = std::lround(slot.start_step);
      c.stop = slot.stop_step < 0.0 ? -1 : std::lround(slot.stop_step);
      cohorts_.push_back(c);
      begin += slot.count;
    }
    churn_active_.assign(cohorts_.size(), 0);
  }

  void on_step(long step, std::span<const double> windows, double rtt_seconds,
               double congestion_loss) {
    using recorder::EventClass;
    using recorder::EventCode;
    using recorder::Subject;
    sink_->note_step(step);

    const auto active_at = [step](const CohortRef& c) {
      return step >= c.start && (c.stop < 0 || step < c.stop);
    };

    if (sink_->wants(EventClass::kChurn)) {
      for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
        const bool active = active_at(cohorts_[ci]);
        if (active != static_cast<bool>(churn_active_[ci])) {
          sink_->emit({step, EventClass::kChurn,
                       active ? EventCode::kJoin : EventCode::kLeave,
                       Subject::kCohort, static_cast<int>(ci),
                       static_cast<double>(cohorts_[ci].count), 0.0});
          churn_active_[ci] = active ? 1 : 0;
        }
      }
    }

    if (sink_->wants(EventClass::kSchedule)) {
      if (bw_) {
        const double scale = bw_(step);
        if (scale != last_bw_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kBandwidth,
                       Subject::kRun, -1, scale, last_bw_scale_});
          last_bw_scale_ = scale;
        }
      }
      if (rtt_) {
        const double scale = rtt_(step);
        if (scale != last_rtt_scale_) {
          sink_->emit({step, EventClass::kSchedule, EventCode::kRtt,
                       Subject::kRun, -1, scale, last_rtt_scale_});
          last_rtt_scale_ = scale;
        }
      }
    }

    if (sink_->wants(EventClass::kLoss)) {
      const bool lossy = congestion_loss > 0.0;
      if (lossy != loss_active_) {
        sink_->emit({step, EventClass::kLoss,
                     lossy ? EventCode::kOnset : EventCode::kClear,
                     Subject::kRun, -1,
                     lossy ? congestion_loss : last_loss_, 0.0});
        loss_active_ = lossy;
      }
      if (lossy) last_loss_ = congestion_loss;
    }

    if (sink_->wants(EventClass::kWindow) && sink_->sample_due(step)) {
      double total = 0.0;
      for (const double w : windows) total += w;
      sink_->emit({step, EventClass::kWindow, EventCode::kTotal, Subject::kRun,
                   -1, total, rtt_seconds});
      if (aggregate_) {
        for (std::size_t ci = 0; ci < cohorts_.size(); ++ci) {
          if (!active_at(cohorts_[ci])) continue;
          const double w =
              windows[static_cast<std::size_t>(cohorts_[ci].begin)];
          if (w > 0.0) {
            sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                         Subject::kCohort, static_cast<int>(ci), w, 0.0});
          }
        }
      } else {
        for (std::size_t i = 0; i < windows.size(); ++i) {
          if (windows[i] > 0.0) {
            sink_->emit({step, EventClass::kWindow, EventCode::kSample,
                         Subject::kSender, static_cast<int>(i), windows[i],
                         0.0});
          }
        }
      }
    }
  }

 private:
  struct CohortRef {
    long begin = 0;
    long count = 0;
    long start = 0;
    long stop = -1;
  };

  recorder::Recorder* sink_;
  StepSchedule bw_;
  StepSchedule rtt_;
  bool aggregate_;
  std::vector<CohortRef> cohorts_;
  std::vector<char> churn_active_;
  double last_bw_scale_ = 1.0;
  double last_rtt_scale_ = 1.0;
  bool loss_active_ = false;
  double last_loss_ = 0.0;
};

/// Flattens cohort slots to one slot per member (the topology backends run
/// per-flow, so recorder cohorts and flow ids coincide).
std::vector<SenderSlot> flatten_slots(const std::vector<SenderSlot>& slots) {
  std::vector<SenderSlot> flat;
  flat.reserve(static_cast<std::size_t>(total_slot_senders(slots)));
  for (const SenderSlot& slot : slots) {
    SenderSlot one = slot;
    one.count = 1;
    for (long j = 0; j < slot.count; ++j) flat.push_back(one);
  }
  return flat;
}

RunTrace run_topology(const ScenarioSpec& spec,
                      const std::vector<SenderSlot>& slots,
                      const PacketBackend::Options& options) {
  const std::vector<SenderSlot> flat = flatten_slots(slots);

  // Per-link fluid units -> packet units, the same conversion as
  // dumbbell_config_from_link applied link by link (Θ stays one-way here:
  // a route's RTT is twice its summed one-way delay).
  std::vector<double> link_mbps;
  std::vector<double> link_delay_ms;
  std::vector<std::size_t> link_buffer;
  for (const fluid::LinkParams& params : spec.topology.links) {
    link_mbps.push_back(params.bandwidth.mbps(options.mss_bytes));
    link_delay_ms.push_back(params.propagation_delay.millis());
    link_buffer.push_back(static_cast<std::size_t>(
        std::max<long long>(1, std::llround(params.buffer_mss))));
  }

  // One trace step = the smallest route RTT, so the fastest control loop
  // gets one sample per round trip (slower flows update less often, exactly
  // as they would on real hardware).
  double min_route_rtt_ms = std::numeric_limits<double>::infinity();
  for (const SenderSlot& slot : flat) {
    double one_way_ms = 0.0;
    for (int l : slot.route) {
      one_way_ms += link_delay_ms[static_cast<std::size_t>(l)];
    }
    min_route_rtt_ms = std::min(min_route_rtt_ms, 2.0 * one_way_ms);
  }
  min_route_rtt_ms = std::max(min_route_rtt_ms, 1.0);
  const double step_seconds = min_route_rtt_ms / 1e3;

  sim::MultiHopNetwork::Config config;
  config.duration_seconds = step_seconds * static_cast<double>(spec.steps);
  config.mss_bytes = options.mss_bytes;
  config.sample_interval_ms = min_route_rtt_ms;
  config.tail_fraction = spec.tail_fraction;
  config.max_window_mss = std::min(spec.max_window_mss, options.max_window_mss);

  sim::MultiHopNetwork net(config);
  for (std::size_t l = 0; l < link_mbps.size(); ++l) {
    net.add_link(link_mbps[l], link_delay_ms[l], link_buffer[l]);
  }
  for (const SenderSlot& slot : flat) {
    AXIOMCC_EXPECTS(slot.prototype != nullptr);
    const double initial =
        std::clamp(slot.initial_window_mss, 1.0, config.max_window_mss);
    const double start_s = slot.start_step * step_seconds;
    const double stop_s =
        slot.stop_step < 0.0 ? -1.0 : slot.stop_step * step_seconds;
    net.add_flow(slot.prototype->clone(), slot.route, start_s, initial,
                 stop_s);
  }

  if (spec.loss) {
    net.set_forward_filter(std::make_unique<InjectedRateLoss>(
        spec.loss(spec.seed), net.simulator(), step_seconds,
        static_cast<int>(flat.size()), filter_seed_for(spec)));
  }

  if (spec.bandwidth_scale || spec.rtt_scale) {
    sim::Simulator& simulator = net.simulator();
    for (long k = 0; k < spec.steps; ++k) {
      const auto t =
          SimTime::from_seconds(static_cast<double>(k) * step_seconds);
      if (spec.bandwidth_scale) {
        const double scale = spec.bandwidth_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "bandwidth scale must be positive");
        simulator.schedule_at(t, [&net, &link_mbps, scale] {
          for (int l = 0; l < net.num_links(); ++l) {
            net.mutable_link(l).set_rate_bps(
                link_mbps[static_cast<std::size_t>(l)] * 1e6 * scale);
          }
        });
      }
      if (spec.rtt_scale) {
        const double scale = spec.rtt_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "RTT scale must be positive");
        // The reverse (ACK) path keeps its fixed one-way delay, so each
        // forward link absorbs the whole change: delay' = (2·scale − 1)·Θ,
        // floored at 2% of Θ so extreme shrink schedules cannot go
        // non-positive (the dumbbell applies the same asymmetric scaling).
        const double factor = std::max(2.0 * scale - 1.0, 0.02);
        simulator.schedule_at(t, [&net, &link_delay_ms, factor] {
          for (int l = 0; l < net.num_links(); ++l) {
            net.mutable_link(l).set_propagation_delay(SimTime::from_millis(
                link_delay_ms[static_cast<std::size_t>(l)] * factor));
          }
        });
      }
    }
  }

  // The scope rides the same step-monitor hook as the recorder: the monitor
  // delivers exactly the samples the trace records. Class ids are flow ids
  // (the slots are flattened), matching the fluid topology path; per-link
  // channels stay a fluid-network extra — the packet monitor carries no
  // per-link view.
  scope::MetricScope* const scope = spec.scope_sink;
  if (scope != nullptr) {
    double min_capacity = std::numeric_limits<double>::infinity();
    for (const fluid::LinkParams& params : spec.topology.links) {
      min_capacity =
          std::min(min_capacity, fluid::FluidLink(params).capacity_mss());
    }
    scope->resolve(spec.steps, spec.tail_fraction, min_capacity, step_seconds,
                   config.max_window_mss);
    scope->set_recorder(spec.record_sink);
    scope->begin_run(static_cast<int>(flat.size()), /*num_links=*/0);
  }

  if (spec.record_sink != nullptr || scope != nullptr) {
    const auto prec = spec.record_sink != nullptr
                          ? std::make_shared<PacketStepRecorder>(spec, flat)
                          : nullptr;
    const StepMonitor user = spec.step_monitor;
    net.set_step_monitor([prec, scope, user](long step,
                                             std::span<const double> windows,
                                             double rtt_seconds,
                                             double congestion_loss) {
      if (prec != nullptr) {
        prec->on_step(step, windows, rtt_seconds, congestion_loss);
      }
      if (scope != nullptr) {
        double total = 0.0;
        for (const double w : windows) total += w;
        scope->step_begin(step, total, rtt_seconds, congestion_loss);
        for (std::size_t i = 0; i < windows.size(); ++i) {
          scope->observe_class(static_cast<int>(i), windows[i],
                               congestion_loss);
        }
        scope->step_end();
      }
      return user ? user(step, windows, rtt_seconds, congestion_loss) : true;
    });
  } else if (spec.step_monitor) {
    net.set_step_monitor(spec.step_monitor);
  }

  net.run();
  if (scope != nullptr) scope->finish();

  TELEMETRY_COUNT("engine.packet_topology_runs", 1);
  fluid::Trace trace =
      spec.trace_detail == fluid::TraceDetail::kAggregate
          ? fluid::Trace::aggregated(
                net.trace(),
                fluid::default_tracked_senders(net.trace().num_senders(),
                                               spec.tracked_senders))
          : net.trace();
  return RunTrace{std::move(trace), BackendKind::kPacket, net.flow_reports(),
                  net.max_link_utilization()};
}

}  // namespace

RunTrace PacketBackend::run(const ScenarioSpec& spec) const {
  AXIOMCC_EXPECTS_MSG(!spec.senders.empty(),
                      "scenario needs at least one sender");
  TELEMETRY_SPAN("engine", "packet.run");

  validate_scenario(spec);
  const std::vector<SenderSlot> slots = expand_workload(spec);
  if (slots.empty()) {
    throw ScenarioError("workload expansion produced no senders");
  }
  if (!spec.topology.empty()) return run_topology(spec, slots, options_);

  sim::DumbbellConfig dc =
      sim::dumbbell_config_from_link(spec.link, options_.mss_bytes);
  const double step_seconds = dc.rtt_ms / 1e3;
  dc.duration_seconds = step_seconds * static_cast<double>(spec.steps);
  dc.seed = spec.seed;
  dc.tail_fraction = spec.tail_fraction;
  dc.max_window_mss = std::min(spec.max_window_mss, options_.max_window_mss);

  sim::DumbbellExperiment exp(dc);

  for (const SenderSlot& slot : slots) {
    AXIOMCC_EXPECTS(slot.prototype != nullptr);
    const double initial =
        std::clamp(slot.initial_window_mss, 1.0, dc.max_window_mss);
    const double start_s = slot.start_step * step_seconds;
    const double stop_s =
        slot.stop_step < 0.0 ? -1.0 : slot.stop_step * step_seconds;
    // Cohort slots expand to count independent flows of the same protocol.
    for (long j = 0; j < slot.count; ++j) {
      exp.add_flow(slot.prototype->clone(), start_s, initial, stop_s);
    }
  }

  if (spec.loss) {
    exp.set_forward_filter(std::make_unique<InjectedRateLoss>(
        spec.loss(spec.seed), exp.simulator(), step_seconds,
        static_cast<int>(total_slot_senders(slots)), filter_seed_for(spec)));
  }

  if (spec.bandwidth_scale || spec.rtt_scale) {
    sim::Simulator& simulator = exp.simulator();
    const double base_bps = dc.bottleneck_mbps * 1e6;
    for (long k = 0; k < spec.steps; ++k) {
      const auto t = SimTime::from_seconds(
          static_cast<double>(k) * step_seconds);
      if (spec.bandwidth_scale) {
        const double scale = spec.bandwidth_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "bandwidth scale must be positive");
        simulator.schedule_at(
            t, [&link = exp.bottleneck_link(), base_bps, scale] {
              link.set_rate_bps(base_bps * scale);
            });
      }
      if (spec.rtt_scale) {
        const double scale = spec.rtt_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "RTT scale must be positive");
        // The reverse (ACK) path keeps its RTT/2 delay, so the forward path
        // absorbs the whole change: fwd = (scale − ½)·RTT, floored at 1% of
        // the RTT so extreme shrink schedules cannot go non-positive.
        const double fwd = std::max(scale - 0.5, 0.01) * step_seconds;
        simulator.schedule_at(t, [&link = exp.bottleneck_link(), fwd] {
          link.set_propagation_delay(SimTime::from_seconds(fwd));
        });
      }
    }
  }

  // Scope classes are sender slots (cohorts), mirroring the fluid backend's
  // group order: member i of slot g observes into class g, so per-class
  // channels line up across backends. The per-flow observed loss is the
  // bottleneck's congestion loss — every dumbbell flow shares it.
  scope::MetricScope* const scope = spec.scope_sink;
  std::vector<int> scope_class;
  if (scope != nullptr) {
    const fluid::FluidLink link(spec.link);
    scope->resolve(spec.steps, spec.tail_fraction, link.capacity_mss(),
                   link.min_rtt().value(), dc.max_window_mss);
    scope->set_recorder(spec.record_sink);
    scope_class.reserve(static_cast<std::size_t>(total_slot_senders(slots)));
    for (std::size_t g = 0; g < slots.size(); ++g) {
      for (long j = 0; j < slots[g].count; ++j) {
        scope_class.push_back(static_cast<int>(g));
      }
    }
    scope->begin_run(static_cast<int>(slots.size()), /*num_links=*/0);
  }

  if (spec.record_sink != nullptr || scope != nullptr) {
    // Recording rides on the step-monitor hook: emit first, then chain the
    // caller's monitor (the guarded runner installs its checks there).
    const auto prec = spec.record_sink != nullptr
                          ? std::make_shared<PacketStepRecorder>(spec, slots)
                          : nullptr;
    const StepMonitor user = spec.step_monitor;
    exp.set_step_monitor([prec, scope, scope_class,
                          user](long step, std::span<const double> windows,
                                double rtt_seconds, double congestion_loss) {
      if (prec != nullptr) {
        prec->on_step(step, windows, rtt_seconds, congestion_loss);
      }
      if (scope != nullptr) {
        double total = 0.0;
        for (const double w : windows) total += w;
        scope->step_begin(step, total, rtt_seconds, congestion_loss);
        for (std::size_t i = 0; i < windows.size(); ++i) {
          scope->observe_class(scope_class[i], windows[i], congestion_loss);
        }
        scope->step_end();
      }
      return user ? user(step, windows, rtt_seconds, congestion_loss) : true;
    });
  } else if (spec.step_monitor) {
    exp.set_step_monitor(spec.step_monitor);
  }

  exp.run();
  if (scope != nullptr) scope->finish();

  TELEMETRY_COUNT("engine.packet_runs", 1);
  // The dumbbell experiment records full per-flow series internally; an
  // aggregate-detail request is honoured by reducing post-hoc, so both
  // backends hand the caller the same trace shape.
  fluid::Trace trace =
      spec.trace_detail == fluid::TraceDetail::kAggregate
          ? fluid::Trace::aggregated(
                exp.trace(),
                fluid::default_tracked_senders(exp.trace().num_senders(),
                                               spec.tracked_senders))
          : exp.trace();
  return RunTrace{std::move(trace), BackendKind::kPacket, exp.flow_reports(),
                  exp.bottleneck_utilization()};
}

}  // namespace axiomcc::engine
