// packet_backend.cc — executes a ScenarioSpec on the packet-level dumbbell.
//
// The fluid model's step becomes one RTT of wall-clock time: a spec with S
// steps runs for S·RTT seconds and samples the trace every RTT, giving a
// Trace with (up to) S steps that the metric estimators consume exactly as
// they consume a fluid trace. Scenario elements map as follows:
//  - injected loss: the fluid per-step loss *rate* becomes a per-packet
//    Bernoulli drop at that step's rate (InjectedRateLoss below);
//  - bandwidth schedule: the bottleneck's serialization rate is retargeted
//    at each step boundary;
//  - RTT schedule: the forward propagation delay is retargeted so the
//    two-way delay matches scale·RTT (the reverse path is fixed at RTT/2,
//    so the scaling is applied asymmetrically — see docs/stress.md);
//  - step monitor: invoked at each trace sample; returning false stops the
//    event loop at that sample.
#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "engine/backend.h"
#include "sim/dumbbell.h"
#include "sim/loss.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::engine {
namespace {

/// Adapts a fluid::LossInjector (a per-step, per-sender loss rate) to the
/// packet world: each forward packet is dropped with the rate the injector
/// reports for the step containing the current simulation time. The per-flow
/// rate cache is advanced through every intervening step, so stateful
/// injectors (Gilbert-Elliott dwell times) keep their step-level dynamics
/// even when a flow sends nothing for a while.
class InjectedRateLoss final : public sim::PacketFilter {
 public:
  InjectedRateLoss(std::unique_ptr<fluid::LossInjector> injector,
                   const sim::Simulator& simulator, double step_seconds,
                   int num_flows, std::uint64_t seed)
      : injector_(std::move(injector)),
        simulator_(simulator),
        step_seconds_(step_seconds),
        last_step_(static_cast<std::size_t>(num_flows), -1),
        rate_(static_cast<std::size_t>(num_flows), 0.0),
        rng_(seed) {
    AXIOMCC_EXPECTS(injector_ != nullptr);
    AXIOMCC_EXPECTS(step_seconds > 0.0);
    AXIOMCC_EXPECTS(num_flows > 0);
  }

  bool drop(const sim::Packet& p) override {
    const auto flow = static_cast<std::size_t>(p.flow_id);
    AXIOMCC_EXPECTS(flow < rate_.size());
    const long step =
        static_cast<long>(simulator_.now().seconds() / step_seconds_);
    while (last_step_[flow] < step) {
      ++last_step_[flow];
      rate_[flow] = injector_->sample(last_step_[flow], p.flow_id);
    }
    if (rate_[flow] > 0.0 && rng_.bernoulli(rate_[flow])) {
      count_drop();
      return true;
    }
    return false;
  }

 private:
  std::unique_ptr<fluid::LossInjector> injector_;
  const sim::Simulator& simulator_;
  double step_seconds_;
  std::vector<long> last_step_;  ///< per-flow step of the cached rate.
  std::vector<double> rate_;     ///< per-flow cached step loss rate.
  Rng rng_;
};

}  // namespace

RunTrace PacketBackend::run(const ScenarioSpec& spec) const {
  AXIOMCC_EXPECTS_MSG(!spec.senders.empty(),
                      "scenario needs at least one sender");
  TELEMETRY_SPAN("engine", "packet.run");

  sim::DumbbellConfig dc =
      sim::dumbbell_config_from_link(spec.link, options_.mss_bytes);
  const double step_seconds = dc.rtt_ms / 1e3;
  dc.duration_seconds = step_seconds * static_cast<double>(spec.steps);
  dc.seed = spec.seed;
  dc.tail_fraction = spec.tail_fraction;
  dc.max_window_mss = std::min(spec.max_window_mss, options_.max_window_mss);

  sim::DumbbellExperiment exp(dc);

  for (const SenderSlot& slot : spec.senders) {
    AXIOMCC_EXPECTS(slot.prototype != nullptr);
    const double initial =
        std::clamp(slot.initial_window_mss, 1.0, dc.max_window_mss);
    const double start_s = slot.start_step * step_seconds;
    const double stop_s =
        slot.stop_step < 0.0 ? -1.0 : slot.stop_step * step_seconds;
    // Cohort slots expand to count independent flows of the same protocol.
    for (long j = 0; j < slot.count; ++j) {
      exp.add_flow(slot.prototype->clone(), start_s, initial, stop_s);
    }
  }

  if (spec.loss) {
    // The injector itself is seeded exactly like the fluid backend seeds it
    // (spec.loss(spec.seed)); the per-packet coin flips draw from a separate
    // stream so the two stochastic processes stay independent.
    std::uint64_t s = spec.seed;
    (void)splitmix64_next(s);  // the dumbbell's own internal stream
    const std::uint64_t filter_seed = splitmix64_next(s);
    exp.set_forward_filter(std::make_unique<InjectedRateLoss>(
        spec.loss(spec.seed), exp.simulator(), step_seconds,
        static_cast<int>(spec.total_senders()), filter_seed));
  }

  if (spec.bandwidth_scale || spec.rtt_scale) {
    sim::Simulator& simulator = exp.simulator();
    const double base_bps = dc.bottleneck_mbps * 1e6;
    for (long k = 0; k < spec.steps; ++k) {
      const auto t = SimTime::from_seconds(
          static_cast<double>(k) * step_seconds);
      if (spec.bandwidth_scale) {
        const double scale = spec.bandwidth_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "bandwidth scale must be positive");
        simulator.schedule_at(
            t, [&link = exp.bottleneck_link(), base_bps, scale] {
              link.set_rate_bps(base_bps * scale);
            });
      }
      if (spec.rtt_scale) {
        const double scale = spec.rtt_scale(k);
        AXIOMCC_EXPECTS_MSG(scale > 0.0, "RTT scale must be positive");
        // The reverse (ACK) path keeps its RTT/2 delay, so the forward path
        // absorbs the whole change: fwd = (scale − ½)·RTT, floored at 1% of
        // the RTT so extreme shrink schedules cannot go non-positive.
        const double fwd = std::max(scale - 0.5, 0.01) * step_seconds;
        simulator.schedule_at(t, [&link = exp.bottleneck_link(), fwd] {
          link.set_propagation_delay(SimTime::from_seconds(fwd));
        });
      }
    }
  }

  if (spec.step_monitor) exp.set_step_monitor(spec.step_monitor);

  exp.run();

  TELEMETRY_COUNT("engine.packet_runs", 1);
  // The dumbbell experiment records full per-flow series internally; an
  // aggregate-detail request is honoured by reducing post-hoc, so both
  // backends hand the caller the same trace shape.
  fluid::Trace trace =
      spec.trace_detail == fluid::TraceDetail::kAggregate
          ? fluid::Trace::aggregated(
                exp.trace(),
                fluid::default_tracked_senders(exp.trace().num_senders(),
                                               spec.tracked_senders))
          : exp.trace();
  return RunTrace{std::move(trace), BackendKind::kPacket, exp.flow_reports(),
                  exp.bottleneck_utilization()};
}

}  // namespace axiomcc::engine
