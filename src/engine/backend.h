// backend.h — the SimBackend interface and its two implementations.
//
// A SimBackend executes a ScenarioSpec on one of the repository's two
// simulators and returns a RunTrace. Callers that speak ScenarioSpec
// (core::Evaluator, the stress gauntlet, the experiment drivers) are thereby
// backend-agnostic: `--backend=packet` swaps the paper's fluid model for the
// packet-level dumbbell without touching the metric estimators.
//
// Contract (see docs/architecture.md for the full statement):
//  - run() is const and thread-safe: one backend instance may execute many
//    scenarios concurrently (the parallel experiment engine relies on this).
//  - Identical (spec, backend) pairs produce identical RunTraces, at any
//    job count.
//  - The returned trace has spec.senders.size() senders and at most
//    spec.steps steps (fewer when a step monitor stopped the run early).
#pragma once

#include "engine/scenario.h"

namespace axiomcc::engine {

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;
  [[nodiscard]] const char* name() const { return backend_name(kind()); }

  /// Executes the scenario. Requires at least one sender slot.
  [[nodiscard]] virtual RunTrace run(const ScenarioSpec& spec) const = 0;
};

/// The paper's discrete-time fluid model (fluid::FluidSimulation).
/// Reproduces the exact construction order of the pre-engine call sites, so
/// traces are bit-identical with runs that built FluidSimulation by hand.
class FluidBackend final : public SimBackend {
 public:
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kFluid;
  }
  [[nodiscard]] RunTrace run(const ScenarioSpec& spec) const override;
};

/// The packet-level dumbbell DES (sim::DumbbellExperiment). One fluid step
/// maps to one RTT of wall-clock time; the trace is sampled every RTT.
class PacketBackend final : public SimBackend {
 public:
  struct Options {
    int mss_bytes = 1500;
    /// Backend-wide cwnd cap. The fluid model tolerates windows up to 1e9
    /// MSS; a packet simulation's event count is proportional to the real
    /// window, so the effective cap is min(spec.max_window_mss, this).
    double max_window_mss = 1e7;
  };

  PacketBackend() = default;
  explicit PacketBackend(const Options& options) : options_(options) {}

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kPacket;
  }
  [[nodiscard]] RunTrace run(const ScenarioSpec& spec) const override;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_{};
};

/// Shared default-constructed backend instances (run() is const and
/// thread-safe, so one instance per kind serves the whole process).
[[nodiscard]] const SimBackend& backend_for(BackendKind kind);

}  // namespace axiomcc::engine
