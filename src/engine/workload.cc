#include "engine/workload.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace axiomcc::engine {
namespace {

/// Upper bound on generated slots: enough for any sane workload, small
/// enough that a degenerate (tiny-off-gap) draw cannot blow up memory.
constexpr std::size_t kMaxGeneratedSlots = 4096;

/// One uniform draw clamped away from 0 so log/pow stay finite.
double positive_uniform(Rng& rng) {
  return std::max(rng.uniform(), 1e-12);
}

}  // namespace

std::vector<SenderSlot> expand_workload(const ScenarioSpec& spec) {
  if (spec.workload.empty()) return spec.senders;
  const WorkloadSpec& w = spec.workload;
  AXIOMCC_EXPECTS(w.flows >= 1);

  // One stream for the whole expansion, salted off the scenario seed so the
  // generated pattern is independent of the loss injector's stream.
  std::uint64_t salt = spec.seed ^ 0xa0761d6478bd642full;
  Rng rng(splitmix64_next(salt));

  const double horizon = static_cast<double>(spec.steps);
  std::vector<SenderSlot> out;
  for (const SenderSlot& tmpl : spec.senders) {
    for (long j = 0; j < w.flows && out.size() < kMaxGeneratedSlots; ++j) {
      if (w.kind == WorkloadKind::kIncast) {
        SenderSlot slot = tmpl;
        slot.start_step =
            tmpl.start_step + rng.uniform() * std::max(w.spread_steps, 0.0);
        if (slot.stop_step >= 0.0 && slot.stop_step <= slot.start_step + 1.0) {
          continue;  // the spread pushed this arrival past its own stop
        }
        out.push_back(std::move(slot));
        continue;
      }
      // On-off heavy tail: alternate bounded-Pareto on-periods (mean
      // mean_on_steps for alpha > 1) with exponential off-gaps until the
      // slot's horizon. Each on-period becomes its own slot.
      AXIOMCC_EXPECTS(w.mean_on_steps > 0.0 && w.mean_off_steps > 0.0);
      AXIOMCC_EXPECTS(w.alpha > 0.0);
      const double slot_end =
          tmpl.stop_step < 0.0 ? horizon : std::min(tmpl.stop_step, horizon);
      // Pareto scale x_m giving the requested mean (alpha ≤ 1 has no mean;
      // fall back to the mean itself as the scale).
      const double x_m = w.alpha > 1.0
                             ? w.mean_on_steps * (w.alpha - 1.0) / w.alpha
                             : w.mean_on_steps;
      double t = tmpl.start_step + rng.uniform() * w.mean_off_steps;
      while (t + 1.0 < slot_end && out.size() < kMaxGeneratedSlots) {
        double on = x_m / std::pow(positive_uniform(rng), 1.0 / w.alpha);
        // Bound the tail at 64 means so one draw cannot eat the horizon.
        on = std::clamp(on, 1.0, 64.0 * w.mean_on_steps);
        SenderSlot slot = tmpl;
        slot.start_step = t;
        slot.stop_step = std::min(t + on, slot_end);
        out.push_back(std::move(slot));
        const double off = -w.mean_off_steps * std::log(positive_uniform(rng));
        t = std::min(t + on, slot_end) + std::max(off, 1.0);
      }
    }
  }
  return out;
}

}  // namespace axiomcc::engine
