// scenario.h — a backend-neutral description of one simulation run.
//
// The repository has two simulators of the same physical situation: the
// paper's discrete-time fluid model (src/fluid, 1 step = 1 RTT) and a
// packet-level discrete-event dumbbell (src/sim). A ScenarioSpec captures
// everything both need — the link, the senders, the horizon, injected loss,
// perturbation schedules, and a seed — in the fluid model's units (steps,
// MSS), and a SimBackend (backend.h) turns it into a run. The packet backend
// converts steps to wall-clock time via the link RTT.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "cc/protocol.h"
#include "fluid/link.h"
#include "fluid/loss_model.h"
#include "fluid/trace.h"
#include "recorder/recorder.h"
#include "scope/scope.h"
#include "sim/dumbbell.h"
#include "util/check.h"

namespace axiomcc::engine {

/// Which simulator executes a ScenarioSpec.
enum class BackendKind { kFluid, kPacket };

[[nodiscard]] constexpr const char* backend_name(BackendKind kind) {
  return kind == BackendKind::kFluid ? "fluid" : "packet";
}

/// Parses a backend name ("fluid" or "packet"); throws std::invalid_argument
/// with the accepted values on anything else.
[[nodiscard]] inline BackendKind parse_backend(std::string_view name) {
  if (name == "fluid") return BackendKind::kFluid;
  if (name == "packet") return BackendKind::kPacket;
  throw std::invalid_argument("unknown backend '" + std::string(name) +
                              "' (expected fluid|packet)");
}

/// Typed error for an invalid ScenarioSpec (bad routes, topology/field
/// mismatches). Thrown by engine::validate_scenario (topology.h) and by the
/// backends before executing a topology scenario, so callers can distinguish
/// a malformed spec from a programming-contract violation.
class ScenarioError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A multi-bottleneck topology: links addressed by index, traversed by the
/// per-slot routes below. Empty (the default) selects the degenerate
/// single-link mode in which `ScenarioSpec::link` is the whole network and
/// routes must stay empty — every pre-topology caller is in this mode and
/// produces byte-identical traces. Builders for the standard shapes
/// (dumbbell, parking lot, leaf-spine fat-tree with ECMP) live in
/// engine/topology.h.
struct TopologySpec {
  std::vector<fluid::LinkParams> links;

  [[nodiscard]] bool empty() const { return links.empty(); }
  [[nodiscard]] int num_links() const {
    return static_cast<int>(links.size());
  }
};

/// Workload generators: expand the sender slots into a concrete arrival
/// pattern, deterministically seeded from the scenario seed (both backends
/// run the SAME expansion, so the generated churn is backend-neutral).
enum class WorkloadKind {
  kNone,            ///< slots run exactly as written (the default).
  kIncast,          ///< fan-in: each slot becomes `flows` arrivals spread
                    ///< uniformly over [start, start + spread_steps).
  kOnOffHeavyTail,  ///< each slot becomes `flows` on-off sources with
                    ///< bounded-Pareto on-periods and exponential off-gaps.
};

struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kNone;
  /// Generated flows per template slot.
  long flows = 8;
  /// Incast: arrival spread in steps (uniform over [0, spread)).
  double spread_steps = 32.0;
  /// On-off: mean on/off durations in steps. On-periods draw from a bounded
  /// Pareto with shape `alpha` (heavy-tailed flow sizes); off-gaps are
  /// exponential.
  double mean_on_steps = 60.0;
  double mean_off_steps = 60.0;
  double alpha = 1.5;

  [[nodiscard]] bool empty() const { return kind == WorkloadKind::kNone; }
};

/// One sender slot. The protocol prototype is NOT owned — it must outlive
/// the backend run, which clones it (so one prototype can seed many slots,
/// exactly like fluid::FluidSimulation::add_sender).
///
/// `start_step`/`stop_step` are fractional steps: the fluid backend rounds
/// them to whole steps, the packet backend multiplies by the RTT to get a
/// wall-clock time (sub-step staggered starts, as the emulab grid uses).
/// A negative stop means "forever".
struct SenderSlot {
  const cc::Protocol* prototype = nullptr;
  double initial_window_mss = 1.0;
  double start_step = 0.0;
  double stop_step = -1.0;
  /// Senders this slot expands to (a homogeneous cohort sharing the
  /// prototype). The fluid backend keeps the cohort intact — one prototype,
  /// O(1) allocations on the batch path; the packet backend adds `count`
  /// flows.
  long count = 1;
  /// Topology mode only: the ordered link ids this slot's flows traverse.
  /// Must be empty when `ScenarioSpec::topology` is empty (single-link
  /// mode), non-empty — with every id in range and no repeats — otherwise;
  /// engine::validate_scenario enforces this with a ScenarioError.
  std::vector<int> route;
};

/// Multiplicative perturbation schedule: scale factor as a function of the
/// step index (stress::StepSchedule has the same shape).
using StepSchedule = std::function<double(long)>;

/// Builds a loss injector from a seed. Scenarios carry a factory rather than
/// an injector instance so that each run (and each backend) gets a fresh,
/// independently seeded loss process.
using LossFactory =
    std::function<std::unique_ptr<fluid::LossInjector>(std::uint64_t seed)>;

/// Per-step observer with the same shape as fluid::FluidSimulation's
/// StepMonitor and sim::DumbbellExperiment's StepMonitorFn: called after each
/// recorded step with (step, windows, rtt_seconds, congestion_loss);
/// returning false ends the run early, keeping the steps recorded so far.
using StepMonitor = std::function<bool(
    long step, std::span<const double> windows, double rtt_seconds,
    double congestion_loss)>;

/// Everything a backend needs to execute one run.
struct ScenarioSpec {
  fluid::LinkParams link = fluid::make_link_mbps(30.0, 42.0, 100.0);
  /// Multi-bottleneck topology (empty = single-link mode over `link`). When
  /// non-empty, `link` is ignored and every sender slot must carry a route
  /// over `topology.links`; both backends execute the routed network
  /// (fluid::FluidNetwork / sim::MultiHopNetwork).
  TopologySpec topology;
  /// Workload generator applied to the sender slots before the backend runs
  /// them (kNone = slots run verbatim). Seeded from `seed`; see
  /// engine/workload.h.
  WorkloadSpec workload;
  long steps = 2000;
  /// Window floor/cap. The floor is honoured only by the fluid model (the
  /// packet sender's floor is 1 packet); the cap applies to both, though the
  /// packet backend may clamp it further (event count scales with cwnd).
  double min_window_mss = 1.0;
  double max_window_mss = 1e9;
  std::vector<SenderSlot> senders;
  /// Non-congestion loss (null = none). Called with `seed` at run time.
  LossFactory loss;
  /// Link perturbation schedules (null = constant 1).
  StepSchedule bandwidth_scale;
  StepSchedule rtt_scale;
  std::uint64_t seed = 42;
  StepMonitor step_monitor;
  /// Scoring-tail fraction for the packet backend's per-flow reports (the
  /// fluid model computes tails in the estimators instead, so it ignores
  /// this).
  double tail_fraction = 0.5;
  /// Trace retention: kAggregate keeps per-step population statistics plus
  /// `tracked_senders` full series instead of every sender's series (the
  /// packet backend reduces its full trace post-hoc).
  fluid::TraceDetail trace_detail = fluid::TraceDetail::kFull;
  int tracked_senders = 8;
  /// Fluid backend only: opt into the SoA cohort execution path
  /// (bit-identical to the scalar path) and its shard count (0 = hardware).
  bool batch = false;
  long jobs = 1;
  /// Flight-recorder capture options (event classes, ring depth, sample
  /// stride). `record.enabled` is the master switch; the sink below must
  /// also be installed for a backend to emit anything.
  recorder::RecordOptions record;
  /// Non-owning event sink for this run (one Recorder per run; emission
  /// happens from the serial sections of the backend loops). Callers build
  /// one with `make_recorder(spec)` and attach it here.
  recorder::Recorder* record_sink = nullptr;
  /// Streaming axiom-scope options (windowed online metric estimates; see
  /// scope/scope.h). `scope.enabled` is the master switch; the sink below
  /// must also be installed. Backends fill the link-derived normalization
  /// fields the caller left unset (capacity, min RTT, warmup, window cap).
  scope::ScopeConfig scope;
  /// Non-owning metric-scope sink for this run (one MetricScope per run,
  /// fed from the same serial sections as the recorder). Callers build one
  /// with `make_scope(spec)` and attach it here; when `record_sink` is also
  /// installed, the backend forwards closed windows to it as kMetric
  /// events.
  scope::MetricScope* scope_sink = nullptr;

  /// Convenience: appends a sender slot.
  void add_sender(const cc::Protocol& prototype, double initial_window_mss,
                  double start_step = 0.0, double stop_step = -1.0) {
    AXIOMCC_EXPECTS(initial_window_mss >= 0.0);
    AXIOMCC_EXPECTS(start_step >= 0.0);
    senders.push_back(
        SenderSlot{&prototype, initial_window_mss, start_step, stop_step, 1,
                   {}});
  }

  /// Convenience: appends a homogeneous cohort of `count` senders.
  void add_senders(const cc::Protocol& prototype, long count,
                   double initial_window_mss, double start_step = 0.0,
                   double stop_step = -1.0) {
    AXIOMCC_EXPECTS(count >= 1);
    AXIOMCC_EXPECTS(initial_window_mss >= 0.0);
    AXIOMCC_EXPECTS(start_step >= 0.0);
    senders.push_back(SenderSlot{&prototype, initial_window_mss, start_step,
                                 stop_step, count, {}});
  }

  /// Convenience: appends a sender slot routed over `route` (topology mode).
  void add_routed_sender(const cc::Protocol& prototype, std::vector<int> route,
                         double initial_window_mss = 1.0,
                         double start_step = 0.0, double stop_step = -1.0) {
    AXIOMCC_EXPECTS(initial_window_mss >= 0.0);
    AXIOMCC_EXPECTS(start_step >= 0.0);
    senders.push_back(SenderSlot{&prototype, initial_window_mss, start_step,
                                 stop_step, 1, std::move(route)});
  }

  /// Total senders across all slots (slots expand by their cohort count).
  [[nodiscard]] long total_senders() const {
    long total = 0;
    for (const SenderSlot& slot : senders) total += slot.count;
    return total;
  }
};

/// Builds the recorder a spec asks for, or null when recording is off (or
/// the capture path is compiled out). The caller owns the recorder and
/// attaches it: `auto rec = make_recorder(spec); spec.record_sink = rec.get();`
[[nodiscard]] inline std::unique_ptr<recorder::Recorder> make_recorder(
    const ScenarioSpec& spec) {
  if (!spec.record.enabled || !recorder::compiled_in()) return nullptr;
  recorder::RecordOptions options = spec.record;
  return std::make_unique<recorder::Recorder>(options);
}

/// Builds the metric scope a spec asks for, or null when the scope is off.
/// The caller owns the scope and attaches it:
///   `auto scope = make_scope(spec); spec.scope_sink = scope.get();`
[[nodiscard]] inline std::unique_ptr<scope::MetricScope> make_scope(
    const ScenarioSpec& spec) {
  if (!spec.scope.enabled) return nullptr;
  return std::make_unique<scope::MetricScope>(spec.scope);
}

/// What a backend run produces. The Trace is the common currency the metric
/// estimators in src/core consume; the packet backend additionally reports
/// per-flow tail summaries and the measured bottleneck utilization (the
/// fluid model has no per-packet counters, so those stay empty/-1 there).
struct RunTrace {
  fluid::Trace trace;
  BackendKind backend = BackendKind::kFluid;
  /// Packet backend only: per-flow tail-of-run reports (empty for fluid).
  std::vector<sim::FlowReport> flows;
  /// Packet backend only: delivered bits / capacity·duration (-1 for fluid).
  double bottleneck_utilization = -1.0;
};

}  // namespace axiomcc::engine
