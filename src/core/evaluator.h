// evaluator.h — maps a protocol to its point in the 8-metric space.
//
// This is the operational heart of the axiomatic framework: given any
// cc::Protocol it runs the scenario each axiom's definition prescribes
// (homogeneous sharing for efficiency/fairness/convergence, a lone sender on
// an effectively infinite link for fast-utilization and robustness, a mixed
// run against TCP Reno for TCP-friendliness) and measures the scores with the
// estimators in metrics.h.
#pragma once

#include <memory>

#include "cc/protocol.h"
#include "core/metric_point.h"
#include "core/metrics.h"
#include "engine/backend.h"
#include "fluid/link.h"
#include "fluid/sim.h"

namespace axiomcc::core {

/// Scenario parameters for a full 8-metric evaluation.
struct EvalConfig {
  /// The shared-link scenario (efficiency, loss, fairness, convergence,
  /// latency, friendliness). Default: the paper's experimental setting,
  /// 30 Mbps, 42 ms RTT, 100-MSS buffer.
  fluid::LinkParams link = fluid::make_link_mbps(30.0, 42.0, 100.0);
  int num_senders = 2;
  long steps = 4000;
  double tail_fraction = 0.5;

  /// Fast-utilization scenario: a lone sender with nothing in its way.
  /// The horizon caps the measurable coefficient (super-linear protocols like
  /// MIMD are ∞-fast-utilizing only in the Δt→∞ limit); 2000 steps keeps the
  /// hierarchy over the Table 1 protocols intact.
  long fast_utilization_steps = 2000;
  long fast_utilization_warmup = 10;

  /// Robustness scenario (Metric VI): lone sender, infinite capacity,
  /// constant injected loss; binary search for the largest tolerated rate.
  long robustness_steps = 2500;
  double robustness_escape_window = 500.0;  ///< the β the window must exceed.
  int robustness_search_iterations = 14;
  double robustness_max_rate = 0.5;

  /// TCP-friendliness scenario: `num_protocol_senders` P-senders vs
  /// `num_reno_senders` Reno senders on `link`.
  int num_protocol_senders = 1;
  int num_reno_senders = 1;

  /// Which simulator executes the scenarios. The default reproduces the
  /// paper's fluid model bit-for-bit; kPacket reruns every scenario on the
  /// packet-level dumbbell (subject to the `packet` clamps below).
  engine::BackendKind backend = engine::BackendKind::kFluid;

  /// Clamps applied only when `backend == kPacket`. The fluid model's cost
  /// per step is O(senders) regardless of window size, so it happily runs
  /// "infinite" links (10^15 MSS/s) and 10^9-MSS window caps; a packet
  /// simulation's event count is proportional to the number of real packets,
  /// so those settings would never finish. Each knob is an upper bound: the
  /// effective value is min(the fluid-configured value, the clamp).
  struct PacketLimits {
    /// Replaces the robustness/fast-utilization "infinite" link: capacity
    /// C = this many MSS at the base link's RTT (buffer equally large).
    /// Must exceed `max_window_mss` so the cap, not congestion, is what
    /// flattens an escaping window.
    double infinite_capacity_mss = 2e3;
    /// Per-sender cwnd cap (the fluid runs use 10^9).
    double max_window_mss = 1e3;
    long max_steps = 1500;               ///< shared-link/mixed horizon cap.
    long fast_utilization_steps = 300;
    long robustness_steps = 250;
    int robustness_search_iterations = 6;
    /// Escape threshold β; must sit well below `max_window_mss`.
    double robustness_escape_window = 100.0;
  };
  PacketLimits packet;

  [[nodiscard]] EstimatorConfig estimator() const {
    return EstimatorConfig{tail_fraction};
  }
};

/// Runs the homogeneous shared-link scenario and returns its trace (exposed
/// for examples/benches that want the raw dynamics). Senders start from
/// spread-out initial windows to exercise convergence.
[[nodiscard]] fluid::Trace run_shared_link(const cc::Protocol& prototype,
                                           const EvalConfig& cfg);

/// Metric II: the fast-utilization coefficient measured on a lone sender
/// over an effectively infinite link.
[[nodiscard]] double measure_fast_utilization_score(
    const cc::Protocol& prototype, const EvalConfig& cfg = {});

/// Metric VI: the largest constant non-congestion loss rate under which a
/// lone sender on an infinite link still escapes to an arbitrarily large
/// window (binary search; resolution 2^-iterations · max_rate).
[[nodiscard]] double measure_robustness_score(const cc::Protocol& prototype,
                                              const EvalConfig& cfg = {});

/// Metric VII: friendliness of `prototype` toward TCP Reno (AIMD(1,0.5)).
[[nodiscard]] double measure_tcp_friendliness_score(
    const cc::Protocol& prototype, const EvalConfig& cfg = {});

/// Generic α-friendliness of protocol P toward protocol Q (Metric VII's
/// definition with arbitrary Q): Q-senders' guaranteed share relative to P.
[[nodiscard]] double measure_friendliness_between(const cc::Protocol& p,
                                                  const cc::Protocol& q,
                                                  const EvalConfig& cfg = {});

/// The paper's "more aggressive" relation (Section 4): P is more aggressive
/// than Q when, in a mixed run, every P-sender's average goodput exceeds
/// every Q-sender's.
[[nodiscard]] bool is_more_aggressive(const cc::Protocol& p,
                                      const cc::Protocol& q,
                                      const EvalConfig& cfg = {});

/// Full 8-metric evaluation.
[[nodiscard]] MetricReport evaluate_protocol(const cc::Protocol& prototype,
                                             const EvalConfig& cfg = {});

}  // namespace axiomcc::core
