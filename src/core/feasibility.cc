#include "core/feasibility.h"

#include <sstream>

#include "cc/registry.h"
#include "core/theory.h"

namespace axiomcc::core {

bool FeasibilityQuery::satisfied_by(const MetricReport& r) const {
  const auto meets_min = [](const std::optional<double>& bound, double value) {
    return !bound || value >= *bound;
  };
  const auto meets_max = [](const std::optional<double>& bound, double value) {
    return !bound || value <= *bound;
  };
  return meets_min(min_efficiency, r.efficiency) &&
         meets_min(min_fast_utilization, r.fast_utilization) &&
         meets_max(max_loss, r.loss_avoidance) &&
         meets_min(min_fairness, r.fairness) &&
         meets_min(min_convergence, r.convergence) &&
         meets_min(min_robustness, r.robustness) &&
         meets_min(min_tcp_friendliness, r.tcp_friendliness) &&
         meets_max(max_latency, r.latency_avoidance);
}

std::string FeasibilityQuery::describe() const {
  std::ostringstream os;
  bool first = true;
  const auto emit = [&](const char* name, const std::optional<double>& v,
                        const char* op) {
    if (!v) return;
    if (!first) os << ", ";
    first = false;
    os << name << op << *v;
  };
  emit("efficiency", min_efficiency, ">=");
  emit("fast-utilization", min_fast_utilization, ">=");
  emit("loss", max_loss, "<=");
  emit("fairness", min_fairness, ">=");
  emit("convergence", min_convergence, ">=");
  emit("robustness", min_robustness, ">=");
  emit("tcp-friendliness", min_tcp_friendliness, ">=");
  emit("latency", max_latency, "<=");
  if (first) os << "(unconstrained)";
  return os.str();
}

std::vector<std::string> feasibility_candidates() {
  std::vector<std::string> specs;
  const auto spec = [&](const std::string& s) { specs.push_back(s); };

  for (double a : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    for (double b : {0.3, 0.5, 0.7, 0.875}) {
      std::ostringstream os;
      os << "aimd(" << a << "," << b << ")";
      spec(os.str());
    }
  }
  for (double b : {0.5, 0.8}) {
    for (double eps : {0.005, 0.01, 0.05}) {
      std::ostringstream os;
      os << "robust_aimd(1," << b << "," << eps << ")";
      spec(os.str());
    }
  }
  spec("mimd(1.01,0.875)");
  spec("mimd(1.05,0.7)");
  spec("bin(1,1,1,0)");        // IIAD
  spec("bin(1,0.5,0.5,0.5)");  // SQRT
  spec("cubic(0.4,0.8)");
  spec("cubic(1,0.7)");
  spec("vegas(2,4)");
  spec("pcc");
  spec("bbr");
  spec("highspeed");
  spec("westwood");
  spec("illinois");
  spec("veno");
  return specs;
}

namespace {

/// Theorem 2 pruning: requirements on (fast-utilization α, efficiency β,
/// TCP-friendliness) that exceed 3(1−β)/(α(1+β)) are impossible for
/// loss-based protocols — and the theorem is tight, so no point searching.
std::optional<std::string> theorem2_certificate(const FeasibilityQuery& q) {
  if (!q.min_fast_utilization || !q.min_efficiency ||
      !q.min_tcp_friendliness) {
    return std::nullopt;
  }
  if (*q.min_fast_utilization <= 0.0) return std::nullopt;
  const double beta = std::min(*q.min_efficiency, 1.0);
  const double bound =
      theory::thm2_friendliness_upper_bound(*q.min_fast_utilization, beta);
  if (*q.min_tcp_friendliness > bound) {
    std::ostringstream os;
    os << "Theorem 2: any loss-based protocol that is "
       << *q.min_fast_utilization << "-fast-utilizing and " << beta
       << "-efficient is at most " << bound
       << "-TCP-friendly, but the query demands >= "
       << *q.min_tcp_friendliness;
    return os.str();
  }
  return std::nullopt;
}

}  // namespace

FeasibilityResult resolve(const FeasibilityQuery& query,
                          const EvalConfig& cfg) {
  FeasibilityResult result;

  if (const auto certificate = theorem2_certificate(query)) {
    result.status = Feasibility::kProvablyInfeasible;
    result.certificate = *certificate;
    return result;
  }

  for (const std::string& spec : feasibility_candidates()) {
    const auto protocol = cc::make_protocol(spec);
    const MetricReport scores = evaluate_protocol(*protocol, cfg);
    ++result.candidates_evaluated;
    if (query.satisfied_by(scores)) {
      result.status = Feasibility::kFeasible;
      result.witness_spec = spec;
      result.witness_scores = scores;
      return result;
    }
  }
  result.status = Feasibility::kNoWitnessFound;
  return result;
}

}  // namespace axiomcc::core
