// metric_point.h — protocols as points in the paper's 8-dimensional space.
//
// Section 5: "a congestion control protocol can be regarded as a point in the
// 8-dimensional space induced by the metrics, according to its score in each
// metric". MetricReport holds the raw scores in the paper's orientation;
// oriented() converts to a uniform higher-is-better vector so that Pareto
// dominance (Section 5.2) is a single component-wise comparison.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace axiomcc::core {

/// The eight axioms, indexed in Table-1 column order (plus the two columns
/// Table 1 omits: robustness and latency-avoidance).
enum class Metric : int {
  kEfficiency = 0,       // Metric I    (higher better)
  kFastUtilization = 1,  // Metric II   (higher better)
  kLossAvoidance = 2,    // Metric III  (lower better: a loss bound)
  kFairness = 3,         // Metric IV   (higher better)
  kConvergence = 4,      // Metric V    (higher better)
  kRobustness = 5,       // Metric VI   (higher better)
  kTcpFriendliness = 6,  // Metric VII  (higher better)
  kLatencyAvoidance = 7, // Metric VIII (lower better: an RTT-inflation bound)
};

inline constexpr std::size_t kNumMetrics = 8;

/// Human-readable metric name.
[[nodiscard]] const char* metric_name(Metric m);

/// True for metrics whose raw score is a bound where smaller is better.
[[nodiscard]] constexpr bool lower_is_better(Metric m) {
  return m == Metric::kLossAvoidance || m == Metric::kLatencyAvoidance;
}

/// A protocol's raw scores (paper orientation; see Metric).
struct MetricReport {
  double efficiency = 0.0;
  double fast_utilization = 0.0;
  double loss_avoidance = 0.0;
  double fairness = 0.0;
  double convergence = 0.0;
  double robustness = 0.0;
  double tcp_friendliness = 0.0;
  double latency_avoidance = 0.0;

  [[nodiscard]] double get(Metric m) const {
    switch (m) {
      case Metric::kEfficiency: return efficiency;
      case Metric::kFastUtilization: return fast_utilization;
      case Metric::kLossAvoidance: return loss_avoidance;
      case Metric::kFairness: return fairness;
      case Metric::kConvergence: return convergence;
      case Metric::kRobustness: return robustness;
      case Metric::kTcpFriendliness: return tcp_friendliness;
      case Metric::kLatencyAvoidance: return latency_avoidance;
    }
    return 0.0;
  }

  /// Uniform higher-is-better view: bounds are negated.
  [[nodiscard]] std::array<double, kNumMetrics> oriented() const {
    std::array<double, kNumMetrics> out{};
    for (std::size_t i = 0; i < kNumMetrics; ++i) {
      const auto m = static_cast<Metric>(i);
      out[i] = lower_is_better(m) ? -get(m) : get(m);
    }
    return out;
  }
};

}  // namespace axiomcc::core
