// extra_metrics.h — candidate additional axioms (paper Section 6: "what
// other metrics ... should be incorporated into our axiomatic approach?").
//
// Three proposals, kept deliberately in the same parameterized style as the
// paper's eight:
//
//   * responsiveness — how quickly a protocol re-fills capacity that opens
//     up mid-connection (a capacity-doubling step). Measured in RTT steps;
//     lower is better. Complements fast-utilization, which only covers
//     growth from an idle start.
//   * smoothness — 1 minus the mean relative per-step window change over
//     the tail (∈ [0, 1], higher is better). Media applications care about
//     rate stability, not just the convergence band (Metric V).
//   * Jain fairness — the classic (Σx)²/(n·Σx²) index over tail-average
//     windows, a population-level complement of the paper's worst-pair
//     Metric IV.
#pragma once

#include "cc/protocol.h"
#include "core/evaluator.h"
#include "fluid/trace.h"

namespace axiomcc::core {

/// Responsiveness: run a lone sender; after `cfg.steps/2` the link's
/// bandwidth doubles. Returns the number of steps until the sender's window
/// reaches `target_fraction` of the new capacity (steps÷2 at worst — the
/// run's remaining horizon — when it never gets there).
[[nodiscard]] long measure_responsiveness(const cc::Protocol& prototype,
                                          const EvalConfig& cfg = {},
                                          double target_fraction = 0.9);

/// Smoothness of the tail window series, averaged across senders.
[[nodiscard]] double measure_smoothness(const fluid::Trace& trace,
                                        const EstimatorConfig& cfg = {});

/// Jain's fairness index over tail-average windows.
[[nodiscard]] double measure_jain_fairness(const fluid::Trace& trace,
                                           const EstimatorConfig& cfg = {});

}  // namespace axiomcc::core
