#include "core/pareto.h"

#include "core/theory.h"
#include "util/check.h"

namespace axiomcc::core {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kEfficiency: return "efficiency";
    case Metric::kFastUtilization: return "fast-utilization";
    case Metric::kLossAvoidance: return "loss-avoidance";
    case Metric::kFairness: return "fairness";
    case Metric::kConvergence: return "convergence";
    case Metric::kRobustness: return "robustness";
    case Metric::kTcpFriendliness: return "tcp-friendliness";
    case Metric::kLatencyAvoidance: return "latency-avoidance";
  }
  return "unknown";
}

bool dominates(std::span<const double> a, std::span<const double> b) {
  AXIOMCC_EXPECTS(a.size() == b.size());
  bool strictly_better_somewhere = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return false;
    if (a[i] > b[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

std::vector<std::size_t> pareto_frontier_indices(
    const std::vector<std::vector<double>>& points) {
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool is_dominated = false;
    for (std::size_t j = 0; j < points.size() && !is_dominated; ++j) {
      if (j != i && dominates(points[j], points[i])) is_dominated = true;
    }
    if (!is_dominated) frontier.push_back(i);
  }
  return frontier;
}

std::vector<Figure1Point> figure1_surface(std::span<const double> alphas,
                                          std::span<const double> betas) {
  std::vector<Figure1Point> surface;
  surface.reserve(alphas.size() * betas.size());
  for (double alpha : alphas) {
    for (double beta : betas) {
      surface.push_back(Figure1Point{
          alpha, beta, theory::thm2_friendliness_upper_bound(alpha, beta)});
    }
  }
  return surface;
}

}  // namespace axiomcc::core
