#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace axiomcc::core::theory {

namespace {
void require_link(double capacity, double buffer) {
  AXIOMCC_EXPECTS(capacity > 0.0);
  AXIOMCC_EXPECTS(buffer >= 0.0);
}
}  // namespace

// --- AIMD -------------------------------------------------------------------

double aimd_efficiency(double b, double capacity, double buffer) {
  require_link(capacity, buffer);
  return std::min(1.0, b * (1.0 + buffer / capacity));
}

double aimd_efficiency_worst(double b) { return b; }

double aimd_loss_bound(double a, double capacity, double buffer, int n) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(n > 0);
  const double threshold = capacity + buffer;
  return 1.0 - threshold / (threshold + static_cast<double>(n) * a);
}

double aimd_fast_utilization(double a) { return a; }

double aimd_friendliness(double a, double b) {
  AXIOMCC_EXPECTS(a > 0.0);
  return 3.0 * (1.0 - b) / (a * (1.0 + b));
}

double aimd_convergence(double b) { return 2.0 * b / (1.0 + b); }

// --- MIMD -------------------------------------------------------------------

double mimd_efficiency(double b, double capacity, double buffer) {
  return aimd_efficiency(b, capacity, buffer);
}

double mimd_efficiency_worst(double b) { return b; }

double mimd_loss_bound_paper(double a) { return a / (1.0 + a); }

double mimd_loss_bound_model(double a) {
  AXIOMCC_EXPECTS(a > 1.0);
  return 1.0 - 1.0 / a;
}

double mimd_friendliness(double a, double b, double capacity, double buffer) {
  AXIOMCC_EXPECTS(a > 1.0);
  AXIOMCC_EXPECTS(b > 0.0 && b < 1.0);
  require_link(capacity, buffer);
  // 2·log_a(1/b) / (C+τ − 2·log_a(1/b))
  const double decays = 2.0 * std::log(1.0 / b) / std::log(a);
  const double denom = capacity + buffer - decays;
  if (denom <= 0.0) return 0.0;
  return decays / denom;
}

double mimd_convergence(double b) { return 2.0 * b / (1.0 + b); }

// --- BIN --------------------------------------------------------------------

double bin_efficiency(double b, double l, double capacity, double buffer,
                      int n) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(n > 0);
  const double threshold = capacity + buffer;
  const double per_sender_peak = threshold / static_cast<double>(n);
  const double decrease =
      static_cast<double>(n) * b * std::pow(per_sender_peak, l);
  return std::min(1.0, std::max(0.0, threshold - decrease) / capacity);
}

double bin_efficiency_worst(double b) { return 1.0 - b; }

double bin_loss_bound_model(double a, double k, double capacity, double buffer,
                            int n) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(n > 0);
  const double threshold = capacity + buffer;
  const double per_sender_window = threshold / static_cast<double>(n);
  const double overshoot =
      static_cast<double>(n) * a / std::pow(per_sender_window, k);
  return 1.0 - threshold / (threshold + overshoot);
}

double bin_fast_utilization(double a, double k) { return k == 0.0 ? a : 0.0; }

double bin_friendliness(double a, double b, double k, double l) {
  AXIOMCC_EXPECTS(a > 0.0);
  if (l + k < 1.0) return 0.0;
  return std::sqrt(1.5) * std::pow(b / a, 1.0 / (1.0 + l + k));
}

double bin_convergence(double b, double l, double capacity, double buffer,
                       int n) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(n > 0);
  const double per_sender_peak = (capacity + buffer) / static_cast<double>(n);
  // Trough factor: fraction of the peak surviving one decrease.
  const double f =
      std::max(0.0, 1.0 - b * std::pow(per_sender_peak, l - 1.0));
  return 2.0 * f / (1.0 + f);
}

double bin_convergence_worst(double b) { return (2.0 - 2.0 * b) / (2.0 - b); }

// --- CUBIC ------------------------------------------------------------------

double cubic_efficiency(double b, double capacity, double buffer) {
  return aimd_efficiency(b, capacity, buffer);
}

double cubic_efficiency_worst(double b) { return b; }

double cubic_loss_bound(double c, double capacity, double buffer, int n) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(n > 0);
  const double threshold = capacity + buffer;
  return 1.0 - threshold / (threshold + static_cast<double>(n) * c);
}

double cubic_fast_utilization(double c) { return c; }

double cubic_friendliness(double c, double b, double capacity, double buffer) {
  AXIOMCC_EXPECTS(c > 0.0);
  require_link(capacity, buffer);
  const double inner =
      4.0 * (1.0 - b) / (c * (3.0 + b) * (capacity + buffer));
  return std::sqrt(1.5) * std::pow(inner, 0.25);
}

double cubic_convergence(double b) { return 2.0 * b / (1.0 + b); }

// --- Robust-AIMD -------------------------------------------------------------

double robust_aimd_efficiency(double b, double k, double capacity,
                              double buffer) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(k >= 0.0 && k < 1.0);
  return std::min(1.0, b * (1.0 + buffer / capacity) / (1.0 - k));
}

double robust_aimd_efficiency_worst(double b, double k) {
  AXIOMCC_EXPECTS(k >= 0.0 && k < 1.0);
  return std::min(1.0, b / (1.0 - k));
}

double robust_aimd_loss_bound(double a, double k, double capacity,
                              double buffer, int n) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(n > 0);
  AXIOMCC_EXPECTS(k >= 0.0 && k < 1.0);
  const double threshold = capacity + buffer;
  const double na1k = static_cast<double>(n) * a * (1.0 - k);
  return (threshold * k + na1k) / (threshold + na1k);
}

double robust_aimd_fast_utilization(double a) { return a; }

double robust_aimd_friendliness(double a, double b, double k, double capacity,
                                double buffer) {
  require_link(capacity, buffer);
  AXIOMCC_EXPECTS(k >= 0.0 && k < 1.0);
  const double denom = (4.0 * (capacity + buffer) / (1.0 - k) - a) * (1.0 + b);
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return 3.0 * (1.0 - b) / denom;
}

double robust_aimd_convergence(double b) { return 2.0 * b / (1.0 + b); }

double robust_aimd_robustness(double k) { return k; }

// --- Theorems ----------------------------------------------------------------

double thm1_efficiency_lower_bound(double convergence_alpha) {
  AXIOMCC_EXPECTS(convergence_alpha >= 0.0 && convergence_alpha <= 1.0);
  return convergence_alpha / (2.0 - convergence_alpha);
}

double thm2_friendliness_upper_bound(double fast_alpha, double efficiency_beta) {
  AXIOMCC_EXPECTS(fast_alpha > 0.0);
  AXIOMCC_EXPECTS(efficiency_beta >= 0.0 && efficiency_beta <= 1.0);
  return 3.0 * (1.0 - efficiency_beta) / (fast_alpha * (1.0 + efficiency_beta));
}

double thm3_friendliness_upper_bound(double fast_alpha, double efficiency_beta,
                                     double robustness_eps, double capacity,
                                     double buffer) {
  AXIOMCC_EXPECTS(fast_alpha > 0.0);
  AXIOMCC_EXPECTS(robustness_eps > 0.0 && robustness_eps < 1.0);
  require_link(capacity, buffer);
  const double threshold = capacity + buffer;
  AXIOMCC_EXPECTS_MSG(threshold > fast_alpha / 2.0,
                      "Theorem 3 requires C+τ > α/2");
  const double denom = (4.0 * threshold / (1.0 - robustness_eps) - fast_alpha) *
                       (1.0 + efficiency_beta);
  return 3.0 * (1.0 - efficiency_beta) / denom;
}

}  // namespace axiomcc::core::theory
