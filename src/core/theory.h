// theory.h — the paper's closed-form results: Table 1 and Theorems 1–3.
//
// Table 1 gives, for each protocol family, a nuanced score depending on the
// link capacity C, buffer τ, and sender count n, plus a worst-case bound over
// all network parameters (the angle-bracket values). The functions here
// compute both; bench_table1 prints them next to measured scores.
//
// Two Table 1 cells are mechanically inconsistent with the model as printed
// (likely typesetting slips in the paper): MIMD's loss bound and BIN's loss
// bound. We expose the paper's printed form AND the model-derived form; see
// EXPERIMENTS.md for the discrepancy notes.
#pragma once

namespace axiomcc::core::theory {

// ---------------------------------------------------------------------------
// AIMD(a, b)
// ---------------------------------------------------------------------------

/// Efficiency: min(1, b(1 + τ/C)); worst case <b>.
[[nodiscard]] double aimd_efficiency(double b, double capacity, double buffer);
[[nodiscard]] double aimd_efficiency_worst(double b);

/// Loss bound: 1 − (C+τ)/(C+τ+na); worst case <1>.
[[nodiscard]] double aimd_loss_bound(double a, double capacity, double buffer,
                                     int n);

/// Fast-utilization: <a>.
[[nodiscard]] double aimd_fast_utilization(double a);

/// TCP-friendliness: <3(1−b)/(a(1+b))> (tight per Theorem 2).
[[nodiscard]] double aimd_friendliness(double a, double b);

/// Convergence: <2b/(1+b)>.
[[nodiscard]] double aimd_convergence(double b);

// ---------------------------------------------------------------------------
// MIMD(a, b)
// ---------------------------------------------------------------------------

[[nodiscard]] double mimd_efficiency(double b, double capacity, double buffer);
[[nodiscard]] double mimd_efficiency_worst(double b);

/// Paper's printed worst-case loss bound: <a/(1+a)>.
[[nodiscard]] double mimd_loss_bound_paper(double a);
/// Model-derived loss bound: crossing C+τ by a factor ≤ a gives 1 − 1/a.
[[nodiscard]] double mimd_loss_bound_model(double a);

/// Nuanced TCP-friendliness: 2·log_a(1/b) / (C+τ − 2·log_a(1/b));
/// worst case <0>.
[[nodiscard]] double mimd_friendliness(double a, double b, double capacity,
                                       double buffer);

/// Convergence: <2b/(1+b)>.
[[nodiscard]] double mimd_convergence(double b);

// ---------------------------------------------------------------------------
// BIN(a, b, k, l)
// ---------------------------------------------------------------------------

/// Efficiency. The paper's Table 1 prints min(1, (1−b)(1+τ/C)), which is the
/// l = 1 instance; for general l the decrease at the peak X = C+τ removes
/// n·b·((C+τ)/n)^l, so the nuanced trough is
///     min(1, (C+τ − n·b·((C+τ)/n)^l) / C).
/// The worst case over all parameters is attained at l = 1: <1−b>.
[[nodiscard]] double bin_efficiency(double b, double l, double capacity,
                                    double buffer, int n);
[[nodiscard]] double bin_efficiency_worst(double b);

/// Model-derived loss bound: per-sender overshoot a/x^k at x = (C+τ)/n gives
/// 1 − (C+τ)/(C+τ + n·a·(n/(C+τ))^k); worst case <1>.
[[nodiscard]] double bin_loss_bound_model(double a, double k, double capacity,
                                          double buffer, int n);

/// Fast-utilization: <a> when k = 0, <0> when k > 0 (sublinear growth).
[[nodiscard]] double bin_fast_utilization(double a, double k);

/// TCP-friendliness: <sqrt(3/2)·(b/a)^{1/(1+l+k)}> when l+k ≥ 1, else <0>.
[[nodiscard]] double bin_friendliness(double a, double b, double k, double l);

/// Convergence. The paper's worst case <(2−2b)/(2−b)> is the l = 1 instance
/// of 2f/(1+f) with trough factor f = 1 − b·x^{l−1} at the per-sender peak
/// x = (C+τ)/n; the nuanced form evaluates f there.
[[nodiscard]] double bin_convergence(double b, double l, double capacity,
                                     double buffer, int n);
[[nodiscard]] double bin_convergence_worst(double b);

// ---------------------------------------------------------------------------
// CUBIC(c, b)
// ---------------------------------------------------------------------------

[[nodiscard]] double cubic_efficiency(double b, double capacity, double buffer);
[[nodiscard]] double cubic_efficiency_worst(double b);

/// Loss bound: 1 − (C+τ)/(C+τ+nc); worst case <1>.
[[nodiscard]] double cubic_loss_bound(double c, double capacity, double buffer,
                                      int n);

/// Fast-utilization: <c>.
[[nodiscard]] double cubic_fast_utilization(double c);

/// TCP-friendliness: sqrt(3/2)·(4(1−b)/(c(3+b)(C+τ)))^{1/4}; worst case <0>.
[[nodiscard]] double cubic_friendliness(double c, double b, double capacity,
                                        double buffer);

/// Convergence: <2b/(1+b)>.
[[nodiscard]] double cubic_convergence(double b);

// ---------------------------------------------------------------------------
// Robust-AIMD(a, b, k)   (k = the loss-tolerance eps)
// ---------------------------------------------------------------------------

/// Efficiency: min(1, b(1+τ/C)/(1−k)); worst case <b/(1−k)>.
[[nodiscard]] double robust_aimd_efficiency(double b, double k, double capacity,
                                            double buffer);
[[nodiscard]] double robust_aimd_efficiency_worst(double b, double k);

/// Loss bound: ((C+τ)k + na(1−k)) / ((C+τ) + na(1−k)); worst case <1>.
[[nodiscard]] double robust_aimd_loss_bound(double a, double k, double capacity,
                                            double buffer, int n);

/// Fast-utilization: <a>.
[[nodiscard]] double robust_aimd_fast_utilization(double a);

/// TCP-friendliness: 3(1−b) / ((4(C+τ)/(1−k) − a)(1+b)); worst case <0>.
[[nodiscard]] double robust_aimd_friendliness(double a, double b, double k,
                                              double capacity, double buffer);

/// Convergence: <2b/(1+b)>.
[[nodiscard]] double robust_aimd_convergence(double b);

/// Robustness: Robust-AIMD(a,b,k) is k-robust; every other Table 1 protocol
/// is 0-robust.
[[nodiscard]] double robust_aimd_robustness(double k);

// ---------------------------------------------------------------------------
// Theorems (Section 4)
// ---------------------------------------------------------------------------

/// Theorem 1: an α-convergent, β-fast-utilizing (β>0) protocol is at least
/// α/(2−α)-efficient.
[[nodiscard]] double thm1_efficiency_lower_bound(double convergence_alpha);

/// Theorem 2: a loss-based α-fast-utilizing, β-efficient protocol is at most
/// 3(1−β)/(α(1+β))-TCP-friendly.
[[nodiscard]] double thm2_friendliness_upper_bound(double fast_alpha,
                                                   double efficiency_beta);

/// Theorem 3: adding ε-robustness (ε>0) tightens the bound to
/// 3(1−β) / ((4(C+τ)/(1−ε) − α)(1+β)).  Requires C+τ > α/2.
[[nodiscard]] double thm3_friendliness_upper_bound(double fast_alpha,
                                                   double efficiency_beta,
                                                   double robustness_eps,
                                                   double capacity,
                                                   double buffer);

}  // namespace axiomcc::core::theory
