// feasibility.h — the paper's central question as an executable query:
// WHICH COMBINATIONS OF AXIOM SCORES ARE SIMULTANEOUSLY ACHIEVABLE?
//
// A FeasibilityQuery states requirements on any subset of the eight metrics
// ("at least 0.9-efficient AND at least 0.5-TCP-friendly AND..."). The
// resolver answers in one of three ways:
//
//   * kProvablyInfeasible — the requirements contradict Theorem 2 (the
//     fast-utilization/efficiency/friendliness trade) before anything is
//     simulated; the certificate names the violated bound.
//   * kFeasible — a concrete protocol instance from the library's families
//     achieves every requirement on the reference scenario; the witness
//     spec and its measured scores are returned.
//   * kNoWitnessFound — not provably impossible, but no instance in the
//     search grid achieves it (the honest "we don't know" of Section 4).
//
// This is the axiomatic approach as a protocol-design tool: ask for the
// point in the metric space you want, get either a protocol or a theorem.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/metric_point.h"

namespace axiomcc::core {

/// Requirements on metric scores. Unset fields are unconstrained.
/// Orientation follows the paper: loss/latency are upper bounds, the rest
/// lower bounds.
struct FeasibilityQuery {
  std::optional<double> min_efficiency;
  std::optional<double> min_fast_utilization;
  std::optional<double> max_loss;
  std::optional<double> min_fairness;
  std::optional<double> min_convergence;
  std::optional<double> min_robustness;
  std::optional<double> min_tcp_friendliness;
  std::optional<double> max_latency;

  /// True when `report` meets every stated requirement.
  [[nodiscard]] bool satisfied_by(const MetricReport& report) const;

  /// Human-readable rendering ("efficiency>=0.9, friendliness>=0.5").
  [[nodiscard]] std::string describe() const;
};

enum class Feasibility {
  kFeasible,
  kProvablyInfeasible,
  kNoWitnessFound,
};

struct FeasibilityResult {
  Feasibility status = Feasibility::kNoWitnessFound;
  /// For kFeasible: the witness protocol's spec string and measured scores.
  std::string witness_spec;
  MetricReport witness_scores;
  /// For kProvablyInfeasible: which theorem kills the query and why.
  std::string certificate;
  /// Number of candidate instances evaluated.
  int candidates_evaluated = 0;
};

/// The spec strings the resolver searches, spanning every family in the
/// registry across a parameter grid (exposed for tests and tooling).
[[nodiscard]] std::vector<std::string> feasibility_candidates();

/// Resolves a query against the reference scenario in `cfg`.
[[nodiscard]] FeasibilityResult resolve(const FeasibilityQuery& query,
                                        const EvalConfig& cfg = {});

}  // namespace axiomcc::core
