#include "core/evaluator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "cc/presets.h"
#include "engine/backend.h"
#include "fluid/loss_model.h"
#include "util/check.h"

namespace axiomcc::core {

namespace {

bool is_packet(const EvalConfig& cfg) {
  return cfg.backend == engine::BackendKind::kPacket;
}

// Effective scenario dimensions: the fluid configuration, clamped by the
// PacketLimits when the packet backend runs it (see EvalConfig::PacketLimits).
long shared_steps(const EvalConfig& cfg) {
  return is_packet(cfg) ? std::min(cfg.steps, cfg.packet.max_steps)
                        : cfg.steps;
}

long fast_utilization_steps(const EvalConfig& cfg) {
  return is_packet(cfg) ? std::min(cfg.fast_utilization_steps,
                                   cfg.packet.fast_utilization_steps)
                        : cfg.fast_utilization_steps;
}

long robustness_steps(const EvalConfig& cfg) {
  return is_packet(cfg)
             ? std::min(cfg.robustness_steps, cfg.packet.robustness_steps)
             : cfg.robustness_steps;
}

int robustness_iterations(const EvalConfig& cfg) {
  return is_packet(cfg) ? std::min(cfg.robustness_search_iterations,
                                   cfg.packet.robustness_search_iterations)
                        : cfg.robustness_search_iterations;
}

double escape_window(const EvalConfig& cfg) {
  return is_packet(cfg) ? std::min(cfg.robustness_escape_window,
                                   cfg.packet.robustness_escape_window)
                        : cfg.robustness_escape_window;
}

double max_window(const EvalConfig& cfg) {
  // The fluid default (SimOptions{}.max_window_mss == 1e9) is preserved
  // exactly so fluid traces stay bit-identical with the pre-engine code.
  return is_packet(cfg) ? cfg.packet.max_window_mss
                        : fluid::SimOptions{}.max_window_mss;
}

/// A link a lone sender never congests within a run. The fluid model takes
/// this literally (10^15 MSS/s); the packet backend gets a link merely large
/// enough that the window cap, not the queue, bounds an escaping sender.
fluid::LinkParams infinite_link(const EvalConfig& cfg) {
  fluid::LinkParams huge = cfg.link;
  if (is_packet(cfg)) {
    const double capacity = cfg.packet.infinite_capacity_mss;
    const double rtt = cfg.link.propagation_delay.value() * 2.0;
    huge.bandwidth = Bandwidth::from_mss_per_sec(capacity / rtt);
    huge.buffer_mss = capacity;
  } else {
    huge.bandwidth = Bandwidth::from_mss_per_sec(1e15);
    huge.buffer_mss = 1e15;
  }
  return huge;
}

engine::ScenarioSpec base_spec(const EvalConfig& cfg, long steps) {
  engine::ScenarioSpec spec;
  spec.link = cfg.link;
  spec.steps = steps;
  spec.max_window_mss = max_window(cfg);
  return spec;
}

const engine::SimBackend& backend(const EvalConfig& cfg) {
  return engine::backend_for(cfg.backend);
}

}  // namespace

fluid::Trace run_shared_link(const cc::Protocol& prototype,
                             const EvalConfig& cfg) {
  AXIOMCC_EXPECTS(cfg.num_senders > 0);
  engine::ScenarioSpec spec = base_spec(cfg, shared_steps(cfg));
  const double capacity = fluid::FluidLink(cfg.link).capacity_mss();
  for (int i = 0; i < cfg.num_senders; ++i) {
    // Spread-out starts (sender i begins with an i-proportional share) so the
    // run exercises the "for any initial configuration" quantifier.
    const double initial =
        1.0 + capacity * static_cast<double>(i) /
                  (2.0 * static_cast<double>(cfg.num_senders));
    spec.add_sender(prototype, initial);
  }
  return backend(cfg).run(spec).trace;
}

double measure_fast_utilization_score(const cc::Protocol& prototype,
                                      const EvalConfig& cfg) {
  engine::ScenarioSpec spec = base_spec(cfg, fast_utilization_steps(cfg));
  spec.link = infinite_link(cfg);
  spec.add_sender(prototype, 1.0);
  const fluid::Trace trace = backend(cfg).run(spec).trace;

  // Protocols with multiplicative growth (PCC's STARTING phase doubles every
  // step) hit the window cap within the run; past that point the series is
  // flat and would mask the growth that happened. Truncate at saturation.
  auto windows = trace.windows(0);
  const double cap = 0.99 * spec.max_window_mss;
  std::size_t truncated = windows.size();
  for (std::size_t t = 0; t < windows.size(); ++t) {
    if (windows[t] >= cap) {
      truncated = t;
      break;
    }
  }
  const std::size_t min_samples =
      static_cast<std::size_t>(cfg.fast_utilization_warmup) + 16;
  truncated = std::max(truncated, std::min(min_samples, windows.size()));
  return fast_utilization_coefficient(windows.first(truncated),
                                      cfg.fast_utilization_warmup);
}

namespace {

/// One robustness probe: does the lone sender escape past the β threshold
/// under constant injected loss `rate`?
bool escapes_under_loss(const cc::Protocol& prototype, const EvalConfig& cfg,
                        double rate) {
  engine::ScenarioSpec spec = base_spec(cfg, robustness_steps(cfg));
  spec.link = infinite_link(cfg);
  spec.add_sender(prototype, 1.0);
  spec.loss = [rate](std::uint64_t /*seed*/) {
    return std::make_unique<fluid::ConstantLoss>(rate);
  };
  const fluid::Trace trace = backend(cfg).run(spec).trace;
  const auto windows = trace.windows(0);
  if (windows.empty()) return false;
  return windows.back() >= escape_window(cfg);
}

}  // namespace

double measure_robustness_score(const cc::Protocol& prototype,
                                const EvalConfig& cfg) {
  if (!escapes_under_loss(prototype, cfg, 0.0)) {
    return 0.0;  // cannot even utilize a clean link; trivially 0-robust
  }
  double lo = 0.0;                      // known to escape
  double hi = cfg.robustness_max_rate;  // assumed not to escape
  if (escapes_under_loss(prototype, cfg, hi)) return hi;
  const int iterations = robustness_iterations(cfg);
  for (int iter = 0; iter < iterations; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (escapes_under_loss(prototype, cfg, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// Runs n_p P-senders against n_q Q-senders and returns the trace plus the
/// index partition.
struct MixedRun {
  fluid::Trace trace;
  std::vector<int> p_senders;
  std::vector<int> q_senders;
};

MixedRun run_mixed(const cc::Protocol& p, const cc::Protocol& q, int n_p,
                   int n_q, const EvalConfig& cfg) {
  AXIOMCC_EXPECTS(n_p > 0 && n_q > 0);
  engine::ScenarioSpec spec = base_spec(cfg, shared_steps(cfg));
  MixedRun out{fluid::Trace(1, 1.0, 1.0), {}, {}};
  int index = 0;
  for (int i = 0; i < n_p; ++i, ++index) {
    spec.add_sender(p, 1.0);
    out.p_senders.push_back(index);
  }
  for (int j = 0; j < n_q; ++j, ++index) {
    spec.add_sender(q, 1.0);
    out.q_senders.push_back(index);
  }
  out.trace = backend(cfg).run(spec).trace;
  return out;
}

}  // namespace

double measure_tcp_friendliness_score(const cc::Protocol& prototype,
                                      const EvalConfig& cfg) {
  const auto reno = cc::presets::reno();
  return measure_friendliness_between(prototype, *reno, cfg);
}

double measure_friendliness_between(const cc::Protocol& p,
                                    const cc::Protocol& q,
                                    const EvalConfig& cfg) {
  const MixedRun run = run_mixed(p, q, cfg.num_protocol_senders,
                                 cfg.num_reno_senders, cfg);
  return measure_friendliness(run.trace, run.p_senders, run.q_senders,
                              cfg.estimator());
}

bool is_more_aggressive(const cc::Protocol& p, const cc::Protocol& q,
                        const EvalConfig& cfg) {
  const MixedRun run = run_mixed(p, q, cfg.num_protocol_senders,
                                 cfg.num_reno_senders, cfg);
  double min_p = std::numeric_limits<double>::infinity();
  for (int i : run.p_senders) {
    min_p = std::min(min_p, tail_goodput(run.trace, i, cfg.estimator()));
  }
  double max_q = 0.0;
  for (int j : run.q_senders) {
    max_q = std::max(max_q, tail_goodput(run.trace, j, cfg.estimator()));
  }
  return min_p > max_q;
}

MetricReport evaluate_protocol(const cc::Protocol& prototype,
                               const EvalConfig& cfg) {
  MetricReport report;

  const fluid::Trace shared = run_shared_link(prototype, cfg);
  const EstimatorConfig est = cfg.estimator();
  report.efficiency = measure_efficiency(shared, est);
  report.loss_avoidance = measure_loss_avoidance(shared, est);
  report.fairness = measure_fairness(shared, est);
  report.convergence = measure_convergence(shared, est);
  report.latency_avoidance = measure_latency_avoidance(shared, est);

  report.fast_utilization = measure_fast_utilization_score(prototype, cfg);
  report.robustness = measure_robustness_score(prototype, cfg);
  report.tcp_friendliness = measure_tcp_friendliness_score(prototype, cfg);
  return report;
}

}  // namespace axiomcc::core
