// pareto.h — the feasibility region's Pareto frontier (paper Section 5.2).
//
// A feasible point is on the Pareto frontier when no other feasible point is
// strictly better in one metric without being strictly worse in another.
// The helpers here operate on higher-is-better score vectors (see
// MetricReport::oriented) and also generate the Figure 1 surface: the
// frontier of the (fast-utilization, efficiency, TCP-friendliness) subspace,
// whose points are (α, β, 3(1−β)/(α(1+β))) and are attained by AIMD(α, β).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/metric_point.h"

namespace axiomcc::core {

/// True when `a` weakly dominates `b` and is strictly better somewhere
/// (all components >=, at least one >). Vectors must be higher-is-better.
[[nodiscard]] bool dominates(std::span<const double> a,
                             std::span<const double> b);

/// Indices of the non-dominated points. O(n²·d); fine for the sweep sizes
/// the benches use. Duplicate points are all kept (none dominates its twin).
[[nodiscard]] std::vector<std::size_t> pareto_frontier_indices(
    const std::vector<std::vector<double>>& points);

/// One point of the Figure 1 surface.
struct Figure1Point {
  double fast_utilization_alpha = 0.0;
  double efficiency_beta = 0.0;
  double tcp_friendliness = 0.0;  ///< = 3(1−β)/(α(1+β)), Theorem 2's bound.
};

/// Evaluates the Figure 1 Pareto surface on the grid alphas × betas.
[[nodiscard]] std::vector<Figure1Point> figure1_surface(
    std::span<const double> alphas, std::span<const double> betas);

}  // namespace axiomcc::core
