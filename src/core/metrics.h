// metrics.h — empirical estimators for the paper's eight axioms (Section 3).
//
// Each axiom is an ∃T-from-T-onwards statement; the estimators approximate
// "from T onwards" by scoring only the tail of a finite trace (the transient
// prefix fraction is configurable). Scores follow the paper's orientation:
//
//   Metric I    efficiency            higher is better (∈ [0, 1])
//   Metric II   fast-utilization      higher is better (MSS/RTT²·2)
//   Metric III  loss-avoidance        LOWER is better (a loss-rate bound)
//   Metric IV   fairness              higher is better (∈ [0, 1])
//   Metric V    convergence           higher is better (∈ [0, 1])
//   Metric VI   robustness            higher is better (a loss-rate tolerance)
//   Metric VII  TCP-friendliness      higher is better (window ratio)
//   Metric VIII latency-avoidance     LOWER is better (RTT inflation bound)
#pragma once

#include <span>

#include "fluid/trace.h"

namespace axiomcc::core {

/// How metric estimators reduce a trace.
struct EstimatorConfig {
  /// Fraction of the trace treated as transient and discarded.
  double tail_fraction = 0.5;
  /// Fraction of worst-case tail samples ignored by the convergence
  /// estimator. 0 is the axiom's exact ∀t quantifier; packet-level traces
  /// carry sampling noise that a small allowance (e.g. 0.02) absorbs.
  double outlier_fraction = 0.0;
};

/// Metric I: the largest α such that X(t) ≥ αC over the tail, capped at 1.
[[nodiscard]] double measure_efficiency(const fluid::Trace& trace,
                                        const EstimatorConfig& cfg = {});

/// Metric III: the smallest loss bound α that holds over the tail
/// (max tail congestion-loss rate). Lower is better; 0 means "0-loss".
[[nodiscard]] double measure_loss_avoidance(const fluid::Trace& trace,
                                            const EstimatorConfig& cfg = {});

/// Average tail congestion-loss rate — not one of the paper's axioms, but
/// the quantity a packet-count measurement (lost/sent) estimates; used when
/// comparing fluid predictions against packet-level runs.
[[nodiscard]] double measure_mean_loss(const fluid::Trace& trace,
                                       const EstimatorConfig& cfg = {});

/// Metric IV: the largest α such that every sender's tail-average window is
/// at least α times every other sender's. 1 for a single sender.
[[nodiscard]] double measure_fairness(const fluid::Trace& trace,
                                      const EstimatorConfig& cfg = {});

/// Metric V: the largest α such that every sender's tail windows stay within
/// [αx*, (2−α)x*] of its tail-mean window x*. Clamped to [0, 1].
[[nodiscard]] double measure_convergence(const fluid::Trace& trace,
                                         const EstimatorConfig& cfg = {});

/// Metric VIII: the smallest α such that RTT(t) < (1+α)·2Θ over the tail.
/// Lower is better; 0 means the queue stays empty.
[[nodiscard]] double measure_latency_avoidance(const fluid::Trace& trace,
                                               const EstimatorConfig& cfg = {});

/// Metric VII (and the generic α-friendliness of Metric VII's definition):
/// given a mixed trace, the largest α such that every `q_senders` member's
/// tail-average window is at least α times every `p_senders` member's.
/// For TCP-friendliness, P is the protocol under test and Q is Reno.
[[nodiscard]] double measure_friendliness(const fluid::Trace& trace,
                                          std::span<const int> p_senders,
                                          std::span<const int> q_senders,
                                          const EstimatorConfig& cfg = {});

/// Metric II helper: the fast-utilization coefficient of a loss-free window
/// series, i.e. the largest α with Σ(x(t)−x(t₁)) ≥ αΔt²/2 for the sampled
/// start offsets. The evaluator runs the protocol on an effectively infinite
/// link and calls this on the resulting (loss-free) series.
[[nodiscard]] double fast_utilization_coefficient(std::span<const double> windows,
                                                  long warmup_steps);

/// Average goodput (window·(1−loss)) of a sender over the tail; used for the
/// paper's "more aggressive than" relation (Theorem 4).
[[nodiscard]] double tail_goodput(const fluid::Trace& trace, int sender,
                                  const EstimatorConfig& cfg = {});

}  // namespace axiomcc::core
