#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace axiomcc::core {

namespace {

[[nodiscard]] std::span<const double> tail_of(std::span<const double> xs,
                                              const EstimatorConfig& cfg) {
  auto tail = tail_view(xs, cfg.tail_fraction);
  AXIOMCC_EXPECTS_MSG(!tail.empty(), "trace too short for the tail fraction");
  return tail;
}

}  // namespace

double measure_efficiency(const fluid::Trace& trace,
                          const EstimatorConfig& cfg) {
  const auto tail = tail_of(trace.total_window(), cfg);
  const double worst = min_of(tail) / trace.link_capacity_mss();
  return std::min(worst, 1.0);
}

double measure_loss_avoidance(const fluid::Trace& trace,
                              const EstimatorConfig& cfg) {
  const auto tail = tail_of(trace.congestion_loss(), cfg);
  return max_of(tail);
}

double measure_mean_loss(const fluid::Trace& trace,
                         const EstimatorConfig& cfg) {
  const auto tail = tail_of(trace.congestion_loss(), cfg);
  return mean_of(tail);
}

double measure_fairness(const fluid::Trace& trace, const EstimatorConfig& cfg) {
  const int n = trace.num_senders();
  if (n == 1) return 1.0;

  std::vector<double> means(n);
  for (int i = 0; i < n; ++i) {
    means[i] = mean_of(tail_of(trace.windows(i), cfg));
  }
  const double max_mean = max_of(means);
  const double min_mean = min_of(means);
  if (max_mean <= 0.0) return 1.0;  // all idle: trivially fair
  return min_mean / max_mean;
}

double measure_convergence(const fluid::Trace& trace,
                           const EstimatorConfig& cfg) {
  double alpha = 1.0;
  std::vector<double> deviations;
  for (int i = 0; i < trace.num_senders(); ++i) {
    const auto tail = tail_of(trace.windows(i), cfg);
    const double star = mean_of(tail);
    if (star <= 0.0) continue;
    for (double x : tail) {
      const double ratio = x / star;
      // x in [αx*, (2−α)x*]  ⇔  α <= min(ratio, 2 − ratio).
      const double sample_alpha = std::min(ratio, 2.0 - ratio);
      if (cfg.outlier_fraction > 0.0) {
        deviations.push_back(sample_alpha);
      } else {
        alpha = std::min(alpha, sample_alpha);
      }
    }
  }
  if (cfg.outlier_fraction > 0.0 && !deviations.empty()) {
    alpha = percentile(std::move(deviations), cfg.outlier_fraction * 100.0);
  }
  return std::clamp(alpha, 0.0, 1.0);
}

double measure_latency_avoidance(const fluid::Trace& trace,
                                 const EstimatorConfig& cfg) {
  const auto tail = tail_of(trace.rtt_seconds(), cfg);
  const double base = trace.min_rtt_seconds();
  AXIOMCC_EXPECTS(base > 0.0);
  return std::max(0.0, max_of(tail) / base - 1.0);
}

double measure_friendliness(const fluid::Trace& trace,
                            std::span<const int> p_senders,
                            std::span<const int> q_senders,
                            const EstimatorConfig& cfg) {
  AXIOMCC_EXPECTS(!p_senders.empty() && !q_senders.empty());

  double worst_p_mean = 0.0;  // the P sender with the LARGEST window
  for (int i : p_senders) {
    worst_p_mean = std::max(worst_p_mean, mean_of(tail_of(trace.windows(i), cfg)));
  }
  double worst_q_mean = std::numeric_limits<double>::infinity();
  for (int j : q_senders) {
    worst_q_mean = std::min(worst_q_mean, mean_of(tail_of(trace.windows(j), cfg)));
  }
  if (worst_p_mean <= 0.0) return 1.0;  // P got nothing: maximally friendly
  return worst_q_mean / worst_p_mean;
}

double fast_utilization_coefficient(std::span<const double> windows,
                                    long warmup_steps) {
  AXIOMCC_EXPECTS(warmup_steps >= 0);
  AXIOMCC_EXPECTS(windows.size() > static_cast<std::size_t>(warmup_steps) + 1);

  // The definition quantifies over all t1 and all Δt ≥ T. We sample a few
  // start offsets after the warmup and take the worst (smallest) coefficient
  // over full suffixes, which is the binding case for convex growth.
  const std::size_t n = windows.size();
  double alpha = std::numeric_limits<double>::infinity();
  const std::size_t starts[] = {static_cast<std::size_t>(warmup_steps),
                                static_cast<std::size_t>(warmup_steps) +
                                    (n - warmup_steps) / 4,
                                static_cast<std::size_t>(warmup_steps) +
                                    (n - warmup_steps) / 2};
  for (std::size_t t1 : starts) {
    if (t1 + 1 >= n) continue;
    const double x1 = windows[t1];
    double accumulated = 0.0;
    for (std::size_t t = t1; t < n; ++t) accumulated += windows[t] - x1;
    const double dt = static_cast<double>(n - 1 - t1);
    if (dt <= 0.0) continue;
    alpha = std::min(alpha, 2.0 * accumulated / (dt * dt));
  }
  return std::max(alpha, 0.0);
}

double tail_goodput(const fluid::Trace& trace, int sender,
                    const EstimatorConfig& cfg) {
  const auto windows = tail_of(trace.windows(sender), cfg);
  const auto losses = tail_of(trace.observed_loss(sender), cfg);
  AXIOMCC_EXPECTS(windows.size() == losses.size());
  double sum = 0.0;
  for (std::size_t t = 0; t < windows.size(); ++t) {
    sum += windows[t] * (1.0 - losses[t]);
  }
  return sum / static_cast<double>(windows.size());
}

}  // namespace axiomcc::core
