#include "core/extra_metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "fluid/sim.h"
#include "util/check.h"
#include "util/stats.h"

namespace axiomcc::core {

long measure_responsiveness(const cc::Protocol& prototype,
                            const EvalConfig& cfg, double target_fraction) {
  AXIOMCC_EXPECTS(target_fraction > 0.0 && target_fraction <= 1.0);

  const long switch_step = cfg.steps / 2;
  AXIOMCC_EXPECTS(switch_step > 0);

  fluid::SimOptions opt;
  opt.steps = cfg.steps;
  fluid::FluidSimulation sim(cfg.link, opt);
  sim.add_sender(prototype, 1.0);
  sim.set_bandwidth_schedule(
      [switch_step](long step) { return step < switch_step ? 1.0 : 2.0; });
  const fluid::Trace trace = sim.run();

  const double new_capacity = 2.0 * trace.link_capacity_mss();
  const double target = target_fraction * new_capacity;
  const auto windows = trace.windows(0);
  for (long t = switch_step; t < cfg.steps; ++t) {
    if (windows[static_cast<std::size_t>(t)] >= target) {
      return t - switch_step;
    }
  }
  return cfg.steps - switch_step;  // never refilled within the horizon
}

double measure_smoothness(const fluid::Trace& trace,
                          const EstimatorConfig& cfg) {
  double change_sum = 0.0;
  std::size_t samples = 0;
  for (int i = 0; i < trace.num_senders(); ++i) {
    const auto tail = tail_view(trace.windows(i), cfg.tail_fraction);
    for (std::size_t t = 1; t < tail.size(); ++t) {
      if (tail[t - 1] <= 0.0) continue;
      change_sum += std::fabs(tail[t] - tail[t - 1]) / tail[t - 1];
      ++samples;
    }
  }
  if (samples == 0) return 1.0;
  return std::clamp(1.0 - change_sum / static_cast<double>(samples), 0.0, 1.0);
}

double measure_jain_fairness(const fluid::Trace& trace,
                             const EstimatorConfig& cfg) {
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(trace.num_senders()));
  for (int i = 0; i < trace.num_senders(); ++i) {
    means.push_back(mean_of(tail_view(trace.windows(i), cfg.tail_fraction)));
  }
  return jain_index(means);
}

}  // namespace axiomcc::core
