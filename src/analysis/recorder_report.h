// recorder_report.h — terminal rendering for flight recordings.
//
// Turns the recorder's raw timelines into the same terminal idiom the rest
// of the analysis layer speaks: sparklines for sampled lanes, a bar chart
// of event-class volume, and a step-stamped listing of the discrete events.
// Everything returns plain multi-line strings so axiomcc-inspect, tests,
// and doc examples can all consume the exact same rendering.
#pragma once

#include <string>

#include "recorder/align.h"
#include "recorder/postmortem.h"
#include "recorder/recorder.h"

namespace axiomcc::analysis {

struct TimelineOptions {
  int spark_width = 64;  ///< sparkline width for sampled lanes
  long max_events = 40;  ///< discrete-event lines shown (newest kept)
};

/// One event as a step-stamped single line, e.g.
/// "  step   1200  loss     onset     run        a=0.0183".
[[nodiscard]] std::string event_line(const recorder::Event& event);

/// Renders one recording: a metadata header, sparklines of the sampled
/// run-lane series (aggregate window, guard checks), a bar chart of event
/// volume per class, and the discrete-event listing (truncated to the
/// newest `max_events` with a note).
[[nodiscard]] std::string render_timeline(const recorder::Recording& recording,
                                          const TimelineOptions& options = {});

/// Renders an alignment verdict: the comparable range, the first
/// divergence step and its triggering event class, and the surrounding
/// events from both sides.
[[nodiscard]] std::string render_alignment(const recorder::AlignResult& result,
                                           const std::string& left_label,
                                           const std::string& right_label);

/// Renders a post-mortem: classification header, the embedded reproducer
/// (if any), and each side's fault line plus timeline.
[[nodiscard]] std::string render_postmortem(const recorder::PostMortem& pm,
                                            const TimelineOptions& options = {});

}  // namespace axiomcc::analysis
