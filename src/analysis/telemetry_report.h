// telemetry_report.h — per-bench telemetry session.
//
// Every bench binary wires telemetry the same way: construct a
// BenchTelemetry from its parsed arguments right after ArgParser (turning
// recording on when --telemetry / AXIOMCC_TELEMETRY asks for it), then call
// finish(bench) just before bench.write(). finish() embeds the registry
// snapshot into the BENCH_<name>.json artifact, exports the Chrome
// trace-event file (trace_<name>.json — open in chrome://tracing or
// https://ui.perfetto.dev), and prints an ASCII flame summary of where the
// span time went to stderr (stderr so benches with --csv keep stdout pure).
#pragma once

#include <string>

#include "util/bench_json.h"
#include "util/cli.h"

namespace axiomcc::analysis {

class BenchTelemetry {
 public:
  /// Reads the telemetry request from `args` (see ArgParser::telemetry_dir)
  /// and, when requested on a telemetry-compiled binary, zeroes the registry
  /// and tracer and turns recording on.
  BenchTelemetry(const ArgParser& args, std::string bench_name);

  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

  /// Whether this run is recording telemetry.
  [[nodiscard]] bool active() const { return active_; }

  /// Stops recording, embeds the registry snapshot into `bench`, writes
  /// trace_<name>.json next to the artifact, and prints the flame summary
  /// to stderr. No-op when not active.
  void finish(BenchReport& bench);

 private:
  std::string bench_name_;
  std::string dir_;
  bool active_ = false;
};

/// The flame summary itself: total span time per category, widest first,
/// rendered with ascii_plot's bar_chart. Exposed for tests.
[[nodiscard]] std::string span_flame_summary();

}  // namespace axiomcc::analysis
