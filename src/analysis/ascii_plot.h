// ascii_plot.h — terminal time-series plots.
//
// Enough plotting to see a sawtooth, a slow-start ramp, or two flows
// converging without leaving the terminal: multiple series share one canvas,
// values are linearly binned into rows, each series draws with its own glyph.
#pragma once

#include <string>
#include <vector>

#include "fluid/trace.h"

namespace axiomcc::analysis {

struct PlotOptions {
  int width = 78;    ///< canvas columns (series are resampled to fit)
  int height = 16;   ///< canvas rows
  bool y_axis_from_zero = true;
  std::string title;
};

/// One named series.
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Renders the series onto a shared canvas with axis annotations. Series
/// glyphs cycle through '*', '+', 'o', 'x'. Returns a multi-line string.
[[nodiscard]] std::string plot(const std::vector<Series>& series,
                               const PlotOptions& options = {});

/// Convenience: plots every sender's window from a trace.
[[nodiscard]] std::string plot_windows(const fluid::Trace& trace,
                                       const PlotOptions& options = {});

/// One labeled magnitude in a horizontal bar chart.
struct Bar {
  std::string label;
  double value = 0.0;
};

/// Renders `bars` as right-padded labels plus '#'-bars scaled to the
/// largest value — the flame-summary style used for telemetry span
/// rollups. Bars render in the given order. Returns a multi-line string.
[[nodiscard]] std::string bar_chart(const std::vector<Bar>& bars,
                                    int width = 50,
                                    const std::string& title = {});

/// One-line ASCII trend: values min-max normalized onto the glyph ramp
/// `_.:-=+*#@` (lowest to highest), resampled by bin-averaging when longer
/// than `max_width`. All-equal series render as a flat mid-ramp line; an
/// empty series renders as "". Non-finite values render as a space. Used by
/// axiomcc-benchdiff to show a metric's ledger history inline.
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    int max_width = 32);

}  // namespace axiomcc::analysis
