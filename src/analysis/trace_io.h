// trace_io.h — trace export and summarization.
//
// Simulation traces become plots and post-processing inputs: this module
// writes a fluid::Trace as tidy CSV (one row per step, one column per
// series) and reduces traces to per-sender summary statistics for reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fluid/trace.h"

namespace axiomcc::analysis {

/// Writes `trace` as CSV: header
///   step,rtt_seconds,congestion_loss,w0,loss0,w1,loss1,...
/// followed by one row per step.
void write_trace_csv(const fluid::Trace& trace, std::ostream& out);

/// Convenience: writes to `path`; throws std::runtime_error on I/O failure.
void write_trace_csv_file(const fluid::Trace& trace, const std::string& path);

/// Per-sender reduction of a trace's tail.
struct SenderSummary {
  double mean_window = 0.0;
  double stddev_window = 0.0;
  double min_window = 0.0;
  double max_window = 0.0;
  double mean_observed_loss = 0.0;
};

struct TraceSummary {
  std::vector<SenderSummary> senders;
  double mean_rtt_seconds = 0.0;
  double p95_rtt_seconds = 0.0;
  double mean_total_window = 0.0;
  double mean_utilization = 0.0;  ///< mean total window / capacity, cap 1.
};

/// Reduces the tail (after discarding `transient_fraction`) of a trace.
[[nodiscard]] TraceSummary summarize(const fluid::Trace& trace,
                                     double transient_fraction = 0.5);

/// Renders a summary as an aligned text table.
[[nodiscard]] std::string render_summary(const TraceSummary& summary);

}  // namespace axiomcc::analysis
