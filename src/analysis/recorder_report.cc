#include "analysis/recorder_report.h"

#include <cstdio>
#include <map>
#include <tuple>
#include <vector>

#include "analysis/ascii_plot.h"

namespace axiomcc::analysis {

namespace {

std::string format_value(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

std::string subject_tag(const recorder::Event& event) {
  std::string tag = recorder::subject_name(event.subject_kind);
  if (event.subject >= 0) {
    tag += '[';
    tag += std::to_string(event.subject);
    tag += ']';
  }
  return tag;
}

bool is_sampled(const recorder::Event& event) {
  return (event.cls == recorder::EventClass::kWindow) ||
         (event.cls == recorder::EventClass::kMetric) ||
         (event.cls == recorder::EventClass::kGuard &&
          event.code == recorder::EventCode::kCheck);
}

void append_spark(std::string& out, const std::string& label,
                  const std::vector<double>& values, int width) {
  if (values.empty()) return;
  double lo = values.front();
  double hi = values.front();
  for (double v : values) {
    lo = v < lo ? v : lo;
    hi = v > hi ? v : hi;
  }
  out += "  ";
  out += label;
  out += ' ';
  out += sparkline(values, width);
  out += "  [";
  out += format_value(lo);
  out += ", ";
  out += format_value(hi);
  out += "]\n";
}

}  // namespace

std::string event_line(const recorder::Event& event) {
  char head[64];
  std::snprintf(head, sizeof(head), "  step %7ld  %-8s %-9s %-10s",
                event.step, recorder::event_class_name(event.cls),
                recorder::event_code_name(event.code),
                subject_tag(event).c_str());
  std::string line = head;
  line += " a=";
  line += format_value(event.a);
  if (event.b != 0.0) {
    line += " b=";
    line += format_value(event.b);
  }
  return line;
}

std::string render_timeline(const recorder::Recording& recording,
                            const TimelineOptions& options) {
  std::string out = "recording";
  if (!recording.backend.empty()) out += " backend=" + recording.backend;
  if (!recording.git_sha.empty() && recording.git_sha != "unknown") {
    out += " sha=" + recording.git_sha.substr(0, 12);
  }
  out += " senders=" + std::to_string(recording.senders);
  out += " steps=" + std::to_string(recording.steps);
  out += " events=" + std::to_string(recording.events.size());
  out += " stride=" + std::to_string(recording.options.sample_stride);
  if (recording.dropped > 0) {
    out += " dropped=" + std::to_string(recording.dropped);
  }
  out += '\n';
  if (recording.empty()) {
    out += "  (no events)\n";
    return out;
  }

  // Sampled run-lane series render as sparklines: the aggregate window is
  // the one series every capture has, the guard-check series appears when a
  // guarded runner drove the recording.
  std::vector<double> totals;
  std::vector<double> checks;
  // Metric-scope channels, keyed (subject kind, subject, axis code) so the
  // run channels render first, then per-cohort, then per-link — the scope's
  // own deterministic channel order.
  std::map<std::tuple<int, int, int>, std::vector<double>> metrics;
  std::vector<long> class_counts(recorder::kNumEventClasses, 0);
  long discrete = 0;
  for (const recorder::Event& event : recording.events) {
    ++class_counts[static_cast<int>(event.cls)];
    if (event.cls == recorder::EventClass::kWindow &&
        event.code == recorder::EventCode::kTotal) {
      totals.push_back(event.a);
    } else if (event.cls == recorder::EventClass::kGuard &&
               event.code == recorder::EventCode::kCheck) {
      checks.push_back(event.a);
    } else if (event.cls == recorder::EventClass::kMetric) {
      metrics[{static_cast<int>(event.subject_kind), event.subject,
               static_cast<int>(event.code)}]
          .push_back(event.a);
    }
    if (!is_sampled(event)) ++discrete;
  }
  append_spark(out, "total window", totals, options.spark_width);
  append_spark(out, "guard check ", checks, options.spark_width);

  if (!metrics.empty()) {
    out += "metric timelines (one value per closed scope window):\n";
    for (const auto& [key, values] : metrics) {
      const auto& [kind, subject, code] = key;
      std::string subj = recorder::subject_name(
          static_cast<recorder::Subject>(kind));
      if (subject >= 0) subj += '[' + std::to_string(subject) + ']';
      char label[64];
      std::snprintf(label, sizeof(label), "%-16s %-10s",
                    recorder::event_code_name(
                        static_cast<recorder::EventCode>(code)),
                    subj.c_str());
      append_spark(out, label, values, options.spark_width);
    }
  }

  std::vector<Bar> bars;
  for (int c = 0; c < recorder::kNumEventClasses; ++c) {
    if (class_counts[c] == 0) continue;
    bars.push_back(Bar{
        recorder::event_class_name(static_cast<recorder::EventClass>(c)),
        static_cast<double>(class_counts[c])});
  }
  if (!bars.empty()) out += bar_chart(bars, 40, "events by class");

  if (discrete > 0) {
    out += "discrete events";
    long skip = discrete - options.max_events;
    if (skip > 0) {
      out += " (oldest " + std::to_string(skip) + " elided)";
    } else {
      skip = 0;
    }
    out += ":\n";
    for (const recorder::Event& event : recording.events) {
      if (is_sampled(event)) continue;
      if (skip > 0) {
        --skip;
        continue;
      }
      out += event_line(event);
      out += '\n';
    }
  }
  return out;
}

std::string render_alignment(const recorder::AlignResult& result,
                             const std::string& left_label,
                             const std::string& right_label) {
  std::string out;
  if (!result.diverged) {
    out += "aligned: " + left_label + " and " + right_label + " agree over " +
           std::to_string(result.steps_compared) + " steps (from step " +
           std::to_string(result.compare_start) + ")\n";
    return out;
  }
  out += "DIVERGED at step " + std::to_string(result.first_divergence_step) +
         " (" + recorder::event_class_name(result.trigger) + "): " +
         result.reason + '\n';
  out += "  compared " + std::to_string(result.steps_compared) +
         " steps from step " + std::to_string(result.compare_start) + '\n';
  const auto dump_side = [&out](const std::string& label,
                                const std::vector<recorder::Event>& events) {
    out += label + " events near the divergence:\n";
    if (events.empty()) {
      out += "  (none recorded)\n";
      return;
    }
    for (const recorder::Event& event : events) {
      out += event_line(event);
      out += '\n';
    }
  };
  dump_side(left_label, result.left_events);
  dump_side(right_label, result.right_events);
  return out;
}

std::string render_postmortem(const recorder::PostMortem& pm,
                              const TimelineOptions& options) {
  std::string out = "post-mortem kind=" + pm.kind;
  if (!pm.title.empty()) out += " title=" + pm.title;
  if (pm.divergence > 0.0) out += " divergence=" + format_value(pm.divergence);
  out += '\n';
  if (!pm.scenario_text.empty()) {
    out += "reproducer:\n";
    // Indent the embedded .scn so it reads as a quoted block.
    std::string::size_type pos = 0;
    while (pos < pm.scenario_text.size()) {
      auto end = pm.scenario_text.find('\n', pos);
      if (end == std::string::npos) end = pm.scenario_text.size();
      out += "  | ";
      out.append(pm.scenario_text, pos, end - pos);
      out += '\n';
      pos = end + 1;
    }
  }
  for (const recorder::PostMortemSide& side : pm.sides) {
    out += "--- side " + side.label;
    if (side.fault_kind.empty()) {
      out += " (clean)";
    } else {
      out += " FAULT " + side.fault_kind + " at step " +
             std::to_string(side.fault_step);
      if (side.fault_sender >= 0) {
        out += " sender " + std::to_string(side.fault_sender);
      }
      if (!side.detail.empty()) out += ": " + side.detail;
    }
    out += '\n';
    out += render_timeline(side.recording, options);
  }
  return out;
}

}  // namespace axiomcc::analysis
