#include "analysis/trace_io.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/check.h"
#include "util/stats.h"
#include "util/table.h"

namespace axiomcc::analysis {

void write_trace_csv(const fluid::Trace& trace, std::ostream& out) {
  out << "step,rtt_seconds,congestion_loss";
  for (int i = 0; i < trace.num_senders(); ++i) {
    out << ",w" << i << ",loss" << i;
  }
  out << '\n';

  for (std::size_t t = 0; t < trace.num_steps(); ++t) {
    out << t << ',' << trace.rtt_seconds()[t] << ','
        << trace.congestion_loss()[t];
    for (int i = 0; i < trace.num_senders(); ++i) {
      out << ',' << trace.windows(i)[t] << ',' << trace.observed_loss(i)[t];
    }
    out << '\n';
  }
}

void write_trace_csv_file(const fluid::Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  write_trace_csv(trace, out);
  if (!out) {
    throw std::runtime_error("write failed: " + path);
  }
}

TraceSummary summarize(const fluid::Trace& trace, double transient_fraction) {
  AXIOMCC_EXPECTS(trace.num_steps() > 0);

  TraceSummary summary;
  for (int i = 0; i < trace.num_senders(); ++i) {
    const auto windows = tail_view(trace.windows(i), transient_fraction);
    const auto losses = tail_view(trace.observed_loss(i), transient_fraction);
    RunningStats stats;
    for (double w : windows) stats.add(w);

    SenderSummary s;
    s.mean_window = stats.mean();
    s.stddev_window = stats.stddev();
    s.min_window = stats.min();
    s.max_window = stats.max();
    s.mean_observed_loss = mean_of(losses);
    summary.senders.push_back(s);
  }

  const auto rtts = tail_view(trace.rtt_seconds(), transient_fraction);
  summary.mean_rtt_seconds = mean_of(rtts);
  summary.p95_rtt_seconds =
      percentile(std::vector<double>(rtts.begin(), rtts.end()), 95.0);
  const auto totals = tail_view(trace.total_window(), transient_fraction);
  summary.mean_total_window = mean_of(totals);
  summary.mean_utilization =
      std::min(1.0, summary.mean_total_window / trace.link_capacity_mss());
  return summary;
}

std::string render_summary(const TraceSummary& summary) {
  TextTable table;
  table.set_header({"sender", "mean w", "std w", "min w", "max w",
                    "mean loss"});
  for (std::size_t i = 0; i < summary.senders.size(); ++i) {
    const SenderSummary& s = summary.senders[i];
    table.add_row({std::to_string(i), TextTable::num(s.mean_window, 2),
                   TextTable::num(s.stddev_window, 2),
                   TextTable::num(s.min_window, 2),
                   TextTable::num(s.max_window, 2),
                   TextTable::num(s.mean_observed_loss, 4)});
  }

  std::ostringstream os;
  os << table.render();
  os << "mean RTT: " << summary.mean_rtt_seconds * 1e3
     << " ms, p95 RTT: " << summary.p95_rtt_seconds * 1e3
     << " ms, mean utilization: " << summary.mean_utilization << '\n';
  return os.str();
}

}  // namespace axiomcc::analysis
