#include "analysis/dynamics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/stats.h"

namespace axiomcc::analysis {

std::vector<std::size_t> find_peaks(std::span<const double> xs,
                                    double min_prominence) {
  AXIOMCC_EXPECTS(min_prominence >= 0.0);
  std::vector<std::size_t> peaks;
  if (xs.size() < 3) return peaks;

  // A peak is a point strictly higher than its neighbours whose drop to the
  // following trough exceeds min_prominence × peak.
  for (std::size_t i = 1; i + 1 < xs.size(); ++i) {
    if (!(xs[i] >= xs[i - 1] && xs[i] > xs[i + 1])) continue;

    // Walk forward to the local trough before the next rise.
    double trough = xs[i];
    for (std::size_t j = i + 1; j < xs.size(); ++j) {
      trough = std::min(trough, xs[j]);
      if (xs[j] > xs[j - 1]) break;  // rising again
    }
    if (xs[i] - trough >= min_prominence * xs[i]) {
      peaks.push_back(i);
    }
  }
  return peaks;
}

std::vector<Cycle> extract_cycles(std::span<const double> xs,
                                  double min_prominence) {
  const auto peaks = find_peaks(xs, min_prominence);
  std::vector<Cycle> cycles;
  for (std::size_t p = 0; p + 1 < peaks.size(); ++p) {
    Cycle c;
    c.peak_index = peaks[p];
    c.peak_value = xs[peaks[p]];
    c.length = peaks[p + 1] - peaks[p];
    double trough = c.peak_value;
    for (std::size_t j = peaks[p] + 1; j <= peaks[p + 1]; ++j) {
      trough = std::min(trough, xs[j]);
    }
    c.trough_value = trough;
    cycles.push_back(c);
  }
  return cycles;
}

CycleStats analyze_cycles(std::span<const double> xs, double min_prominence) {
  const auto cycles = extract_cycles(xs, min_prominence);
  CycleStats stats;
  if (cycles.empty()) return stats;

  RunningStats periods;
  RunningStats peaks;
  RunningStats troughs;
  RunningStats ratios;
  for (const Cycle& c : cycles) {
    periods.add(static_cast<double>(c.length));
    peaks.add(c.peak_value);
    troughs.add(c.trough_value);
    if (c.peak_value > 0.0) ratios.add(c.trough_value / c.peak_value);
  }
  stats.cycles = cycles.size();
  stats.mean_period = periods.mean();
  stats.stddev_period = periods.stddev();
  stats.mean_peak = peaks.mean();
  stats.mean_trough = troughs.mean();
  stats.mean_decrease_ratio = ratios.mean();
  return stats;
}

std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag, double min_correlation) {
  AXIOMCC_EXPECTS(min_lag >= 1);
  AXIOMCC_EXPECTS(max_lag >= min_lag);
  const std::size_t n = xs.size();
  if (n < 2 * min_lag + 1) return 0;

  const double mean = mean_of(xs);
  double variance = 0.0;
  for (double x : xs) variance += (x - mean) * (x - mean);
  if (variance <= 0.0) return 0;

  // Smooth signals correlate trivially at tiny lags, so the fundamental is
  // NOT the first lag above the threshold. Standard recipe: walk the
  // autocorrelation out past its first negative dip, then take the argmax —
  // the first full cycle back in phase.
  const std::size_t limit = std::min(max_lag, n / 2);
  const auto acf_at = [&](std::size_t lag) {
    double corr = 0.0;
    for (std::size_t t = 0; t + lag < n; ++t) {
      corr += (xs[t] - mean) * (xs[t + lag] - mean);
    }
    return corr / variance;
  };

  std::size_t first_dip = 0;
  for (std::size_t lag = min_lag; lag <= limit; ++lag) {
    if (acf_at(lag) < 0.0) {
      first_dip = lag;
      break;
    }
  }
  if (first_dip == 0) return 0;  // never decorrelates: no cycle in range

  std::size_t best_lag = 0;
  double best_corr = min_correlation;
  for (std::size_t lag = first_dip + 1; lag <= limit; ++lag) {
    const double corr = acf_at(lag);
    if (corr > best_corr) {
      best_corr = corr;
      best_lag = lag;
    }
  }
  if (best_lag == 0) return 0;

  // Non-integer periods can align better at a harmonic (lag ≈ 2P lines up
  // when P itself drifts half a step per cycle). Prefer a sub-multiple that
  // correlates nearly as well — the pitch-detection octave correction.
  for (std::size_t divisor : {3u, 2u}) {
    const std::size_t candidate = best_lag / divisor;
    if (candidate < min_lag || candidate <= first_dip) continue;
    // Scan a ±1 neighbourhood to absorb the rounding of best_lag/divisor.
    for (std::size_t lag = candidate > 0 ? candidate - 1 : candidate;
         lag <= candidate + 1; ++lag) {
      if (lag < min_lag) continue;
      if (acf_at(lag) >= 0.8 * best_corr) {
        return lag;
      }
    }
  }
  return best_lag;
}

}  // namespace axiomcc::analysis
