#include "analysis/telemetry_report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "analysis/ascii_plot.h"
#include "telemetry/telemetry.h"

namespace axiomcc::analysis {

BenchTelemetry::BenchTelemetry(const ArgParser& args, std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  const auto dir = args.telemetry_dir();
  if (!dir) return;
  if (!telemetry::compiled_in()) {
    std::fprintf(stderr,
                 "[telemetry] requested but compiled out "
                 "(AXIOMCC_TELEMETRY=OFF build) — ignoring\n");
    return;
  }
  dir_ = *dir;
  active_ = true;
  telemetry::Registry::global().reset_values();
  telemetry::Tracer::global().reset();
  telemetry::set_enabled(true);
}

std::string span_flame_summary() {
  const auto events = telemetry::Tracer::global().collect();
  if (events.empty()) return {};
  std::map<std::string, double> by_category;
  for (const telemetry::SpanEvent& e : events) {
    by_category[e.category] += static_cast<double>(e.duration_us) / 1000.0;
  }
  std::vector<Bar> bars;
  bars.reserve(by_category.size());
  for (const auto& [category, total_ms] : by_category) {
    bars.push_back(Bar{category, total_ms});
  }
  std::stable_sort(bars.begin(), bars.end(),
                   [](const Bar& a, const Bar& b) { return a.value > b.value; });
  return bar_chart(bars, 50, "span time by category (ms):");
}

void BenchTelemetry::finish(BenchReport& bench) {
  if (!active_) return;
  active_ = false;
  telemetry::set_enabled(false);

  bench.set_telemetry(telemetry::Registry::global().snapshot().to_json());

  const auto events = telemetry::Tracer::global().collect();
  const std::string trace_path = dir_ + "/trace_" + bench_name_ + ".json";
  if (telemetry::write_chrome_trace(trace_path, events)) {
    std::fprintf(stderr, "[telemetry] %zu spans -> %s", events.size(),
                 trace_path.c_str());
    const std::uint64_t dropped = telemetry::Tracer::global().dropped();
    if (dropped > 0) {
      std::fprintf(stderr, " (%llu dropped: ring full)",
                   static_cast<unsigned long long>(dropped));
    }
    std::fprintf(stderr, "\n");
  } else {
    std::fprintf(stderr, "[telemetry] cannot write %s\n", trace_path.c_str());
  }

  const std::string summary = span_flame_summary();
  if (!summary.empty()) std::fputs(summary.c_str(), stderr);
}

}  // namespace axiomcc::analysis
