// dynamics.h — structural analysis of window dynamics.
//
// The metric estimators reduce a trace to scalar scores; this module
// extracts the STRUCTURE the theory reasons about: the sawtooth's peaks and
// troughs, the limit-cycle period, and amplitude statistics. docs/THEORY.md
// derives what these should be (e.g. AIMD's period ≈ (1−b)(C+τ)/n steps,
// trough/peak = b); the tests check the measured cycle against the algebra.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace axiomcc::analysis {

/// One detected oscillation cycle: trough → peak → next trough.
struct Cycle {
  std::size_t peak_index = 0;
  double peak_value = 0.0;
  double trough_value = 0.0;  ///< trough following the peak
  std::size_t length = 0;     ///< steps from this peak to the next
};

/// Summary of a series' limit-cycle behaviour.
struct CycleStats {
  std::size_t cycles = 0;
  double mean_period = 0.0;    ///< steps between successive peaks
  double stddev_period = 0.0;
  double mean_peak = 0.0;
  double mean_trough = 0.0;
  /// mean trough/peak ratio — AIMD theory says this is b.
  double mean_decrease_ratio = 0.0;
};

/// Finds local maxima that dominate their neighbourhood by more than
/// `min_prominence` (relative to the peak value). Returns peak indices in
/// order. Flat or monotone series yield none.
[[nodiscard]] std::vector<std::size_t> find_peaks(std::span<const double> xs,
                                                  double min_prominence = 0.05);

/// Extracts the cycles between successive detected peaks.
[[nodiscard]] std::vector<Cycle> extract_cycles(std::span<const double> xs,
                                                double min_prominence = 0.05);

/// Reduces a series' cycles to summary statistics. Zero-initialized result
/// when fewer than 2 peaks exist.
[[nodiscard]] CycleStats analyze_cycles(std::span<const double> xs,
                                        double min_prominence = 0.05);

/// Estimates the dominant period (in steps) by autocorrelation over lags
/// [min_lag, max_lag]; 0 when no lag beats the correlation threshold.
[[nodiscard]] std::size_t dominant_period(std::span<const double> xs,
                                          std::size_t min_lag = 2,
                                          std::size_t max_lag = 1000,
                                          double min_correlation = 0.5);

}  // namespace axiomcc::analysis
