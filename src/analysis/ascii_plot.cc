#include "analysis/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string_view>

#include "util/check.h"

namespace axiomcc::analysis {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x'};

/// Resamples `values` to `width` columns by averaging each bin.
std::vector<double> resample(const std::vector<double>& values, int width) {
  std::vector<double> out(static_cast<std::size_t>(width), 0.0);
  const std::size_t n = values.size();
  for (int c = 0; c < width; ++c) {
    const std::size_t lo = n * static_cast<std::size_t>(c) / width;
    std::size_t hi = n * static_cast<std::size_t>(c + 1) / width;
    hi = std::max(hi, lo + 1);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi && i < n; ++i) sum += values[i];
    out[c] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace

std::string plot(const std::vector<Series>& series, const PlotOptions& options) {
  AXIOMCC_EXPECTS(!series.empty());
  AXIOMCC_EXPECTS(options.width >= 10 && options.height >= 4);
  for (const Series& s : series) {
    AXIOMCC_EXPECTS_MSG(!s.values.empty(), "series must be non-empty");
  }

  double lo = options.y_axis_from_zero
                  ? 0.0
                  : std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const Series& s : series) {
    for (double v : s.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (hi <= lo) hi = lo + 1.0;

  const int width = options.width;
  const int height = options.height;
  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto sampled = resample(series[si].values, width);
    for (int c = 0; c < width; ++c) {
      const double fraction = (sampled[c] - lo) / (hi - lo);
      int row = static_cast<int>(std::lround(fraction * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      canvas[static_cast<std::size_t>(height - 1 - row)]
            [static_cast<std::size_t>(c)] = glyph;
    }
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  char label[64];
  std::snprintf(label, sizeof(label), "%10.2f |", hi);
  os << label << canvas.front() << '\n';
  for (int r = 1; r + 1 < height; ++r) {
    os << "           |" << canvas[static_cast<std::size_t>(r)] << '\n';
  }
  std::snprintf(label, sizeof(label), "%10.2f |", lo);
  os << label << canvas.back() << '\n';
  os << "           +" << std::string(static_cast<std::size_t>(width), '-')
     << '\n';

  os << "            ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (si > 0) os << "   ";
    os << kGlyphs[si % sizeof(kGlyphs)] << " = " << series[si].label;
  }
  os << '\n';
  return os.str();
}

std::string bar_chart(const std::vector<Bar>& bars, int width,
                      const std::string& title) {
  AXIOMCC_EXPECTS(!bars.empty());
  AXIOMCC_EXPECTS(width >= 10);

  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const Bar& bar : bars) {
    AXIOMCC_EXPECTS_MSG(bar.value >= 0.0, "bar values must be non-negative");
    label_width = std::max(label_width, bar.label.size());
    max_value = std::max(max_value, bar.value);
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (const Bar& bar : bars) {
    os << "  " << bar.label
       << std::string(label_width - bar.label.size(), ' ') << " |";
    const int filled = static_cast<int>(
        std::lround(bar.value / max_value * static_cast<double>(width)));
    os << std::string(static_cast<std::size_t>(std::clamp(filled, 0, width)),
                      '#');
    char value_text[32];
    std::snprintf(value_text, sizeof(value_text), " %.6g", bar.value);
    os << value_text << '\n';
  }
  return os.str();
}

std::string sparkline(const std::vector<double>& values, int max_width) {
  AXIOMCC_EXPECTS(max_width >= 1);
  if (values.empty()) return {};
  static constexpr std::string_view kRamp = "_.:-=+*#@";
  const std::vector<double> sampled =
      values.size() > static_cast<std::size_t>(max_width)
          ? resample(values, max_width)
          : values;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double v : sampled) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(sampled.size());
  for (const double v : sampled) {
    if (!std::isfinite(v)) {
      out.push_back(' ');
    } else if (hi <= lo) {
      out.push_back(kRamp[kRamp.size() / 2]);
    } else {
      const double fraction = (v - lo) / (hi - lo);
      const auto level = static_cast<std::size_t>(std::lround(
          fraction * static_cast<double>(kRamp.size() - 1)));
      out.push_back(kRamp[std::min(level, kRamp.size() - 1)]);
    }
  }
  return out;
}

std::string plot_windows(const fluid::Trace& trace, const PlotOptions& options) {
  std::vector<Series> series;
  for (int i = 0; i < trace.num_senders(); ++i) {
    Series s;
    s.label = "sender " + std::to_string(i);
    s.values.assign(trace.windows(i).begin(), trace.windows(i).end());
    series.push_back(std::move(s));
  }
  return plot(series, options);
}

}  // namespace axiomcc::analysis
