#include "ledger/ledger.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "ledger/provenance.h"
#include "telemetry/metrics.h"
#include "util/json.h"
#include "util/task_pool.h"

namespace axiomcc::ledger {

namespace {

void append_kv_string(std::string& out, const char* key,
                      const std::string& value) {
  append_json_string(out, key);
  out += ":";
  append_json_string(out, value);
}

}  // namespace

std::string to_jsonl(const LedgerRecord& record) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(record.schema_version);
  out += ",";
  append_kv_string(out, "timestamp_utc", record.timestamp_utc);
  out += ",";
  append_kv_string(out, "bench", record.bench);
  out += ",";
  append_kv_string(out, "git_sha", record.git_sha);
  out += ",";
  append_kv_string(out, "build_flavor", record.build_flavor);
  out += ",";
  append_kv_string(out, "backend", record.backend);
  out += ",\"jobs\":";
  out += std::to_string(record.jobs);
  out += ",\"hardware_jobs\":";
  out += std::to_string(record.hardware_jobs);
  out += ",\"total_seconds\":";
  append_json_number(out, record.total_seconds);
  out += ",\"phases\":{";
  for (std::size_t i = 0; i < record.phases.size(); ++i) {
    if (i > 0) out += ",";
    append_json_string(out, record.phases[i].first);
    out += ":";
    append_json_number(out, record.phases[i].second);
  }
  out += "},\"counters\":{";
  for (std::size_t i = 0; i < record.counters.size(); ++i) {
    if (i > 0) out += ",";
    append_json_string(out, record.counters[i].first);
    out += ":";
    append_json_number(out, record.counters[i].second);
  }
  out += "},\"deterministic_counters\":{";
  for (std::size_t i = 0; i < record.deterministic_counters.size(); ++i) {
    if (i > 0) out += ",";
    append_json_string(out, record.deterministic_counters[i].first);
    out += ":";
    out += std::to_string(record.deterministic_counters[i].second);
  }
  out += "}}";
  return out;
}

std::optional<LedgerRecord> parse_record(std::string_view line) {
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  if (!doc.is_object()) return std::nullopt;

  const JsonValue* version = doc.find("schema_version");
  const JsonValue* bench = doc.find("bench");
  if (version == nullptr || version->kind != JsonValue::Kind::kNumber ||
      bench == nullptr || bench->kind != JsonValue::Kind::kString ||
      bench->string.empty()) {
    return std::nullopt;
  }

  LedgerRecord record;
  record.schema_version = static_cast<int>(version->number);
  record.bench = bench->string;

  const auto read_string = [&doc](const char* key, std::string& into) {
    const JsonValue* v = doc.find(key);
    if (v != nullptr && v->kind == JsonValue::Kind::kString) into = v->string;
  };
  read_string("timestamp_utc", record.timestamp_utc);
  read_string("git_sha", record.git_sha);
  read_string("build_flavor", record.build_flavor);
  read_string("backend", record.backend);

  const auto read_long = [&doc](const char* key, long& into) {
    const JsonValue* v = doc.find(key);
    if (v != nullptr && v->kind == JsonValue::Kind::kNumber) {
      into = static_cast<long>(v->number);
    }
  };
  read_long("jobs", record.jobs);
  read_long("hardware_jobs", record.hardware_jobs);

  if (const JsonValue* total = doc.find("total_seconds");
      total != nullptr && total->kind == JsonValue::Kind::kNumber) {
    record.total_seconds = total->number;
  }

  const auto read_number_map =
      [&doc](const char* key,
             std::vector<std::pair<std::string, double>>& into) {
        const JsonValue* v = doc.find(key);
        if (v == nullptr || !v->is_object()) return;
        for (const auto& [name, value] : v->object) {
          if (value.kind == JsonValue::Kind::kNumber) {
            into.emplace_back(name, value.number);
          } else if (value.is_null()) {  // non-finite rendered as null
            into.emplace_back(name, std::nan(""));
          }
        }
      };
  read_number_map("phases", record.phases);
  read_number_map("counters", record.counters);

  if (const JsonValue* det = doc.find("deterministic_counters");
      det != nullptr && det->is_object()) {
    for (const auto& [name, value] : det->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        record.deterministic_counters.emplace_back(
            name, static_cast<std::int64_t>(value.number));
      }
    }
  }
  return record;
}

LedgerFile read_ledger(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open ledger " + path);
  LedgerFile file;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (auto record = parse_record(line)) {
      file.records.push_back(std::move(*record));
    } else {
      ++file.skipped_lines;
    }
  }
  return file;
}

void append_record(const std::string& path, const LedgerRecord& record) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;  // best-effort; the open below reports failure
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot append to ledger " + path);
  out << to_jsonl(record) << '\n';
  out.flush();
  if (!out.good()) throw std::runtime_error("short append to ledger " + path);
}

std::optional<LedgerRecord> record_from_artifact(std::string_view json) {
  JsonValue doc;
  try {
    doc = parse_json(json);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
  const JsonValue* bench = doc.find("bench");
  if (bench == nullptr || bench->kind != JsonValue::Kind::kString ||
      bench->string.empty()) {
    return std::nullopt;
  }

  LedgerRecord record;
  record.bench = bench->string;
  record.git_sha = "unknown";
  record.build_flavor = "unknown";
  if (const JsonValue* v = doc.find("schema_version");
      v != nullptr && v->kind == JsonValue::Kind::kNumber) {
    record.schema_version = static_cast<int>(v->number);
  }
  if (const JsonValue* v = doc.find("timestamp_utc");
      v != nullptr && v->kind == JsonValue::Kind::kString) {
    record.timestamp_utc = v->string;
  }
  if (const JsonValue* v = doc.find("jobs");
      v != nullptr && v->kind == JsonValue::Kind::kNumber) {
    record.jobs = static_cast<long>(v->number);
  }
  if (const JsonValue* v = doc.find("hardware_jobs");
      v != nullptr && v->kind == JsonValue::Kind::kNumber) {
    record.hardware_jobs = static_cast<long>(v->number);
  }
  if (const JsonValue* v = doc.find("total_seconds");
      v != nullptr && v->kind == JsonValue::Kind::kNumber) {
    record.total_seconds = v->number;
  }
  if (const JsonValue* phases = doc.find("phases");
      phases != nullptr && phases->is_array()) {
    for (const JsonValue& phase : phases->array) {
      const JsonValue* name = phase.find("name");
      const JsonValue* seconds = phase.find("seconds");
      if (name != nullptr && name->kind == JsonValue::Kind::kString &&
          seconds != nullptr && seconds->kind == JsonValue::Kind::kNumber) {
        record.phases.emplace_back(name->string, seconds->number);
      }
    }
  }
  if (const JsonValue* counters = doc.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->object) {
      if (value.kind == JsonValue::Kind::kNumber) {
        record.counters.emplace_back(name, value.number);
      }
    }
  }
  if (const JsonValue* telemetry = doc.find("telemetry");
      telemetry != nullptr && telemetry->is_object()) {
    if (const JsonValue* det = telemetry->find("counters");
        det != nullptr && det->is_object()) {
      for (const auto& [name, value] : det->object) {
        if (value.kind == JsonValue::Kind::kNumber) {
          record.deterministic_counters.emplace_back(
              name, static_cast<std::int64_t>(value.number));
        }
      }
    }
  }
  return record;
}

LedgerRecord record_from_bench(const BenchReport& bench,
                               const std::string& backend) {
  LedgerRecord record;
  record.timestamp_utc = bench.timestamp_utc();
  record.bench = bench.name();
  const Provenance prov = current_provenance();
  record.git_sha = prov.git_sha;
  record.build_flavor = prov.build_flavor;
  record.backend = backend;
  record.jobs = bench.jobs();
  record.hardware_jobs = hardware_jobs();
  record.total_seconds = bench.total_seconds();
  record.phases = bench.phases();
  record.counters = bench.counters();
  std::stable_sort(
      record.counters.begin(), record.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  // Deterministic counters are only meaningful when the run recorded
  // telemetry (otherwise every probe was skipped and they all read 0);
  // the embedded snapshot is the signal that it did.
  if (!bench.telemetry_json().empty()) {
    const telemetry::RegistrySnapshot snapshot =
        telemetry::Registry::global().snapshot();
    for (const telemetry::CounterSnapshot& c : snapshot.counters) {
      if (c.stability == telemetry::Stability::kDeterministic) {
        record.deterministic_counters.emplace_back(c.name, c.value);
      }
    }
  }
  return record;
}

std::optional<std::string> maybe_append(const ArgParser& args,
                                        const BenchReport& bench,
                                        const std::string& backend) {
  const auto path = args.ledger_path();
  if (!path) return std::nullopt;
  try {
    append_record(*path, record_from_bench(bench, backend));
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "[ledger] %s\n", e.what());
    return std::nullopt;
  }
  std::fprintf(stderr, "[ledger] appended %s -> %s\n", bench.name().c_str(),
               path->c_str());
  return path;
}

}  // namespace axiomcc::ledger
