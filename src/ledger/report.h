// report.h — markdown trend tables over the whole run ledger.
//
// The sentinel (sentinel.h) answers "did the newest run regress?"; the
// report answers "what has this branch been doing?" — one markdown table
// per (bench, backend) group showing each metric's newest value against the
// median of its history, with a sparkline of the trajectory. The output is
// GitHub-flavored markdown, sized for pasting straight into a PR
// description (`axiomcc-benchdiff --report`).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ledger/ledger.h"

namespace axiomcc::ledger {

struct ReportOptions {
  /// Newest records per (bench, backend) group feeding the trend columns.
  std::size_t max_history = 12;
  /// Restrict to one bench name; empty reports every group.
  std::string bench_filter;
};

/// Renders the trend report for `records` (a full ledger, file order =
/// chronological). `spark` renders a metric's history column when provided
/// (injected so ledger stays independent of the analysis layer); without it
/// the Trend column is omitted. Returns a note string when there is nothing
/// to report (empty ledger or filter matches nothing).
[[nodiscard]] std::string render_ledger_report(
    const std::vector<LedgerRecord>& records, const ReportOptions& options = {},
    const std::function<std::string(const std::vector<double>&)>& spark = {});

}  // namespace axiomcc::ledger
