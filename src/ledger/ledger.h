// ledger.h — the append-only, provenance-stamped run ledger.
//
// Every bench run can append exactly one JSONL record to a ledger file
// (default artifacts/ledger.jsonl, via --ledger / AXIOMCC_LEDGER). A record
// is the full BENCH_<name>.json payload (phases, counters, wall-clock)
// plus provenance (git SHA, build flavor, backend, jobs, hardware jobs, an
// ISO-8601 UTC timestamp) plus the telemetry registry's deterministic
// counters. The ledger is what turns one-shot artifacts into a trajectory:
// the regression sentinel (sentinel.h) and the axiomcc-benchdiff CLI read
// it back to diff runs and flag drift.
//
// Format: one JSON object per line ("JSONL"), schema-versioned via the
// record's `schema_version` field. Readers are tolerant: malformed or
// truncated lines (a crashed writer, a partial flush) are skipped and
// counted, never fatal — an append-only log must survive its own history.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bench_json.h"
#include "util/cli.h"

namespace axiomcc::ledger {

/// Version of the ledger line layout. Matches kBenchSchemaVersion so a
/// record and the artifact it was derived from stay in lockstep.
inline constexpr int kLedgerSchemaVersion = kBenchSchemaVersion;

/// One bench run, as persisted on a ledger line.
struct LedgerRecord {
  int schema_version = kLedgerSchemaVersion;
  std::string timestamp_utc;  ///< ISO-8601 UTC ("2026-08-06T12:34:56Z")
  std::string bench;          ///< bench name ("table1", "micro", ...)
  std::string git_sha;        ///< full SHA, or "unknown" outside a checkout
  std::string build_flavor;   ///< e.g. "Release", "Release+asan+notelem"
  std::string backend;        ///< "fluid", "packet", "both", or ""
  long jobs = 0;
  long hardware_jobs = 0;
  double total_seconds = 0.0;
  /// Wall-clock phases in insertion order (name -> seconds).
  std::vector<std::pair<std::string, double>> phases;
  /// Workload counters sorted by key (name -> value).
  std::vector<std::pair<std::string, double>> counters;
  /// Deterministic telemetry counters sorted by name. Populated only when
  /// the run recorded telemetry; byte-identical for the same workload at
  /// any --jobs level — the sentinel's strictest signal.
  std::vector<std::pair<std::string, std::int64_t>> deterministic_counters;
};

/// Renders `record` as one newline-free JSON line (the trailing '\n' is the
/// appender's job, so a record is exactly one ledger line).
[[nodiscard]] std::string to_jsonl(const LedgerRecord& record);

/// Parses one ledger line. nullopt when the line is malformed, truncated,
/// or missing required fields ("schema_version", "bench") — the tolerant
/// path read_ledger uses. Unknown fields are ignored (forward compat).
[[nodiscard]] std::optional<LedgerRecord> parse_record(std::string_view line);

/// A ledger read back from disk: the parseable records in file order plus
/// the count of lines that were skipped as malformed/truncated.
struct LedgerFile {
  std::vector<LedgerRecord> records;
  std::size_t skipped_lines = 0;
};

/// Reads every record from the JSONL file at `path`. Blank lines are
/// ignored; unparseable lines are skipped and counted. Throws
/// std::runtime_error only when the file itself cannot be opened.
[[nodiscard]] LedgerFile read_ledger(const std::string& path);

/// Appends `record` as one line to `path`, creating parent directories as
/// needed. Throws std::runtime_error when the file cannot be written.
void append_record(const std::string& path, const LedgerRecord& record);

/// Builds a record from a finished BenchReport: copies name/timestamp/
/// jobs/phases/counters/total, stamps provenance (git SHA + build flavor),
/// and — when the report carries a telemetry snapshot, i.e. the run
/// actually recorded — the registry's deterministic counters.
[[nodiscard]] LedgerRecord record_from_bench(const BenchReport& bench,
                                             const std::string& backend);

/// Parses a BENCH_<name>.json artifact (util/bench_json's format) into a
/// record, so axiomcc-benchdiff can compare raw artifacts as well as
/// ledger lines. Provenance fields that an artifact does not carry
/// (git_sha, build_flavor, backend) come back "unknown"/"". The embedded
/// telemetry snapshot's top-level "counters" object — the deterministic
/// counters — populates deterministic_counters. nullopt when `json` is not
/// a parseable artifact.
[[nodiscard]] std::optional<LedgerRecord> record_from_artifact(
    std::string_view json);

/// The standard bench epilogue: when `args` requests a ledger
/// (--ledger[=path] / AXIOMCC_LEDGER), builds a record from `bench` and
/// appends it, reporting the path on stderr (stdout stays pure for --csv
/// and byte-diff consumers). Returns the path appended to, or nullopt when
/// no ledger was requested. IO failures warn on stderr rather than throw:
/// a full disk must not turn a finished bench run into a failure.
std::optional<std::string> maybe_append(const ArgParser& args,
                                        const BenchReport& bench,
                                        const std::string& backend);

}  // namespace axiomcc::ledger
