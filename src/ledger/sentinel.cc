#include "ledger/sentinel.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>

#include "util/check.h"
#include "util/stats.h"

namespace axiomcc::ledger {

namespace {

/// How a timing metric's direction is read. Durations gate the build;
/// rates and percentages are derived from the same wall-clock (cells/sec
/// is the inverse of the phase that produced it), so flagging them too
/// would double-count every regression — they stay informational.
enum class TimingRole { kDuration, kInformational };

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::optional<TimingRole> timing_role(const std::string& name) {
  if (name.find("per_sec") != std::string::npos ||
      name.find("speedup") != std::string::npos || ends_with(name, "_pct")) {
    return TimingRole::kInformational;
  }
  if (ends_with(name, "_sec") || ends_with(name, "_seconds") ||
      ends_with(name, "_us") || ends_with(name, "_ms")) {
    return TimingRole::kDuration;
  }
  return std::nullopt;
}

double delta_pct_of(double baseline, double current) {
  if (baseline == 0.0) return current == 0.0 ? 0.0 : 100.0;
  return (current - baseline) / std::abs(baseline) * 100.0;
}

std::string short_sha(const std::string& sha) {
  return sha.size() > 9 ? sha.substr(0, 9) : sha;
}

std::string record_label(const LedgerRecord& record) {
  return "sha " + short_sha(record.git_sha) + " (" + record.build_flavor +
         ", jobs=" + std::to_string(record.jobs) + ")";
}

/// Verdict for one duration-style timing value against a band centered on
/// `center` with half-width `band` (both in the metric's own units).
Verdict duration_verdict(double center, double current, double band,
                         double floor, bool is_seconds) {
  if (is_seconds && center < floor && current < floor) {
    return Verdict::kWithinNoise;
  }
  if (current > center + band) return Verdict::kRegressed;
  if (current < center - band) return Verdict::kImproved;
  return Verdict::kWithinNoise;
}

struct TimingSource {
  double value = 0.0;
  bool is_seconds = false;  ///< phases/total_seconds: the floor applies
  TimingRole role = TimingRole::kDuration;
};

/// Flattens a record's timing metrics into name -> value (+role). Phases
/// and total_seconds are durations in seconds; counters carry the role
/// their name implies.
std::map<std::string, TimingSource> timing_metrics(
    const LedgerRecord& record) {
  std::map<std::string, TimingSource> out;
  for (const auto& [name, seconds] : record.phases) {
    out["phase/" + name] = {seconds, true, TimingRole::kDuration};
  }
  out["total_seconds"] = {record.total_seconds, true, TimingRole::kDuration};
  for (const auto& [name, value] : record.counters) {
    if (const auto role = timing_role(name)) {
      out["counter/" + name] = {value, false, *role};
    }
  }
  return out;
}

/// Flattens a record's exact metrics into name -> value. Deterministic
/// telemetry counters are prefixed to keep the namespace unambiguous.
std::map<std::string, double> exact_metrics(const LedgerRecord& record) {
  std::map<std::string, double> out;
  for (const auto& [name, value] : record.counters) {
    if (!timing_role(name)) out["counter/" + name] = value;
  }
  for (const auto& [name, value] : record.deterministic_counters) {
    out["det/" + name] = static_cast<double>(value);
  }
  return out;
}

MetricDelta::Kind exact_kind(const std::string& flat_name) {
  return flat_name.rfind("det/", 0) == 0 ? MetricDelta::Kind::kDeterministic
                                         : MetricDelta::Kind::kExact;
}

/// Exact comparison common to both diff flavors: key union of baseline vs
/// current, kMismatch on any value difference.
void diff_exact(const std::map<std::string, double>& baseline,
                const std::map<std::string, double>& current,
                DiffReport& report) {
  for (const auto& [name, base_value] : baseline) {
    MetricDelta delta;
    delta.name = name;
    delta.kind = exact_kind(name);
    delta.baseline = base_value;
    const auto it = current.find(name);
    if (it == current.end()) {
      delta.current = std::nan("");
      delta.verdict = Verdict::kRemoved;
      delta.note = "absent in current run";
    } else {
      delta.current = it->second;
      const bool equal =
          base_value == it->second ||
          (std::isnan(base_value) && std::isnan(it->second));
      delta.delta_pct = delta_pct_of(base_value, it->second);
      delta.verdict = equal ? Verdict::kIdentical : Verdict::kMismatch;
      if (!equal) {
        delta.note = delta.kind == MetricDelta::Kind::kDeterministic
                         ? "deterministic counter drifted"
                         : "exact counter drifted";
      }
    }
    report.deltas.push_back(std::move(delta));
  }
  for (const auto& [name, value] : current) {
    if (baseline.contains(name)) continue;
    MetricDelta delta;
    delta.name = name;
    delta.kind = exact_kind(name);
    delta.baseline = std::nan("");
    delta.current = value;
    delta.verdict = Verdict::kAdded;
    delta.note = "absent in baseline";
    report.deltas.push_back(std::move(delta));
  }
}

void apply_timing_verdict(MetricDelta& delta, const TimingSource& current,
                          double center, double band,
                          const SentinelOptions& options) {
  delta.delta_pct = delta_pct_of(center, current.value);
  if (current.role == TimingRole::kInformational) {
    // Rates invert: a drop is the interesting direction, but they never
    // gate (see TimingRole). Report the band position as a note only.
    delta.verdict = Verdict::kWithinNoise;
    if (current.value < center - band) {
      delta.note = "rate dropped (informational; durations gate)";
    } else if (current.value > center + band) {
      delta.note = "rate rose (informational)";
    }
    return;
  }
  delta.verdict =
      duration_verdict(center, current.value, band,
                       options.timing_floor_seconds, current.is_seconds);
  if (delta.verdict == Verdict::kRegressed) {
    char note[96];
    std::snprintf(note, sizeof(note), "outside band: > %+.1f%% over baseline",
                  band / (center > 0.0 ? center : 1.0) * 100.0);
    delta.note = note;
  }
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kIdentical: return "identical";
    case Verdict::kWithinNoise: return "within-noise";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kMismatch: return "MISMATCH";
    case Verdict::kAdded: return "added";
    case Verdict::kRemoved: return "removed";
    case Verdict::kSkipped: return "skipped";
  }
  return "?";
}

bool is_timing_counter(const std::string& name) {
  return timing_role(name).has_value();
}

bool DiffReport::regression() const {
  return std::any_of(deltas.begin(), deltas.end(), [](const MetricDelta& d) {
    return d.verdict == Verdict::kRegressed || d.verdict == Verdict::kMismatch;
  });
}

std::size_t DiffReport::count(Verdict verdict) const {
  return static_cast<std::size_t>(
      std::count_if(deltas.begin(), deltas.end(),
                    [verdict](const MetricDelta& d) {
                      return d.verdict == verdict;
                    }));
}

DiffReport diff_records(const LedgerRecord& baseline,
                        const LedgerRecord& current,
                        const SentinelOptions& options) {
  DiffReport report;
  report.bench = current.bench;
  report.baseline_label = record_label(baseline);
  report.current_label = record_label(current);
  report.timings_compared = baseline.jobs == current.jobs &&
                            baseline.build_flavor == current.build_flavor;

  diff_exact(exact_metrics(baseline), exact_metrics(current), report);

  const auto base_timings = timing_metrics(baseline);
  for (const auto& [name, cur] : timing_metrics(current)) {
    MetricDelta delta;
    delta.name = name;
    delta.kind = MetricDelta::Kind::kTiming;
    delta.current = cur.value;
    const auto it = base_timings.find(name);
    if (it == base_timings.end()) {
      delta.baseline = std::nan("");
      delta.verdict = Verdict::kAdded;
      delta.note = "absent in baseline";
    } else if (!report.timings_compared) {
      delta.baseline = it->second.value;
      delta.verdict = Verdict::kSkipped;
      delta.note = "wall-clock not comparable (jobs/flavor differ)";
    } else {
      delta.baseline = it->second.value;
      const double band =
          options.timing_threshold * std::abs(it->second.value);
      apply_timing_verdict(delta, cur, it->second.value, band, options);
    }
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

DiffReport diff_against_window(std::span<const LedgerRecord> window,
                               const LedgerRecord& current,
                               const SentinelOptions& options) {
  AXIOMCC_EXPECTS(!window.empty());
  if (window.size() == 1) {
    DiffReport report = diff_records(window.front(), current, options);
    // Single-record windows still carry a two-point history so the
    // sparkline shows direction.
    for (MetricDelta& delta : report.deltas) {
      if (std::isfinite(delta.baseline) && std::isfinite(delta.current)) {
        delta.history = {delta.baseline, delta.current};
      }
    }
    return report;
  }

  DiffReport report;
  report.bench = current.bench;
  report.baseline_label =
      "window of " + std::to_string(window.size()) + " runs (newest " +
      short_sha(window.back().git_sha) + ")";
  report.current_label = record_label(current);

  // Exact metrics compare against the newest window record; their history
  // spans the whole window (determinism holds across jobs levels).
  diff_exact(exact_metrics(window.back()), exact_metrics(current), report);
  for (MetricDelta& delta : report.deltas) {
    for (const LedgerRecord& record : window) {
      const auto metrics = exact_metrics(record);
      const auto it = metrics.find(delta.name);
      if (it != metrics.end()) delta.history.push_back(it->second);
    }
    if (std::isfinite(delta.current)) delta.history.push_back(delta.current);
  }

  // Timing metrics compare against the median ± max(k·MAD, threshold·median)
  // of the wall-clock-comparable window records.
  std::vector<const LedgerRecord*> comparable;
  for (const LedgerRecord& record : window) {
    if (record.jobs == current.jobs &&
        record.build_flavor == current.build_flavor) {
      comparable.push_back(&record);
    }
  }
  report.timings_compared = !comparable.empty();

  for (const auto& [name, cur] : timing_metrics(current)) {
    MetricDelta delta;
    delta.name = name;
    delta.kind = MetricDelta::Kind::kTiming;
    delta.current = cur.value;

    std::vector<double> values;
    for (const LedgerRecord* record : comparable) {
      const auto metrics = timing_metrics(*record);
      const auto it = metrics.find(name);
      if (it != metrics.end()) values.push_back(it->second.value);
    }
    // History shows every comparable prior value plus the current one.
    delta.history = values;
    delta.history.push_back(cur.value);

    if (values.empty()) {
      delta.baseline = std::nan("");
      delta.verdict = report.timings_compared ? Verdict::kAdded
                                              : Verdict::kSkipped;
      delta.note = report.timings_compared
                       ? "absent in window"
                       : "no wall-clock-comparable window runs";
    } else {
      const double median = median_of(values);
      const double mad = mad_of(values, median);
      const double band = std::max(options.mad_k * mad,
                                   options.timing_threshold * std::abs(median));
      delta.baseline = median;
      apply_timing_verdict(delta, cur, median, band, options);
    }
    report.deltas.push_back(std::move(delta));
  }
  return report;
}

std::string render_report(
    const DiffReport& report,
    const std::function<std::string(const std::vector<double>&)>& spark) {
  std::ostringstream os;
  os << "=== benchdiff: " << report.bench << " — " << report.current_label
     << " vs " << report.baseline_label << " ===\n";
  if (!report.timings_compared) {
    os << "(timings skipped: runs are not wall-clock comparable)\n";
  }

  std::size_t name_width = 6;
  for (const MetricDelta& delta : report.deltas) {
    name_width = std::max(name_width, delta.name.size());
  }

  const auto kind_name = [](MetricDelta::Kind kind) {
    switch (kind) {
      case MetricDelta::Kind::kTiming: return "timing";
      case MetricDelta::Kind::kExact: return "exact ";
      case MetricDelta::Kind::kDeterministic: return "determ";
    }
    return "?     ";
  };

  for (const MetricDelta& delta : report.deltas) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-*s  %s  %12.6g  %12.6g  %+7.1f%%  %-12s",
                  static_cast<int>(name_width), delta.name.c_str(),
                  kind_name(delta.kind), delta.baseline, delta.current,
                  delta.delta_pct, verdict_name(delta.verdict));
    os << line;
    if (spark && delta.history.size() >= 2) {
      os << "  " << spark(delta.history);
    }
    if (!delta.note.empty()) os << "  [" << delta.note << "]";
    os << '\n';
  }

  const std::size_t regressed = report.count(Verdict::kRegressed);
  const std::size_t mismatched = report.count(Verdict::kMismatch);
  os << "verdict: " << regressed << " regressed, " << mismatched
     << " mismatched, " << report.count(Verdict::kImproved) << " improved, "
     << report.count(Verdict::kWithinNoise) + report.count(Verdict::kIdentical)
     << " steady";
  if (report.count(Verdict::kSkipped) > 0) {
    os << ", " << report.count(Verdict::kSkipped) << " skipped";
  }
  os << " — " << (report.regression() ? "REGRESSION" : "OK") << '\n';
  return os.str();
}

}  // namespace axiomcc::ledger
