// sentinel.h — the regression sentinel: noise-aware diffing of ledger runs.
//
// Two classes of metric, two rules:
//
//  * exact metrics — deterministic telemetry counters and workload counters
//    (cells, agreement counts). Any difference is a kMismatch: these are
//    byte-identical by construction for the same workload at any --jobs
//    level, so a drift is a real behavior change, never noise.
//  * timing metrics — phases, total_seconds, and counters whose name marks
//    them as rate/time-derived (*_sec, *per_sec, *_us, *_ms, *speedup*,
//    *_pct). Wall-clock is noisy, so a single-baseline compare flags only
//    deltas beyond `timing_threshold` (default 20%), and a window compare
//    flags only values outside median ± max(mad_k·MAD, threshold·median)
//    of the rolling window. Timings below `timing_floor_seconds` are never
//    flagged (the noise floor of sub-10ms phases swamps any signal), and
//    timings are skipped entirely when the two runs used different --jobs
//    or build flavors — wall-clock across those is not comparable.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ledger/ledger.h"

namespace axiomcc::ledger {

enum class Verdict {
  kIdentical,    ///< exact metric, equal
  kWithinNoise,  ///< timing metric inside the band
  kImproved,     ///< timing metric below the band (informational)
  kRegressed,    ///< timing metric above the band — fails the gate
  kMismatch,     ///< exact metric differs — fails the gate
  kAdded,        ///< present now, absent in baseline (informational)
  kRemoved,      ///< present in baseline, absent now (informational)
  kSkipped,      ///< timing metric, runs not wall-clock comparable
};

[[nodiscard]] const char* verdict_name(Verdict verdict);

/// One compared metric.
struct MetricDelta {
  enum class Kind { kTiming, kExact, kDeterministic };
  std::string name;
  Kind kind = Kind::kExact;
  double baseline = 0.0;  ///< window compares: the rolling median
  double current = 0.0;
  double delta_pct = 0.0;  ///< (current - baseline) / |baseline| * 100
  Verdict verdict = Verdict::kIdentical;
  std::string note;
  /// The metric's values across the window, oldest first, current last —
  /// what axiomcc-benchdiff renders as a sparkline. Empty in two-record
  /// compares.
  std::vector<double> history;
};

struct SentinelOptions {
  double timing_threshold = 0.20;    ///< relative band half-width
  double mad_k = 3.0;                ///< MAD multiplier for window bands
  double timing_floor_seconds = 0.01;  ///< timings below are never flagged
};

/// A full comparison of one run against a baseline (or window).
struct DiffReport {
  std::string bench;
  std::string baseline_label;  ///< e.g. "sha 7538765 (jobs=4)" or "window of 5"
  std::string current_label;
  bool timings_compared = true;  ///< false when jobs/flavor differ
  std::vector<MetricDelta> deltas;

  /// True when any delta fails the gate (kRegressed or kMismatch).
  [[nodiscard]] bool regression() const;
  [[nodiscard]] std::size_t count(Verdict verdict) const;
};

/// Classifies a bench counter name as time-derived (see file comment).
[[nodiscard]] bool is_timing_counter(const std::string& name);

/// Diffs `current` against a single `baseline` record.
[[nodiscard]] DiffReport diff_records(const LedgerRecord& baseline,
                                      const LedgerRecord& current,
                                      const SentinelOptions& options = {});

/// Diffs `current` against a window of prior records (oldest first).
/// Exact metrics compare against the most recent window record; timing
/// metrics against the window's median ± max(mad_k·MAD, threshold·median),
/// using only window records that are wall-clock comparable with `current`
/// (same jobs and build flavor). Expects a non-empty window.
[[nodiscard]] DiffReport diff_against_window(
    std::span<const LedgerRecord> window, const LedgerRecord& current,
    const SentinelOptions& options = {});

/// Renders the report as an aligned ASCII table plus a verdict summary
/// line — what axiomcc-benchdiff prints. When `spark` is set, each metric
/// with a window history gets it appended rendered by `spark` (a
/// values->string function injected so ledger does not depend on the
/// analysis layer).
[[nodiscard]] std::string render_report(
    const DiffReport& report,
    const std::function<std::string(const std::vector<double>&)>& spark = {});

}  // namespace axiomcc::ledger
