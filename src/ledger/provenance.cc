#include "ledger/provenance.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace axiomcc::ledger {

namespace {

std::string run_git_rev_parse() {
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return looks_like_git_sha(out) ? out : std::string("unknown");
}

}  // namespace

bool looks_like_git_sha(const std::string& sha) {
  if (sha.size() < 7 || sha.size() > 64) return false;
  for (const char c : sha) {
    if (std::isxdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

Provenance current_provenance() {
  Provenance prov;
#ifdef AXIOMCC_BUILD_FLAVOR
  prov.build_flavor = AXIOMCC_BUILD_FLAVOR;
#endif
  if (const char* env = std::getenv("AXIOMCC_GIT_SHA");
      env != nullptr && *env != '\0') {
    prov.git_sha = env;
    return prov;
  }
  static const std::string detected = run_git_rev_parse();
  prov.git_sha = detected;
  return prov;
}

}  // namespace axiomcc::ledger
