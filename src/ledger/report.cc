#include "ledger/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <span>
#include <utility>

#include "ledger/sentinel.h"
#include "util/stats.h"

namespace axiomcc::ledger {

namespace {

/// One metric's trajectory across a group's history window.
struct Series {
  std::string name;
  const char* cls = "exact";       ///< "timing" | "exact" | "det"
  std::vector<double> history;     ///< oldest first, newest last.
  /// Per-record core divisor aligned with `history`: the record's own job
  /// count, falling back to the hardware concurrency RECORDED IN THAT RUN
  /// — never the reporting machine's — so a ledger carried across machines
  /// normalizes each run by the cores it actually used.
  std::vector<double> divisors;
};

double record_divisor(const LedgerRecord& record) {
  if (record.jobs > 0) return static_cast<double>(record.jobs);
  if (record.hardware_jobs > 0) return static_cast<double>(record.hardware_jobs);
  return 1.0;
}

std::string fmt_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string fmt_delta(double newest, double median) {
  if (newest == median) return "=";
  if (median == 0.0) return "new";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                (newest - median) / std::abs(median) * 100.0);
  return buf;
}

template <typename Value>
std::optional<double> find_metric(
    const std::vector<std::pair<std::string, Value>>& metrics,
    const std::string& name) {
  for (const auto& [key, value] : metrics) {
    if (key == name) return static_cast<double>(value);
  }
  return std::nullopt;
}

/// Collects the group's metric series in display order: the newest record's
/// phases, then workload counters, then deterministic counters; history is
/// whatever subset of the window carries each metric.
std::vector<Series> collect_series(
    std::span<const LedgerRecord> window) {
  const LedgerRecord& newest = window.back();
  std::vector<Series> series;

  const auto push_history = [&window](Series& s, const auto& member) {
    for (const LedgerRecord& record : window) {
      if (const auto v = find_metric(record.*member, s.name)) {
        s.history.push_back(*v);
        s.divisors.push_back(record_divisor(record));
      }
    }
  };

  for (const auto& [name, seconds] : newest.phases) {
    (void)seconds;
    Series s{name + " (s)", "timing", {}, {}};
    for (const LedgerRecord& record : window) {
      if (const auto v = find_metric(record.phases, name)) {
        s.history.push_back(*v);
        s.divisors.push_back(record_divisor(record));
      }
    }
    series.push_back(std::move(s));
  }
  for (const auto& [name, value] : newest.counters) {
    (void)value;
    Series s{name, is_timing_counter(name) ? "timing" : "exact", {}, {}};
    push_history(s, &LedgerRecord::counters);
    series.push_back(std::move(s));
  }
  for (const auto& [name, value] : newest.deterministic_counters) {
    (void)value;
    Series s{name, "det", {}, {}};
    push_history(s, &LedgerRecord::deterministic_counters);
    series.push_back(std::move(s));
  }
  return series;
}

std::string short_sha(const std::string& sha) {
  return sha.size() > 9 ? sha.substr(0, 9) : sha;
}

}  // namespace

std::string render_ledger_report(
    const std::vector<LedgerRecord>& records, const ReportOptions& options,
    const std::function<std::string(const std::vector<double>&)>& spark) {
  std::map<std::pair<std::string, std::string>, std::vector<LedgerRecord>>
      groups;
  for (const LedgerRecord& record : records) {
    if (!options.bench_filter.empty() && record.bench != options.bench_filter) {
      continue;
    }
    groups[{record.bench, record.backend}].push_back(record);
  }

  std::string out = "# Bench trend report\n\n";
  if (groups.empty()) {
    out += options.bench_filter.empty()
               ? "_Empty ledger — nothing to report._\n"
               : "_No records for bench `" + options.bench_filter + "`._\n";
    return out;
  }

  std::size_t total = 0;
  std::string newest_ts, newest_sha;
  for (const auto& [key, group] : groups) {
    total += group.size();
    if (group.back().timestamp_utc > newest_ts) {
      newest_ts = group.back().timestamp_utc;
      newest_sha = group.back().git_sha;
    }
  }
  out += "_" + std::to_string(total) + " run(s) across " +
         std::to_string(groups.size()) + " bench group(s); newest " +
         newest_ts + " (sha " + short_sha(newest_sha) + ")._\n";

  for (const auto& [key, group] : groups) {
    const std::size_t take = std::min(group.size(), options.max_history);
    const std::span<const LedgerRecord> window(
        group.data() + (group.size() - take), take);
    const LedgerRecord& newest = window.back();

    out += "\n## `" + key.first + "`";
    if (!key.second.empty()) out += " — backend `" + key.second + "`";
    out += "\n\n";
    out += std::to_string(group.size()) + " run(s)";
    if (window.size() > 1) {
      out += " (showing last " + std::to_string(window.size()) + ", " +
             window.front().timestamp_utc + " → " + newest.timestamp_utc + ")";
    }
    out += "; newest sha " + short_sha(newest.git_sha) + ", jobs " +
           std::to_string(newest.jobs) + ", flavor " + newest.build_flavor +
           ".\n\n";

    const bool trend = static_cast<bool>(spark);
    out += trend ? "| Metric | Class | Newest | Per-core | Median | Δ | "
                   "Trend |\n|:--|:--|--:|--:|--:|--:|:--|\n"
                 : "| Metric | Class | Newest | Per-core | Median | Δ |\n"
                   "|:--|:--|--:|--:|--:|--:|\n";

    for (const Series& s : collect_series(window)) {
      if (s.history.empty()) continue;
      const double newest_value = s.history.back();
      // Rate counters get a per-core normalization using EACH record's own
      // recorded core count (its --jobs, else the hardware concurrency it
      // ran with), so throughput compares across runs from machines with
      // different core counts — and the Median/Δ/Trend columns for a rate
      // row compare the normalized values, not raw rates that silently mix
      // job counts.
      const bool is_rate = s.name.find("_per_sec") != std::string::npos;
      std::vector<double> normalized;
      if (is_rate) {
        normalized.reserve(s.history.size());
        for (std::size_t i = 0; i < s.history.size(); ++i) {
          normalized.push_back(s.history[i] / s.divisors[i]);
        }
      }
      const std::vector<double>& compared = is_rate ? normalized : s.history;
      const std::string per_core =
          is_rate ? fmt_value(normalized.back()) : "";
      // Median of the prior runs; with a single run the newest is its own
      // baseline and the delta column shows "=".
      const std::span<const double> prior(compared.data(),
                                          compared.size() - 1);
      const double median =
          prior.empty() ? compared.back() : median_of(prior);
      out += "| `" + s.name + "` | " + s.cls + " | " +
             fmt_value(newest_value) + " | " + per_core + " | " +
             fmt_value(median) + " | " + fmt_delta(compared.back(), median) +
             " |";
      if (trend) {
        out += " " + (compared.size() > 1 ? spark(compared) : "") + " |";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace axiomcc::ledger
