// provenance.h — where did this run come from?
//
// A ledger record is only comparable to another when you know what produced
// it: which commit, which build flavor. Provenance answers both, cheaply
// and without configure-time staleness — the git SHA is resolved at
// runtime (an SHA baked in at configure time lies as soon as you commit).
#pragma once

#include <string>

namespace axiomcc::ledger {

struct Provenance {
  /// Full commit SHA of the working tree, resolved in precedence order:
  /// the AXIOMCC_GIT_SHA environment variable (CI sets this; also the test
  /// override), else `git rev-parse HEAD` run from the current directory,
  /// else "unknown" (tarball builds, no git on PATH).
  std::string git_sha = "unknown";

  /// Build flavor string composed at compile time from the CMake
  /// configuration: the build type plus any "+asan" / "+tsan" / "+notelem"
  /// suffixes (e.g. "Release", "Debug+asan"). "unknown" when the build
  /// system did not define AXIOMCC_BUILD_FLAVOR.
  std::string build_flavor = "unknown";
};

/// The process's provenance. The AXIOMCC_GIT_SHA environment override is
/// consulted on every call (tests pin it); the `git rev-parse` fallback
/// (one subprocess) runs once and is cached for the process lifetime.
[[nodiscard]] Provenance current_provenance();

/// True when `sha` looks like a full or abbreviated hex commit SHA — the
/// sanity filter applied to `git rev-parse` output before trusting it.
[[nodiscard]] bool looks_like_git_sha(const std::string& sha);

}  // namespace axiomcc::ledger
