// runner.h — executes one fuzz scenario on both backends and classifies it.
//
// This is the fuzzer's oracle: a ScenarioDesc is compiled once per backend
// (the packet side under a cwnd clamp so its event count stays bounded), run
// under the guarded runner's invariant monitors, and reduced to a small
// vector of trace metrics per backend. Three signals come out:
//
//  * faults — any stress::FaultReport a backend trips (non-finite or
//    negative windows, aggregate blowup, contract violations, escaping
//    exceptions), plus kNonFiniteScore when a metric estimator produces
//    NaN/Inf from a clean trace;
//  * divergence — the largest normalized gap between the two backends'
//    tail metrics, the fluid-vs-packet disagreement magnitude the ROADMAP's
//    crosscheck item wants maximized;
//  * a novelty key — the scenario's bucketed position in metric space plus
//    its fault/divergence classification, the coverage signal that drives
//    corpus retention.
//
// run_scenario is a pure function of (desc, config): it builds fresh
// protocol instances per call and uses only the const, thread-safe backend
// API, so the fuzz loop can fan it out over the task pool and stay
// bit-reproducible at any job count.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/scenario_text.h"
#include "recorder/recorder.h"
#include "scope/scope.h"
#include "stress/guarded_run.h"

namespace axiomcc::fuzz {

/// How a scenario run is classified, most interesting first.
enum class OutcomeKind : int {
  kClean = 0,      ///< both backends ran clean and agree within threshold.
  kDivergence,     ///< both clean, but metrics diverge beyond threshold.
  kFluidFault,     ///< the fluid backend tripped the guard.
  kPacketFault,    ///< the packet backend tripped the guard.
  kBothFault,      ///< both backends tripped the guard.
};

[[nodiscard]] const char* outcome_kind_name(OutcomeKind kind);

/// Tail metrics comparable across the two backends (all computed from the
/// common Trace by the src/core estimators).
struct TraceMetrics {
  double efficiency = 0.0;
  double mean_loss = 0.0;
  double fairness = 0.0;
  double convergence = 0.0;
  double latency = 0.0;  ///< RTT-inflation bound (Metric VIII).
  long steps = 0;        ///< steps the guard observed.
};

/// Everything one dual-backend execution produced.
struct RunOutcome {
  OutcomeKind kind = OutcomeKind::kClean;
  stress::FaultReport fluid_fault;
  stress::FaultReport packet_fault;
  TraceMetrics fluid;
  TraceMetrics packet;
  /// Max normalized metric gap (0 when either side faulted — a fault is a
  /// stronger signal than any disagreement).
  double divergence = 0.0;
  /// Bucketed position in metric space + outcome classification; equal keys
  /// mean "nothing new here" to the corpus.
  std::uint64_t novelty_key = 0;
  /// Where the finding's post-mortem JSONL landed; "" when none was dumped
  /// (clean run, no `postmortem_dir`, or the recorder is compiled out).
  std::string postmortem_path;

  [[nodiscard]] bool is_finding() const { return kind != OutcomeKind::kClean; }
};

struct RunnerConfig {
  /// Invariant thresholds for both guarded runs.
  stress::GuardConfig guard;
  /// Divergence above this is a finding (tuned so the crosscheck's known
  /// benign score offsets stay below it; see docs/fuzzing.md).
  double divergence_threshold = 0.35;
  /// Packet-side cwnd clamp (the fluid side happily runs 1e9-MSS windows;
  /// packet event counts are proportional to real packets).
  double packet_max_window_mss = 2000.0;
  /// Flight-recorder capture options for both backends. Capture runs when
  /// `record.enabled` is set OR `postmortem_dir` is non-empty (the dump
  /// needs a timeline to dump); otherwise the runner attaches no recorder
  /// and costs exactly what it did before the recorder existed.
  recorder::RecordOptions record;
  /// Streaming metric-scope options for both backends. When `scope.enabled`
  /// each guarded run carries a MetricScope; with capture on, the closed
  /// windows land in the recordings as kMetric events, so `--align` can
  /// localize the first divergent metric window alongside the raw lanes.
  scope::ScopeConfig scope;
  /// When non-empty, every finding (fault or divergence) dumps a
  /// schema-versioned post-mortem — the byte-exact `.scn` reproducer plus
  /// the last recorded events from each backend — into this directory as
  /// `postmortem-scn-<hash>.jsonl`, mirroring the corpus file name.
  std::string postmortem_dir;
};

/// Runs `desc` on both backends and classifies the outcome. Throws only on
/// an invalid desc (compile_scenario's validation) — simulation faults are
/// captured in the outcome, never thrown.
[[nodiscard]] RunOutcome run_scenario(const ScenarioDesc& desc,
                                      const RunnerConfig& config = {});

/// A dual-backend run plus both captured timelines (empty when capture was
/// off or the recorder is compiled out). `axiomcc-inspect --align` uses
/// this to re-execute a reproducer and step-align the two backends.
struct RecordedScenario {
  RunOutcome outcome;
  recorder::Recording fluid;
  recorder::Recording packet;
};

/// `run_scenario` with the recordings kept. Identical classification; the
/// outcome of the two entry points is the same for the same (desc, config).
[[nodiscard]] RecordedScenario run_scenario_recorded(
    const ScenarioDesc& desc, const RunnerConfig& config = {});

/// The expectation a triaged corpus entry should carry for `outcome`.
[[nodiscard]] ExpectDesc expect_for(const RunOutcome& outcome);

/// Whether `outcome` reproduces `expect`: outcome kinds must match, and a
/// non-empty expect detail must match the faulting side's fault kind.
/// An empty expect matches nothing (untriaged entries never "pass").
[[nodiscard]] bool matches_expect(const RunOutcome& outcome,
                                  const ExpectDesc& expect);

}  // namespace axiomcc::fuzz
