#include "fuzz/minimize.h"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace axiomcc::fuzz {

namespace {

/// `v` rounded to `digits` significant decimal digits (prettier reproducers;
/// accepted only if the finding survives the rounding).
double round_sig(double v, int digits) {
  if (v == 0.0 || !std::isfinite(v)) return v;
  const int exponent =
      digits - 1 - static_cast<int>(std::floor(std::log10(std::abs(v))));
  const double mag = std::pow(10.0, exponent);
  return std::round(v * mag) / mag;
}

}  // namespace

MinimizeResult minimize_finding(const ScenarioDesc& desc,
                                const ExpectDesc& target,
                                const RunnerConfig& runner_config,
                                const MinimizeOptions& options) {
  MinimizeResult res;
  res.desc = desc;
  res.desc.expect = ExpectDesc{};
  res.outcome = run_scenario(res.desc, runner_config);
  res.attempts = 1;
  TELEMETRY_COUNT("fuzz.minimize_runs", 1);

  /// Runs `cand`; adopts it as the new smallest reproducer iff it still
  /// matches the target outcome class.
  const auto try_accept = [&](const ScenarioDesc& cand) -> bool {
    if (res.attempts >= options.max_attempts) return false;
    if (cand == res.desc) return false;
    try {
      validate_scenario(cand);
    } catch (const std::invalid_argument&) {
      return false;
    }
    ++res.attempts;
    TELEMETRY_COUNT("fuzz.minimize_runs", 1);
    const RunOutcome outcome = run_scenario(cand, runner_config);
    if (!matches_expect(outcome, target)) return false;
    res.desc = cand;
    res.outcome = outcome;
    ++res.accepted;
    return true;
  };

  bool progressed = true;
  while (progressed && res.attempts < options.max_attempts) {
    progressed = false;

    // Halve the horizon while the finding survives.
    while (res.desc.steps / 2 >= options.min_steps) {
      ScenarioDesc cand = res.desc;
      cand.steps /= 2;
      if (!try_accept(cand)) break;
      progressed = true;
    }

    // Drop senders one at a time (always keeping one).
    for (std::size_t i = 0;
         res.desc.senders.size() > 1 && i < res.desc.senders.size();) {
      ScenarioDesc cand = res.desc;
      cand.senders.erase(cand.senders.begin() + static_cast<long>(i));
      if (try_accept(cand)) {
        progressed = true;
      } else {
        ++i;
      }
    }

    // Shrink cohorts: halve counts toward single senders.
    for (std::size_t i = 0; i < res.desc.senders.size(); ++i) {
      while (res.desc.senders[i].count > 1) {
        ScenarioDesc cand = res.desc;
        cand.senders[i].count /= 2;
        if (!try_accept(cand)) break;
        progressed = true;
      }
    }

    // Prefer the plainest execution mode that still reproduces: scalar
    // execution with a full trace (a finding that needs the batch path or
    // aggregate retention keeps the axis, loudly).
    if (res.desc.batch || res.desc.aggregate_trace) {
      ScenarioDesc cand = res.desc;
      cand.batch = false;
      cand.aggregate_trace = false;
      if (try_accept(cand)) {
        progressed = true;
      } else {
        for (auto member : {&ScenarioDesc::batch, &ScenarioDesc::aggregate_trace}) {
          if (!(res.desc.*member)) continue;
          cand = res.desc;
          cand.*member = false;
          if (try_accept(cand)) progressed = true;
        }
      }
    }

    // Drop the injected-loss process entirely, or failing that collapse a
    // structured process to constant loss at its worst rate.
    if (res.desc.loss.kind != LossDesc::Kind::kNone) {
      ScenarioDesc cand = res.desc;
      cand.loss = LossDesc{};
      if (try_accept(cand)) {
        progressed = true;
      } else if (res.desc.loss.kind != LossDesc::Kind::kConstant) {
        cand = res.desc;
        LossDesc constant;
        constant.kind = LossDesc::Kind::kConstant;
        constant.rate = std::clamp(
            std::max(res.desc.loss.rate, res.desc.loss.bad_rate), 0.0, 0.99);
        cand.loss = constant;
        if (try_accept(cand)) progressed = true;
      }
    }

    // Drop schedule breakpoints one at a time (an empty schedule is the
    // identity, so this subsumes dropping the whole schedule).
    for (auto member : {&ScenarioDesc::bandwidth_scale, &ScenarioDesc::rtt_scale}) {
      for (std::size_t i = 0; i < (res.desc.*member).points.size();) {
        ScenarioDesc cand = res.desc;
        auto& points = (cand.*member).points;
        points.erase(points.begin() + static_cast<long>(i));
        if (try_accept(cand)) {
          progressed = true;
        } else {
          ++i;
        }
      }
    }

    // Round magnitudes to two significant digits and integerize per-sender
    // step offsets, so the checked-in reproducer reads like a hand-written
    // scenario.
    {
      ScenarioDesc cand = res.desc;
      cand.bandwidth_mbps = round_sig(cand.bandwidth_mbps, 2);
      cand.rtt_ms = round_sig(cand.rtt_ms, 2);
      cand.buffer_mss = round_sig(cand.buffer_mss, 2);
      for (SenderDesc& sender : cand.senders) {
        sender.initial_window_mss =
            std::max(1.0, std::round(sender.initial_window_mss));
        sender.start_step = std::max(0.0, std::round(sender.start_step));
        if (sender.stop_step >= 0.0) {
          sender.stop_step = std::round(sender.stop_step);
        }
      }
      for (auto member :
           {&ScenarioDesc::bandwidth_scale, &ScenarioDesc::rtt_scale}) {
        for (SchedulePoint& point : (cand.*member).points) {
          point.scale = round_sig(point.scale, 2);
        }
      }
      if (try_accept(cand)) progressed = true;
    }

    // Canonicalize the seed last: many findings are seed-independent, and a
    // canonical seed dedups reproducers that differ only in RNG state.
    if (res.desc.seed != 1) {
      ScenarioDesc cand = res.desc;
      cand.seed = 1;
      if (try_accept(cand)) progressed = true;
    }
  }

  return res;
}

}  // namespace axiomcc::fuzz
