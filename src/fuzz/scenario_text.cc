#include "fuzz/scenario_text.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cc/registry.h"
#include "engine/workload.h"
#include "fluid/loss_model.h"
#include "stress/perturbation.h"

namespace axiomcc::fuzz {

namespace {

constexpr const char* kHeader = "axiomcc-scenario v1";

[[noreturn]] void fail(std::size_t line, const std::string& why) {
  throw std::invalid_argument("scenario line " + std::to_string(line) + ": " +
                              why);
}

[[nodiscard]] const char* loss_kind_name(LossDesc::Kind kind) {
  switch (kind) {
    case LossDesc::Kind::kNone: return "none";
    case LossDesc::Kind::kConstant: return "constant";
    case LossDesc::Kind::kBernoulli: return "bernoulli";
    case LossDesc::Kind::kGilbertElliott: return "gilbert";
    case LossDesc::Kind::kStorm: return "storm";
  }
  return "none";
}

/// Splits a line on single spaces; no empty tokens (the serializer never
/// emits doubled spaces, and hand-written files get them collapsed).
[[nodiscard]] std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string token;
  std::istringstream in(line);
  while (in >> token) out.push_back(token);
  return out;
}

[[nodiscard]] double parse_num(const std::string& token, std::size_t line) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    fail(line, "malformed number '" + token + "'");
  }
  if (pos != token.size()) fail(line, "malformed number '" + token + "'");
  if (!std::isfinite(value)) fail(line, "non-finite number '" + token + "'");
  return value;
}

[[nodiscard]] long parse_long(const std::string& token, std::size_t line) {
  std::size_t pos = 0;
  long value = 0;
  try {
    value = std::stol(token, &pos);
  } catch (const std::exception&) {
    fail(line, "malformed integer '" + token + "'");
  }
  if (pos != token.size()) fail(line, "malformed integer '" + token + "'");
  return value;
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& token,
                                      std::size_t line) {
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(token, &pos);
  } catch (const std::exception&) {
    fail(line, "malformed seed '" + token + "'");
  }
  if (pos != token.size()) fail(line, "malformed seed '" + token + "'");
  return static_cast<std::uint64_t>(value);
}

void require_rate(double v, const char* what) {
  if (v < 0.0 || v >= 1.0) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1), got " +
                                format_double(v));
  }
}

void require_prob(double v, const char* what) {
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1], got " +
                                format_double(v));
  }
}

void append_schedule(std::string& out, const char* directive,
                     const ScheduleDesc& schedule) {
  for (const SchedulePoint& p : schedule.points) {
    out += directive;
    out += ' ';
    out += std::to_string(p.at);
    out += ' ';
    out += format_double(p.scale);
    out += '\n';
  }
}

void validate_schedule(const ScheduleDesc& schedule, const char* what) {
  long prev = -1;
  for (const SchedulePoint& p : schedule.points) {
    if (p.at < 0) {
      throw std::invalid_argument(std::string(what) +
                                  " breakpoint at negative step " +
                                  std::to_string(p.at));
    }
    if (p.at <= prev) {
      throw std::invalid_argument(
          std::string(what) + " breakpoints out of order at step " +
          std::to_string(p.at) + " (timestamps must strictly increase)");
    }
    if (!(p.scale > 0.0) || !std::isfinite(p.scale)) {
      throw std::invalid_argument(std::string(what) +
                                  " scale must be positive and finite, got " +
                                  format_double(p.scale));
    }
    prev = p.at;
  }
}

}  // namespace

double ScheduleDesc::eval(long step) const {
  double scale = 1.0;
  for (const SchedulePoint& p : points) {
    if (p.at > step) break;
    scale = p.scale;
  }
  return scale;
}

std::string format_double(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;  // unreachable: %.17g always round-trips a finite double
}

std::string serialize_scenario(const ScenarioDesc& desc) {
  std::string out;
  out += kHeader;
  out += '\n';
  out += "link " + format_double(desc.bandwidth_mbps) + ' ' +
         format_double(desc.rtt_ms) + ' ' + format_double(desc.buffer_mss) +
         '\n';
  out += "steps " + std::to_string(desc.steps) + '\n';
  out += "window " + format_double(desc.min_window_mss) + ' ' +
         format_double(desc.max_window_mss) + '\n';
  out += "tail " + format_double(desc.tail_fraction) + '\n';
  out += "seed " + std::to_string(desc.seed) + '\n';
  // Execution axes are emitted only when non-default, so every pre-axis
  // corpus file still round-trips byte-identically.
  if (desc.aggregate_trace) out += "trace aggregate\n";
  if (desc.batch) out += "exec batch\n";
  if (desc.topology_bottlenecks > 0) {
    out += "topology parking-lot " + std::to_string(desc.topology_bottlenecks) +
           '\n';
  }
  switch (desc.workload.kind) {
    case WorkloadDesc::Kind::kNone:
      break;
    case WorkloadDesc::Kind::kIncast:
      out += "workload incast " + std::to_string(desc.workload.flows) + ' ' +
             format_double(desc.workload.spread_steps) + '\n';
      break;
    case WorkloadDesc::Kind::kOnOff:
      out += "workload onoff " + std::to_string(desc.workload.flows) + ' ' +
             format_double(desc.workload.mean_on_steps) + ' ' +
             format_double(desc.workload.mean_off_steps) + ' ' +
             format_double(desc.workload.alpha) + '\n';
      break;
  }
  for (const SenderDesc& s : desc.senders) {
    if (s.count > 1) {
      out += "senders " + std::to_string(s.count) + ' ';
    } else {
      out += "sender ";
    }
    out += format_double(s.initial_window_mss) + ' ' +
           format_double(s.start_step) + ' ' + format_double(s.stop_step) +
           ' ' + s.protocol + '\n';
  }
  out += "loss ";
  out += loss_kind_name(desc.loss.kind);
  switch (desc.loss.kind) {
    case LossDesc::Kind::kNone:
      break;
    case LossDesc::Kind::kConstant:
      out += ' ' + format_double(desc.loss.rate);
      break;
    case LossDesc::Kind::kBernoulli:
      out += ' ' + format_double(desc.loss.prob) + ' ' +
             format_double(desc.loss.rate);
      break;
    case LossDesc::Kind::kGilbertElliott:
      out += ' ' + format_double(desc.loss.p_gb) + ' ' +
             format_double(desc.loss.p_bg) + ' ' +
             format_double(desc.loss.good_rate) + ' ' +
             format_double(desc.loss.bad_rate);
      break;
    case LossDesc::Kind::kStorm:
      out += ' ' + std::to_string(desc.loss.start) + ' ' +
             std::to_string(desc.loss.end) + ' ' +
             format_double(desc.loss.p_gb) + ' ' +
             format_double(desc.loss.p_bg) + ' ' +
             format_double(desc.loss.good_rate) + ' ' +
             format_double(desc.loss.bad_rate);
      break;
  }
  out += '\n';
  append_schedule(out, "bw", desc.bandwidth_scale);
  append_schedule(out, "rtt", desc.rtt_scale);
  if (!desc.expect.empty()) {
    out += "expect " + desc.expect.outcome;
    if (!desc.expect.detail.empty()) out += ' ' + desc.expect.detail;
    out += '\n';
  }
  return out;
}

ScenarioDesc parse_scenario(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  // The header must be the first non-comment, non-blank line (checked-in
  // corpus entries carry a triage comment block above it).
  bool have_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    have_header = line == kHeader;
    break;
  }
  if (!have_header) {
    throw std::invalid_argument(
        "scenario missing header (expected first content line '" +
        std::string(kHeader) + "')");
  }

  ScenarioDesc desc;
  desc.senders.clear();
  std::map<std::string, bool> seen;
  const auto once = [&seen, &line_no](const std::string& directive) {
    if (seen[directive]) fail(line_no, "duplicate '" + directive + "' line");
    seen[directive] = true;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& directive = tok[0];
    const auto require_argc = [&](std::size_t argc) {
      if (tok.size() != argc + 1) {
        fail(line_no, "'" + directive + "' expects " + std::to_string(argc) +
                          " value(s), got " + std::to_string(tok.size() - 1));
      }
    };

    if (directive == "link") {
      once("link");
      require_argc(3);
      desc.bandwidth_mbps = parse_num(tok[1], line_no);
      desc.rtt_ms = parse_num(tok[2], line_no);
      desc.buffer_mss = parse_num(tok[3], line_no);
    } else if (directive == "steps") {
      once("steps");
      require_argc(1);
      desc.steps = parse_long(tok[1], line_no);
    } else if (directive == "window") {
      once("window");
      require_argc(2);
      desc.min_window_mss = parse_num(tok[1], line_no);
      desc.max_window_mss = parse_num(tok[2], line_no);
    } else if (directive == "tail") {
      once("tail");
      require_argc(1);
      desc.tail_fraction = parse_num(tok[1], line_no);
    } else if (directive == "seed") {
      once("seed");
      require_argc(1);
      desc.seed = parse_u64(tok[1], line_no);
    } else if (directive == "sender" || directive == "senders") {
      // The protocol spec is the rest of the line (specs contain commas and
      // parens, never spaces the serializer cares about). "senders" carries
      // a leading cohort count.
      const bool cohort = directive == "senders";
      const std::size_t base = cohort ? 2 : 1;
      if (tok.size() < base + 4) {
        fail(line_no, cohort ? "'senders' expects <count> <init_w> <start> "
                               "<stop> <protocol>"
                             : "'sender' expects <init_w> <start> <stop> "
                               "<protocol>");
      }
      SenderDesc s;
      if (cohort) s.count = parse_long(tok[1], line_no);
      s.initial_window_mss = parse_num(tok[base], line_no);
      s.start_step = parse_num(tok[base + 1], line_no);
      s.stop_step = parse_num(tok[base + 2], line_no);
      s.protocol = tok[base + 3];
      for (std::size_t i = base + 4; i < tok.size(); ++i) {
        s.protocol += " " + tok[i];
      }
      desc.senders.push_back(std::move(s));
    } else if (directive == "trace") {
      once("trace");
      require_argc(1);
      if (tok[1] == "aggregate") {
        desc.aggregate_trace = true;
      } else if (tok[1] == "full") {
        desc.aggregate_trace = false;
      } else {
        fail(line_no,
             "unknown trace detail '" + tok[1] + "' (expected full|aggregate)");
      }
    } else if (directive == "exec") {
      once("exec");
      require_argc(1);
      if (tok[1] == "batch") {
        desc.batch = true;
      } else if (tok[1] == "scalar") {
        desc.batch = false;
      } else {
        fail(line_no,
             "unknown exec mode '" + tok[1] + "' (expected scalar|batch)");
      }
    } else if (directive == "topology") {
      once("topology");
      require_argc(2);
      if (tok[1] != "parking-lot") {
        fail(line_no,
             "unknown topology kind '" + tok[1] + "' (expected parking-lot)");
      }
      desc.topology_bottlenecks =
          static_cast<int>(parse_long(tok[2], line_no));
    } else if (directive == "workload") {
      once("workload");
      if (tok.size() < 2) fail(line_no, "'workload' expects a kind");
      if (tok[1] == "incast") {
        require_argc(3);
        desc.workload.kind = WorkloadDesc::Kind::kIncast;
        desc.workload.flows = parse_long(tok[2], line_no);
        desc.workload.spread_steps = parse_num(tok[3], line_no);
      } else if (tok[1] == "onoff") {
        require_argc(5);
        desc.workload.kind = WorkloadDesc::Kind::kOnOff;
        desc.workload.flows = parse_long(tok[2], line_no);
        desc.workload.mean_on_steps = parse_num(tok[3], line_no);
        desc.workload.mean_off_steps = parse_num(tok[4], line_no);
        desc.workload.alpha = parse_num(tok[5], line_no);
      } else {
        fail(line_no,
             "unknown workload kind '" + tok[1] + "' (expected incast|onoff)");
      }
    } else if (directive == "loss") {
      once("loss");
      if (tok.size() < 2) fail(line_no, "'loss' expects a kind");
      const std::string& kind = tok[1];
      if (kind == "none") {
        require_argc(1);
        desc.loss.kind = LossDesc::Kind::kNone;
      } else if (kind == "constant") {
        require_argc(2);
        desc.loss.kind = LossDesc::Kind::kConstant;
        desc.loss.rate = parse_num(tok[2], line_no);
      } else if (kind == "bernoulli") {
        require_argc(3);
        desc.loss.kind = LossDesc::Kind::kBernoulli;
        desc.loss.prob = parse_num(tok[2], line_no);
        desc.loss.rate = parse_num(tok[3], line_no);
      } else if (kind == "gilbert") {
        require_argc(5);
        desc.loss.kind = LossDesc::Kind::kGilbertElliott;
        desc.loss.p_gb = parse_num(tok[2], line_no);
        desc.loss.p_bg = parse_num(tok[3], line_no);
        desc.loss.good_rate = parse_num(tok[4], line_no);
        desc.loss.bad_rate = parse_num(tok[5], line_no);
      } else if (kind == "storm") {
        require_argc(7);
        desc.loss.kind = LossDesc::Kind::kStorm;
        desc.loss.start = parse_long(tok[2], line_no);
        desc.loss.end = parse_long(tok[3], line_no);
        desc.loss.p_gb = parse_num(tok[4], line_no);
        desc.loss.p_bg = parse_num(tok[5], line_no);
        desc.loss.good_rate = parse_num(tok[6], line_no);
        desc.loss.bad_rate = parse_num(tok[7], line_no);
      } else {
        fail(line_no, "unknown loss kind '" + kind +
                          "' (expected none|constant|bernoulli|gilbert|storm)");
      }
    } else if (directive == "bw" || directive == "rtt") {
      require_argc(2);
      ScheduleDesc& schedule =
          directive == "bw" ? desc.bandwidth_scale : desc.rtt_scale;
      SchedulePoint p;
      p.at = parse_long(tok[1], line_no);
      p.scale = parse_num(tok[2], line_no);
      if (!schedule.points.empty() && p.at <= schedule.points.back().at) {
        fail(line_no, "'" + directive + "' breakpoints out of order at step " +
                          std::to_string(p.at) +
                          " (timestamps must strictly increase)");
      }
      schedule.points.push_back(p);
    } else if (directive == "expect") {
      once("expect");
      if (tok.size() < 2 || tok.size() > 3) {
        fail(line_no, "'expect' expects <outcome> [<detail>]");
      }
      desc.expect.outcome = tok[1];
      desc.expect.detail = tok.size() == 3 ? tok[2] : "";
    } else {
      fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  validate_scenario(desc);
  return desc;
}

void validate_scenario(const ScenarioDesc& desc) {
  if (!(desc.bandwidth_mbps > 0.0) || !std::isfinite(desc.bandwidth_mbps)) {
    throw std::invalid_argument("link bandwidth must be positive, got " +
                                format_double(desc.bandwidth_mbps));
  }
  if (!(desc.rtt_ms > 0.0) || !std::isfinite(desc.rtt_ms)) {
    throw std::invalid_argument("link RTT must be positive, got " +
                                format_double(desc.rtt_ms));
  }
  if (desc.buffer_mss < 0.0 || !std::isfinite(desc.buffer_mss)) {
    throw std::invalid_argument("link buffer must be >= 0, got " +
                                format_double(desc.buffer_mss));
  }
  if (desc.steps <= 0) {
    throw std::invalid_argument("steps must be positive, got " +
                                std::to_string(desc.steps));
  }
  if (desc.min_window_mss < 0.0 ||
      desc.max_window_mss < desc.min_window_mss) {
    throw std::invalid_argument("window bounds must satisfy 0 <= min <= max");
  }
  if (!(desc.tail_fraction > 0.0) || desc.tail_fraction > 1.0) {
    throw std::invalid_argument("tail fraction must be in (0, 1], got " +
                                format_double(desc.tail_fraction));
  }
  if (desc.senders.empty()) {
    throw std::invalid_argument("scenario needs at least one sender");
  }
  if (desc.topology_bottlenecks < 0 || desc.topology_bottlenecks > 16) {
    throw std::invalid_argument(
        "topology bottleneck count must be in [0, 16], got " +
        std::to_string(desc.topology_bottlenecks));
  }
  if (desc.workload.kind != WorkloadDesc::Kind::kNone) {
    if (desc.workload.flows < 1 || desc.workload.flows > 256) {
      throw std::invalid_argument(
          "workload flow count must be in [1, 256], got " +
          std::to_string(desc.workload.flows));
    }
    if (desc.workload.kind == WorkloadDesc::Kind::kIncast &&
        (desc.workload.spread_steps < 0.0 ||
         !std::isfinite(desc.workload.spread_steps))) {
      throw std::invalid_argument("incast arrival spread must be >= 0, got " +
                                  format_double(desc.workload.spread_steps));
    }
    if (desc.workload.kind == WorkloadDesc::Kind::kOnOff &&
        (!(desc.workload.mean_on_steps > 0.0) ||
         !(desc.workload.mean_off_steps > 0.0) ||
         !(desc.workload.alpha > 0.0) ||
         !std::isfinite(desc.workload.mean_on_steps) ||
         !std::isfinite(desc.workload.mean_off_steps) ||
         !std::isfinite(desc.workload.alpha))) {
      throw std::invalid_argument(
          "on-off workload durations and Pareto shape must be positive");
    }
  }
  for (const SenderDesc& s : desc.senders) {
    if (s.initial_window_mss < 0.0 || !std::isfinite(s.initial_window_mss)) {
      throw std::invalid_argument("sender initial window must be >= 0");
    }
    if (s.start_step < 0.0 || !std::isfinite(s.start_step)) {
      throw std::invalid_argument("sender start step must be >= 0");
    }
    if (s.protocol.empty()) {
      throw std::invalid_argument("sender protocol spec is empty");
    }
    if (s.count < 1) {
      throw std::invalid_argument("sender cohort count must be >= 1, got " +
                                  std::to_string(s.count));
    }
  }
  switch (desc.loss.kind) {
    case LossDesc::Kind::kNone:
      break;
    case LossDesc::Kind::kConstant:
      require_rate(desc.loss.rate, "constant loss rate");
      break;
    case LossDesc::Kind::kBernoulli:
      require_prob(desc.loss.prob, "bernoulli episode probability");
      require_rate(desc.loss.rate, "bernoulli episode rate");
      break;
    case LossDesc::Kind::kStorm:
      if (desc.loss.end < desc.loss.start) {
        throw std::invalid_argument("storm window end before start");
      }
      [[fallthrough]];
    case LossDesc::Kind::kGilbertElliott:
      require_prob(desc.loss.p_gb, "gilbert p_good_to_bad");
      require_prob(desc.loss.p_bg, "gilbert p_bad_to_good");
      require_rate(desc.loss.good_rate, "gilbert good-state rate");
      require_rate(desc.loss.bad_rate, "gilbert bad-state rate");
      break;
  }
  validate_schedule(desc.bandwidth_scale, "bw");
  validate_schedule(desc.rtt_scale, "rtt");
}

CompiledScenario compile_scenario(const ScenarioDesc& desc) {
  validate_scenario(desc);

  CompiledScenario out;
  out.spec.link = fluid::make_link_mbps(desc.bandwidth_mbps, desc.rtt_ms,
                                        desc.buffer_mss);
  out.spec.steps = desc.steps;
  out.spec.min_window_mss = desc.min_window_mss;
  out.spec.max_window_mss = desc.max_window_mss;
  out.spec.tail_fraction = desc.tail_fraction;
  out.spec.seed = desc.seed;

  const int bottlenecks = desc.topology_bottlenecks;
  if (bottlenecks > 0) {
    out.spec.topology.links.assign(static_cast<std::size_t>(bottlenecks),
                                   out.spec.link);
  }

  out.prototypes.reserve(desc.senders.size());
  for (std::size_t i = 0; i < desc.senders.size(); ++i) {
    const SenderDesc& s = desc.senders[i];
    out.prototypes.push_back(cc::make_protocol(s.protocol));
    // Parking-lot routes are derived from the slot index: the first slot is
    // the long flow over every bottleneck, later slots cross one each.
    std::vector<int> route;
    if (bottlenecks > 0) {
      if (i == 0) {
        route.resize(static_cast<std::size_t>(bottlenecks));
        for (int l = 0; l < bottlenecks; ++l) {
          route[static_cast<std::size_t>(l)] = l;
        }
      } else {
        route = {static_cast<int>((i - 1) % static_cast<std::size_t>(
                                                bottlenecks))};
      }
    }
    out.spec.senders.push_back(engine::SenderSlot{
        out.prototypes.back().get(), s.initial_window_mss, s.start_step,
        s.stop_step, s.count, std::move(route)});
  }

  switch (desc.workload.kind) {
    case WorkloadDesc::Kind::kNone:
      break;
    case WorkloadDesc::Kind::kIncast:
      out.spec.workload.kind = engine::WorkloadKind::kIncast;
      out.spec.workload.flows = desc.workload.flows;
      out.spec.workload.spread_steps = desc.workload.spread_steps;
      break;
    case WorkloadDesc::Kind::kOnOff:
      out.spec.workload.kind = engine::WorkloadKind::kOnOffHeavyTail;
      out.spec.workload.flows = desc.workload.flows;
      out.spec.workload.mean_on_steps = desc.workload.mean_on_steps;
      out.spec.workload.mean_off_steps = desc.workload.mean_off_steps;
      out.spec.workload.alpha = desc.workload.alpha;
      break;
  }

  // The execution axes must not change what the oracle can see: an
  // aggregate trace tracks the whole population (fuzz scenarios are small,
  // so the estimators keep reading every sender's series and classify
  // exactly as they would a full trace), and the batch path runs at jobs=1
  // — already byte-identical to any job count, and keeping run_scenario
  // pure for the fuzz loop's own fan-out.
  if (desc.aggregate_trace) {
    out.spec.trace_detail = fluid::TraceDetail::kAggregate;
    // Workload generators change the run's population; track the expanded
    // count so the oracle still reads every sender's series.
    long total = 0;
    for (const engine::SenderSlot& slot : engine::expand_workload(out.spec)) {
      total += slot.count;
    }
    out.spec.tracked_senders = static_cast<int>(std::max<long>(total, 1));
  }
  out.spec.batch = desc.batch;
  out.spec.jobs = 1;

  if (!desc.bandwidth_scale.empty()) {
    out.spec.bandwidth_scale = [schedule = desc.bandwidth_scale](long step) {
      return schedule.eval(step);
    };
  }
  if (!desc.rtt_scale.empty()) {
    out.spec.rtt_scale = [schedule = desc.rtt_scale](long step) {
      return schedule.eval(step);
    };
  }

  if (desc.loss.kind != LossDesc::Kind::kNone) {
    out.spec.loss = [loss = desc.loss](std::uint64_t seed)
        -> std::unique_ptr<fluid::LossInjector> {
      switch (loss.kind) {
        case LossDesc::Kind::kConstant:
          return std::make_unique<fluid::ConstantLoss>(loss.rate);
        case LossDesc::Kind::kBernoulli:
          return std::make_unique<fluid::BernoulliLoss>(loss.prob, loss.rate,
                                                        seed);
        case LossDesc::Kind::kGilbertElliott:
          return std::make_unique<fluid::GilbertElliottLoss>(
              loss.p_gb, loss.p_bg, loss.good_rate, loss.bad_rate, seed);
        case LossDesc::Kind::kStorm: {
          stress::StormParams params;
          params.p_good_to_bad = loss.p_gb;
          params.p_bad_to_good = loss.p_bg;
          params.good_rate = loss.good_rate;
          params.bad_rate = loss.bad_rate;
          return std::make_unique<stress::LossStorm>(loss.start, loss.end,
                                                     params, seed);
        }
        case LossDesc::Kind::kNone:
          break;
      }
      return std::make_unique<fluid::NoLoss>();
    };
  }

  return out;
}

}  // namespace axiomcc::fuzz
