#include "fuzz/mutator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "telemetry/telemetry.h"

namespace axiomcc::fuzz {

namespace {

/// Picks a uniformly random element.
template <typename T>
const T& pick(const std::vector<T>& values, Rng& rng) {
  return values[rng.uniform_index(values.size())];
}

/// Multiplies `v` by a random factor in [0.5, 2) — the generic "perturb
/// magnitude" move.
double perturb(double v, Rng& rng) { return v * rng.uniform(0.5, 2.0); }

/// A random breakpoint step within the run.
long random_step(const ScenarioDesc& desc, Rng& rng) {
  return static_cast<long>(
      rng.uniform_index(static_cast<std::uint64_t>(desc.steps)));
}

void mutate_schedule(ScheduleDesc& schedule, const ScenarioDesc& desc,
                     Rng& rng) {
  const std::uint64_t op = rng.uniform_index(schedule.points.empty() ? 2 : 5);
  switch (op) {
    case 0:  // add a breakpoint with a dictionary scale
      schedule.points.push_back(SchedulePoint{
          random_step(desc, rng), pick(Mutator::scale_dictionary(), rng)});
      break;
    case 1: {  // install a canonical gauntlet shape
      const std::uint64_t shape = rng.uniform_index(3);
      const long start = random_step(desc, rng);
      const long span = std::max<long>(desc.steps / 8, 10);
      schedule.points.clear();
      if (shape == 0) {  // outage: drop to a residual, then restore
        schedule.points = {SchedulePoint{start, 1e-3},
                           SchedulePoint{start + span, 1.0}};
      } else if (shape == 1) {  // flap: square wave
        double level = 1.0;
        for (long at = start, i = 0; i < 6; ++i, at += span / 2 + 1) {
          level = level == 1.0 ? 0.05 : 1.0;
          schedule.points.push_back(SchedulePoint{at, level});
        }
      } else {  // sawtooth ramp
        for (long i = 0; i < 6; ++i) {
          schedule.points.push_back(SchedulePoint{
              start + i * (span / 3 + 1), 0.25 + 0.15 * static_cast<double>(i)});
        }
      }
      break;
    }
    case 2:  // remove a breakpoint
      schedule.points.erase(schedule.points.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.uniform_index(schedule.points.size())));
      break;
    case 3: {  // perturb a breakpoint's scale
      SchedulePoint& p =
          schedule.points[rng.uniform_index(schedule.points.size())];
      p.scale = rng.bernoulli(0.5) ? perturb(p.scale, rng)
                                   : pick(Mutator::scale_dictionary(), rng);
      break;
    }
    case 4: {  // move a breakpoint in time
      SchedulePoint& p =
          schedule.points[rng.uniform_index(schedule.points.size())];
      p.at = random_step(desc, rng);
      break;
    }
  }
}

void mutate_loss(LossDesc& loss, const ScenarioDesc& desc, Rng& rng) {
  if (loss.kind == LossDesc::Kind::kNone || rng.bernoulli(0.4)) {
    // Switch to a fresh model with dictionary parameters.
    const std::uint64_t kind = 1 + rng.uniform_index(4);
    loss = LossDesc{};
    loss.kind = static_cast<LossDesc::Kind>(kind);
    loss.rate = pick(Mutator::loss_rate_dictionary(), rng);
    loss.prob = rng.uniform(0.05, 0.5);
    loss.p_gb = rng.uniform(0.05, 0.4);
    loss.p_bg = rng.uniform(0.05, 0.4);
    loss.good_rate = rng.bernoulli(0.5) ? 0.0 : 0.01;
    loss.bad_rate = pick(Mutator::loss_rate_dictionary(), rng);
    loss.start = random_step(desc, rng);
    loss.end = loss.start + std::max<long>(desc.steps / 6, 10);
    return;
  }
  // Perturb the existing model's magnitudes.
  loss.rate = perturb(loss.rate, rng);
  loss.prob = perturb(loss.prob, rng);
  loss.p_gb = perturb(loss.p_gb, rng);
  loss.p_bg = perturb(loss.p_bg, rng);
  loss.bad_rate = perturb(loss.bad_rate, rng);
}

void mutate_sender(SenderDesc& sender, const ScenarioDesc& desc, Rng& rng) {
  switch (rng.uniform_index(5)) {
    case 0:
      sender.protocol = pick(Mutator::protocol_dictionary(), rng);
      break;
    case 1:
      sender.initial_window_mss =
          rng.bernoulli(0.5) ? perturb(sender.initial_window_mss, rng)
                             : rng.uniform(1.0, 120.0);
      break;
    case 2:
      sender.start_step = static_cast<double>(random_step(desc, rng));
      break;
    case 3:
      // A finite stop, sometimes immediately after the start (the nasty
      // join-then-leave edge), sometimes forever.
      if (rng.bernoulli(0.3)) {
        sender.stop_step = -1.0;
      } else {
        sender.stop_step =
            sender.start_step +
            (rng.bernoulli(0.2) ? 1.0
                                : static_cast<double>(random_step(desc, rng)));
      }
      break;
    case 4:
      // Expand to a homogeneous cohort (or collapse back to one sender) —
      // sanitize clamps into the limits box.
      sender.count =
          rng.bernoulli(0.3) ? 1 : 1 + static_cast<long>(rng.uniform_index(12));
      break;
  }
}

}  // namespace

ScenarioDesc Mutator::mutate(const ScenarioDesc& base, Rng& rng) const {
  ScenarioDesc out = base;
  const std::uint64_t edits = 1 + rng.uniform_index(3);
  for (std::uint64_t edit = 0; edit < edits; ++edit) {
    TELEMETRY_COUNT("fuzz.mutations", 1);
    switch (rng.uniform_index(13)) {
      case 0:
        out.bandwidth_mbps = rng.bernoulli(0.3)
                                 ? rng.uniform(limits_.min_mbps, limits_.max_mbps)
                                 : perturb(out.bandwidth_mbps, rng);
        break;
      case 1:
        out.rtt_ms = rng.bernoulli(0.3)
                         ? rng.uniform(limits_.min_rtt_ms, limits_.max_rtt_ms)
                         : perturb(out.rtt_ms, rng);
        break;
      case 2:
        // Buffers: perturbed, or the nasty extremes (none / one packet).
        out.buffer_mss = rng.bernoulli(0.3)
                             ? (rng.bernoulli(0.5) ? 0.0 : 1.0)
                             : perturb(out.buffer_mss, rng);
        break;
      case 3:
        out.steps = static_cast<long>(
            static_cast<double>(out.steps) * rng.uniform(0.6, 1.6));
        break;
      case 4:  // add a sender
        out.senders.push_back(SenderDesc{
            pick(protocol_dictionary(), rng), rng.uniform(1.0, 60.0),
            static_cast<double>(random_step(out, rng)), -1.0});
        break;
      case 5:  // remove a sender
        if (out.senders.size() > 1) {
          out.senders.erase(out.senders.begin() +
                            static_cast<std::ptrdiff_t>(
                                rng.uniform_index(out.senders.size())));
        }
        break;
      case 6:
        mutate_sender(out.senders[rng.uniform_index(out.senders.size())], out,
                      rng);
        break;
      case 7:
        mutate_loss(out.loss, out, rng);
        break;
      case 8:
        mutate_schedule(
            rng.bernoulli(0.5) ? out.bandwidth_scale : out.rtt_scale, out,
            rng);
        break;
      case 9:
        out.seed = rng();
        break;
      case 10:
        // Flip an execution axis: aggregate trace retention or the fluid
        // batch path. Both preserve the outcome class by contract, so this
        // move widens code coverage, not behavior space.
        if (rng.bernoulli(0.5)) {
          out.aggregate_trace = !out.aggregate_trace;
        } else {
          out.batch = !out.batch;
        }
        break;
      case 11:
        // Walk the topology axis: collapse to the single link, or pick a
        // parking-lot depth (routes derive from slot order at compile time).
        out.topology_bottlenecks =
            rng.bernoulli(0.3)
                ? 0
                : 1 + static_cast<int>(rng.uniform_index(
                          static_cast<std::uint64_t>(limits_.max_bottlenecks)));
        break;
      case 12:
        // Walk the workload axis: none, incast fan-in, or heavy-tailed
        // on-off trains; parameters perturbed when the kind survives.
        if (rng.bernoulli(0.3)) {
          out.workload = WorkloadDesc{};
        } else {
          if (out.workload.empty() || rng.bernoulli(0.4)) {
            out.workload.kind = rng.bernoulli(0.5)
                                    ? WorkloadDesc::Kind::kIncast
                                    : WorkloadDesc::Kind::kOnOff;
          }
          out.workload.flows = 1 + static_cast<long>(rng.uniform_index(
                                       static_cast<std::uint64_t>(
                                           limits_.max_workload_flows)));
          out.workload.spread_steps = perturb(out.workload.spread_steps, rng);
          out.workload.mean_on_steps =
              perturb(out.workload.mean_on_steps, rng);
          out.workload.mean_off_steps =
              perturb(out.workload.mean_off_steps, rng);
          out.workload.alpha = rng.uniform(1.1, 2.5);
        }
        break;
    }
  }
  sanitize(out);
  return out;
}

ScenarioDesc Mutator::splice(const ScenarioDesc& a, const ScenarioDesc& b,
                             Rng& rng) const {
  TELEMETRY_COUNT("fuzz.splices", 1);
  const ScenarioDesc& x = a;
  const ScenarioDesc& y = b;
  ScenarioDesc out;
  const ScenarioDesc& link_src = rng.bernoulli(0.5) ? x : y;
  out.bandwidth_mbps = link_src.bandwidth_mbps;
  out.rtt_ms = link_src.rtt_ms;
  out.buffer_mss = link_src.buffer_mss;
  out.steps = (rng.bernoulli(0.5) ? x : y).steps;
  out.min_window_mss = link_src.min_window_mss;
  out.max_window_mss = link_src.max_window_mss;
  out.tail_fraction = link_src.tail_fraction;
  out.seed = (rng.bernoulli(0.5) ? x : y).seed;
  out.aggregate_trace = (rng.bernoulli(0.5) ? x : y).aggregate_trace;
  out.batch = (rng.bernoulli(0.5) ? x : y).batch;
  out.topology_bottlenecks = (rng.bernoulli(0.5) ? x : y).topology_bottlenecks;
  out.workload = (rng.bernoulli(0.5) ? x : y).workload;
  out.senders = (rng.bernoulli(0.5) ? x : y).senders;
  out.loss = (rng.bernoulli(0.5) ? x : y).loss;

  // Schedules splice at a cut step: one parent's breakpoints before the
  // cut, the other's after.
  const auto splice_schedule = [&rng, &out](const ScheduleDesc& from_a,
                                            const ScheduleDesc& from_b) {
    if (rng.bernoulli(0.5)) return rng.bernoulli(0.5) ? from_a : from_b;
    const long cut = static_cast<long>(rng.uniform_index(
        static_cast<std::uint64_t>(std::max<long>(out.steps, 1))));
    ScheduleDesc spliced;
    for (const SchedulePoint& p : from_a.points) {
      if (p.at < cut) spliced.points.push_back(p);
    }
    for (const SchedulePoint& p : from_b.points) {
      if (p.at >= cut) spliced.points.push_back(p);
    }
    return spliced;
  };
  out.bandwidth_scale = splice_schedule(x.bandwidth_scale, y.bandwidth_scale);
  out.rtt_scale = splice_schedule(x.rtt_scale, y.rtt_scale);

  sanitize(out);
  return out;
}

void Mutator::sanitize(ScenarioDesc& desc) const {
  desc.bandwidth_mbps =
      std::clamp(desc.bandwidth_mbps, limits_.min_mbps, limits_.max_mbps);
  desc.rtt_ms = std::clamp(desc.rtt_ms, limits_.min_rtt_ms, limits_.max_rtt_ms);
  desc.buffer_mss = std::clamp(desc.buffer_mss, 0.0, limits_.max_buffer_mss);
  desc.steps = std::clamp(desc.steps, limits_.min_steps, limits_.max_steps);
  desc.min_window_mss = std::clamp(desc.min_window_mss, 0.0, 10.0);
  desc.max_window_mss = std::clamp(desc.max_window_mss, 100.0, 1e9);
  desc.tail_fraction = std::clamp(desc.tail_fraction, 0.1, 1.0);
  desc.expect = ExpectDesc{};  // mutants are untriaged by definition
  desc.topology_bottlenecks =
      std::clamp(desc.topology_bottlenecks, 0, limits_.max_bottlenecks);

  if (desc.senders.empty()) desc.senders.push_back(SenderDesc{});
  if (desc.senders.size() > limits_.max_senders) {
    desc.senders.resize(limits_.max_senders);
  }
  const double max_step = static_cast<double>(desc.steps);
  // Cohort clamp: each slot into [1, max_cohort_count], and the expanded
  // population into max_total_senders — later slots give way first, but
  // every slot keeps at least one sender.
  long budget = std::max<long>(limits_.max_total_senders,
                               static_cast<long>(desc.senders.size()));
  long slots_left = static_cast<long>(desc.senders.size());
  for (SenderDesc& s : desc.senders) {
    --slots_left;
    s.count = std::clamp<long>(s.count, 1, limits_.max_cohort_count);
    s.count = std::min(s.count, std::max<long>(1, budget - slots_left));
    budget -= s.count;
    s.initial_window_mss =
        std::clamp(s.initial_window_mss, 1.0, limits_.max_initial_window_mss);
    s.start_step = std::clamp(s.start_step, 0.0, max_step);
    if (s.stop_step >= 0.0) {
      s.stop_step = std::clamp(s.stop_step, s.start_step, max_step);
    } else {
      s.stop_step = -1.0;
    }
  }

  // Canonicalize the workload descriptor like the loss one below: only the
  // active kind's parameters survive, so two descs that serialize
  // identically compare equal. Generated flows multiply the slot
  // population, so the per-slot flow count is additionally capped to keep
  // the expanded population inside max_total_senders.
  {
    long population = 0;
    for (const SenderDesc& s : desc.senders) population += s.count;
    WorkloadDesc workload;
    workload.kind = desc.workload.kind;
    if (workload.kind != WorkloadDesc::Kind::kNone) {
      const long flow_cap =
          std::max<long>(1, limits_.max_total_senders /
                                std::max<long>(population, 1));
      workload.flows = std::clamp<long>(
          desc.workload.flows, 1,
          std::min(limits_.max_workload_flows, flow_cap));
      if (workload.kind == WorkloadDesc::Kind::kIncast) {
        workload.spread_steps =
            std::clamp(desc.workload.spread_steps, 0.0, max_step);
      } else {
        // Bound the on/off means away from zero so a run spawns at most a
        // handful of trains per flow (engine caps generated slots anyway).
        workload.mean_on_steps =
            std::clamp(desc.workload.mean_on_steps, 10.0, max_step);
        workload.mean_off_steps =
            std::clamp(desc.workload.mean_off_steps, 10.0, max_step);
        workload.alpha = std::clamp(desc.workload.alpha, 1.05, 3.0);
      }
    }
    desc.workload = workload;
  }

  // Canonicalize the loss descriptor: clamp the active fields and zero the
  // inactive ones, so two descs that serialize identically compare equal
  // (the text format only carries the active kind's parameters).
  LossDesc loss;
  loss.kind = desc.loss.kind;
  switch (loss.kind) {
    case LossDesc::Kind::kNone:
      break;
    case LossDesc::Kind::kConstant:
      loss.rate = std::clamp(desc.loss.rate, 0.0, limits_.max_loss_rate);
      break;
    case LossDesc::Kind::kBernoulli:
      loss.prob = std::clamp(desc.loss.prob, 0.0, 1.0);
      loss.rate = std::clamp(desc.loss.rate, 0.0, limits_.max_loss_rate);
      break;
    case LossDesc::Kind::kStorm:
      loss.start = std::clamp<long>(desc.loss.start, 0, desc.steps);
      loss.end = std::clamp<long>(desc.loss.end, loss.start, desc.steps);
      [[fallthrough]];
    case LossDesc::Kind::kGilbertElliott:
      loss.p_gb = std::clamp(desc.loss.p_gb, 0.0, 1.0);
      loss.p_bg = std::clamp(desc.loss.p_bg, 0.0, 1.0);
      loss.good_rate =
          std::clamp(desc.loss.good_rate, 0.0, limits_.max_loss_rate);
      loss.bad_rate =
          std::clamp(desc.loss.bad_rate, 0.0, limits_.max_loss_rate);
      break;
  }
  desc.loss = loss;

  for (ScheduleDesc* schedule : {&desc.bandwidth_scale, &desc.rtt_scale}) {
    std::vector<SchedulePoint>& points = schedule->points;
    for (SchedulePoint& p : points) {
      p.at = std::clamp<long>(p.at, 0, desc.steps - 1);
      p.scale = std::clamp(p.scale, limits_.min_scale, limits_.max_scale);
    }
    std::sort(points.begin(), points.end(),
              [](const SchedulePoint& a, const SchedulePoint& b) {
                return a.at < b.at;
              });
    // Strictly increasing timestamps: keep the last point written at each
    // step (later mutations win).
    std::vector<SchedulePoint> unique;
    unique.reserve(points.size());
    for (const SchedulePoint& p : points) {
      if (!unique.empty() && unique.back().at == p.at) {
        unique.back() = p;
      } else {
        unique.push_back(p);
      }
    }
    points = std::move(unique);
    if (points.size() > limits_.max_schedule_points) {
      points.resize(limits_.max_schedule_points);
    }
  }
}

std::vector<ScenarioDesc> Mutator::seed_corpus() {
  std::vector<ScenarioDesc> seeds;

  {  // Plain homogeneous baseline.
    ScenarioDesc d;
    d.senders = {SenderDesc{"reno", 1.0, 0.0, -1.0},
                 SenderDesc{"reno", 40.0, 0.0, -1.0}};
    seeds.push_back(d);
  }
  {  // Deep mid-run outage.
    ScenarioDesc d;
    d.senders = {SenderDesc{"aimd(1,0.5)", 1.0, 0.0, -1.0},
                 SenderDesc{"aimd(1,0.5)", 30.0, 0.0, -1.0}};
    d.bandwidth_scale.points = {SchedulePoint{150, 1e-3},
                                SchedulePoint{200, 1.0}};
    seeds.push_back(d);
  }
  {  // Link flap (square wave).
    ScenarioDesc d;
    d.senders = {SenderDesc{"cubic(0.4,0.8)", 1.0, 0.0, -1.0},
                 SenderDesc{"reno", 20.0, 0.0, -1.0}};
    for (long i = 0; i < 8; ++i) {
      d.bandwidth_scale.points.push_back(
          SchedulePoint{100 + i * 25, i % 2 == 0 ? 0.05 : 1.0});
    }
    seeds.push_back(d);
  }
  {  // Loss storm over a protocol mix.
    ScenarioDesc d;
    d.senders = {SenderDesc{"mimd(1.01,0.875)", 1.0, 0.0, -1.0},
                 SenderDesc{"aimd(1,0.5)", 20.0, 0.0, -1.0}};
    d.loss.kind = LossDesc::Kind::kStorm;
    d.loss.start = 120;
    d.loss.end = 240;
    d.loss.p_gb = 0.2;
    d.loss.p_bg = 0.3;
    d.loss.good_rate = 0.0;
    d.loss.bad_rate = 0.3;
    seeds.push_back(d);
  }
  {  // Persistent RTT inflation step.
    ScenarioDesc d;
    d.senders = {SenderDesc{"vegas(2,4)", 1.0, 0.0, -1.0},
                 SenderDesc{"reno", 10.0, 0.0, -1.0}};
    d.rtt_scale.points = {SchedulePoint{200, 3.0}};
    seeds.push_back(d);
  }
  {  // Flow churn: staggered joins and leaves over a standing flow.
    ScenarioDesc d;
    d.senders = {SenderDesc{"reno", 1.0, 0.0, -1.0},
                 SenderDesc{"cubic(0.4,0.8)", 1.0, 80.0, 280.0},
                 SenderDesc{"aimd(1,0.5)", 1.0, 160.0, 360.0},
                 SenderDesc{"mimd(1.01,0.875)", 1.0, 240.0, -1.0}};
    seeds.push_back(d);
  }
  {  // Constant random loss (the Metric VI shape) on a lone sender.
    ScenarioDesc d;
    d.senders = {SenderDesc{"robust_aimd(1,0.8,0.01)", 1.0, 0.0, -1.0}};
    d.loss.kind = LossDesc::Kind::kConstant;
    d.loss.rate = 0.05;
    seeds.push_back(d);
  }
  {  // Bursty wireless-style loss under a BBR-like/PCC mix.
    ScenarioDesc d;
    d.senders = {SenderDesc{"bbr", 1.0, 0.0, -1.0},
                 SenderDesc{"pcc", 10.0, 0.0, -1.0}};
    d.loss.kind = LossDesc::Kind::kBernoulli;
    d.loss.prob = 0.1;
    d.loss.rate = 0.3;
    seeds.push_back(d);
  }
  {  // Two-bottleneck parking lot: slot 0 is the long flow over both hops,
    // the cross flows each pin one bottleneck.
    ScenarioDesc d;
    d.senders = {SenderDesc{"reno", 1.0, 0.0, -1.0},
                 SenderDesc{"reno", 1.0, 0.0, -1.0},
                 SenderDesc{"reno", 1.0, 0.0, -1.0}};
    d.topology_bottlenecks = 2;
    seeds.push_back(d);
  }
  {  // Incast fan-in: one slot fanned out into near-simultaneous arrivals.
    ScenarioDesc d;
    d.senders = {SenderDesc{"cubic(0.4,0.8)", 1.0, 40.0, -1.0}};
    d.workload.kind = WorkloadDesc::Kind::kIncast;
    d.workload.flows = 4;
    d.workload.spread_steps = 16.0;
    seeds.push_back(d);
  }
  {  // A homogeneous cohort on the batch path with an aggregate trace —
    // seeds the execution-axis space (SoA kernels + population statistics).
    ScenarioDesc d;
    d.senders = {SenderDesc{"aimd(1,0.5)", 1.0, 0.0, -1.0, 8},
                 SenderDesc{"cubic(0.4,0.8)", 20.0, 0.0, -1.0}};
    d.aggregate_trace = true;
    d.batch = true;
    seeds.push_back(d);
  }

  Mutator mutator;
  for (ScenarioDesc& d : seeds) mutator.sanitize(d);
  return seeds;
}

const std::vector<std::string>& Mutator::protocol_dictionary() {
  static const std::vector<std::string> dictionary{
      "reno",
      "aimd(1,0.5)",
      "aimd(10,0.9)",
      "aimd(0.2,0.1)",
      "mimd(1.01,0.875)",
      "mimd(1.25,0.5)",
      "bin(1,1,1,0.5)",
      "bin(1,1,0.5,0.5)",
      "cubic(0.4,0.8)",
      "cubic(4,0.9)",
      "robust_aimd(1,0.8,0.01)",
      "vegas(2,4)",
      "pcc",
      "bbr",
      "cautious",
      "highspeed",
      "westwood",
      "illinois",
      "veno",
      "scalable",
      "cubic-linux",
  };
  return dictionary;
}

const std::vector<double>& Mutator::scale_dictionary() {
  static const std::vector<double> dictionary{
      1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.5, 2.0, 4.0, 8.0};
  return dictionary;
}

const std::vector<double>& Mutator::loss_rate_dictionary() {
  static const std::vector<double> dictionary{0.001, 0.01, 0.05,
                                              0.1,   0.3,  0.5};
  return dictionary;
}

}  // namespace axiomcc::fuzz
