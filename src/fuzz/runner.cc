#include "fuzz/runner.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/metrics.h"
#include "engine/backend.h"
#include "fuzz/fuzzer.h"
#include "recorder/postmortem.h"
#include "telemetry/telemetry.h"

namespace axiomcc::fuzz {

namespace {

/// Metrics from a guarded trace. A trace too short for the tail estimators
/// (a fault in the first steps) yields all-zero metrics; a clean run whose
/// estimators produce NaN/Inf upgrades the fault to kNonFiniteScore.
TraceMetrics reduce_trace(const stress::GuardedResult& result,
                          double tail_fraction,
                          stress::FaultReport& fault) {
  TraceMetrics out;
  out.steps = result.fault.steps_observed;
  if (result.trace.num_steps() < 4) return out;

  core::EstimatorConfig cfg;
  cfg.tail_fraction = tail_fraction;
  const stress::FaultReport metric_fault = stress::guard_invoke([&] {
    out.efficiency = core::measure_efficiency(result.trace, cfg);
    out.mean_loss = core::measure_mean_loss(result.trace, cfg);
    out.fairness = core::measure_fairness(result.trace, cfg);
    out.convergence = core::measure_convergence(result.trace, cfg);
    out.latency = core::measure_latency_avoidance(result.trace, cfg);
  });
  if (!metric_fault.ok()) {
    if (fault.ok()) fault = metric_fault;
    return TraceMetrics{0.0, 0.0, 0.0, 0.0, 0.0, out.steps};
  }
  const bool finite =
      std::isfinite(out.efficiency) && std::isfinite(out.mean_loss) &&
      std::isfinite(out.fairness) && std::isfinite(out.convergence) &&
      std::isfinite(out.latency);
  if (!finite && fault.ok()) {
    fault.kind = stress::FaultKind::kNonFiniteScore;
    fault.detail = "trace metric came out NaN/Inf";
  }
  return out;
}

/// Largest normalized gap between the backends' tail metrics. The unit
/// metrics (efficiency, fairness, convergence, loss rate) compare by
/// absolute difference; the unbounded RTT-inflation bound is normalized by
/// the larger side so a 4x-vs-8x inflation counts like 0.5, not 4.
double metric_divergence(const TraceMetrics& f, const TraceMetrics& p) {
  double d = 0.0;
  d = std::max(d, std::abs(f.efficiency - p.efficiency));
  d = std::max(d, std::abs(f.mean_loss - p.mean_loss));
  d = std::max(d, std::abs(f.fairness - p.fairness));
  d = std::max(d, std::abs(f.convergence - p.convergence));
  d = std::max(d, std::abs(f.latency - p.latency) /
                      std::max({1.0, f.latency, p.latency}));
  return d;
}

/// Bucket for a [0, 1] metric: 0..9.
std::uint64_t unit_bucket(double v) {
  const double clamped = std::clamp(v, 0.0, 1.0);
  return std::min<std::uint64_t>(9, static_cast<std::uint64_t>(clamped * 10.0));
}

/// Log-spaced bucket for a non-negative, possibly unbounded metric: 0 below
/// `floor`, then one bucket per decade, capped at 9.
std::uint64_t log_bucket(double v, double floor) {
  if (!(v > floor)) return 0;
  const double decades = std::log10(v / floor);
  return std::min<std::uint64_t>(
      9, 1 + static_cast<std::uint64_t>(std::max(0.0, decades)));
}

std::uint64_t novelty_key_for(const RunOutcome& o, const ScenarioDesc& desc) {
  std::uint64_t key = 0;
  const auto push = [&key](std::uint64_t value, unsigned bits) {
    key = (key << bits) | value;
  };
  push(static_cast<std::uint64_t>(o.kind), 3);
  push(static_cast<std::uint64_t>(o.fluid_fault.kind), 4);
  push(static_cast<std::uint64_t>(o.packet_fault.kind), 4);
  // The scenario's position in the paper's metric space, one axis at a time
  // (the three remaining axioms — fast-utilization, robustness, and
  // TCP-friendliness — are properties of a protocol under a prescribed
  // probe scenario, not of an arbitrary trace, so the signature uses the
  // five trace-measurable dimensions per backend).
  push(unit_bucket(o.fluid.efficiency), 4);
  push(unit_bucket(o.fluid.fairness), 4);
  push(unit_bucket(o.fluid.convergence), 4);
  push(log_bucket(o.fluid.mean_loss, 1e-4), 4);
  push(log_bucket(o.fluid.latency, 1e-2), 4);
  push(unit_bucket(o.packet.efficiency), 4);
  push(log_bucket(o.packet.mean_loss, 1e-4), 4);
  // Disagreement magnitude in quarter-steps, capped at 2.0+.
  push(std::min<std::uint64_t>(
           15, static_cast<std::uint64_t>(std::max(0.0, o.divergence) * 4.0)),
       4);
  long population = 0;
  for (const SenderDesc& s : desc.senders) population += s.count;
  push(std::min<std::uint64_t>(3, static_cast<std::uint64_t>(population) - 1),
       2);
  push(static_cast<std::uint64_t>(desc.loss.kind), 3);
  // The execution axes: a scenario that reproduces under the batch path or
  // aggregate retention is novel relative to its scalar/full twin, so the
  // corpus keeps both and the fuzzer keeps dragging the new machinery
  // through the scenario space.
  push(desc.aggregate_trace ? 1 : 0, 1);
  push(desc.batch ? 1 : 0, 1);
  // The topology/workload axes: the same metric signature reached through a
  // parking lot or a generated flow pattern is a different corner of the
  // backend stack than its single-link static twin.
  push(std::min<std::uint64_t>(
           3, static_cast<std::uint64_t>(desc.topology_bottlenecks)),
       2);
  push(static_cast<std::uint64_t>(desc.workload.kind), 2);
  return key;
}

}  // namespace

const char* outcome_kind_name(OutcomeKind kind) {
  switch (kind) {
    case OutcomeKind::kClean: return "clean";
    case OutcomeKind::kDivergence: return "divergence";
    case OutcomeKind::kFluidFault: return "fluid-fault";
    case OutcomeKind::kPacketFault: return "packet-fault";
    case OutcomeKind::kBothFault: return "both-fault";
  }
  return "clean";
}

RunOutcome run_scenario(const ScenarioDesc& desc, const RunnerConfig& config) {
  return run_scenario_recorded(desc, config).outcome;
}

RecordedScenario run_scenario_recorded(const ScenarioDesc& desc,
                                       const RunnerConfig& config) {
  TELEMETRY_COUNT("fuzz.runs", 1);

  RecordedScenario rs;
  RunOutcome& out = rs.outcome;

  // A post-mortem needs a timeline to dump, so a non-empty dump directory
  // implies capture even when the caller left `record.enabled` off.
  const bool want_record =
      recorder::compiled_in() &&
      (config.record.enabled || !config.postmortem_dir.empty());
  recorder::RecordOptions ropts = config.record;
  ropts.enabled = want_record;

  {
    CompiledScenario fluid = compile_scenario(desc);
    fluid.spec.record = ropts;
    const auto rec = engine::make_recorder(fluid.spec);
    fluid.spec.record_sink = rec.get();
    fluid.spec.scope = config.scope;
    const auto sc = engine::make_scope(fluid.spec);
    fluid.spec.scope_sink = sc.get();
    const stress::GuardedResult result = stress::run_guarded(
        engine::backend_for(engine::BackendKind::kFluid), fluid.spec,
        config.guard);
    out.fluid_fault = result.fault;
    out.fluid = reduce_trace(result, desc.tail_fraction, out.fluid_fault);
    if (rec) rs.fluid = rec->snapshot();
  }
  {
    CompiledScenario packet = compile_scenario(desc);
    packet.spec.max_window_mss =
        std::min(packet.spec.max_window_mss, config.packet_max_window_mss);
    packet.spec.record = ropts;
    const auto rec = engine::make_recorder(packet.spec);
    packet.spec.record_sink = rec.get();
    packet.spec.scope = config.scope;
    const auto sc = engine::make_scope(packet.spec);
    packet.spec.scope_sink = sc.get();
    const engine::PacketBackend backend(engine::PacketBackend::Options{
        1500, config.packet_max_window_mss});
    const stress::GuardedResult result =
        stress::run_guarded(backend, packet.spec, config.guard);
    out.packet_fault = result.fault;
    out.packet = reduce_trace(result, desc.tail_fraction, out.packet_fault);
    if (rec) rs.packet = rec->snapshot();
  }

  const bool fluid_ok = out.fluid_fault.ok();
  const bool packet_ok = out.packet_fault.ok();
  if (fluid_ok && packet_ok) {
    out.divergence = metric_divergence(out.fluid, out.packet);
    out.kind = out.divergence >= config.divergence_threshold
                   ? OutcomeKind::kDivergence
                   : OutcomeKind::kClean;
  } else if (!fluid_ok && !packet_ok) {
    out.kind = OutcomeKind::kBothFault;
  } else {
    out.kind = fluid_ok ? OutcomeKind::kPacketFault : OutcomeKind::kFluidFault;
  }

  out.novelty_key = novelty_key_for(out, desc);
  if (out.is_finding()) TELEMETRY_COUNT("fuzz.findings", 1);

  if (out.is_finding() && want_record && !config.postmortem_dir.empty()) {
    recorder::PostMortem pm;
    pm.kind = outcome_kind_name(out.kind);
    pm.divergence = out.divergence;
    pm.scenario_text = serialize_scenario(desc);
    const auto side = [](std::string label, const stress::FaultReport& fault,
                         recorder::Recording recording) {
      recorder::PostMortemSide s;
      s.label = std::move(label);
      if (!fault.ok()) {
        s.fault_kind = stress::fault_kind_name(fault.kind);
        s.fault_step = fault.step;
        s.fault_sender = fault.sender;
        s.detail = fault.detail;
      }
      s.recording = std::move(recording);
      return s;
    };
    pm.sides.push_back(side("fluid", out.fluid_fault, rs.fluid));
    pm.sides.push_back(side("packet", out.packet_fault, rs.packet));
    // Name the dump after the corpus entry it reproduces from, so a CI
    // triage can pair postmortem-scn-<hash>.jsonl with scn-<hash>.scn.
    std::string name = corpus_file_name(desc);
    pm.title = name;
    if (name.size() > 4) name.resize(name.size() - 4);  // drop ".scn"
    const stress::FaultReport write_fault = stress::guard_invoke([&] {
      out.postmortem_path =
          recorder::write_postmortem(config.postmortem_dir, name, pm);
    });
    if (!write_fault.ok()) {
      TELEMETRY_COUNT("fuzz.postmortem_write_failures", 1);
    }
  }
  return rs;
}

ExpectDesc expect_for(const RunOutcome& outcome) {
  ExpectDesc expect;
  expect.outcome = outcome_kind_name(outcome.kind);
  switch (outcome.kind) {
    case OutcomeKind::kFluidFault:
    case OutcomeKind::kBothFault:
      expect.detail = stress::fault_kind_name(outcome.fluid_fault.kind);
      break;
    case OutcomeKind::kPacketFault:
      expect.detail = stress::fault_kind_name(outcome.packet_fault.kind);
      break;
    case OutcomeKind::kClean:
    case OutcomeKind::kDivergence:
      break;
  }
  return expect;
}

bool matches_expect(const RunOutcome& outcome, const ExpectDesc& expect) {
  if (expect.empty()) return false;
  if (expect.outcome != outcome_kind_name(outcome.kind)) return false;
  if (expect.detail.empty()) return true;
  const stress::FaultReport& fault =
      outcome.kind == OutcomeKind::kPacketFault ? outcome.packet_fault
                                                : outcome.fluid_fault;
  return expect.detail == stress::fault_kind_name(fault.kind);
}

}  // namespace axiomcc::fuzz
