// mutator.h — seedable, structure-aware mutation over every scenario axis.
//
// The mutator is where the fuzzer's search moves live. Each call applies a
// small number of randomly chosen structural edits to a ScenarioDesc — link
// and horizon perturbations, sender add/remove/retune, protocol swaps from
// a dictionary covering every registered family, loss-model switches,
// schedule edits (add/remove/perturb breakpoints, install a canonical
// outage/flap/sawtooth shape, splice two scenarios' schedules), and walks
// of the topology (parking-lot depth) and workload (incast / heavy-tailed
// on-off) axes — then
// clamps the result into the limits box so every mutant compiles and runs
// in bounded time on the packet backend. All randomness draws from the
// caller's Rng, so a fuzz round is a pure function of (corpus, seed).
//
// The dictionaries carry known-nasty values drawn from the stress gauntlet:
// outage residuals, flap scales, storm loss rates, aggressive protocol
// parameterizations — the values hand-written scenarios have already shown
// to be interesting.
#pragma once

#include <string>
#include <vector>

#include "fuzz/scenario_text.h"
#include "util/rng.h"

namespace axiomcc::fuzz {

/// The box every mutant is clamped into. Bounds are chosen so the packet
/// backend's event count stays small enough for thousands of execs per
/// minute (bandwidth × steps bounds the packets simulated per run).
struct MutatorLimits {
  double min_mbps = 0.5;
  double max_mbps = 100.0;
  double min_rtt_ms = 2.0;
  double max_rtt_ms = 400.0;
  double max_buffer_mss = 500.0;
  long min_steps = 80;
  long max_steps = 480;
  std::size_t max_senders = 5;
  /// Cohort bounds: per-slot count and the population across all slots
  /// (the packet backend expands cohorts into real flows, so the total
  /// bounds its event count like max_senders used to).
  long max_cohort_count = 12;
  long max_total_senders = 24;
  std::size_t max_schedule_points = 10;
  double min_scale = 1e-3;   ///< deepest outage residual.
  double max_scale = 8.0;
  double max_initial_window_mss = 300.0;
  double max_loss_rate = 0.6;
  /// Topology axis: parking-lot bottleneck count (0 = single link).
  int max_bottlenecks = 4;
  /// Workload axis: generated flows per sender slot. The expanded
  /// population is additionally capped at max_total_senders in sanitize,
  /// so workload mutants keep the packet backend's event count bounded.
  long max_workload_flows = 4;
};

class Mutator {
 public:
  explicit Mutator(const MutatorLimits& limits = {}) : limits_(limits) {}

  [[nodiscard]] const MutatorLimits& limits() const { return limits_; }

  /// Applies 1–3 random structural edits to `base` and returns the
  /// sanitized mutant. Deterministic in (base, rng state).
  [[nodiscard]] ScenarioDesc mutate(const ScenarioDesc& base, Rng& rng) const;

  /// Crossover: a new scenario taking each axis (link, senders, loss,
  /// each schedule) from `a` or `b` at random, with schedules optionally
  /// spliced at a cut step. Sanitized like mutate.
  [[nodiscard]] ScenarioDesc splice(const ScenarioDesc& a,
                                    const ScenarioDesc& b, Rng& rng) const;

  /// Clamps every field of `desc` into the limits box, sorts and dedups
  /// schedule breakpoints, and truncates sender/breakpoint counts. After
  /// sanitize, validate_scenario and compile_scenario always succeed
  /// (protocol specs are only ever drawn from the dictionary or the input).
  void sanitize(ScenarioDesc& desc) const;

  /// Hand-written starting corpus: the gauntlet's scenario shapes (outage,
  /// flap, sawtooth, loss storm, RTT step, churn, random-loss) expressed as
  /// ScenarioDescs, plus a plain baseline.
  [[nodiscard]] static std::vector<ScenarioDesc> seed_corpus();

  /// Protocol spec strings covering every registered family, including
  /// aggressive parameterizations.
  [[nodiscard]] static const std::vector<std::string>& protocol_dictionary();

  /// Known-nasty schedule scale factors (outage residuals, flap lows,
  /// surge highs).
  [[nodiscard]] static const std::vector<double>& scale_dictionary();

  /// Known-nasty injected-loss rates.
  [[nodiscard]] static const std::vector<double>& loss_rate_dictionary();

 private:
  MutatorLimits limits_;
};

}  // namespace axiomcc::fuzz
