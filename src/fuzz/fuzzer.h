// fuzzer.h — the coverage-guided fuzz loop and on-disk corpus management.
//
// The loop is generational: a batch of mutants is generated serially from
// the corpus (all randomness drawn from one master Rng), executed in
// parallel via parallel_map (run_scenario is pure, so fan-out preserves
// results exactly), then ingested serially in input order. A mutant is
// retained when its novelty key — bucketed position in the paper's metric
// space plus its outcome classification — has not been seen before; any
// non-clean outcome is recorded as a finding and greedily minimized at the
// end. Because generation and ingestion are serial and the batch size is a
// fixed config value (never derived from the job count), a fuzz run is a
// pure function of (seeds, config): same seed → same corpus, same findings,
// at any --jobs.
//
// Corpus entries live one-per-file as `scn-<fnv1a64>.scn` in the format of
// scenario_text.h, so findings replay exactly and diff cleanly in review.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/minimize.h"
#include "fuzz/mutator.h"
#include "fuzz/runner.h"

namespace axiomcc::fuzz {

/// A retained scenario plus the outcome that made it novel.
struct CorpusEntry {
  ScenarioDesc desc;
  RunOutcome outcome;
};

/// A non-clean outcome the loop surfaced, minimized to a small reproducer.
struct Finding {
  ScenarioDesc original;     ///< the mutant that first tripped the oracle.
  MinimizeResult minimized;  ///< shrunk reproducer + its outcome.
  ExpectDesc expect;         ///< the outcome class both of them reproduce.
};

struct FuzzConfig {
  long runs = 2000;          ///< mutant executions (seed evaluation is extra).
  std::uint64_t seed = 1;    ///< master seed for all mutation randomness.
  long jobs = 0;             ///< fan-out width (0: AXIOMCC_JOBS / hardware).
  /// Mutants generated per round. Fixed by config — deliberately NOT derived
  /// from `jobs`, so the corpus evolution is identical at any job count.
  long batch = 32;
  double splice_probability = 0.25;  ///< chance a mutant starts as crossover.
  long max_findings = 24;    ///< distinct findings kept (dedup by class).
  bool minimize = true;      ///< greedily shrink findings at the end.
  RunnerConfig runner;
  MutatorLimits limits;
  MinimizeOptions minimize_options;
};

struct FuzzStats {
  long executed = 0;           ///< scenario executions (seeds + mutants).
  long retained = 0;           ///< corpus entries kept for novelty.
  long raw_findings = 0;       ///< non-clean outcomes seen (pre-dedup).
  long findings = 0;           ///< distinct findings reported.
  long minimize_attempts = 0;  ///< executions spent shrinking them.
};

struct FuzzResult {
  std::vector<CorpusEntry> corpus;
  std::vector<Finding> findings;
  FuzzStats stats;
};

/// Runs the fuzz loop. `seeds` is the starting corpus; empty means
/// Mutator::seed_corpus(). Deterministic in (config, seeds) at any jobs.
[[nodiscard]] FuzzResult run_fuzz(const FuzzConfig& config,
                                  std::vector<ScenarioDesc> seeds = {});

/// FNV-1a 64-bit hash of `text` — stable content-addressed corpus names.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text);

/// Canonical file name for `desc`: "scn-<16 hex digits>.scn", hashing the
/// serialized text (expect line included, so triage changes the name).
[[nodiscard]] std::string corpus_file_name(const ScenarioDesc& desc);

/// The `.scn` files directly under `dir`, sorted by file name; an empty or
/// missing directory yields an empty list.
[[nodiscard]] std::vector<std::string> list_corpus_files(
    const std::string& dir);

/// Reads and parses one scenario file. Throws std::invalid_argument on
/// parse failure and std::runtime_error if the file cannot be read.
[[nodiscard]] ScenarioDesc load_scenario_file(const std::string& path);

/// Serializes `desc` to `path` (parent directories must exist). Throws
/// std::runtime_error if the file cannot be written.
void save_scenario_file(const std::string& path, const ScenarioDesc& desc);

}  // namespace axiomcc::fuzz
