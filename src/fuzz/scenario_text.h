// scenario_text.h — the fuzzer's data-level scenario and its text format.
//
// engine::ScenarioSpec carries std::functions (schedules, loss factories),
// which cannot be mutated structurally or written to disk. ScenarioDesc is
// the pure-data mirror the fuzzer operates on: every axis is a value
// (piecewise-constant schedules, a tagged loss descriptor, protocol spec
// strings), so a scenario can be serialized to a deterministic one-per-file
// text format, parsed back exactly, mutated field-by-field, and compiled
// down to a ScenarioSpec for either backend. The contract the corpus relies
// on: serialize(parse(text)) == text for any text serialize produced
// (byte-identical round-trip — doubles are printed in shortest exact form).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "engine/scenario.h"

namespace axiomcc::fuzz {

/// One breakpoint of a piecewise-constant schedule: `scale` applies from
/// step `at` (inclusive) until the next breakpoint. Steps before the first
/// breakpoint scale by 1.
struct SchedulePoint {
  long at = 0;
  double scale = 1.0;

  friend bool operator==(const SchedulePoint&, const SchedulePoint&) = default;
};

/// A piecewise-constant step schedule. Breakpoints are kept sorted with
/// strictly increasing `at`; the parser rejects out-of-order or duplicate
/// timestamps. Empty means "no schedule" (identity).
struct ScheduleDesc {
  std::vector<SchedulePoint> points;

  [[nodiscard]] bool empty() const { return points.empty(); }

  /// The scale at `step` (1 before the first breakpoint).
  [[nodiscard]] double eval(long step) const;

  friend bool operator==(const ScheduleDesc&, const ScheduleDesc&) = default;
};

/// Tagged non-congestion loss descriptor (mirrors fluid/loss_model.h plus
/// the gauntlet's windowed storm).
struct LossDesc {
  enum class Kind : int {
    kNone = 0,
    kConstant,        ///< rate
    kBernoulli,       ///< prob, rate
    kGilbertElliott,  ///< p_good_to_bad, p_bad_to_good, good_rate, bad_rate
    kStorm,  ///< window [start, end) + the four Gilbert-Elliott parameters
  };

  Kind kind = Kind::kNone;
  double rate = 0.0;       ///< kConstant / kBernoulli episode rate.
  double prob = 0.0;       ///< kBernoulli episode probability.
  double p_gb = 0.0;       ///< Gilbert-Elliott / storm transition.
  double p_bg = 0.0;
  double good_rate = 0.0;
  double bad_rate = 0.0;
  long start = 0;          ///< storm window.
  long end = 0;

  friend bool operator==(const LossDesc&, const LossDesc&) = default;
};

/// One sender slot, with the protocol as a cc::make_protocol spec string.
/// `count` > 1 makes the slot a homogeneous cohort (engine::SenderSlot's
/// cohort expansion — the fluid batch path keeps it as one cohort, the
/// packet backend adds `count` flows).
struct SenderDesc {
  std::string protocol = "reno";
  double initial_window_mss = 1.0;
  double start_step = 0.0;
  double stop_step = -1.0;  ///< negative: stays until the end of the run.
  long count = 1;

  friend bool operator==(const SenderDesc&, const SenderDesc&) = default;
};

/// Workload-generator axis (mirrors engine::WorkloadSpec). Non-none kinds
/// expand every sender slot into generated flows seeded from the scenario
/// seed before the run (see engine::expand_workload).
struct WorkloadDesc {
  enum class Kind : int {
    kNone = 0,
    kIncast,  ///< flows copies per slot, arrivals spread over spread_steps.
    kOnOff,   ///< flows on-off trains per slot: bounded-Pareto on, exp off.
  };

  Kind kind = Kind::kNone;
  long flows = 8;
  double spread_steps = 32.0;   ///< incast arrival spread.
  double mean_on_steps = 60.0;  ///< on-off mean burst length.
  double mean_off_steps = 60.0;
  double alpha = 1.5;  ///< Pareto shape for on-period lengths.

  [[nodiscard]] bool empty() const { return kind == Kind::kNone; }

  friend bool operator==(const WorkloadDesc&, const WorkloadDesc&) = default;
};

/// A finding classification carried by triaged corpus entries: replaying
/// the scenario must reproduce this outcome, so a behavior change surfaces
/// as a test failure instead of silently passing.
struct ExpectDesc {
  std::string outcome;  ///< OutcomeKind name, e.g. "divergence"; "" = unset.
  std::string detail;   ///< fault kind name for fault outcomes; "" = any.

  [[nodiscard]] bool empty() const { return outcome.empty(); }

  friend bool operator==(const ExpectDesc&, const ExpectDesc&) = default;
};

/// Everything a fuzz input describes. Defaults are the paper's standard
/// link with one Reno sender — the smallest valid scenario.
struct ScenarioDesc {
  double bandwidth_mbps = 30.0;
  double rtt_ms = 42.0;
  double buffer_mss = 100.0;
  long steps = 400;
  double min_window_mss = 1.0;
  double max_window_mss = 1e9;
  double tail_fraction = 0.5;
  std::uint64_t seed = 42;
  /// Execution axes: an aggregate trace (per-step population statistics
  /// plus tracked series) and/or the fluid backend's SoA batch path. Both
  /// are byte-identity-preserving by contract, so they change which code
  /// runs, never the expected outcome class — the axes exist to drag the
  /// batch/aggregate machinery through the fuzzer's scenario space.
  bool aggregate_trace = false;
  bool batch = false;
  /// 0 = the classic single shared link (`link` directive only). k >= 1
  /// compiles to a k-bottleneck parking lot (`link` replicated per hop):
  /// sender slot 0 routes over every bottleneck, slot i >= 1 crosses
  /// bottleneck (i-1) mod k. Routes are derived, not stored, so the text
  /// format stays one scalar axis the mutator can walk.
  int topology_bottlenecks = 0;
  WorkloadDesc workload;
  std::vector<SenderDesc> senders{SenderDesc{}};
  LossDesc loss;
  ScheduleDesc bandwidth_scale;
  ScheduleDesc rtt_scale;
  ExpectDesc expect;

  friend bool operator==(const ScenarioDesc&, const ScenarioDesc&) = default;
};

/// Renders `v` in the shortest "%.Ng" form that strtod parses back to
/// exactly `v` — what makes the scenario round-trip byte-identical.
[[nodiscard]] std::string format_double(double v);

/// Serializes `desc` in the canonical field order. Output always ends with
/// a newline; the first line is the format header ("axiomcc-scenario v1").
[[nodiscard]] std::string serialize_scenario(const ScenarioDesc& desc);

/// Parses a scenario file. Throws std::invalid_argument on a missing or
/// wrong header, an unknown directive, a malformed or non-finite number,
/// out-of-order or duplicate schedule timestamps, a scenario with no
/// senders, or domain violations (non-positive link parameters or steps,
/// loss rates outside [0, 1), tail fraction outside (0, 1]).
[[nodiscard]] ScenarioDesc parse_scenario(const std::string& text);

/// Validates the domain constraints parse_scenario enforces (mutators call
/// this on freshly generated descs). Throws std::invalid_argument.
void validate_scenario(const ScenarioDesc& desc);

/// A ScenarioSpec plus the protocol prototypes it points into. Movable, not
/// copyable: the spec's sender slots hold raw pointers to the prototypes.
struct CompiledScenario {
  std::vector<std::unique_ptr<cc::Protocol>> prototypes;
  engine::ScenarioSpec spec;
};

/// Compiles `desc` into a runnable spec: builds each sender's protocol via
/// cc::make_protocol, turns the schedule descs into StepSchedules and the
/// loss desc into a LossFactory. Throws std::invalid_argument on an invalid
/// protocol spec or domain violation (validate_scenario is applied first).
[[nodiscard]] CompiledScenario compile_scenario(const ScenarioDesc& desc);

}  // namespace axiomcc::fuzz
