// minimize.h — greedy shrinking of a finding to a small reproducer.
//
// A raw finding is whatever mutant happened to trip the oracle — typically
// carrying senders, schedule breakpoints, and loss processes irrelevant to
// the failure. The minimizer applies delta-debugging-style simplification
// passes (halve the horizon, drop senders, drop breakpoints, drop the loss
// model, round magnitudes, canonicalize the seed) and keeps an edit only if
// the shrunk scenario still reproduces the original outcome class (same
// OutcomeKind, same fault kind on the faulting side). The result is what
// gets checked into tests/corpus/ as a regression case.
#pragma once

#include "fuzz/runner.h"
#include "fuzz/scenario_text.h"

namespace axiomcc::fuzz {

struct MinimizeResult {
  ScenarioDesc desc;      ///< the smallest reproducer found.
  RunOutcome outcome;     ///< its outcome (matches the original's class).
  long attempts = 0;      ///< candidate re-executions spent.
  long accepted = 0;      ///< edits that kept reproducing.
};

struct MinimizeOptions {
  long max_attempts = 160;  ///< re-execution budget.
  long min_steps = 40;      ///< horizon floor for the halving pass.
};

/// Shrinks `desc`, whose outcome class is `target` (as classified by
/// expect_for on the original run). Runs candidates with `runner_config`;
/// deterministic — no randomness is involved.
[[nodiscard]] MinimizeResult minimize_finding(
    const ScenarioDesc& desc, const ExpectDesc& target,
    const RunnerConfig& runner_config = {},
    const MinimizeOptions& options = {});

}  // namespace axiomcc::fuzz
