#include "fuzz/fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "telemetry/telemetry.h"
#include "util/task_pool.h"

namespace axiomcc::fuzz {

namespace {

/// Coarse dedup key for findings: outcome class + fault kinds + divergence
/// in half-steps. Coarser than the novelty key on purpose — two mutants that
/// trip the same fault at slightly different metric positions are one bug.
std::uint64_t finding_key(const RunOutcome& outcome) {
  std::uint64_t key = static_cast<std::uint64_t>(outcome.kind);
  key = (key << 4) | static_cast<std::uint64_t>(outcome.fluid_fault.kind);
  key = (key << 4) | static_cast<std::uint64_t>(outcome.packet_fault.kind);
  key = (key << 4) |
        std::min<std::uint64_t>(
            15, static_cast<std::uint64_t>(
                    std::max(0.0, outcome.divergence) * 2.0));
  return key;
}

}  // namespace

FuzzResult run_fuzz(const FuzzConfig& config, std::vector<ScenarioDesc> seeds) {
  const Mutator mutator(config.limits);
  if (seeds.empty()) seeds = Mutator::seed_corpus();

  FuzzResult result;
  Rng rng(config.seed);
  std::unordered_set<std::uint64_t> seen_novelty;
  std::unordered_set<std::uint64_t> finding_keys;
  std::vector<std::pair<ScenarioDesc, RunOutcome>> raw_findings;

  const auto ingest = [&](const ScenarioDesc& desc, const RunOutcome& outcome) {
    ++result.stats.executed;
    if (seen_novelty.insert(outcome.novelty_key).second) {
      result.corpus.push_back(CorpusEntry{desc, outcome});
      ++result.stats.retained;
      TELEMETRY_COUNT("fuzz.retained", 1);
    }
    if (outcome.is_finding()) {
      ++result.stats.raw_findings;
      if (static_cast<long>(finding_keys.size()) < config.max_findings &&
          finding_keys.insert(finding_key(outcome)).second) {
        raw_findings.emplace_back(desc, outcome);
      }
    }
  };

  const auto run_batch = [&](const std::vector<ScenarioDesc>& batch) {
    const std::vector<RunOutcome> outcomes = parallel_map(
        batch,
        [&](const ScenarioDesc& desc) {
          return run_scenario(desc, config.runner);
        },
        config.jobs);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ingest(batch[i], outcomes[i]);
    }
  };

  // Seed evaluation: every starting scenario is executed and ingested first,
  // so the mutation loop always has a non-empty corpus to draw parents from.
  run_batch(seeds);

  const long batch_size = std::max<long>(1, config.batch);
  long mutants_run = 0;
  while (mutants_run < config.runs) {
    const long n = std::min(batch_size, config.runs - mutants_run);
    std::vector<ScenarioDesc> generation;
    generation.reserve(static_cast<std::size_t>(n));
    for (long i = 0; i < n; ++i) {
      const std::size_t corpus_size = result.corpus.size();
      const ScenarioDesc& parent =
          result.corpus[rng.uniform_index(corpus_size)].desc;
      if (corpus_size > 1 && rng.bernoulli(config.splice_probability)) {
        const ScenarioDesc& other =
            result.corpus[rng.uniform_index(corpus_size)].desc;
        generation.push_back(
            mutator.mutate(mutator.splice(parent, other, rng), rng));
      } else {
        generation.push_back(mutator.mutate(parent, rng));
      }
    }
    run_batch(generation);
    mutants_run += n;
  }

  for (auto& [desc, outcome] : raw_findings) {
    Finding finding;
    finding.original = desc;
    finding.expect = expect_for(outcome);
    if (config.minimize) {
      finding.minimized = minimize_finding(desc, finding.expect, config.runner,
                                           config.minimize_options);
    } else {
      finding.minimized.desc = desc;
      finding.minimized.outcome = outcome;
    }
    result.stats.minimize_attempts += finding.minimized.attempts;
    result.findings.push_back(std::move(finding));
  }
  result.stats.findings = static_cast<long>(result.findings.size());
  return result;
}

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string corpus_file_name(const ScenarioDesc& desc) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "scn-%016llx.scn",
                static_cast<unsigned long long>(
                    fnv1a64(serialize_scenario(desc))));
  return buffer;
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

ScenarioDesc load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_scenario(text.str());
}

void save_scenario_file(const std::string& path, const ScenarioDesc& desc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write scenario file: " + path);
  out << serialize_scenario(desc);
  if (!out) throw std::runtime_error("cannot write scenario file: " + path);
}

}  // namespace axiomcc::fuzz
