// scope.h — the streaming axiom scope: online windowed estimates of the
// paper's eight metrics, computed incrementally while a simulation runs.
//
// The post-hoc estimators in core/metrics.h reduce a *finished* trace to one
// scalar per axiom. That shape cannot answer "when did efficiency collapse"
// or "on which link did fairness invert" — the questions routed topologies
// and generated workloads raise. The scope answers them: backends feed it
// one call per recorded step, it folds per-window accumulators in the same
// serial ascending order as the trace (so the series is byte-identical at
// any --jobs and across the scalar/batch/uniform fluid paths), and closes a
// window every `window_steps` samples into one value per (subject, axis)
// channel. With `window_steps == 0` the single full-horizon window
// reproduces the post-hoc estimators exactly (see docs/observability.md for
// the per-axis equivalence statement).
//
// Subjects:
//   run    — the aggregate: all eight axes (+ a Jain-index diagnostic).
//   class  — one sender slot / flow / cohort: loss-avoidance, convergence.
//   link   — one bottleneck of a routed topology: efficiency,
//            loss-avoidance, latency-avoidance.
//
// Memory is O(classes + links + windows) — independent of the sender count,
// so the million-sender batch path keeps its footprint. The one exception is
// fast-utilization, which retains the per-step aggregate-window series (the
// same footprint the aggregate trace already pays) because the paper's
// coefficient samples start offsets that are only known once the horizon or
// the saturation point is reached.
//
// The scope does not depend on src/core: it re-states the estimator math on
// its own accumulators, and core stays the post-hoc oracle the equivalence
// tests compare against.
#pragma once

#include <vector>

#include "recorder/recorder.h"

namespace axiomcc::scope {

/// The paper's eight metric axes, indexed like core::Metric (Section 3).
enum class Axis : int {
  kEfficiency = 0,       ///< Metric I    higher is better
  kFastUtilization = 1,  ///< Metric II   higher is better
  kLossAvoidance = 2,    ///< Metric III  LOWER is better
  kFairness = 3,         ///< Metric IV   higher is better
  kConvergence = 4,      ///< Metric V    higher is better
  kRobustness = 5,       ///< Metric VI   higher is better (online proxy)
  kTcpFriendliness = 6,  ///< Metric VII  higher is better
  kLatencyAvoidance = 7, ///< Metric VIII LOWER is better
};

inline constexpr int kNumAxes = 8;

[[nodiscard]] const char* axis_name(Axis axis);
[[nodiscard]] bool axis_lower_is_better(Axis axis);

/// The flight-recorder event code carrying one axis (event.h appends the
/// eight metric codes after the guard codes, in Axis order).
[[nodiscard]] recorder::EventCode axis_event_code(Axis axis);

/// Who a scope channel describes.
enum class SubjectKind : int {
  kRun = 0,    ///< the aggregate of the whole run.
  kClass = 1,  ///< one sender slot / flow / cohort (engine slot order).
  kLink = 2,   ///< one link of a routed topology (topology link order).
};

/// How the scope windows and normalizes. Backends copy this off
/// engine::ScenarioSpec; engine::make_scope fills the link-derived fields.
struct ScopeConfig {
  /// Master switch (mirrors recorder::RecordOptions::enabled).
  bool enabled = false;
  /// Samples per window. 0 selects ONE full-horizon window — the mode whose
  /// estimates match the post-hoc core estimators.
  long window_steps = 0;
  /// Steps before this index are excluded from every windowed accumulator
  /// (the post-hoc estimators' transient prefix: floor(steps·tail_fraction)
  /// reproduces their tail boundary exactly). The fast-utilization channel
  /// uses it as the coefficient's warmup offset instead. Negative = "auto":
  /// the backend resolves it to floor(steps·tail_fraction) via resolve().
  long warmup_steps = -1;
  /// Metric VII split: the first `p_classes` classes are the P side
  /// (protocol under test), the rest are Q (the Reno competitors) — the
  /// order core::evaluate_protocol's mixed run uses. 0 disables the split
  /// and the friendliness channel reports 1.
  int p_classes = 0;
  /// Efficiency denominator: the aggregate capacity in MSS (min-capacity
  /// link for routed topologies). <= 0 makes efficiency report 1.
  double capacity_mss = 0.0;
  /// Latency baseline: the zero-load RTT in seconds. <= 0 makes
  /// latency-avoidance report 0.
  double min_rtt_seconds = 0.0;
  /// Fast-utilization saturation cap (the run's max window). > 0 truncates
  /// the coefficient series at the first sample >= 0.99·cap, exactly like
  /// core::measure_fast_utilization_score.
  double max_window_mss = 0.0;
};

/// One closed window of one channel.
struct WindowSample {
  long start_step = 0;  ///< first step folded into the window.
  long end_step = 0;    ///< last step folded into the window.
  double value = 0.0;
};

/// One (subject, axis) time-series.
struct Channel {
  SubjectKind kind = SubjectKind::kRun;
  int subject = -1;  ///< class/link id; -1 for the run.
  Axis axis = Axis::kEfficiency;
  std::vector<WindowSample> samples;
};

/// Everything the scope measured, in a deterministic channel order: the
/// eight run axes first, then per-class channels ascending, then per-link
/// channels ascending.
struct ScopeSeries {
  std::vector<Channel> channels;
  /// Run-level Jain fairness index per window — a diagnostic riding along
  /// with the paper's min/max fairness (Metric IV), not one of the axes.
  std::vector<WindowSample> jain;

  [[nodiscard]] const Channel* find(SubjectKind kind, int subject,
                                    Axis axis) const;
  /// Last closed value of a channel, or `fallback` when it never closed.
  [[nodiscard]] double last(SubjectKind kind, int subject, Axis axis,
                            double fallback) const;
};

/// The online engine. One instance observes one run:
///
///   scope.begin_run(num_classes, num_links);
///   per step (in the backend's serial section):
///     scope.step_begin(step, total_window, rtt_seconds, congestion_loss);
///     scope.observe_class(c, window, observed_loss [, count]);  // ascending
///     scope.observe_link(l, utilization, loss_rate, rtt_ratio); // ascending
///     scope.step_end();
///   scope.finish();
///
/// `observe_class` folds with repeated serial adds when `count > 1`, so the
/// uniform-cohort fluid path (one call per cohort) is bitwise identical to
/// the materialized path (one call per member with identical windows).
class MetricScope {
 public:
  explicit MetricScope(ScopeConfig config);

  /// Optional flight-recorder sink: every closed window is also emitted as
  /// one kMetric event per channel (Subject::kRun / kCohort / kLink). Null
  /// (the default) keeps the series in-process only.
  void set_recorder(recorder::Recorder* recorder) { recorder_ = recorder; }

  /// Backend fill-ins, called once before begin_run: every field is adopted
  /// only where the caller left the config unset (warmup < 0, the rest
  /// <= 0), so explicit caller values always win.
  void resolve(long steps, double tail_fraction, double capacity_mss,
               double min_rtt_seconds, double max_window_mss);

  void begin_run(int num_classes, int num_links);
  void step_begin(long step, double total_window, double rtt_seconds,
                  double congestion_loss);
  void observe_class(int class_id, double window_mss, double observed_loss,
                     long count = 1);
  void observe_link(int link_id, double utilization, double loss_rate,
                    double rtt_ratio);
  void step_end();
  /// Closes the final (possibly partial) window. Idempotent.
  void finish();

  [[nodiscard]] const ScopeConfig& config() const { return config_; }
  [[nodiscard]] const ScopeSeries& series() const { return series_; }
  /// Shorthand for the run channel's last value (NaN fallback when the run
  /// produced no window).
  [[nodiscard]] double run_estimate(Axis axis) const;

 private:
  struct ClassAccum {
    double sum = 0.0;
    double sum_sq = 0.0;
    double min = 0.0;
    double max = 0.0;
    double loss_max = 0.0;
    long samples = 0;  ///< (sample, member) contributions.
  };
  struct LinkAccum {
    double util_min = 0.0;
    double loss_max = 0.0;
    double loss_sum = 0.0;
    double rtt_ratio_max = 0.0;
    long samples = 0;
  };

  void close_window();
  void emit(SubjectKind kind, int subject, Axis axis, const WindowSample& w);
  [[nodiscard]] double fast_utilization_value() const;

  ScopeConfig config_;
  recorder::Recorder* recorder_ = nullptr;
  ScopeSeries series_;

  std::vector<ClassAccum> classes_;
  std::vector<LinkAccum> links_;

  // Run-level window accumulators.
  double total_min_ = 0.0;
  double loss_max_ = 0.0;
  double loss_sum_ = 0.0;
  double rtt_max_ = 0.0;
  long run_samples_ = 0;
  long window_start_step_ = 0;
  long current_step_ = 0;
  bool in_step_ = false;
  bool finished_ = false;

  // Robustness proxy state (spans windows): a "lossy" sample is one whose
  // congestion or observed loss is positive; it "escapes" when the aggregate
  // window still grew versus the previous sample.
  double prev_total_ = 0.0;
  bool have_prev_total_ = false;
  bool step_lossy_ = false;
  long lossy_samples_ = 0;
  long lossy_escapes_ = 0;

  /// Aggregate-window history for the fast-utilization coefficient (all
  /// steps, pre-warmup included — the coefficient applies its own warmup).
  std::vector<double> totals_;
};

}  // namespace axiomcc::scope
