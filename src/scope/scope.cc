#include "scope/scope.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace axiomcc::scope {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* axis_name(Axis axis) {
  switch (axis) {
    case Axis::kEfficiency: return "efficiency";
    case Axis::kFastUtilization: return "fast_utilization";
    case Axis::kLossAvoidance: return "loss_avoidance";
    case Axis::kFairness: return "fairness";
    case Axis::kConvergence: return "convergence";
    case Axis::kRobustness: return "robustness";
    case Axis::kTcpFriendliness: return "friendliness";
    case Axis::kLatencyAvoidance: return "latency";
  }
  return "efficiency";
}

bool axis_lower_is_better(Axis axis) {
  return axis == Axis::kLossAvoidance || axis == Axis::kLatencyAvoidance;
}

recorder::EventCode axis_event_code(Axis axis) {
  switch (axis) {
    case Axis::kEfficiency: return recorder::EventCode::kEfficiency;
    case Axis::kFastUtilization:
      return recorder::EventCode::kFastUtilization;
    case Axis::kLossAvoidance: return recorder::EventCode::kLossAvoidance;
    case Axis::kFairness: return recorder::EventCode::kFairness;
    case Axis::kConvergence: return recorder::EventCode::kConvergence;
    case Axis::kRobustness: return recorder::EventCode::kRobustness;
    case Axis::kTcpFriendliness: return recorder::EventCode::kFriendliness;
    case Axis::kLatencyAvoidance: return recorder::EventCode::kLatency;
  }
  return recorder::EventCode::kEfficiency;
}

const Channel* ScopeSeries::find(SubjectKind kind, int subject,
                                 Axis axis) const {
  for (const Channel& c : channels) {
    if (c.kind == kind && c.subject == subject && c.axis == axis) return &c;
  }
  return nullptr;
}

double ScopeSeries::last(SubjectKind kind, int subject, Axis axis,
                         double fallback) const {
  const Channel* c = find(kind, subject, axis);
  if (c == nullptr || c->samples.empty()) return fallback;
  return c->samples.back().value;
}

MetricScope::MetricScope(ScopeConfig config) : config_(config) {
  if (config_.window_steps < 0) config_.window_steps = 0;
}

void MetricScope::resolve(long steps, double tail_fraction,
                          double capacity_mss, double min_rtt_seconds,
                          double max_window_mss) {
  if (config_.warmup_steps < 0) {
    const double fraction = std::clamp(tail_fraction, 0.0, 1.0);
    config_.warmup_steps =
        static_cast<long>(static_cast<double>(steps) * fraction);
  }
  if (config_.capacity_mss <= 0.0) config_.capacity_mss = capacity_mss;
  if (config_.min_rtt_seconds <= 0.0) {
    config_.min_rtt_seconds = min_rtt_seconds;
  }
  if (config_.max_window_mss <= 0.0) config_.max_window_mss = max_window_mss;
}

void MetricScope::begin_run(int num_classes, int num_links) {
  if (config_.warmup_steps < 0) config_.warmup_steps = 0;
  AXIOMCC_EXPECTS(num_classes >= 0 && num_links >= 0);
  classes_.assign(static_cast<std::size_t>(num_classes), ClassAccum{});
  links_.assign(static_cast<std::size_t>(num_links), LinkAccum{});

  series_.channels.clear();
  series_.jain.clear();
  for (int m = 0; m < kNumAxes; ++m) {
    series_.channels.push_back(
        Channel{SubjectKind::kRun, -1, static_cast<Axis>(m), {}});
  }
  for (int c = 0; c < num_classes; ++c) {
    series_.channels.push_back(
        Channel{SubjectKind::kClass, c, Axis::kLossAvoidance, {}});
    series_.channels.push_back(
        Channel{SubjectKind::kClass, c, Axis::kConvergence, {}});
  }
  for (int l = 0; l < num_links; ++l) {
    series_.channels.push_back(
        Channel{SubjectKind::kLink, l, Axis::kEfficiency, {}});
    series_.channels.push_back(
        Channel{SubjectKind::kLink, l, Axis::kLossAvoidance, {}});
    series_.channels.push_back(
        Channel{SubjectKind::kLink, l, Axis::kLatencyAvoidance, {}});
  }

  total_min_ = 0.0;
  loss_max_ = 0.0;
  loss_sum_ = 0.0;
  rtt_max_ = 0.0;
  run_samples_ = 0;
  window_start_step_ = 0;
  current_step_ = 0;
  in_step_ = false;
  finished_ = false;
  prev_total_ = 0.0;
  have_prev_total_ = false;
  step_lossy_ = false;
  lossy_samples_ = 0;
  lossy_escapes_ = 0;
  totals_.clear();
}

void MetricScope::step_begin(long step, double total_window,
                             double rtt_seconds, double congestion_loss) {
  AXIOMCC_EXPECTS(!in_step_ && !finished_);
  in_step_ = true;
  current_step_ = step;
  totals_.push_back(total_window);
  step_lossy_ = congestion_loss > 0.0;
  if (step < config_.warmup_steps) return;
  if (run_samples_ == 0) {
    window_start_step_ = step;
    total_min_ = total_window;
  } else {
    total_min_ = std::min(total_min_, total_window);
  }
  loss_max_ = std::max(loss_max_, congestion_loss);
  loss_sum_ += congestion_loss;
  rtt_max_ = std::max(rtt_max_, rtt_seconds);
  ++run_samples_;
}

void MetricScope::observe_class(int class_id, double window_mss,
                                double observed_loss, long count) {
  AXIOMCC_EXPECTS(in_step_);
  AXIOMCC_EXPECTS(class_id >= 0 &&
                  static_cast<std::size_t>(class_id) < classes_.size());
  AXIOMCC_EXPECTS(count >= 1);
  if (observed_loss > 0.0) step_lossy_ = true;
  if (current_step_ < config_.warmup_steps) return;
  ClassAccum& a = classes_[static_cast<std::size_t>(class_id)];
  if (a.samples == 0) {
    a.min = window_mss;
    a.max = window_mss;
  } else {
    a.min = std::min(a.min, window_mss);
    a.max = std::max(a.max, window_mss);
  }
  a.loss_max = std::max(a.loss_max, observed_loss);
  // Repeated serial adds, NOT count·x: the uniform-cohort path calls this
  // once per cohort and must fold bitwise like the materialized path's one
  // call per member.
  for (long k = 0; k < count; ++k) {
    a.sum += window_mss;
    a.sum_sq += window_mss * window_mss;
  }
  a.samples += count;
}

void MetricScope::observe_link(int link_id, double utilization,
                               double loss_rate, double rtt_ratio) {
  AXIOMCC_EXPECTS(in_step_);
  AXIOMCC_EXPECTS(link_id >= 0 &&
                  static_cast<std::size_t>(link_id) < links_.size());
  if (current_step_ < config_.warmup_steps) return;
  LinkAccum& a = links_[static_cast<std::size_t>(link_id)];
  if (a.samples == 0) {
    a.util_min = utilization;
  } else {
    a.util_min = std::min(a.util_min, utilization);
  }
  a.loss_max = std::max(a.loss_max, loss_rate);
  a.loss_sum += loss_rate;
  a.rtt_ratio_max = std::max(a.rtt_ratio_max, rtt_ratio);
  ++a.samples;
}

void MetricScope::step_end() {
  AXIOMCC_EXPECTS(in_step_);
  in_step_ = false;
  const double total = totals_.back();
  if (current_step_ >= config_.warmup_steps) {
    if (step_lossy_) {
      ++lossy_samples_;
      if (have_prev_total_ && total > prev_total_) ++lossy_escapes_;
    }
    prev_total_ = total;
    have_prev_total_ = true;
  }
  step_lossy_ = false;
  if (config_.window_steps > 0 && run_samples_ >= config_.window_steps) {
    close_window();
  }
}

void MetricScope::finish() {
  if (finished_) return;
  finished_ = true;
  if (run_samples_ > 0) close_window();
}

double MetricScope::run_estimate(Axis axis) const {
  return series_.last(SubjectKind::kRun, -1, axis,
                      std::numeric_limits<double>::quiet_NaN());
}

double MetricScope::fast_utilization_value() const {
  // Mirror of core::measure_fast_utilization_score +
  // core::fast_utilization_coefficient, applied to the aggregate-window
  // series accumulated so far: truncate at window-cap saturation, then take
  // the worst coefficient over the three sampled start offsets.
  std::size_t n = totals_.size();
  const long warmup = config_.warmup_steps;
  if (config_.max_window_mss > 0.0) {
    const double cap = 0.99 * config_.max_window_mss;
    std::size_t truncated = n;
    for (std::size_t t = 0; t < n; ++t) {
      if (totals_[t] >= cap) {
        truncated = t;
        break;
      }
    }
    const std::size_t min_samples = static_cast<std::size_t>(warmup) + 16;
    truncated = std::max(truncated, std::min(min_samples, n));
    n = truncated;
  }
  if (warmup < 0 || n <= static_cast<std::size_t>(warmup) + 1) return 0.0;
  double alpha = kInf;
  const std::size_t starts[] = {static_cast<std::size_t>(warmup),
                                static_cast<std::size_t>(warmup) +
                                    (n - warmup) / 4,
                                static_cast<std::size_t>(warmup) +
                                    (n - warmup) / 2};
  for (std::size_t t1 : starts) {
    if (t1 + 1 >= n) continue;
    const double x1 = totals_[t1];
    double accumulated = 0.0;
    for (std::size_t t = t1; t < n; ++t) accumulated += totals_[t] - x1;
    const double dt = static_cast<double>(n - 1 - t1);
    if (dt <= 0.0) continue;
    alpha = std::min(alpha, 2.0 * accumulated / (dt * dt));
  }
  return std::max(alpha, 0.0);
}

void MetricScope::emit(SubjectKind kind, int subject, Axis axis,
                       const WindowSample& w) {
  if (recorder_ == nullptr) return;
  recorder::Event event;
  event.step = w.end_step;
  event.cls = recorder::EventClass::kMetric;
  event.code = axis_event_code(axis);
  switch (kind) {
    case SubjectKind::kRun:
      event.subject_kind = recorder::Subject::kRun;
      break;
    case SubjectKind::kClass:
      event.subject_kind = recorder::Subject::kCohort;
      break;
    case SubjectKind::kLink:
      event.subject_kind = recorder::Subject::kLink;
      break;
  }
  event.subject = subject;
  event.a = w.value;
  event.b = static_cast<double>(w.start_step);
  recorder_->emit(event);
}

void MetricScope::close_window() {
  if (run_samples_ == 0) return;
  WindowSample w;
  w.start_step = window_start_step_;
  w.end_step = current_step_;

  auto push = [&](SubjectKind kind, int subject, Axis axis, double value) {
    w.value = value;
    Channel* channel = nullptr;
    for (Channel& c : series_.channels) {
      if (c.kind == kind && c.subject == subject && c.axis == axis) {
        channel = &c;
        break;
      }
    }
    AXIOMCC_EXPECTS(channel != nullptr);
    channel->samples.push_back(w);
    emit(kind, subject, axis, w);
  };

  // Per-class means, in class order; the mean shares the post-hoc fold: a
  // serial ascending sum divided once.
  const std::size_t k = classes_.size();
  std::vector<double> means(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    if (classes_[c].samples > 0) {
      means[c] = classes_[c].sum / static_cast<double>(classes_[c].samples);
    }
  }

  // Metric I — efficiency: min tail aggregate over capacity, capped at 1.
  const double efficiency =
      config_.capacity_mss > 0.0
          ? std::min(total_min_ / config_.capacity_mss, 1.0)
          : 1.0;
  push(SubjectKind::kRun, -1, Axis::kEfficiency, efficiency);

  // Metric II — fast utilization (see fast_utilization_value).
  push(SubjectKind::kRun, -1, Axis::kFastUtilization,
       fast_utilization_value());

  // Metric III — loss avoidance: the worst congestion-loss rate seen.
  push(SubjectKind::kRun, -1, Axis::kLossAvoidance, loss_max_);

  // Metric IV — fairness: min/max ratio of per-class per-member means.
  double fairness = 1.0;
  if (k > 1) {
    double min_mean = kInf;
    double max_mean = -kInf;
    for (std::size_t c = 0; c < k; ++c) {
      min_mean = std::min(min_mean, means[c]);
      max_mean = std::max(max_mean, means[c]);
    }
    if (max_mean > 0.0) fairness = min_mean / max_mean;
  }
  push(SubjectKind::kRun, -1, Axis::kFairness, fairness);

  // Metric V — convergence: the worst per-class deviation band. The min
  // over samples of min(x/x*, 2−x/x*) equals min(min/x*, 2−max/x*) because
  // x* (the mean) always lies within [min, max].
  double convergence = 1.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (classes_[c].samples == 0) continue;
    const double star = means[c];
    if (star <= 0.0) continue;
    convergence = std::min(convergence, classes_[c].min / star);
    convergence = std::min(convergence, 2.0 - classes_[c].max / star);
  }
  convergence = std::clamp(convergence, 0.0, 1.0);
  push(SubjectKind::kRun, -1, Axis::kConvergence, convergence);

  // Metric VI — robustness proxy: of the samples that carried loss, the
  // fraction where the aggregate window still grew (1 when loss-free). The
  // paper's loss-rate tolerance needs a probe ladder, not one run; this is
  // the online signal that the protocol keeps escaping under the loss it
  // actually saw. Counted run-to-date, not per window, so late windows
  // reflect the whole history.
  const double robustness =
      lossy_samples_ == 0
          ? 1.0
          : static_cast<double>(lossy_escapes_) /
                static_cast<double>(lossy_samples_);
  push(SubjectKind::kRun, -1, Axis::kRobustness, robustness);

  // Metric VII — friendliness: worst Q-class mean over worst P-class mean.
  double friendliness = 1.0;
  const std::size_t p = config_.p_classes > 0
                            ? static_cast<std::size_t>(config_.p_classes)
                            : 0;
  if (p > 0 && p < k) {
    double worst_p = 0.0;
    for (std::size_t c = 0; c < p; ++c) worst_p = std::max(worst_p, means[c]);
    double worst_q = kInf;
    for (std::size_t c = p; c < k; ++c) worst_q = std::min(worst_q, means[c]);
    if (worst_p > 0.0) friendliness = worst_q / worst_p;
  }
  push(SubjectKind::kRun, -1, Axis::kTcpFriendliness, friendliness);

  // Metric VIII — latency avoidance: worst RTT inflation over the baseline.
  const double latency =
      config_.min_rtt_seconds > 0.0
          ? std::max(0.0, rtt_max_ / config_.min_rtt_seconds - 1.0)
          : 0.0;
  push(SubjectKind::kRun, -1, Axis::kLatencyAvoidance, latency);

  // Jain index over the per-class means (diagnostic; no recorder event).
  {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      sum += means[c];
      sum_sq += means[c] * means[c];
    }
    w.value = (k == 0 || sum_sq <= 0.0)
                  ? 1.0
                  : (sum * sum) / (static_cast<double>(k) * sum_sq);
    series_.jain.push_back(w);
  }

  // Per-class channels.
  for (std::size_t c = 0; c < k; ++c) {
    const ClassAccum& a = classes_[c];
    if (a.samples == 0) continue;
    push(SubjectKind::kClass, static_cast<int>(c), Axis::kLossAvoidance,
         a.loss_max);
    double band = 1.0;
    if (means[c] > 0.0) {
      band = std::clamp(
          std::min(a.min / means[c], 2.0 - a.max / means[c]), 0.0, 1.0);
    }
    push(SubjectKind::kClass, static_cast<int>(c), Axis::kConvergence, band);
  }

  // Per-link channels.
  for (std::size_t l = 0; l < links_.size(); ++l) {
    const LinkAccum& a = links_[l];
    if (a.samples == 0) continue;
    push(SubjectKind::kLink, static_cast<int>(l), Axis::kEfficiency,
         std::min(a.util_min, 1.0));
    push(SubjectKind::kLink, static_cast<int>(l), Axis::kLossAvoidance,
         a.loss_max);
    push(SubjectKind::kLink, static_cast<int>(l), Axis::kLatencyAvoidance,
         std::max(0.0, a.rtt_ratio_max - 1.0));
  }

  // Reset the window accumulators (the robustness counters and the
  // fast-utilization history intentionally span windows).
  for (ClassAccum& a : classes_) a = ClassAccum{};
  for (LinkAccum& a : links_) a = LinkAccum{};
  total_min_ = 0.0;
  loss_max_ = 0.0;
  loss_sum_ = 0.0;
  rtt_max_ = 0.0;
  run_samples_ = 0;
}

}  // namespace axiomcc::scope
