// veno.h — a TCP-Veno-like protocol: Vegas's backlog estimate steering
// Reno's loss response.
//
// Fu & Liew (2003): estimate the sender's queue backlog N = w·(RTT −
// RTT_min)/RTT. On loss, if N < beta the loss was probably random (the queue
// was short), so back off gently (×0.8); otherwise it is congestion, halve
// as Reno would. While loss-free, grow by 1 MSS per RTT below the backlog
// threshold and by 1/2 MSS above it.
//
// A third route to non-congestion-loss robustness (Metric VI), distinct
// from Robust-AIMD's loss-rate threshold and Westwood's rate-based reset.
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class VenoLike final : public Protocol {
 public:
  /// `beta`: backlog threshold in packets (Veno's default is 3).
  /// `gentle_decrease`: multiplicative decrease used for random loss.
  explicit VenoLike(double beta = 3.0, double gentle_decrease = 0.8);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  /// Current backlog estimate for a hypothetical (window, rtt) pair.
  [[nodiscard]] double backlog(double window, double rtt_seconds) const;

 private:
  double beta_;
  double gentle_decrease_;
  double min_rtt_ = 0.0;  // 0 = unset
};

}  // namespace axiomcc::cc
