#include "cc/cautious_probe.h"

#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

CautiousProbe::CautiousProbe(double probe_step, double backoff)
    : probe_step_(probe_step), backoff_(backoff) {
  AXIOMCC_EXPECTS_MSG(probe_step > 0.0, "probe step must be positive");
  AXIOMCC_EXPECTS_MSG(backoff > 0.0 && backoff < 1.0, "backoff must be in (0,1)");
}

double CautiousProbe::next_window(const Observation& obs) {
  if (frozen_) return frozen_window_;
  if (obs.loss_rate > 0.0) {
    frozen_ = true;
    frozen_window_ = obs.window * backoff_;
    return frozen_window_;
  }
  return obs.window + probe_step_;
}

std::string CautiousProbe::name() const {
  std::ostringstream os;
  os << "CautiousProbe(" << probe_step_ << "," << backoff_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> CautiousProbe::clone() const {
  return std::make_unique<CautiousProbe>(probe_step_, backoff_);
}

void CautiousProbe::reset() {
  frozen_ = false;
  frozen_window_ = 0.0;
}

}  // namespace axiomcc::cc
