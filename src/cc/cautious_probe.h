// cautious_probe.h — the Claim 1 witness protocol.
//
// Claim 1 observes that a loss-based protocol CAN be 0-loss (from some point
// onwards it never incurs loss) while almost fully utilizing the link — but
// then it cannot be alpha-fast-utilizing for any alpha > 0. CautiousProbe is
// exactly the protocol sketched there: it slowly increases its window until
// it encounters loss for the first time, then backs off slightly below the
// last loss-free level and freezes forever.
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class CautiousProbe final : public Protocol {
 public:
  /// `probe_step`: additive probe increment (MSS) while still searching.
  /// `backoff`: multiplicative safety factor applied to the window that first
  /// experienced loss (must be in (0,1)).
  explicit CautiousProbe(double probe_step = 1.0, double backoff = 0.9);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  [[nodiscard]] bool frozen() const { return frozen_; }

 private:
  double probe_step_;
  double backoff_;
  bool frozen_ = false;
  double frozen_window_ = 0.0;
};

}  // namespace axiomcc::cc
