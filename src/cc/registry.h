// registry.h — construct protocols from textual specs.
//
// Examples and bench binaries accept protocols on the command line as spec
// strings; the grammar is
//
//   spec     := name | name '(' args ')'
//   args     := number (',' number)*
//   name     := "aimd" | "mimd" | "bin" | "cubic" | "robust_aimd" | "vegas"
//            | "pcc" | "cautious" | "reno" | "scalable" | "cubic-linux"
//
// e.g. "aimd(1,0.5)", "robust_aimd(1,0.8,0.01)", "reno". Names are
// case-insensitive; presets take no arguments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/protocol.h"

namespace axiomcc::cc {

/// Parses `spec` and constructs the protocol it denotes.
/// Throws std::invalid_argument on an unknown name, wrong arity, malformed
/// number, or out-of-domain parameter values.
[[nodiscard]] std::unique_ptr<Protocol> make_protocol(const std::string& spec);

/// The list of spec names make_protocol accepts (for --help text).
[[nodiscard]] std::vector<std::string> known_protocol_names();

}  // namespace axiomcc::cc
