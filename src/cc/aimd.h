// aimd.h — Additive-Increase Multiplicative-Decrease, AIMD(a, b).
//
// Increases the window by `a` MSS when the last step saw no loss; multiplies
// it by `b` on loss (paper Section 2; Chiu & Jain). TCP Reno in
// congestion-avoidance mode is AIMD(1, 0.5).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "cc/batch.h"
#include "cc/protocol.h"

namespace axiomcc::cc {

class Aimd final : public Protocol, public BatchProtocol {
 public:
  /// Requires a > 0 and 0 < b < 1.
  Aimd(double a, double b);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override {}
  [[nodiscard]] const BatchProtocol* batch_kernel() const override {
    return this;
  }
  void next_window_batch(std::span<const double> window,
                         std::span<const double> loss,
                         std::span<const double> rtt, std::span<double> state,
                         std::span<double> out) const override;

  [[nodiscard]] double increase() const { return a_; }
  [[nodiscard]] double decrease() const { return b_; }

 private:
  double a_;
  double b_;
};

}  // namespace axiomcc::cc
