// robust_aimd.h — the paper's proposed Robust-AIMD(a, b, eps) protocol.
//
// Section 5.2: an AIMD/PCC hybrid. The sender measures the loss rate over
// each monitor interval (one time step in the model) and
//   additively increases by `a` when the loss rate is below eps,
//   multiplicatively decreases by `b` when the loss rate is >= eps.
// Tolerating loss below eps is what makes it eps-robust to non-congestion
// loss (Metric VI) while staying far friendlier to TCP than PCC.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "cc/batch.h"
#include "cc/protocol.h"

namespace axiomcc::cc {

class RobustAimd final : public Protocol, public BatchProtocol {
 public:
  /// Requires a > 0, 0 < b < 1, eps in (0, 1).
  RobustAimd(double a, double b, double eps);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override {}
  [[nodiscard]] const BatchProtocol* batch_kernel() const override {
    return this;
  }
  void next_window_batch(std::span<const double> window,
                         std::span<const double> loss,
                         std::span<const double> rtt, std::span<double> state,
                         std::span<double> out) const override;

  [[nodiscard]] double increase() const { return a_; }
  [[nodiscard]] double decrease() const { return b_; }
  [[nodiscard]] double loss_tolerance() const { return eps_; }

 private:
  double a_;
  double b_;
  double eps_;
};

}  // namespace axiomcc::cc
