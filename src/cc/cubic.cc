#include "cc/cubic.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

Cubic::Cubic(double c, double b) : c_(c), b_(b) {
  AXIOMCC_EXPECTS_MSG(c > 0.0, "CUBIC scale must be positive");
  AXIOMCC_EXPECTS_MSG(b > 0.0 && b < 1.0, "CUBIC decrease factor must be in (0,1)");
}

double Cubic::next_window(const Observation& obs) {
  if (!seen_first_step_) {
    // Before any loss there is no epoch anchor. Real CUBIC enters "max
    // probing" with W_max set to the current window, which places T at the
    // curve's inflection point K so that the window grows from its current
    // value. We reproduce that by anchoring x_max at the initial window and
    // starting the epoch clock at K.
    seen_first_step_ = true;
    x_max_ = obs.window;
    const double plateau = std::cbrt(x_max_ * (1.0 - b_) / c_);
    steps_since_loss_ = static_cast<long>(std::llround(std::ceil(plateau)));
  }

  if (obs.loss_rate > 0.0) {
    x_max_ = obs.window;
    steps_since_loss_ = 0;
    return b_ * x_max_;
  }

  ++steps_since_loss_;
  const double plateau = std::cbrt(x_max_ * (1.0 - b_) / c_);
  const double t = static_cast<double>(steps_since_loss_);
  const double delta = t - plateau;
  return x_max_ + c_ * delta * delta * delta;
}

std::string Cubic::name() const {
  std::ostringstream os;
  os << "CUBIC(" << c_ << "," << b_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> Cubic::clone() const {
  return std::make_unique<Cubic>(c_, b_);
}

void Cubic::reset() {
  seen_first_step_ = false;
  x_max_ = 0.0;
  steps_since_loss_ = 0;
}

}  // namespace axiomcc::cc
