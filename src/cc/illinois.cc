#include "cc/illinois.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

Illinois::Illinois(const Params& params) : params_(params) {
  AXIOMCC_EXPECTS(params.a_min > 0.0);
  AXIOMCC_EXPECTS(params.a_max > params.a_min);
  AXIOMCC_EXPECTS(params.b_min > 0.0);
  AXIOMCC_EXPECTS(params.b_max > params.b_min && params.b_max < 1.0);
  AXIOMCC_EXPECTS(params.d1 > 0.0 && params.d1 < params.d2);
  AXIOMCC_EXPECTS(params.d2 < params.d3 && params.d3 <= 1.0);
}

double Illinois::increase_at(double d, double d_max) const {
  if (d_max <= 0.0) return params_.a_max;  // no queueing ever observed
  const double d1_abs = params_.d1 * d_max;
  if (d <= d1_abs) return params_.a_max;
  // Concave interpolation a(d) = kappa1 / (kappa2 + d) with a(d1) = a_max
  // and a(d_max) = a_min (the Illinois paper's curve).
  const double kappa1 = (d_max - d1_abs) * params_.a_min * params_.a_max /
                        (params_.a_max - params_.a_min);
  const double kappa2 = kappa1 / params_.a_max - d1_abs;
  return std::clamp(kappa1 / (kappa2 + d), params_.a_min, params_.a_max);
}

double Illinois::decrease_at(double d, double d_max) const {
  if (d_max <= 0.0) return params_.b_min;
  const double d2_abs = params_.d2 * d_max;
  const double d3_abs = params_.d3 * d_max;
  if (d <= d2_abs) return params_.b_min;
  if (d >= d3_abs) return params_.b_max;
  const double fraction = (d - d2_abs) / (d3_abs - d2_abs);
  return params_.b_min + (params_.b_max - params_.b_min) * fraction;
}

double Illinois::next_window(const Observation& obs) {
  if (obs.rtt_seconds > 0.0) {
    if (min_rtt_ <= 0.0 || obs.rtt_seconds < min_rtt_) {
      min_rtt_ = obs.rtt_seconds;
    }
    max_rtt_ = std::max(max_rtt_, obs.rtt_seconds);
  }
  const double d = min_rtt_ > 0.0 ? std::max(0.0, obs.rtt_seconds - min_rtt_)
                                  : 0.0;
  const double d_max = min_rtt_ > 0.0 ? max_rtt_ - min_rtt_ : 0.0;

  if (obs.loss_rate > 0.0) {
    return obs.window * (1.0 - decrease_at(d, d_max));
  }
  return obs.window + increase_at(d, d_max);
}

std::string Illinois::name() const {
  std::ostringstream os;
  os << "Illinois(a=" << params_.a_min << ".." << params_.a_max
     << ",b=" << params_.b_min << ".." << params_.b_max << ")";
  return os.str();
}

std::unique_ptr<Protocol> Illinois::clone() const {
  return std::make_unique<Illinois>(params_);
}

void Illinois::reset() {
  min_rtt_ = 0.0;
  max_rtt_ = 0.0;
}

}  // namespace axiomcc::cc
