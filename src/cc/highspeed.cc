#include "cc/highspeed.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

HighSpeed::HighSpeed(double low_window, double high_window,
                     double high_decrease)
    : low_window_(low_window),
      high_window_(high_window),
      high_decrease_(high_decrease) {
  AXIOMCC_EXPECTS_MSG(low_window >= 1.0, "HighSpeed low window must be >= 1");
  AXIOMCC_EXPECTS_MSG(high_window > low_window,
                      "HighSpeed high window must exceed the low window");
  AXIOMCC_EXPECTS_MSG(high_decrease > 0.0 && high_decrease <= 0.5,
                      "HighSpeed high-window decrease must be in (0, 0.5]");
}

double HighSpeed::decrease_fraction(double window) const {
  if (window <= low_window_) return 0.5;  // Reno regime
  const double w = std::min(window, high_window_);
  const double span = std::log(high_window_) - std::log(low_window_);
  const double position = std::log(high_window_) - std::log(w);
  return high_decrease_ + (0.5 - high_decrease_) * position / span;
}

double HighSpeed::additive_increase(double window) const {
  if (window <= low_window_) return 1.0;  // Reno regime
  const double w = std::min(window, high_window_);
  // RFC 3649's target response function.
  const double p = 0.078 / std::pow(w, 1.2);
  const double b = decrease_fraction(w);
  return std::max(1.0, w * w * p * 2.0 * b / (2.0 - b));
}

double HighSpeed::next_window(const Observation& obs) {
  if (obs.loss_rate > 0.0) {
    return obs.window * (1.0 - decrease_fraction(obs.window));
  }
  return obs.window + additive_increase(obs.window);
}

void HighSpeed::next_window_batch(std::span<const double> window,
                                  std::span<const double> loss,
                                  std::span<const double> /*rtt*/,
                                  std::span<double> /*state*/,
                                  std::span<double> out) const {
  // The response-function helpers carry log/pow calls, so this kernel wins
  // on dispatch and locality rather than SIMD; it reuses the scalar helpers
  // to keep the arithmetic bit-identical.
  const std::size_t n = window.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = loss[i] > 0.0
                 ? window[i] * (1.0 - decrease_fraction(window[i]))
                 : window[i] + additive_increase(window[i]);
  }
}

std::string HighSpeed::name() const {
  std::ostringstream os;
  os << "HighSpeed(" << low_window_ << "," << high_window_ << ","
     << high_decrease_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> HighSpeed::clone() const {
  return std::make_unique<HighSpeed>(low_window_, high_window_,
                                     high_decrease_);
}

}  // namespace axiomcc::cc
