#include "cc/veno.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

VenoLike::VenoLike(double beta, double gentle_decrease)
    : beta_(beta), gentle_decrease_(gentle_decrease) {
  AXIOMCC_EXPECTS_MSG(beta > 0.0, "Veno backlog threshold must be positive");
  AXIOMCC_EXPECTS_MSG(gentle_decrease > 0.5 && gentle_decrease < 1.0,
                      "Veno gentle decrease must be in (0.5, 1)");
}

double VenoLike::backlog(double window, double rtt_seconds) const {
  if (min_rtt_ <= 0.0 || rtt_seconds <= 0.0) return 0.0;
  return window * (rtt_seconds - min_rtt_) / rtt_seconds;
}

double VenoLike::next_window(const Observation& obs) {
  if (obs.rtt_seconds > 0.0 &&
      (min_rtt_ <= 0.0 || obs.rtt_seconds < min_rtt_)) {
    min_rtt_ = obs.rtt_seconds;
  }
  const double n = backlog(obs.window, obs.rtt_seconds);

  if (obs.loss_rate > 0.0) {
    // Short queue at loss time → probably random loss → gentle back-off;
    // long queue → congestion → Reno's halving.
    return obs.window * (n < beta_ ? gentle_decrease_ : 0.5);
  }
  // Below the backlog threshold grow like Reno; above it, half-speed.
  return obs.window + (n < beta_ ? 1.0 : 0.5);
}

std::string VenoLike::name() const {
  std::ostringstream os;
  os << "Veno(" << beta_ << "," << gentle_decrease_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> VenoLike::clone() const {
  return std::make_unique<VenoLike>(beta_, gentle_decrease_);
}

void VenoLike::reset() { min_rtt_ = 0.0; }

}  // namespace axiomcc::cc
