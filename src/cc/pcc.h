// pcc.h — a PCC-Allegro-like utility-probing protocol.
//
// The paper compares Robust-AIMD against PCC [Dong et al., NSDI'15] in
// Table 2 and notes PCC's behaviour is strictly more aggressive than
// MIMD(1.01, 0.99). We implement the Allegro control loop adapted to the
// per-RTT-step window model:
//
//  * utility of a step:  u(w, L) = w(1-L) * sigmoid(L) - w * L, with
//    sigmoid(L) = 1 / (1 + exp(coef * (L - threshold))); the published
//    Allegro constants are threshold = 0.05, coef = 100 — loss below 5% is
//    essentially ignored, which is exactly what makes PCC aggressive.
//  * STARTING: double the window every step while utility keeps rising.
//  * PROBING: try w(1+eps) for one step then w(1-eps) for one step and move
//    in the direction of higher utility.
//  * MOVING: keep moving in that direction with a linearly growing stride
//    (1*eps, 2*eps, 3*eps, ...) while utility keeps improving; fall back to
//    PROBING when it stops improving.
//
// The published Allegro randomizes the order of the two probe trials; we fix
// the order (up, then down) so runs are deterministic (DESIGN.md, Section 2).
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class PccAllegro final : public Protocol {
 public:
  /// `eps`: probe granularity (published Allegro uses 0.01–0.05).
  /// `loss_threshold`: the utility sigmoid's loss knee (published: 0.05).
  explicit PccAllegro(double eps = 0.05, double loss_threshold = 0.05);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  /// The Allegro utility of a step; exposed for tests.
  [[nodiscard]] double utility(double window, double loss_rate) const;

 private:
  enum class State { kStarting, kProbeUp, kProbeDown, kMoving };

  double eps_;
  double loss_threshold_;

  State state_ = State::kStarting;
  bool seen_first_step_ = false;
  double prev_utility_ = 0.0;
  double base_window_ = 0.0;  ///< anchor window for the current experiment.
  double utility_up_ = 0.0;
  int direction_ = +1;
  int stride_ = 1;
};

}  // namespace axiomcc::cc
