// slow_start.h — a decorator adding TCP slow start to any protocol in the
// fluid model.
//
// The paper's model starts senders directly in congestion avoidance; real
// connections begin with an exponential probe. Wrapping a protocol with
// SlowStartWrapper doubles the window each loss-free step until the first
// loss (or a threshold), then hands every subsequent decision to the wrapped
// protocol — letting experiments quantify how much of a protocol's metric
// scores depend on the assumed starting regime. (The packet-level sender has
// its own transport-layer slow start; this decorator brings the same
// behaviour to the fluid substrate.)
#pragma once

#include <memory>
#include <span>
#include <string>

#include "cc/batch.h"
#include "cc/protocol.h"

namespace axiomcc::cc {

class SlowStartWrapper final : public Protocol, public BatchProtocol {
 public:
  /// Wraps `inner`. Slow start ends at the first lossy observation or when
  /// the window reaches `ssthresh`.
  SlowStartWrapper(std::unique_ptr<Protocol> inner, double ssthresh = 1e9);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  /// Batchable when the wrapped protocol has a stateless kernel: the wrapper
  /// then carries one double per sender (the in-slow-start flag) and defers
  /// to the inner kernel once slow start ends.
  [[nodiscard]] const BatchProtocol* batch_kernel() const override;
  [[nodiscard]] int state_size() const override { return 1; }
  void init_state(std::span<double> state) const override { state[0] = 1.0; }
  void next_window_batch(std::span<const double> window,
                         std::span<const double> loss,
                         std::span<const double> rtt, std::span<double> state,
                         std::span<double> out) const override;

  [[nodiscard]] bool in_slow_start() const { return in_slow_start_; }
  [[nodiscard]] const Protocol& inner() const { return *inner_; }

 private:
  std::unique_ptr<Protocol> inner_;
  double ssthresh_;
  bool in_slow_start_ = true;
};

}  // namespace axiomcc::cc
