// binomial.h — Binomial congestion control, BIN(a, b, k, l).
//
// Bansal & Balakrishnan's family (paper Section 2):
//   no loss:  x <- x + a / x^k
//   loss:     x <- x - b * x^l
// AIMD is BIN(a, b', 0, 1) (with b' = 1-b in AIMD's parameterization);
// IIAD is k=1, l=0; SQRT is k=l=1/2.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "cc/batch.h"
#include "cc/protocol.h"

namespace axiomcc::cc {

class Binomial final : public Protocol, public BatchProtocol {
 public:
  /// Requires a > 0, 0 < b <= 1, k >= 0, l in [0, 1].
  Binomial(double a, double b, double k, double l);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override {}
  [[nodiscard]] const BatchProtocol* batch_kernel() const override {
    return this;
  }
  void next_window_batch(std::span<const double> window,
                         std::span<const double> loss,
                         std::span<const double> rtt, std::span<double> state,
                         std::span<double> out) const override;

  [[nodiscard]] double a() const { return a_; }
  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] double k() const { return k_; }
  [[nodiscard]] double l() const { return l_; }

 private:
  double a_;
  double b_;
  double k_;
  double l_;
};

}  // namespace axiomcc::cc
