#include "cc/slow_start.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace axiomcc::cc {

SlowStartWrapper::SlowStartWrapper(std::unique_ptr<Protocol> inner,
                                   double ssthresh)
    : inner_(std::move(inner)), ssthresh_(ssthresh) {
  AXIOMCC_EXPECTS(inner_ != nullptr);
  AXIOMCC_EXPECTS_MSG(ssthresh > 1.0, "ssthresh must exceed one segment");
}

double SlowStartWrapper::next_window(const Observation& obs) {
  if (in_slow_start_) {
    if (obs.loss_rate > 0.0) {
      // Exit on loss; the wrapped protocol reacts to it (and anchors any
      // internal state, e.g. CUBIC's x_max) from the current window.
      in_slow_start_ = false;
      return inner_->next_window(obs);
    }
    const double doubled = obs.window * 2.0;
    if (doubled >= ssthresh_) {
      in_slow_start_ = false;
      return std::min(doubled, ssthresh_);
    }
    return doubled;
  }
  return inner_->next_window(obs);
}

const BatchProtocol* SlowStartWrapper::batch_kernel() const {
  const BatchProtocol* inner = inner_->batch_kernel();
  return inner != nullptr && inner->state_size() == 0 ? this : nullptr;
}

void SlowStartWrapper::next_window_batch(std::span<const double> window,
                                         std::span<const double> loss,
                                         std::span<const double> rtt,
                                         std::span<double> state,
                                         std::span<double> out) const {
  // The inner kernel is stateless (batch_kernel() guarantees it), so running
  // it for every sender — including those still in slow start — is pure;
  // the slow-start pass then overwrites the senders it governs. state[i] is
  // 1.0 while sender i is in slow start.
  inner_->batch_kernel()->next_window_batch(window, loss, rtt, {}, out);
  const std::size_t n = window.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == 0.0) continue;
    if (loss[i] > 0.0) {
      state[i] = 0.0;  // exit on loss; out[i] already holds inner's choice
      continue;
    }
    const double doubled = window[i] * 2.0;
    if (doubled >= ssthresh_) {
      state[i] = 0.0;
      out[i] = std::min(doubled, ssthresh_);
    } else {
      out[i] = doubled;
    }
  }
}

bool SlowStartWrapper::loss_based() const { return inner_->loss_based(); }

std::string SlowStartWrapper::name() const {
  return "SlowStart+" + inner_->name();
}

std::unique_ptr<Protocol> SlowStartWrapper::clone() const {
  return std::make_unique<SlowStartWrapper>(inner_->clone(), ssthresh_);
}

void SlowStartWrapper::reset() {
  inner_->reset();
  in_slow_start_ = true;
}

}  // namespace axiomcc::cc
