#include "cc/slow_start.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace axiomcc::cc {

SlowStartWrapper::SlowStartWrapper(std::unique_ptr<Protocol> inner,
                                   double ssthresh)
    : inner_(std::move(inner)), ssthresh_(ssthresh) {
  AXIOMCC_EXPECTS(inner_ != nullptr);
  AXIOMCC_EXPECTS_MSG(ssthresh > 1.0, "ssthresh must exceed one segment");
}

double SlowStartWrapper::next_window(const Observation& obs) {
  if (in_slow_start_) {
    if (obs.loss_rate > 0.0) {
      // Exit on loss; the wrapped protocol reacts to it (and anchors any
      // internal state, e.g. CUBIC's x_max) from the current window.
      in_slow_start_ = false;
      return inner_->next_window(obs);
    }
    const double doubled = obs.window * 2.0;
    if (doubled >= ssthresh_) {
      in_slow_start_ = false;
      return std::min(doubled, ssthresh_);
    }
    return doubled;
  }
  return inner_->next_window(obs);
}

bool SlowStartWrapper::loss_based() const { return inner_->loss_based(); }

std::string SlowStartWrapper::name() const {
  return "SlowStart+" + inner_->name();
}

std::unique_ptr<Protocol> SlowStartWrapper::clone() const {
  return std::make_unique<SlowStartWrapper>(inner_->clone(), ssthresh_);
}

void SlowStartWrapper::reset() {
  inner_->reset();
  in_slow_start_ = true;
}

}  // namespace axiomcc::cc
