#include "cc/robust_aimd.h"

#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

RobustAimd::RobustAimd(double a, double b, double eps)
    : a_(a), b_(b), eps_(eps) {
  AXIOMCC_EXPECTS_MSG(a > 0.0, "Robust-AIMD additive increase must be positive");
  AXIOMCC_EXPECTS_MSG(b > 0.0 && b < 1.0,
                      "Robust-AIMD decrease factor must be in (0,1)");
  AXIOMCC_EXPECTS_MSG(eps > 0.0 && eps < 1.0,
                      "Robust-AIMD loss tolerance must be in (0,1)");
}

double RobustAimd::next_window(const Observation& obs) {
  if (obs.loss_rate >= eps_) return obs.window * b_;
  return obs.window + a_;
}

void RobustAimd::next_window_batch(std::span<const double> window,
                                   std::span<const double> loss,
                                   std::span<const double> /*rtt*/,
                                   std::span<double> /*state*/,
                                   std::span<double> out) const {
  const std::size_t n = window.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = loss[i] >= eps_ ? window[i] * b_ : window[i] + a_;
  }
}

std::string RobustAimd::name() const {
  std::ostringstream os;
  os << "Robust-AIMD(" << a_ << "," << b_ << "," << eps_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> RobustAimd::clone() const {
  return std::make_unique<RobustAimd>(a_, b_, eps_);
}

}  // namespace axiomcc::cc
