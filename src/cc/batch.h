// batch.h — the SoA batch execution interface for closed-form protocols.
//
// The fluid model's tick loop is embarrassingly batchable: a cohort of
// senders running the same protocol with the same parameters can advance in
// one vectorization-friendly pass over structure-of-arrays state instead of
// n virtual next_window calls. A protocol that is a closed-form function of
// the current observation (plus at most a few doubles of per-sender state)
// implements BatchProtocol alongside Protocol and advertises itself via
// Protocol::batch_kernel(); stateful families (CUBIC's clocks, Vegas
// baselines, BBR phases) simply return nullptr and keep the per-sender
// scalar path.
//
// Contract: next_window_batch over a span must produce BIT-IDENTICAL output
// to calling the scalar next_window element by element. Kernels therefore
// use the same arithmetic expressions as their scalar twins (the build uses
// baseline x86-64 with no FMA contraction, so shared expressions evaluate
// identically), and the simulator's scalar-vs-batch equivalence suite
// (tests/fluid_batch_test.cc) enforces the contract for every family.
#pragma once

#include <span>

namespace axiomcc::cc {

/// Batched window update over structure-of-arrays sender state.
class BatchProtocol {
 public:
  virtual ~BatchProtocol() = default;

  BatchProtocol() = default;
  BatchProtocol(const BatchProtocol&) = default;
  BatchProtocol& operator=(const BatchProtocol&) = default;

  /// Doubles of per-sender state carried between steps (0 = pure function
  /// of the observation).
  [[nodiscard]] virtual int state_size() const { return 0; }

  /// Initializes one fresh sender's state slice (size == state_size()).
  /// Called when a sender (re)joins, mirroring a fresh clone of the scalar
  /// protocol.
  virtual void init_state(std::span<double> /*state*/) const {}

  /// Computes out[i] = the next window for sender i. `window`, `loss`,
  /// `rtt` and `out` all have length n; `state` has length n·state_size(),
  /// laid out sender-major, and is updated in place. Must be elementwise
  /// (out[i] and state slice i depend only on inputs at i) so the simulator
  /// may invoke it on arbitrary sub-ranges, and must match the scalar
  /// next_window bit for bit.
  virtual void next_window_batch(std::span<const double> window,
                                 std::span<const double> loss,
                                 std::span<const double> rtt,
                                 std::span<double> state,
                                 std::span<double> out) const = 0;
};

}  // namespace axiomcc::cc
