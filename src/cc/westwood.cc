#include "cc/westwood.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

WestwoodLike::WestwoodLike(double a, double ewma) : a_(a), ewma_(ewma) {
  AXIOMCC_EXPECTS_MSG(a > 0.0, "Westwood additive increase must be positive");
  AXIOMCC_EXPECTS_MSG(ewma > 0.0 && ewma <= 1.0,
                      "Westwood EWMA weight must be in (0, 1]");
}

double WestwoodLike::next_window(const Observation& obs) {
  if (obs.rtt_seconds > 0.0) {
    if (min_rtt_ <= 0.0 || obs.rtt_seconds < min_rtt_) {
      min_rtt_ = obs.rtt_seconds;
    }
    const double sample = obs.window * (1.0 - obs.loss_rate) / obs.rtt_seconds;
    bw_estimate_ = bw_estimate_ <= 0.0
                       ? sample
                       : (1.0 - ewma_) * bw_estimate_ + ewma_ * sample;
  }

  if (obs.loss_rate > 0.0) {
    // Faster-than-blind recovery: resume from the estimated BDP. Random loss
    // leaves the achieved rate (and hence the estimate) nearly intact.
    const double bdp = bw_estimate_ * min_rtt_;
    if (bdp > 0.0) return std::max(1.0, std::min(bdp, obs.window));
    return obs.window * 0.5;  // no estimate yet: Reno fallback
  }
  return obs.window + a_;
}

std::string WestwoodLike::name() const {
  std::ostringstream os;
  os << "Westwood(" << a_ << "," << ewma_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> WestwoodLike::clone() const {
  return std::make_unique<WestwoodLike>(a_, ewma_);
}

void WestwoodLike::reset() {
  bw_estimate_ = 0.0;
  min_rtt_ = 0.0;
}

}  // namespace axiomcc::cc
