// mimd.h — Multiplicative-Increase Multiplicative-Decrease, MIMD(a, b).
//
// Multiplies the window by `a > 1` when the last step saw no loss and by
// `b < 1` on loss (paper Section 2; Altman et al.). TCP Scalable behaves as
// MIMD(1.01, 0.875).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "cc/batch.h"
#include "cc/protocol.h"

namespace axiomcc::cc {

class Mimd final : public Protocol, public BatchProtocol {
 public:
  /// Requires a > 1 and 0 < b < 1.
  Mimd(double a, double b);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override {}
  [[nodiscard]] const BatchProtocol* batch_kernel() const override {
    return this;
  }
  void next_window_batch(std::span<const double> window,
                         std::span<const double> loss,
                         std::span<const double> rtt, std::span<double> state,
                         std::span<double> out) const override;

  [[nodiscard]] double increase() const { return a_; }
  [[nodiscard]] double decrease() const { return b_; }

 private:
  double a_;
  double b_;
};

}  // namespace axiomcc::cc
