// presets.h — the concrete protocol instances the paper experiments with.
//
// Section 5.1 evaluates the Linux-kernel protocols TCP Reno (= AIMD(1,0.5)),
// TCP Cubic (= CUBIC(0.4,0.8)), and TCP Scalable (= MIMD(1.01,0.875); the
// paper notes some environments fall back to AIMD(1,0.875)). Section 5.2
// evaluates Robust-AIMD(1, 0.8, eps) for eps in {0.005, 0.007, 0.01}.
#pragma once

#include <memory>

#include "cc/aimd.h"
#include "cc/cubic.h"
#include "cc/mimd.h"
#include "cc/pcc.h"
#include "cc/protocol.h"
#include "cc/robust_aimd.h"

namespace axiomcc::cc::presets {

/// TCP Reno congestion avoidance: AIMD(1, 0.5).
[[nodiscard]] inline std::unique_ptr<Protocol> reno() {
  return std::make_unique<Aimd>(1.0, 0.5);
}

/// TCP Scalable: MIMD(1.01, 0.875).
[[nodiscard]] inline std::unique_ptr<Protocol> scalable() {
  return std::make_unique<Mimd>(1.01, 0.875);
}

/// TCP Scalable's AIMD fallback observed in some environments: AIMD(1, 0.875).
[[nodiscard]] inline std::unique_ptr<Protocol> scalable_aimd_fallback() {
  return std::make_unique<Aimd>(1.0, 0.875);
}

/// TCP Cubic with (approximately) Linux constants: CUBIC(0.4, 0.8).
[[nodiscard]] inline std::unique_ptr<Protocol> cubic_linux() {
  return std::make_unique<Cubic>(0.4, 0.8);
}

/// The Robust-AIMD configuration of Table 2: Robust-AIMD(1, 0.8, 0.01).
[[nodiscard]] inline std::unique_ptr<Protocol> robust_aimd_table2() {
  return std::make_unique<RobustAimd>(1.0, 0.8, 0.01);
}

/// PCC with published Allegro constants.
[[nodiscard]] inline std::unique_ptr<Protocol> pcc() {
  return std::make_unique<PccAllegro>();
}

/// The paper's aggressiveness proxy for PCC: MIMD(1.01, 0.99).
[[nodiscard]] inline std::unique_ptr<Protocol> pcc_mimd_proxy() {
  return std::make_unique<Mimd>(1.01, 0.99);
}

}  // namespace axiomcc::cc::presets
