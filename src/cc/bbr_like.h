// bbr_like.h — a BBR-flavoured model-based protocol (paper future work).
//
// Section 6 asks for the model to cover "recently proposed" pacing-based
// designs such as BBR. This is a window-model adaptation of BBR's core loop
// (Cardwell et al., 2016):
//
//   * estimate the bottleneck bandwidth as a windowed MAX of the observed
//     delivery rate  (window·(1−loss)/RTT),
//   * estimate the propagation RTT as a windowed MIN of observed RTTs,
//   * in STARTUP, double the window each step while the delivery rate keeps
//     growing ≥ kStartupGrowthThreshold per step,
//   * afterwards, pace the window around the estimated BDP with the gain
//     cycle {1.25, 0.75, 1, 1, 1, 1, 1, 1} (probe up, drain, cruise).
//
// Like real BBR it is NOT loss-based (it reacts to rates and delays, not to
// loss), which makes it robust to non-congestion loss (Metric VI) while
// keeping queues near-empty most of the cycle (Metric VIII).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class BbrLike final : public Protocol {
 public:
  /// `bw_window`: steps over which the max-filter remembers delivery-rate
  /// samples. `rtt_window`: same for the min-RTT filter.
  explicit BbrLike(std::size_t bw_window = 10, std::size_t rtt_window = 100);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  /// Current bottleneck-bandwidth estimate in MSS/s (0 before any sample).
  [[nodiscard]] double bandwidth_estimate() const;
  /// Current propagation-RTT estimate in seconds (0 before any sample).
  [[nodiscard]] double min_rtt_estimate() const;
  [[nodiscard]] bool in_startup() const { return startup_; }

 private:
  void push_sample(std::deque<double>& window, double value,
                   std::size_t capacity);

  std::size_t bw_window_;
  std::size_t rtt_window_;

  std::deque<double> bw_samples_;   // delivery rates, MSS/s
  std::deque<double> rtt_samples_;  // RTTs, seconds
  bool startup_ = true;
  double last_delivery_rate_ = 0.0;
  std::size_t cycle_index_ = 0;
};

}  // namespace axiomcc::cc
