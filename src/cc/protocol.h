// protocol.h — the congestion-control protocol interface.
//
// A protocol deterministically maps the history of a sender's windows, RTTs,
// and loss rates to the next congestion-window size (paper, Section 2). The
// simulators call next_window once per time step / RTT round; implementations
// carry their own summarized history (e.g. CUBIC's time-since-last-loss).
#pragma once

#include <memory>
#include <string>

#include "cc/observation.h"

namespace axiomcc::cc {

class BatchProtocol;  // batch.h — SoA batch execution for closed-form families

/// Abstract window-based congestion-control protocol.
///
/// Contract:
///  - next_window is called exactly once per time step, with the Observation
///    for the step that just ended, and returns the window for the next step.
///  - Implementations must be deterministic given the observation history
///    (stochastic protocols take an explicit seed at construction).
///  - The returned window may exceed simulator bounds; the simulator clamps
///    to [min_window, max_window]. Implementations must tolerate the clamped
///    value being reported back in the next Observation.
class Protocol {
 public:
  virtual ~Protocol() = default;

  Protocol() = default;
  Protocol(const Protocol&) = default;
  Protocol& operator=(const Protocol&) = default;

  /// Computes the window (MSS) for the next time step.
  virtual double next_window(const Observation& obs) = 0;

  /// True when window choices are invariant to RTT values (paper's
  /// "loss-based" notion). Latency-avoiding protocols return false.
  [[nodiscard]] virtual bool loss_based() const = 0;

  /// Human-readable name including parameters, e.g. "AIMD(1,0.5)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Deep copy, including a reset of per-connection history. Every sender in
  /// a simulation clones its own instance from a prototype.
  [[nodiscard]] virtual std::unique_ptr<Protocol> clone() const = 0;

  /// Clears per-connection history so the instance can be reused.
  virtual void reset() = 0;

  /// The protocol's SoA batch kernel, or nullptr when only the scalar path
  /// exists. A non-null kernel must satisfy the bit-identity contract in
  /// batch.h; the fluid simulator uses it to advance homogeneous cohorts in
  /// one pass instead of n virtual calls.
  [[nodiscard]] virtual const BatchProtocol* batch_kernel() const {
    return nullptr;
  }
};

}  // namespace axiomcc::cc
