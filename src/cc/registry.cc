#include "cc/registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "cc/aimd.h"
#include "cc/bbr_like.h"
#include "cc/binomial.h"
#include "cc/cautious_probe.h"
#include "cc/cubic.h"
#include "cc/highspeed.h"
#include "cc/illinois.h"
#include "cc/mimd.h"
#include "cc/pcc.h"
#include "cc/presets.h"
#include "cc/robust_aimd.h"
#include "cc/vegas.h"
#include "cc/veno.h"
#include "cc/westwood.h"

namespace axiomcc::cc {

namespace {

struct ParsedSpec {
  std::string name;
  std::vector<double> args;
};

[[nodiscard]] std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[nodiscard]] std::string strip(const std::string& s) {
  const auto first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

/// Hard limits against adversarial input (specs arrive from CLIs and
/// config files): a spec this long or this argument-heavy is never valid,
/// so reject it before any quadratic substring work or unbounded vectors.
constexpr std::size_t kMaxSpecLength = 256;
constexpr std::size_t kMaxSpecArgs = 16;

[[nodiscard]] ParsedSpec parse_spec(const std::string& spec) {
  if (spec.size() > kMaxSpecLength) {
    throw std::invalid_argument("protocol spec longer than " +
                                std::to_string(kMaxSpecLength) + " chars");
  }
  const std::string trimmed = strip(spec);
  if (trimmed.empty()) throw std::invalid_argument("empty protocol spec");

  const auto open = trimmed.find('(');
  if (open == std::string::npos) {
    if (trimmed.find(')') != std::string::npos) {
      throw std::invalid_argument("unbalanced ')' in protocol spec: " + spec);
    }
    return {to_lower(trimmed), {}};
  }
  if (trimmed.back() != ')') {
    throw std::invalid_argument("protocol spec missing ')': " + spec);
  }
  // Exactly one balanced pair: no '(' in the argument list, and the only
  // ')' is the final character.
  if (trimmed.find('(', open + 1) != std::string::npos ||
      trimmed.find(')') != trimmed.size() - 1) {
    throw std::invalid_argument("unbalanced parentheses in protocol spec: " +
                                spec);
  }

  ParsedSpec out;
  out.name = to_lower(strip(trimmed.substr(0, open)));
  std::string args = trimmed.substr(open + 1, trimmed.size() - open - 2);
  if (!strip(args).empty()) {
    std::size_t start = 0;
    while (start <= args.size()) {
      const auto comma = args.find(',', start);
      const std::string token =
          strip(args.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start));
      if (token.empty()) {
        throw std::invalid_argument("empty argument in protocol spec: " + spec);
      }
      if (out.args.size() == kMaxSpecArgs) {
        throw std::invalid_argument("more than " +
                                    std::to_string(kMaxSpecArgs) +
                                    " arguments in protocol spec: " + spec);
      }
      std::size_t pos = 0;
      double value = 0.0;
      try {
        value = std::stod(token, &pos);
      } catch (const std::exception&) {
        throw std::invalid_argument("malformed number '" + token +
                                    "' in protocol spec: " + spec);
      }
      if (pos != token.size()) {
        throw std::invalid_argument("malformed number '" + token +
                                    "' in protocol spec: " + spec);
      }
      // stod accepts "nan"/"inf" literals; no protocol parameter is
      // meaningfully non-finite, and letting one through poisons every
      // window computation downstream.
      if (!std::isfinite(value)) {
        throw std::invalid_argument("non-finite argument '" + token +
                                    "' in protocol spec: " + spec);
      }
      out.args.push_back(value);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return out;
}

void require_arity(const ParsedSpec& s, std::size_t arity) {
  if (s.args.size() != arity) {
    throw std::invalid_argument("protocol '" + s.name + "' expects " +
                                std::to_string(arity) + " argument(s), got " +
                                std::to_string(s.args.size()));
  }
}

}  // namespace

std::unique_ptr<Protocol> make_protocol(const std::string& spec) {
  const ParsedSpec s = parse_spec(spec);

  // Presets (no arguments).
  if (s.name == "reno") {
    require_arity(s, 0);
    return presets::reno();
  }
  if (s.name == "scalable") {
    require_arity(s, 0);
    return presets::scalable();
  }
  if (s.name == "cubic-linux") {
    require_arity(s, 0);
    return presets::cubic_linux();
  }

  // Parameterized families.
  if (s.name == "aimd") {
    require_arity(s, 2);
    return std::make_unique<Aimd>(s.args[0], s.args[1]);
  }
  if (s.name == "mimd") {
    require_arity(s, 2);
    return std::make_unique<Mimd>(s.args[0], s.args[1]);
  }
  if (s.name == "bin") {
    require_arity(s, 4);
    return std::make_unique<Binomial>(s.args[0], s.args[1], s.args[2], s.args[3]);
  }
  if (s.name == "cubic") {
    require_arity(s, 2);
    return std::make_unique<Cubic>(s.args[0], s.args[1]);
  }
  if (s.name == "robust_aimd" || s.name == "robust-aimd") {
    require_arity(s, 3);
    return std::make_unique<RobustAimd>(s.args[0], s.args[1], s.args[2]);
  }
  if (s.name == "vegas") {
    require_arity(s, 2);
    return std::make_unique<VegasLike>(s.args[0], s.args[1]);
  }
  if (s.name == "pcc") {
    if (s.args.empty()) return std::make_unique<PccAllegro>();
    require_arity(s, 2);
    return std::make_unique<PccAllegro>(s.args[0], s.args[1]);
  }
  if (s.name == "illinois") {
    require_arity(s, 0);
    return std::make_unique<Illinois>();
  }
  if (s.name == "veno") {
    if (s.args.empty()) return std::make_unique<VenoLike>();
    require_arity(s, 2);
    return std::make_unique<VenoLike>(s.args[0], s.args[1]);
  }
  if (s.name == "highspeed") {
    if (s.args.empty()) return std::make_unique<HighSpeed>();
    require_arity(s, 3);
    return std::make_unique<HighSpeed>(s.args[0], s.args[1], s.args[2]);
  }
  if (s.name == "westwood") {
    if (s.args.empty()) return std::make_unique<WestwoodLike>();
    require_arity(s, 2);
    return std::make_unique<WestwoodLike>(s.args[0], s.args[1]);
  }
  if (s.name == "bbr") {
    if (s.args.empty()) return std::make_unique<BbrLike>();
    require_arity(s, 2);
    return std::make_unique<BbrLike>(static_cast<std::size_t>(s.args[0]),
                                     static_cast<std::size_t>(s.args[1]));
  }
  if (s.name == "cautious") {
    if (s.args.empty()) return std::make_unique<CautiousProbe>();
    require_arity(s, 2);
    return std::make_unique<CautiousProbe>(s.args[0], s.args[1]);
  }

  throw std::invalid_argument("unknown protocol name: " + s.name);
}

std::vector<std::string> known_protocol_names() {
  return {"aimd",     "mimd",      "bin",      "cubic",    "robust_aimd",
          "vegas",    "pcc",       "bbr",      "cautious", "highspeed",
          "westwood", "illinois",  "veno",     "reno",     "scalable",
          "cubic-linux"};
}

}  // namespace axiomcc::cc
