// westwood.h — a TCP-Westwood-like protocol: AIMD increase, but the decrease
// sets the window to the estimated bandwidth-delay product instead of a
// blind fraction.
//
// Westwood (Mascolo et al. 2001) was designed for lossy wireless paths:
// after a loss it resumes from  bw_estimate × min_rtt, so random
// (non-congestion) loss — which doesn't lower the achieved rate — barely
// dents the window, while genuine congestion (queue built up, rate below
// window/RTT) produces a real back-off. In the axiomatic space it trades
// a little TCP-friendliness for robustness without a tuned loss threshold,
// complementing Robust-AIMD's approach.
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class WestwoodLike final : public Protocol {
 public:
  /// `a`: additive increase per step. `ewma`: weight of the newest delivery
  /// rate sample in the bandwidth filter.
  explicit WestwoodLike(double a = 1.0, double ewma = 0.25);

  double next_window(const Observation& obs) override;
  /// Uses RTT (for the BDP estimate), so not loss-based in the paper's sense.
  [[nodiscard]] bool loss_based() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  [[nodiscard]] double bandwidth_estimate() const { return bw_estimate_; }
  [[nodiscard]] double min_rtt_estimate() const { return min_rtt_; }

 private:
  double a_;
  double ewma_;
  double bw_estimate_ = 0.0;  // MSS/s
  double min_rtt_ = 0.0;      // seconds; 0 = unset
};

}  // namespace axiomcc::cc
