// illinois.h — a TCP-Illinois-like delay-modulated AIMD.
//
// Liu, Başar & Srikant (2008): keep AIMD's loss-triggered structure, but let
// the queueing-delay estimate d = RTT − RTT_min steer the parameters —
// aggressive additive increase (a_max) while the queue is empty, gentle
// (a_min) as delay approaches its observed maximum; mirror for the decrease
// fraction (b_min when delay is low → the loss was probably not congestion,
// b_max when high). A concave curve a(d) = kappa1/(kappa2 + d) interpolates.
//
// Axiomatically interesting: a loss-based protocol whose POSITION in the
// metric space shifts with the latency regime — high fast-utilization on
// empty queues, Reno-like friendliness near saturation.
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

struct IllinoisParams {
  double a_min = 0.3;   ///< additive increase at max delay
  double a_max = 10.0;  ///< additive increase on an empty queue
  double b_min = 0.125; ///< decrease fraction at low delay
  double b_max = 0.5;   ///< decrease fraction at high delay
  /// Delay thresholds as fractions of the observed max queueing delay.
  double d1 = 0.01;  ///< below: a = a_max
  double d2 = 0.1;   ///< below: b = b_min
  double d3 = 0.8;   ///< above: b = b_max
};

class Illinois final : public Protocol {
 public:
  using Params = IllinoisParams;

  explicit Illinois(const Params& params = {});

  double next_window(const Observation& obs) override;
  /// Delay-modulated: NOT loss-based in the paper's sense.
  [[nodiscard]] bool loss_based() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  /// The additive increase at queueing delay `d` given max delay `d_max`
  /// (exposed for tests).
  [[nodiscard]] double increase_at(double d, double d_max) const;
  /// The decrease fraction at queueing delay `d` given max delay `d_max`.
  [[nodiscard]] double decrease_at(double d, double d_max) const;

 private:
  Params params_;
  double min_rtt_ = 0.0;  // seconds; 0 = unset
  double max_rtt_ = 0.0;
};

}  // namespace axiomcc::cc
