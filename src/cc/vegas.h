// vegas.h — a TCP-Vegas-like latency-avoiding protocol.
//
// Not characterized in the paper's Table 1, but required by Theorem 5: any
// efficient loss-based protocol is maximally unfriendly toward ANY
// latency-avoiding protocol. VegasLike is our representative of that class.
//
// Mechanism (Brakmo & Peterson, adapted to the per-RTT step model): track the
// minimum RTT ever observed as the propagation baseline; estimate the queue
// the sender itself occupies as  q = w * (rtt - base) / rtt  packets; keep q
// between `alpha` and `beta` by +1 / -1 window moves; halve on loss.
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class VegasLike final : public Protocol {
 public:
  /// Requires 0 <= alpha < beta (in packets of estimated self-queue).
  VegasLike(double alpha, double beta);

  double next_window(const Observation& obs) override;
  /// Vegas reacts to RTT, so it is NOT loss-based in the paper's sense.
  [[nodiscard]] bool loss_based() const override { return false; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
  double base_rtt_seconds_ = 0.0;  ///< min RTT seen; 0 = not yet observed.
};

}  // namespace axiomcc::cc
