#include "cc/vegas.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

VegasLike::VegasLike(double alpha, double beta) : alpha_(alpha), beta_(beta) {
  AXIOMCC_EXPECTS_MSG(alpha >= 0.0 && alpha < beta,
                      "Vegas needs 0 <= alpha < beta");
}

double VegasLike::next_window(const Observation& obs) {
  if (base_rtt_seconds_ <= 0.0 || obs.rtt_seconds < base_rtt_seconds_) {
    base_rtt_seconds_ = obs.rtt_seconds;
  }

  if (obs.loss_rate > 0.0) return obs.window * 0.5;

  if (obs.rtt_seconds <= 0.0 || base_rtt_seconds_ <= 0.0) {
    return obs.window + 1.0;  // no RTT signal yet: probe like slow AIMD
  }

  // Estimated number of this sender's packets sitting in the queue.
  const double queued =
      obs.window * (obs.rtt_seconds - base_rtt_seconds_) / obs.rtt_seconds;
  if (queued < alpha_) return obs.window + 1.0;
  if (queued > beta_) return std::max(obs.window - 1.0, 1.0);
  return obs.window;
}

std::string VegasLike::name() const {
  std::ostringstream os;
  os << "Vegas(" << alpha_ << "," << beta_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> VegasLike::clone() const {
  return std::make_unique<VegasLike>(alpha_, beta_);
}

void VegasLike::reset() { base_rtt_seconds_ = 0.0; }

}  // namespace axiomcc::cc
