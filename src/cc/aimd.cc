#include "cc/aimd.h"

#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

Aimd::Aimd(double a, double b) : a_(a), b_(b) {
  AXIOMCC_EXPECTS_MSG(a > 0.0, "AIMD additive increase must be positive");
  AXIOMCC_EXPECTS_MSG(b > 0.0 && b < 1.0, "AIMD decrease factor must be in (0,1)");
}

double Aimd::next_window(const Observation& obs) {
  if (obs.loss_rate > 0.0) return obs.window * b_;
  return obs.window + a_;
}

void Aimd::next_window_batch(std::span<const double> window,
                             std::span<const double> loss,
                             std::span<const double> /*rtt*/,
                             std::span<double> /*state*/,
                             std::span<double> out) const {
  const std::size_t n = window.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = loss[i] > 0.0 ? window[i] * b_ : window[i] + a_;
  }
}

std::string Aimd::name() const {
  std::ostringstream os;
  os << "AIMD(" << a_ << "," << b_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> Aimd::clone() const {
  return std::make_unique<Aimd>(a_, b_);
}

}  // namespace axiomcc::cc
