#include "cc/bbr_like.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

namespace {
/// BBR's ProbeBW pacing-gain cycle.
constexpr double kGainCycle[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr std::size_t kCycleLength = 8;
/// STARTUP exits when the delivery rate stops growing by at least this
/// factor per step.
constexpr double kStartupGrowthThreshold = 1.10;
constexpr double kStartupGain = 2.0;
/// Always keep a few segments in flight so estimation never stalls.
constexpr double kMinWindow = 4.0;
}  // namespace

BbrLike::BbrLike(std::size_t bw_window, std::size_t rtt_window)
    : bw_window_(bw_window), rtt_window_(rtt_window) {
  AXIOMCC_EXPECTS(bw_window >= 1);
  AXIOMCC_EXPECTS(rtt_window >= 1);
}

void BbrLike::push_sample(std::deque<double>& window, double value,
                          std::size_t capacity) {
  window.push_back(value);
  while (window.size() > capacity) window.pop_front();
}

double BbrLike::bandwidth_estimate() const {
  if (bw_samples_.empty()) return 0.0;
  return *std::max_element(bw_samples_.begin(), bw_samples_.end());
}

double BbrLike::min_rtt_estimate() const {
  if (rtt_samples_.empty()) return 0.0;
  return *std::min_element(rtt_samples_.begin(), rtt_samples_.end());
}

double BbrLike::next_window(const Observation& obs) {
  if (obs.rtt_seconds <= 0.0) {
    return std::max(obs.window * kStartupGain, kMinWindow);
  }

  const double delivery_rate =
      obs.window * (1.0 - obs.loss_rate) / obs.rtt_seconds;
  push_sample(bw_samples_, delivery_rate, bw_window_);
  push_sample(rtt_samples_, obs.rtt_seconds, rtt_window_);

  if (startup_) {
    const bool still_growing =
        last_delivery_rate_ <= 0.0 ||
        delivery_rate >= last_delivery_rate_ * kStartupGrowthThreshold;
    last_delivery_rate_ = delivery_rate;
    if (still_growing) {
      return std::max(obs.window * kStartupGain, kMinWindow);
    }
    startup_ = false;  // pipe filled: drain into ProbeBW
    cycle_index_ = 1;  // start at the 0.75 drain phase
  }

  const double gain = kGainCycle[cycle_index_ % kCycleLength];
  cycle_index_ = (cycle_index_ + 1) % kCycleLength;

  const double bdp = bandwidth_estimate() * min_rtt_estimate();
  return std::max(gain * bdp, kMinWindow);
}

std::string BbrLike::name() const {
  std::ostringstream os;
  os << "BBR-like(bw_win=" << bw_window_ << ",rtt_win=" << rtt_window_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> BbrLike::clone() const {
  return std::make_unique<BbrLike>(bw_window_, rtt_window_);
}

void BbrLike::reset() {
  bw_samples_.clear();
  rtt_samples_.clear();
  startup_ = true;
  last_delivery_rate_ = 0.0;
  cycle_index_ = 0;
}

}  // namespace axiomcc::cc
