#include "cc/binomial.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

Binomial::Binomial(double a, double b, double k, double l)
    : a_(a), b_(b), k_(k), l_(l) {
  AXIOMCC_EXPECTS_MSG(a > 0.0, "BIN increase numerator must be positive");
  AXIOMCC_EXPECTS_MSG(b > 0.0 && b <= 1.0, "BIN decrease scale must be in (0,1]");
  AXIOMCC_EXPECTS_MSG(k >= 0.0, "BIN increase exponent must be non-negative");
  AXIOMCC_EXPECTS_MSG(l >= 0.0 && l <= 1.0, "BIN decrease exponent must be in [0,1]");
}

double Binomial::next_window(const Observation& obs) {
  // The simulator guarantees obs.window >= min_window > 0, so x^{-k} is
  // well defined; guard anyway to keep the update total.
  const double x = std::max(obs.window, 1e-9);
  if (obs.loss_rate > 0.0) {
    return x - b_ * std::pow(x, l_);
  }
  return x + a_ / std::pow(x, k_);
}

void Binomial::next_window_batch(std::span<const double> window,
                                 std::span<const double> loss,
                                 std::span<const double> /*rtt*/,
                                 std::span<double> /*state*/,
                                 std::span<double> out) const {
  const std::size_t n = window.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = std::max(window[i], 1e-9);
    out[i] = loss[i] > 0.0 ? x - b_ * std::pow(x, l_)
                           : x + a_ / std::pow(x, k_);
  }
}

std::string Binomial::name() const {
  std::ostringstream os;
  os << "BIN(" << a_ << "," << b_ << "," << k_ << "," << l_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> Binomial::clone() const {
  return std::make_unique<Binomial>(a_, b_, k_, l_);
}

}  // namespace axiomcc::cc
