// highspeed.h — HighSpeed TCP (RFC 3649), a window-dependent AIMD.
//
// Below `low_window` it is exactly TCP Reno; above, the additive increase
// a(w) grows and the multiplicative decrease fraction b(w) shrinks with the
// window, following the RFC's response function p(w) = 0.078 / w^1.2:
//
//   b(w) = 0.1 + (0.5 − 0.1) · (log W_high − log w)/(log W_high − log W_low)
//   a(w) = w² · p(w) · 2·b(w) / (2 − b(w))
//
// An interesting subject for the axiomatic framework: its fast-utilization
// and TCP-friendliness scores are window-regime-dependent, so where it lands
// in the metric space depends on the link's BDP.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "cc/batch.h"
#include "cc/protocol.h"

namespace axiomcc::cc {

class HighSpeed final : public Protocol, public BatchProtocol {
 public:
  /// RFC 3649 defaults: low_window 38, high_window 83000, high_decrease 0.1.
  HighSpeed(double low_window = 38.0, double high_window = 83000.0,
            double high_decrease = 0.1);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override {}
  [[nodiscard]] const BatchProtocol* batch_kernel() const override {
    return this;
  }
  void next_window_batch(std::span<const double> window,
                         std::span<const double> loss,
                         std::span<const double> rtt, std::span<double> state,
                         std::span<double> out) const override;

  /// The decrease FRACTION at window w (the window shrinks to (1−b(w))·w).
  [[nodiscard]] double decrease_fraction(double window) const;
  /// The additive increase at window w.
  [[nodiscard]] double additive_increase(double window) const;

 private:
  double low_window_;
  double high_window_;
  double high_decrease_;
};

}  // namespace axiomcc::cc
