// observation.h — what a sender learns about the network in one time step.
//
// The paper (Section 2) defines a congestion-control protocol as a
// deterministic map from the history of the sender's own windows, RTTs, and
// loss rates to the next window. One Observation carries the per-step slice
// of that history; protocols keep whatever summarized state they need.
#pragma once

namespace axiomcc::cc {

/// Per-time-step feedback delivered to a sender at the end of a step.
struct Observation {
  /// The window (MSS) the sender used during the step that just ended.
  double window = 0.0;
  /// Loss rate experienced during the step, in [0, 1]. Includes both
  /// congestion loss and injected non-congestion loss.
  double loss_rate = 0.0;
  /// Duration of the step (the RTT), in seconds.
  double rtt_seconds = 0.0;
};

}  // namespace axiomcc::cc
