// cubic.h — TCP CUBIC in the paper's discrete formulation, CUBIC(c, b).
//
// From the paper (Section 2):
//   no loss:  x(t+1) = x_max + c * (T - K)^3,  K = (x_max (1-b) / c)^(1/3)
//   loss:     x(t+1) = b * x_max              (and x_max is reset to x(t))
// where x_max is the window at the last loss and T counts steps since then.
// The Linux default corresponds roughly to CUBIC(0.4, 0.8).
#pragma once

#include <memory>
#include <string>

#include "cc/protocol.h"

namespace axiomcc::cc {

class Cubic final : public Protocol {
 public:
  /// Requires c > 0 and 0 < b < 1.
  Cubic(double c, double b);

  double next_window(const Observation& obs) override;
  [[nodiscard]] bool loss_based() const override { return true; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<Protocol> clone() const override;
  void reset() override;

  [[nodiscard]] double scale() const { return c_; }
  [[nodiscard]] double decrease() const { return b_; }

 private:
  double c_;
  double b_;

  // Per-connection history.
  bool seen_first_step_ = false;
  double x_max_ = 0.0;   ///< window at the last loss (or initial window).
  long steps_since_loss_ = 0;
};

}  // namespace axiomcc::cc
