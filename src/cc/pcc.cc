#include "cc/pcc.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace axiomcc::cc {

namespace {
constexpr double kSigmoidCoef = 100.0;
constexpr double kMinWindow = 1.0;
}  // namespace

PccAllegro::PccAllegro(double eps, double loss_threshold)
    : eps_(eps), loss_threshold_(loss_threshold) {
  AXIOMCC_EXPECTS_MSG(eps > 0.0 && eps < 0.5, "PCC probe eps must be in (0,0.5)");
  AXIOMCC_EXPECTS_MSG(loss_threshold > 0.0 && loss_threshold < 1.0,
                      "PCC loss threshold must be in (0,1)");
}

double PccAllegro::utility(double window, double loss_rate) const {
  const double throughput = window * (1.0 - loss_rate);
  const double sigmoid =
      1.0 / (1.0 + std::exp(kSigmoidCoef * (loss_rate - loss_threshold_)));
  return throughput * sigmoid - window * loss_rate;
}

double PccAllegro::next_window(const Observation& obs) {
  const double u = utility(obs.window, obs.loss_rate);

  switch (state_) {
    case State::kStarting: {
      if (!seen_first_step_ || u > prev_utility_) {
        seen_first_step_ = true;
        prev_utility_ = u;
        return obs.window * 2.0;
      }
      // Utility dropped: revert to the pre-doubling window and start probing.
      base_window_ = std::max(obs.window / 2.0, kMinWindow);
      state_ = State::kProbeUp;
      return base_window_ * (1.0 + eps_);
    }

    case State::kProbeUp: {
      utility_up_ = u;
      state_ = State::kProbeDown;
      return base_window_ * (1.0 - eps_);
    }

    case State::kProbeDown: {
      const double utility_down = u;
      direction_ = utility_up_ >= utility_down ? +1 : -1;
      stride_ = 1;
      prev_utility_ = std::max(utility_up_, utility_down);
      state_ = State::kMoving;
      return base_window_ * (1.0 + direction_ * stride_ * eps_);
    }

    case State::kMoving: {
      if (u >= prev_utility_) {
        prev_utility_ = u;
        base_window_ = obs.window;
        ++stride_;
        return std::max(obs.window * (1.0 + direction_ * stride_ * eps_),
                        kMinWindow);
      }
      // The last move hurt: re-anchor at the last good window and re-probe.
      state_ = State::kProbeUp;
      return base_window_ * (1.0 + eps_);
    }
  }
  AXIOMCC_ENSURES(false);  // unreachable
  return obs.window;
}

std::string PccAllegro::name() const {
  std::ostringstream os;
  os << "PCC-Allegro(eps=" << eps_ << ",thr=" << loss_threshold_ << ")";
  return os.str();
}

std::unique_ptr<Protocol> PccAllegro::clone() const {
  return std::make_unique<PccAllegro>(eps_, loss_threshold_);
}

void PccAllegro::reset() {
  state_ = State::kStarting;
  seen_first_step_ = false;
  prev_utility_ = 0.0;
  base_window_ = 0.0;
  utility_up_ = 0.0;
  direction_ = +1;
  stride_ = 1;
}

}  // namespace axiomcc::cc
