#include "exp/table2.h"

#include <cmath>
#include <utility>

#include "cc/presets.h"
#include "core/metrics.h"
#include "engine/backend.h"
#include "fluid/link.h"
#include "telemetry/telemetry.h"
#include "util/task_pool.h"

namespace axiomcc::exp {

namespace {

core::EvalConfig cell_config(const Table2Config& cfg, int n, double bw_mbps) {
  core::EvalConfig ec;
  ec.link = fluid::make_link_mbps(bw_mbps, cfg.rtt_ms, cfg.buffer_mss);
  ec.steps = cfg.steps;
  ec.tail_fraction = cfg.tail_fraction;
  ec.num_protocol_senders = n - 1;  // (n−1) protocol senders + 1 Reno
  ec.num_reno_senders = 1;
  return ec;
}

/// The (n, BW) grid in row order: sender counts outermost. Cell i maps back
/// to its coordinates so every task is a pure function of its index.
std::pair<int, double> grid_cell(const Table2Config& cfg, std::size_t i) {
  const std::size_t per_n = cfg.bandwidths_mbps.size();
  return {cfg.sender_counts[i / per_n], cfg.bandwidths_mbps[i % per_n]};
}

}  // namespace

std::vector<Table2Cell> build_table2(const Table2Config& cfg) {
  return parallel_map(
      cfg.sender_counts.size() * cfg.bandwidths_mbps.size(),
      [&](std::size_t i) {
        const auto [n, bw] = grid_cell(cfg, i);
        TELEMETRY_SPAN_DYN("exp.table2", "fluid/n" + std::to_string(n) +
                                             "/bw" + std::to_string(bw));
        TELEMETRY_COUNT("exp.table2.cells", 1);
        // Presets are built inside the task: cc::Protocol instances are
        // stateful and must not be shared across threads.
        const auto robust = cc::presets::robust_aimd_table2();
        const auto pcc = cc::presets::pcc();
        const core::EvalConfig ec = cell_config(cfg, n, bw);
        Table2Cell cell;
        cell.n = n;
        cell.bandwidth_mbps = bw;
        cell.robust_aimd_friendliness =
            core::measure_tcp_friendliness_score(*robust, ec);
        cell.pcc_friendliness = core::measure_tcp_friendliness_score(*pcc, ec);
        return cell;
      },
      cfg.jobs);
}

namespace {

/// Friendliness of (n−1) `proto` senders toward one Reno sender on the
/// packet-level dumbbell, run through the engine's packet backend.
double packet_friendliness(const cc::Protocol& proto, int n, double bw_mbps,
                           const Table2Config& cfg, double duration_seconds) {
  engine::ScenarioSpec spec;
  spec.link = fluid::make_link_mbps(bw_mbps, cfg.rtt_ms, cfg.buffer_mss);
  const double step_seconds = cfg.rtt_ms / 1e3;
  spec.steps = std::lround(duration_seconds / step_seconds);
  spec.tail_fraction = cfg.tail_fraction;

  const auto reno = cc::presets::reno();
  std::vector<int> p_idx;
  for (int i = 0; i + 1 < n; ++i) {
    spec.add_sender(proto, 2.0, 0.05 * i / step_seconds);
    p_idx.push_back(i);
  }
  spec.add_sender(*reno, 2.0, 0.05 * (n - 1) / step_seconds);
  const std::vector<int> q_idx{n - 1};
  const engine::RunTrace rt =
      engine::backend_for(engine::BackendKind::kPacket).run(spec);
  return core::measure_friendliness(rt.trace, p_idx, q_idx,
                                    core::EstimatorConfig{cfg.tail_fraction});
}

}  // namespace

std::vector<Table2Cell> build_table2_packet(const Table2Config& cfg,
                                            double duration_seconds) {
  return parallel_map(
      cfg.sender_counts.size() * cfg.bandwidths_mbps.size(),
      [&](std::size_t i) {
        const auto [n, bw] = grid_cell(cfg, i);
        TELEMETRY_SPAN_DYN("exp.table2", "packet/n" + std::to_string(n) +
                                             "/bw" + std::to_string(bw));
        TELEMETRY_COUNT("exp.table2.cells", 1);
        const auto robust = cc::presets::robust_aimd_table2();
        const auto pcc = cc::presets::pcc();
        Table2Cell cell;
        cell.n = n;
        cell.bandwidth_mbps = bw;
        cell.robust_aimd_friendliness =
            packet_friendliness(*robust, n, bw, cfg, duration_seconds);
        cell.pcc_friendliness =
            packet_friendliness(*pcc, n, bw, cfg, duration_seconds);
        return cell;
      },
      cfg.jobs);
}

}  // namespace axiomcc::exp
