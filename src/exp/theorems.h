// theorems.h — empirical verification of Claim 1 and Theorems 1–5.
//
// Each check runs the scenario the theorem quantifies over (on the fluid
// model), measures the relevant metric scores, and compares them with the
// theorem's bound. Results are structured so both bench_theorems (printing)
// and the test suite (asserting) can consume them.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.h"

namespace axiomcc::exp {

/// One empirical instance of a theorem's inequality.
struct TheoremCheck {
  std::string description;   ///< e.g. "AIMD(1,0.5): friendliness <= bound"
  double measured = 0.0;     ///< the measured left-hand side
  double bound = 0.0;        ///< the theoretical right-hand side
  bool holds = false;        ///< measured respects the bound (with slack)
};

/// Every check below fans its independent simulation cells out over a
/// work-stealing pool (util/task_pool.h): `jobs` <= 0 resolves via
/// resolve_jobs (AXIOMCC_JOBS env, else hardware), 1 restores the serial
/// path. Each cell builds its own protocols, so check results are
/// bit-identical at every job count.

/// Claim 1: CautiousProbe is 0-loss from some point onwards, yet its
/// fast-utilization coefficient tends to 0.
struct Claim1Result {
  double tail_loss = 0.0;             ///< must be 0
  double fast_utilization = 0.0;      ///< must be ~0
  double fast_utilization_half = 0.0; ///< measured over a 2x longer horizon;
                                      ///< must shrink (→0 as Δt → ∞)
  bool holds = false;
};
[[nodiscard]] Claim1Result check_claim1(const core::EvalConfig& cfg,
                                        long jobs = 0);

/// Theorem 1: efficiency >= conv/(2-conv) for α-convergent, β-fast-utilizing
/// protocols. Checked over an AIMD parameter grid.
[[nodiscard]] std::vector<TheoremCheck> check_theorem1(
    const core::EvalConfig& cfg, long jobs = 0);

/// Theorem 2: TCP-friendliness <= 3(1-β)/(α(1+β)). Checked over an AIMD grid
/// (where the bound is tight).
[[nodiscard]] std::vector<TheoremCheck> check_theorem2(
    const core::EvalConfig& cfg, long jobs = 0);

/// Theorem 3: with ε-robustness the bound tightens. Checked for Robust-AIMD
/// over its ε grid.
[[nodiscard]] std::vector<TheoremCheck> check_theorem3(
    const core::EvalConfig& cfg, long jobs = 0);

/// Theorem 4: if P is α-friendly to Reno and Q (an AIMD/BIN/MIMD protocol)
/// is more aggressive than Reno, then P is α-friendly to Q.
[[nodiscard]] std::vector<TheoremCheck> check_theorem4(
    const core::EvalConfig& cfg, long jobs = 0);

/// Theorem 5: an efficient loss-based protocol starves any latency-avoiding
/// protocol (friendliness → 0).
[[nodiscard]] std::vector<TheoremCheck> check_theorem5(
    const core::EvalConfig& cfg, long jobs = 0);

}  // namespace axiomcc::exp
