// figure1.h — reproduction of Figure 1: the Pareto frontier of efficiency,
// TCP-friendliness, and fast-utilization.
//
// The frontier consists of points (α, β, 3(1−β)/(α(1+β))) — fast-utilization,
// efficiency, friendliness — and each one is attained by AIMD(α, β)
// (Section 5.2). Besides generating the analytic surface, verify_attainment
// measures AIMD(α, β) on the fluid model to confirm the attainment claim.
#pragma once

#include <vector>

#include "core/evaluator.h"
#include "core/pareto.h"

namespace axiomcc::exp {

/// One analytic point plus AIMD(α, β)'s measured scores.
struct Figure1Verification {
  core::Figure1Point analytic;
  double measured_fast_utilization = 0.0;
  double measured_efficiency = 0.0;
  double measured_friendliness = 0.0;
};

/// The default grid the bench prints: α ∈ {0.5,1,2,4}, β ∈ {0.3..0.9}.
[[nodiscard]] std::vector<core::Figure1Point> figure1_grid();

/// Measures AIMD(α, β) at selected grid points to verify attainment.
/// `jobs` fans the sample points out over a work-stealing pool (<= 0: auto
/// via resolve_jobs, 1: serial); each point builds its own protocol, so
/// results are bit-identical at every job count.
[[nodiscard]] std::vector<Figure1Verification> verify_attainment(
    const core::EvalConfig& cfg, long jobs = 0);

/// Confirms no grid point dominates another after orienting all three
/// coordinates higher-is-better (they all are). Returns the frontier indices;
/// all points must be on it (the surface IS the frontier).
[[nodiscard]] std::vector<std::size_t> frontier_of(
    const std::vector<core::Figure1Point>& points);

}  // namespace axiomcc::exp
