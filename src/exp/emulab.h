// emulab.h — the Section 5.1 validation experiment, rebuilt on the
// packet-level simulator (our Emulab substitute; see DESIGN.md).
//
// The paper ran TCP Reno, TCP Cubic, and TCP Scalable on Emulab across
// n ∈ {2..4} connections, bandwidths {20,30,60,100} Mbps, buffers
// {10,100} MSS, and a fixed 42 ms RTT, then checked that for each metric the
// measured protocol hierarchy (worst → best) matches the theory's. We do the
// same on the dumbbell DES: homogeneous runs per protocol for efficiency /
// loss / fairness / convergence, plus a mixed run against Reno for
// TCP-friendliness, and a hierarchy-agreement verdict per metric.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "core/metric_point.h"

namespace axiomcc::exp {

struct EmulabGridConfig {
  std::vector<int> sender_counts{2, 3, 4};
  std::vector<double> bandwidths_mbps{20.0, 30.0, 60.0, 100.0};
  std::vector<std::size_t> buffers_packets{10, 100};
  double rtt_ms = 42.0;
  double duration_seconds = 30.0;
  double tail_fraction = 0.5;
  std::uint64_t seed = 7;
  /// Fan the (n, BW, buffer) cells out over a work-stealing pool
  /// (util/task_pool.h): <= 0 resolves via resolve_jobs (AXIOMCC_JOBS env,
  /// else hardware), 1 is the serial path. Each cell builds its own protocol
  /// instances, so results are bit-identical at every job count.
  long jobs = 0;
};

/// Measured scores of one protocol in one grid cell.
struct EmulabScores {
  std::string protocol;
  double efficiency = 0.0;        // bottleneck utilization of the tail
  double loss_rate = 0.0;         // mean tail loss rate across flows
  double fairness = 0.0;          // Jain-style min/max window ratio
  double convergence = 0.0;       // window stability around the tail mean
  double tcp_friendliness = 0.0;  // Reno's share in a mixed run
};

struct EmulabCell {
  int n = 0;
  double bandwidth_mbps = 0.0;
  std::size_t buffer_packets = 0;
  std::vector<EmulabScores> protocols;  // Reno, Cubic, Scalable
};

/// Runs the full grid. This is the repository's most expensive experiment;
/// pass a reduced config for quick runs.
[[nodiscard]] std::vector<EmulabCell> run_emulab_grid(
    const EmulabGridConfig& cfg);

/// The hierarchy check: for each metric, whether the ordering of the three
/// protocols measured in `cell` matches the theory-induced ordering.
struct HierarchyVerdict {
  core::Metric metric;
  bool matches = false;
  std::string measured_order;  // e.g. "Scalable < Cubic < Reno"
  std::string theory_order;
};

[[nodiscard]] std::vector<HierarchyVerdict> check_hierarchies(
    const EmulabCell& cell);

}  // namespace axiomcc::exp
