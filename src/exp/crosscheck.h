// crosscheck.h — fluid vs packet cross-validation of the Table 1 protocols.
//
// The tentpole claim of the backend layer is that both simulators describe
// the same physical situation. This experiment puts that to the test: every
// protocol is evaluated twice through core::evaluate_protocol — once per
// backend — and the resulting metric hierarchies ("AIMD loses less than
// MIMD", ...) are compared pairwise per metric. Exact scores are NOT
// expected to match (the packet model has queueing granularity, slow start,
// and sampling noise the fluid model abstracts away); the paper's ordinal
// claims are what must survive the substrate change.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/metric_point.h"
#include "fluid/link.h"
#include "recorder/recorder.h"
#include "scope/scope.h"

namespace axiomcc::exp {

struct CrosscheckConfig {
  /// Shared evaluation parameters. `base.backend` is ignored — the run
  /// overrides it per cell. The packet side is additionally clamped by
  /// `base.packet` (see core::EvalConfig::PacketLimits).
  core::EvalConfig base;
  /// Protocol spec strings (cc::make_protocol grammar). Empty selects
  /// default_crosscheck_specs() — the Table 1 rows.
  std::vector<std::string> protocol_specs;
  /// Worker threads for the protocol × backend matrix: <= 0 resolves via
  /// resolve_jobs, 1 is serial. Each cell builds its own protocol, so
  /// results are bit-identical at any job count.
  long jobs = 0;
};

/// One protocol's two evaluations.
struct CrosscheckEntry {
  std::string protocol;
  core::MetricReport fluid;
  core::MetricReport packet;
};

/// Pairwise hierarchy agreement for one metric. A pair (i, j) counts when
/// the fluid side separates the protocols beyond a tie threshold; it agrees
/// when the packet side does not invert that ordering beyond slack.
struct MetricAgreement {
  core::Metric metric = core::Metric::kEfficiency;
  std::string fluid_order;   ///< worst-to-best, fluid scores.
  std::string packet_order;  ///< worst-to-best, packet scores.
  int pairs = 0;
  int agreeing_pairs = 0;
  bool matches = false;  ///< agreeing_pairs == pairs.
};

struct CrosscheckResult {
  std::vector<CrosscheckEntry> entries;
  std::vector<MetricAgreement> agreements;

  [[nodiscard]] int agreeing_metrics() const {
    int n = 0;
    for (const MetricAgreement& a : agreements) n += a.matches ? 1 : 0;
    return n;
  }
};

/// The Table 1 rows as spec strings: AIMD(1,0.5), MIMD(1.01,0.875), IIAD,
/// SQRT, CUBIC(0.4,0.8), Robust-AIMD(1,0.8,0.01).
[[nodiscard]] std::vector<std::string> default_crosscheck_specs();

/// The metrics whose hierarchies are compared: efficiency, loss avoidance,
/// fairness, convergence, and TCP friendliness. (Fast utilization,
/// robustness, and latency avoidance are measured on both backends too —
/// see the CSV — but their packet-side probes run under PacketLimits
/// clamps, so their absolute scales are not comparable across substrates.)
[[nodiscard]] const std::vector<core::Metric>& crosscheck_metrics();

/// Evaluates every spec on both backends and scores per-metric agreement.
/// Invalid specs throw before any simulation runs.
[[nodiscard]] CrosscheckResult run_crosscheck(const CrosscheckConfig& cfg = {});

/// Recomputes the agreement table from finished entries (exposed so tests
/// can score hand-built entries without re-running simulations).
[[nodiscard]] std::vector<MetricAgreement> check_crosscheck_agreement(
    const std::vector<CrosscheckEntry>& entries);

/// One CSV row per (protocol, backend) with all eight metric scores,
/// followed by one row per metric with the agreement verdicts.
void write_crosscheck_csv(const CrosscheckResult& result, std::ostream& out);

/// Topology crosscheck: runs the same k-bottleneck parking-lot ScenarioSpec
/// on both backends through engine::SimBackend and compares the structural
/// outcome. Exact traces differ across substrates; what must survive is the
/// multi-hop beat-down — the long flow (crossing every bottleneck) ends up
/// on the same side of its single-link fair share on both backends.
struct TopologyCheckConfig {
  /// Per-bottleneck link (fluid units; Θ one-way). The defaults give the
  /// paper's 30 Mbps / 42 ms dumbbell at every hop.
  fluid::LinkParams per_link = fluid::make_link_mbps(30.0, 42.0, 100.0);
  int bottlenecks = 3;
  long steps = 400;
  std::uint64_t seed = 42;
  /// Tail fraction of steps used for the share estimate.
  double tail_fraction = 0.5;
  /// Protocol spec strings; empty selects {aimd(1,0.5), cubic(0.4,0.8)}.
  std::vector<std::string> protocol_specs;
  /// Worker threads for the protocol × backend matrix (as in
  /// CrosscheckConfig::jobs).
  long jobs = 0;
  /// Flight-recorder capture for every cell (lane filtering via
  /// `record.classes`). When `record.enabled` and `record_dir` is non-empty
  /// each cell writes `crosscheck-<protocol>-<backend>.jsonl` into the
  /// directory, provenance-stamped with the current git SHA. No-op when the
  /// recorder is compiled out.
  recorder::RecordOptions record;
  std::string record_dir;
  /// Streaming-scope capture: when `scope.enabled` every cell runs with a
  /// MetricScope attached and the entry carries both backends' series
  /// (window size per `scope.window_steps`; 0 = one full-horizon window).
  /// When recording too, closed windows also land in the recording as
  /// kMetric events.
  scope::ScopeConfig scope;
};

struct TopologyCheckEntry {
  std::string protocol;
  int bottlenecks = 0;
  /// Long flow's tail-mean share of the aggregate window, per backend.
  double fluid_long_share = 0.0;
  double packet_long_share = 0.0;
  /// The single-link fair share the long flow would get without multi-hop
  /// beat-down (1 / flows-per-link).
  double fair_share = 0.0;
  /// Both backends put the long flow's share on the same side of fair.
  bool beat_down_agrees = false;
  /// Streaming-scope series per backend (empty unless cfg.scope.enabled).
  scope::ScopeSeries fluid_scope;
  scope::ScopeSeries packet_scope;
};

struct TopologyCheckResult {
  std::vector<TopologyCheckEntry> entries;

  [[nodiscard]] int agreeing_entries() const {
    int n = 0;
    for (const TopologyCheckEntry& e : entries) n += e.beat_down_agrees;
    return n;
  }
};

[[nodiscard]] TopologyCheckResult run_topology_crosscheck(
    const TopologyCheckConfig& cfg = {});

/// One CSV row per protocol with both backends' long-flow shares and the
/// agreement verdict.
void write_topology_crosscheck_csv(const TopologyCheckResult& result,
                                   std::ostream& out);

}  // namespace axiomcc::exp
