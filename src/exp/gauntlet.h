// gauntlet.h — the protocol robustness gauntlet.
//
// Runs every protocol through the adversarial scenario library
// (stress/perturbation.h) across several seeds, each cell under the guarded
// runner (stress/guarded_run.h), and scores how the protocol degrades and
// recovers: throughput retention relative to an unperturbed baseline,
// recovery time after an outage, fairness among the flows active at the end,
// and the residual loss rate. A scorecard aggregates the matrix per protocol
// — alongside the eight axiom metrics — in the same Markdown/CSV style as
// the Table 1 pipeline. A diverging (protocol, scenario) cell produces a
// FaultReport row instead of killing the sweep.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "core/evaluator.h"
#include "core/metric_point.h"
#include "fluid/link.h"
#include "stress/guarded_run.h"
#include "stress/perturbation.h"

namespace axiomcc::exp {

struct GauntletConfig {
  fluid::LinkParams link = fluid::make_link_mbps(30.0, 42.0, 100.0);
  int num_senders = 2;     ///< base (non-churned) flows per cell.
  long steps = 900;        ///< fluid steps per cell.
  /// 0 = single shared link (the pre-topology gauntlet, bit-identical).
  /// k >= 1 runs every cell on a k-bottleneck parking lot (`link` per hop):
  /// one long flow over all hops plus num_senders−1 cross flows per link,
  /// with churned flows joining on the long route.
  int topology_bottlenecks = 0;
  /// Which simulator runs the cells (and, via axiom_cfg, the axiom metrics).
  /// The fluid default reproduces the pre-engine gauntlet bit-for-bit.
  engine::BackendKind backend = engine::BackendKind::kFluid;
  std::vector<std::uint64_t> seeds{1, 2, 3};
  double tail_fraction = 0.5;
  stress::GuardConfig guard;
  /// The scenario matrix; empty selects stress::standard_gauntlet(steps).
  std::vector<stress::Scenario> scenarios;
  /// When true the scorecard also carries each protocol's eight axiom
  /// metrics, evaluated once on the unperturbed link with `axiom_cfg`.
  bool include_axiom_metrics = true;
  core::EvalConfig axiom_cfg;
  /// Worker threads for the (protocol × scenario × seed) matrix: <= 0
  /// resolves via resolve_jobs (AXIOMCC_JOBS env, else hardware), 1 is the
  /// serial path. Each cell's scenario seed comes from the cell tuple, so
  /// results are bit-identical at every job count.
  long jobs = 0;
  /// Flight-recorder capture per cell. When `record.enabled`, every cell
  /// runs with a recorder attached, and a faulting cell dumps a
  /// post-mortem (`postmortem-<protocol>-<scenario>-s<seed>.jsonl`) into
  /// `record_dir` (when non-empty). No-op with AXIOMCC_RECORDER=OFF.
  recorder::RecordOptions record;
  std::string record_dir;
};

/// One (protocol, scenario, seed) cell of the gauntlet matrix.
struct GauntletCell {
  std::string protocol;
  std::string scenario;
  std::uint64_t seed = 0;
  /// !fault.ok() marks a failed cell; its scores below are zeroed.
  stress::FaultReport fault;
  double utilization = 0.0;  ///< tail mean of min(1, X(t)/C), nominal C.
  /// Tail utilization relative to this protocol's unperturbed baseline run.
  double throughput_retention = 0.0;
  /// Steps after the perturbation ends until the aggregate window regains
  /// 80% of the baseline tail mean: -1 when the scenario defines no
  /// recovery point, +inf when it never recovers within the run.
  double recovery_steps = -1.0;
  /// min/max ratio of tail-mean windows over the senders still active in
  /// the tail (1 when at most one is active).
  double fairness = 0.0;
  double loss_rate = 0.0;  ///< tail mean congestion-loss rate.
};

/// Per-protocol aggregate over scenarios × seeds.
struct GauntletScore {
  std::string protocol;
  int cells = 0;
  int failed_cells = 0;
  double mean_utilization = 0.0;       ///< over clean cells.
  double mean_retention = 0.0;         ///< over clean cells.
  double worst_retention = 0.0;        ///< min over clean cells.
  double mean_recovery_steps = -1.0;   ///< over recovered outage cells.
  int unrecovered_cells = 0;           ///< outage cells that never recovered.
  double worst_fairness = 0.0;         ///< min over clean cells.
  /// Valid when GauntletConfig::include_axiom_metrics.
  core::MetricReport axioms;
  stress::FaultReport axiom_fault;
};

/// The full matrix plus its per-protocol aggregation.
struct GauntletResult {
  std::vector<GauntletCell> cells;
  std::vector<GauntletScore> scorecard;

  /// Total failed cells across the scorecard — the one aggregate every
  /// consumer (bench summary, tests) needs, so it lives here instead of
  /// being recomputed ad hoc from the cell matrix.
  [[nodiscard]] int failed_cells() const {
    int failed = 0;
    for (const GauntletScore& score : scorecard) failed += score.failed_cells;
    return failed;
  }
};

/// Canonical spec strings covering every registered protocol family (preset
/// aliases like "reno" are covered by their canonical family entries).
[[nodiscard]] std::vector<std::string> default_gauntlet_specs();

/// Runs the gauntlet for externally-built prototypes (the hook tests use to
/// inject pathological protocols). Prototypes must outlive the call. Named
/// rather than overloaded: braced string lists would otherwise be ambiguous
/// against the pointer vector's iterator-pair constructor.
[[nodiscard]] GauntletResult run_gauntlet_prototypes(
    const std::vector<const cc::Protocol*>& prototypes,
    const GauntletConfig& cfg = {});

/// Runs the gauntlet for protocol spec strings (parsed with
/// cc::make_protocol; invalid specs throw before any work runs).
[[nodiscard]] GauntletResult run_gauntlet(
    const std::vector<std::string>& protocol_specs,
    const GauntletConfig& cfg = {});

/// One CSV row per cell, with a `status` column carrying the fault kind.
void write_gauntlet_csv(const std::vector<GauntletCell>& cells,
                        std::ostream& out);

/// One CSV row per protocol with the aggregate scores and axiom metrics.
void write_scorecard_csv(const std::vector<GauntletScore>& scores,
                         std::ostream& out);

}  // namespace axiomcc::exp
