#include "exp/figure1.h"

#include <utility>

#include "cc/aimd.h"
#include "core/theory.h"
#include "telemetry/telemetry.h"
#include "util/task_pool.h"

namespace axiomcc::exp {

std::vector<core::Figure1Point> figure1_grid() {
  const std::vector<double> alphas{0.5, 1.0, 2.0, 4.0};
  const std::vector<double> betas{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  return core::figure1_surface(alphas, betas);
}

std::vector<Figure1Verification> verify_attainment(const core::EvalConfig& cfg,
                                                   long jobs) {
  // Sample of (α, β) pairs across the surface. Each task builds its own
  // AIMD(α, β), so no protocol state crosses threads.
  const std::vector<std::pair<double, double>> samples{
      {0.5, 0.5}, {1.0, 0.5}, {1.0, 0.8}, {2.0, 0.5}, {2.0, 0.7}, {4.0, 0.9}};

  return parallel_map(
      samples,
      [&](const std::pair<double, double>& sample) {
        const auto [alpha, beta] = sample;
        TELEMETRY_SPAN_DYN("exp.figure1",
                           "aimd(" + std::to_string(alpha) + "," +
                               std::to_string(beta) + ")");
        TELEMETRY_COUNT("exp.figure1.samples", 1);
        const cc::Aimd proto(alpha, beta);
        Figure1Verification v;
        v.analytic = core::Figure1Point{
            alpha, beta,
            core::theory::thm2_friendliness_upper_bound(alpha, beta)};
        v.measured_fast_utilization =
            core::measure_fast_utilization_score(proto, cfg);
        const fluid::Trace shared = core::run_shared_link(proto, cfg);
        v.measured_efficiency =
            core::measure_efficiency(shared, cfg.estimator());
        v.measured_friendliness =
            core::measure_tcp_friendliness_score(proto, cfg);
        return v;
      },
      jobs);
}

std::vector<std::size_t> frontier_of(
    const std::vector<core::Figure1Point>& points) {
  std::vector<std::vector<double>> oriented;
  oriented.reserve(points.size());
  for (const auto& p : points) {
    oriented.push_back(
        {p.fast_utilization_alpha, p.efficiency_beta, p.tcp_friendliness});
  }
  return core::pareto_frontier_indices(oriented);
}

}  // namespace axiomcc::exp
