#include "exp/sweep.h"

#include <cmath>
#include <memory>
#include <ostream>
#include <type_traits>
#include <utility>

#include "cc/registry.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/task_pool.h"

namespace axiomcc::exp {

// Rows are shuttled through the parallel map and into the caller's vector;
// they must move without throwing (and without copying MetricReport blocks).
static_assert(std::is_nothrow_move_constructible_v<SweepRow> &&
              std::is_nothrow_move_assignable_v<SweepRow>);

namespace {

/// Post-check: a cell whose evaluation silently produced NaN scores is as
/// failed as one that threw (fast-utilization is legitimately +inf for
/// super-linear protocols, so only NaN is flagged).
void flag_non_finite_scores(SweepRow& row) {
  if (!row.fault.ok()) return;
  for (std::size_t m = 0; m < core::kNumMetrics; ++m) {
    const double v = row.scores.get(static_cast<core::Metric>(m));
    if (std::isnan(v)) {
      row.fault.kind = stress::FaultKind::kNonFiniteScore;
      row.fault.detail = std::string("metric ") +
                         core::metric_name(static_cast<core::Metric>(m)) +
                         " is NaN";
      return;
    }
  }
}

/// One sweep cell, evaluated on `proto` (exclusively owned by this call).
SweepRow run_cell(const cc::Protocol& proto, const LinkShape& shape,
                  std::size_t grid_index, const core::EvalConfig& base) {
  TELEMETRY_SPAN_DYN("exp.sweep", proto.name() + "/cell" +
                                      std::to_string(grid_index));
  TELEMETRY_COUNT("exp.sweep.cells", 1);
  core::EvalConfig cfg = base;
  cfg.link = fluid::make_link_mbps(shape.bandwidth_mbps, shape.rtt_ms,
                                   shape.buffer_mss);

  SweepRow row;
  row.protocol = proto.name();
  row.bandwidth_mbps = shape.bandwidth_mbps;
  row.rtt_ms = shape.rtt_ms;
  row.buffer_mss = shape.buffer_mss;
  // One diverging cell must not abort the sweep: capture the exception as a
  // failed marker row and keep going.
  row.fault = stress::guard_invoke(
      [&] { row.scores = core::evaluate_protocol(proto, cfg); });
  if (!row.fault.ok()) row.scores = core::MetricReport{};
  flag_non_finite_scores(row);
  if (!row.fault.ok()) TELEMETRY_COUNT("exp.sweep.failed_cells", 1);
  return row;
}

}  // namespace

LinkShape LinkGrid::shape(std::size_t index) const {
  AXIOMCC_EXPECTS(index < size());
  const std::size_t per_bandwidth = rtts_ms.size() * buffers_mss.size();
  LinkShape shape;
  shape.bandwidth_mbps = bandwidths_mbps[index / per_bandwidth];
  shape.rtt_ms = rtts_ms[(index / buffers_mss.size()) % rtts_ms.size()];
  shape.buffer_mss = buffers_mss[index % buffers_mss.size()];
  return shape;
}

std::vector<SweepRow> run_metric_sweep_prototypes(
    const std::vector<const cc::Protocol*>& prototypes, const LinkGrid& grid,
    const core::EvalConfig& base, long jobs) {
  AXIOMCC_EXPECTS(!prototypes.empty());
  AXIOMCC_EXPECTS(grid.size() > 0);
  for (const cc::Protocol* p : prototypes) AXIOMCC_EXPECTS(p != nullptr);

  // cc::Protocol instances are stateful and must not be shared across
  // threads: clone one instance per cell up front (on this thread), so each
  // task owns its protocol outright and the shared prototypes are never
  // touched concurrently.
  const std::size_t cells = prototypes.size() * grid.size();
  std::vector<std::unique_ptr<cc::Protocol>> clones;
  clones.reserve(cells);
  for (const cc::Protocol* prototype : prototypes) {
    for (std::size_t g = 0; g < grid.size(); ++g) {
      clones.push_back(prototype->clone());
    }
  }

  return parallel_map(
      cells,
      [&](std::size_t i) {
        const std::size_t g = i % grid.size();
        return run_cell(*clones[i], grid.shape(g), g, base);
      },
      jobs);
}

std::vector<SweepRow> run_metric_sweep(
    const std::vector<std::string>& protocol_specs, const LinkGrid& grid,
    const core::EvalConfig& base, long jobs) {
  AXIOMCC_EXPECTS(!protocol_specs.empty());

  // Parse everything up front so a typo fails before hours of sweeping.
  std::vector<std::unique_ptr<cc::Protocol>> owned;
  owned.reserve(protocol_specs.size());
  for (const auto& spec : protocol_specs) {
    owned.push_back(cc::make_protocol(spec));
  }
  std::vector<const cc::Protocol*> prototypes;
  prototypes.reserve(owned.size());
  for (const auto& p : owned) prototypes.push_back(p.get());
  return run_metric_sweep_prototypes(prototypes, grid, base, jobs);
}

void write_sweep_csv(const std::vector<SweepRow>& rows, std::ostream& out) {
  out << "protocol,bandwidth_mbps,rtt_ms,buffer_mss";
  for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
    out << ',' << core::metric_name(static_cast<core::Metric>(i));
  }
  out << ",status\n";

  for (const SweepRow& row : rows) {
    out << '"' << row.protocol << '"' << ',' << row.bandwidth_mbps << ','
        << row.rtt_ms << ',' << row.buffer_mss;
    for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
      out << ',' << row.scores.get(static_cast<core::Metric>(i));
    }
    out << ',' << stress::fault_kind_name(row.fault.kind) << '\n';
  }
}

}  // namespace axiomcc::exp
