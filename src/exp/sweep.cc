#include "exp/sweep.h"

#include <cmath>
#include <memory>
#include <ostream>

#include "cc/registry.h"
#include "util/check.h"

namespace axiomcc::exp {

namespace {

/// Post-check: a cell whose evaluation silently produced NaN scores is as
/// failed as one that threw (fast-utilization is legitimately +inf for
/// super-linear protocols, so only NaN is flagged).
void flag_non_finite_scores(SweepRow& row) {
  if (!row.fault.ok()) return;
  for (std::size_t m = 0; m < core::kNumMetrics; ++m) {
    const double v = row.scores.get(static_cast<core::Metric>(m));
    if (std::isnan(v)) {
      row.fault.kind = stress::FaultKind::kNonFiniteScore;
      row.fault.detail = std::string("metric ") +
                         core::metric_name(static_cast<core::Metric>(m)) +
                         " is NaN";
      return;
    }
  }
}

}  // namespace

std::vector<SweepRow> run_metric_sweep_prototypes(
    const std::vector<const cc::Protocol*>& prototypes, const LinkGrid& grid,
    const core::EvalConfig& base) {
  AXIOMCC_EXPECTS(!prototypes.empty());
  AXIOMCC_EXPECTS(grid.size() > 0);
  for (const cc::Protocol* p : prototypes) AXIOMCC_EXPECTS(p != nullptr);

  std::vector<SweepRow> rows;
  rows.reserve(prototypes.size() * grid.size());
  for (const cc::Protocol* prototype : prototypes) {
    for (double mbps : grid.bandwidths_mbps) {
      for (double rtt_ms : grid.rtts_ms) {
        for (double buffer : grid.buffers_mss) {
          core::EvalConfig cfg = base;
          cfg.link = fluid::make_link_mbps(mbps, rtt_ms, buffer);

          SweepRow row;
          row.protocol = prototype->name();
          row.bandwidth_mbps = mbps;
          row.rtt_ms = rtt_ms;
          row.buffer_mss = buffer;
          // One diverging cell must not abort the sweep: capture the
          // exception as a failed marker row and keep going.
          row.fault = stress::guard_invoke([&] {
            row.scores = core::evaluate_protocol(*prototype, cfg);
          });
          if (!row.fault.ok()) row.scores = core::MetricReport{};
          flag_non_finite_scores(row);
          rows.push_back(std::move(row));
        }
      }
    }
  }
  return rows;
}

std::vector<SweepRow> run_metric_sweep(
    const std::vector<std::string>& protocol_specs, const LinkGrid& grid,
    const core::EvalConfig& base) {
  AXIOMCC_EXPECTS(!protocol_specs.empty());

  // Parse everything up front so a typo fails before hours of sweeping.
  std::vector<std::unique_ptr<cc::Protocol>> owned;
  owned.reserve(protocol_specs.size());
  for (const auto& spec : protocol_specs) {
    owned.push_back(cc::make_protocol(spec));
  }
  std::vector<const cc::Protocol*> prototypes;
  prototypes.reserve(owned.size());
  for (const auto& p : owned) prototypes.push_back(p.get());
  return run_metric_sweep_prototypes(prototypes, grid, base);
}

void write_sweep_csv(const std::vector<SweepRow>& rows, std::ostream& out) {
  out << "protocol,bandwidth_mbps,rtt_ms,buffer_mss";
  for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
    out << ',' << core::metric_name(static_cast<core::Metric>(i));
  }
  out << ",status\n";

  for (const SweepRow& row : rows) {
    out << '"' << row.protocol << '"' << ',' << row.bandwidth_mbps << ','
        << row.rtt_ms << ',' << row.buffer_mss;
    for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
      out << ',' << row.scores.get(static_cast<core::Metric>(i));
    }
    out << ',' << stress::fault_kind_name(row.fault.kind) << '\n';
  }
}

}  // namespace axiomcc::exp
