#include "exp/sweep.h"

#include <memory>
#include <ostream>

#include "cc/registry.h"
#include "util/check.h"

namespace axiomcc::exp {

std::vector<SweepRow> run_metric_sweep(
    const std::vector<std::string>& protocol_specs, const LinkGrid& grid,
    const core::EvalConfig& base) {
  AXIOMCC_EXPECTS(!protocol_specs.empty());
  AXIOMCC_EXPECTS(grid.size() > 0);

  // Parse everything up front so a typo fails before hours of sweeping.
  std::vector<std::unique_ptr<cc::Protocol>> prototypes;
  prototypes.reserve(protocol_specs.size());
  for (const auto& spec : protocol_specs) {
    prototypes.push_back(cc::make_protocol(spec));
  }

  std::vector<SweepRow> rows;
  rows.reserve(protocol_specs.size() * grid.size());
  for (std::size_t p = 0; p < prototypes.size(); ++p) {
    for (double mbps : grid.bandwidths_mbps) {
      for (double rtt_ms : grid.rtts_ms) {
        for (double buffer : grid.buffers_mss) {
          core::EvalConfig cfg = base;
          cfg.link = fluid::make_link_mbps(mbps, rtt_ms, buffer);

          SweepRow row;
          row.protocol = prototypes[p]->name();
          row.bandwidth_mbps = mbps;
          row.rtt_ms = rtt_ms;
          row.buffer_mss = buffer;
          row.scores = core::evaluate_protocol(*prototypes[p], cfg);
          rows.push_back(std::move(row));
        }
      }
    }
  }
  return rows;
}

void write_sweep_csv(const std::vector<SweepRow>& rows, std::ostream& out) {
  out << "protocol,bandwidth_mbps,rtt_ms,buffer_mss";
  for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
    out << ',' << core::metric_name(static_cast<core::Metric>(i));
  }
  out << '\n';

  for (const SweepRow& row : rows) {
    out << '"' << row.protocol << '"' << ',' << row.bandwidth_mbps << ','
        << row.rtt_ms << ',' << row.buffer_mss;
    for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
      out << ',' << row.scores.get(static_cast<core::Metric>(i));
    }
    out << '\n';
  }
}

}  // namespace axiomcc::exp
