#include "exp/crosscheck.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <vector>

#include "cc/registry.h"
#include "engine/backend.h"
#include "engine/scenario.h"
#include "engine/topology.h"
#include "ledger/provenance.h"
#include "recorder/io.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/task_pool.h"

namespace axiomcc::exp {

namespace {

/// Differences below this are ties — same floors the emulab grid uses: loss
/// rates live near zero, so a relative margin would turn noise into a
/// "strict" ordering there.
double tie_threshold(core::Metric m) {
  return m == core::Metric::kLossAvoidance ? 0.005 : 0.05;
}

/// Higher-is-better view of one backend's score.
double oriented(const core::MetricReport& r, core::Metric m) {
  const double v = r.get(m);
  return core::lower_is_better(m) ? -v : v;
}

std::string order_string(const std::vector<CrosscheckEntry>& entries,
                         const std::vector<double>& scores) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  std::string out;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (i > 0) out += " < ";
    out += entries[idx[i]].protocol;
  }
  return out;
}

}  // namespace

std::vector<std::string> default_crosscheck_specs() {
  return {"aimd(1,0.5)",     "mimd(1.01,0.875)", "bin(1,1,1,0)",
          "bin(1,1,0.5,0.5)", "cubic(0.4,0.8)",   "robust_aimd(1,0.8,0.01)"};
}

const std::vector<core::Metric>& crosscheck_metrics() {
  static const std::vector<core::Metric> metrics{
      core::Metric::kEfficiency, core::Metric::kLossAvoidance,
      core::Metric::kFairness, core::Metric::kConvergence,
      core::Metric::kTcpFriendliness};
  return metrics;
}

CrosscheckResult run_crosscheck(const CrosscheckConfig& cfg) {
  const std::vector<std::string> specs =
      cfg.protocol_specs.empty() ? default_crosscheck_specs()
                                 : cfg.protocol_specs;
  // Parse every spec up front so a typo throws before any simulation runs;
  // the parsed instances also supply the display names.
  std::vector<std::string> names;
  names.reserve(specs.size());
  for (const std::string& spec : specs) {
    names.push_back(cc::make_protocol(spec)->name());
  }

  // Cell i = (protocol i/2, backend i%2). Each cell rebuilds its protocol
  // from the spec string — cc::Protocol instances are stateful and must not
  // be shared across worker threads — so the matrix is bit-identical at any
  // job count.
  const std::vector<core::MetricReport> reports = parallel_map(
      specs.size() * 2,
      [&](std::size_t i) {
        const std::string& spec = specs[i / 2];
        const engine::BackendKind backend = (i % 2 == 0)
                                                ? engine::BackendKind::kFluid
                                                : engine::BackendKind::kPacket;
        TELEMETRY_SPAN_DYN("exp.crosscheck",
                           std::string(engine::backend_name(backend)) + "/" +
                               spec);
        TELEMETRY_COUNT("exp.crosscheck.cells", 1);
        const auto proto = cc::make_protocol(spec);
        core::EvalConfig ec = cfg.base;
        ec.backend = backend;
        return core::evaluate_protocol(*proto, ec);
      },
      cfg.jobs);

  CrosscheckResult result;
  result.entries.reserve(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    result.entries.push_back(
        CrosscheckEntry{names[p], reports[2 * p], reports[2 * p + 1]});
  }
  result.agreements = check_crosscheck_agreement(result.entries);
  return result;
}

std::vector<MetricAgreement> check_crosscheck_agreement(
    const std::vector<CrosscheckEntry>& entries) {
  AXIOMCC_EXPECTS(!entries.empty());
  // Same pairwise-margin logic the emulab grid uses against real traces:
  // fluid-side separations beyond a tie threshold are hierarchy claims; the
  // packet side agrees unless it inverts the pair beyond slack.
  constexpr double kFluidMargin = 0.05;
  constexpr double kPacketSlack = 0.02;

  const std::size_t n = entries.size();
  std::vector<MetricAgreement> agreements;
  for (core::Metric m : crosscheck_metrics()) {
    std::vector<double> fl(n);
    std::vector<double> pk(n);
    for (std::size_t i = 0; i < n; ++i) {
      fl[i] = oriented(entries[i].fluid, m);
      pk[i] = oriented(entries[i].packet, m);
    }

    MetricAgreement a;
    a.metric = m;
    a.fluid_order = order_string(entries, fl);
    a.packet_order = order_string(entries, pk);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double scale =
            std::max({std::fabs(fl[i]), std::fabs(fl[j]), 1e-9});
        const double threshold =
            std::max(kFluidMargin * scale, tie_threshold(m));
        if (fl[i] - fl[j] <= threshold) continue;  // tie: no claim made
        ++a.pairs;
        // Packet-side congestion noise (queueing granularity, slow start)
        // is larger than the fluid model's: an inversion only counts once
        // it exceeds a FULL tie threshold, not the half the emulab grid
        // uses against its much longer averaging windows.
        const double pscale =
            std::max({std::fabs(pk[i]), std::fabs(pk[j]), 1e-9});
        const double slack =
            std::max(kPacketSlack * pscale, tie_threshold(m));
        if (pk[i] - pk[j] >= -slack) ++a.agreeing_pairs;
      }
    }
    a.matches = a.agreeing_pairs == a.pairs;
    agreements.push_back(std::move(a));
  }
  return agreements;
}

void write_crosscheck_csv(const CrosscheckResult& result, std::ostream& out) {
  out << "protocol,backend,efficiency,fast_utilization,loss_avoidance,"
         "fairness,convergence,robustness,tcp_friendliness,"
         "latency_avoidance\n";
  const auto row = [&out](const std::string& name, const char* backend,
                          const core::MetricReport& r) {
    out << name << ',' << backend;
    for (std::size_t i = 0; i < core::kNumMetrics; ++i) {
      out << ',' << r.get(static_cast<core::Metric>(i));
    }
    out << '\n';
  };
  for (const CrosscheckEntry& e : result.entries) {
    row(e.protocol, "fluid", e.fluid);
    row(e.protocol, "packet", e.packet);
  }
  out << "\nmetric,pairs,agreeing_pairs,matches,fluid_order,packet_order\n";
  for (const MetricAgreement& a : result.agreements) {
    out << core::metric_name(a.metric) << ',' << a.pairs << ','
        << a.agreeing_pairs << ',' << (a.matches ? 1 : 0) << ',' << '"'
        << a.fluid_order << '"' << ',' << '"' << a.packet_order << '"'
        << '\n';
  }
}

namespace {

/// File-name-safe protocol label: spec punctuation becomes '-'.
std::string sanitize_label(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_';
    out.push_back(keep ? c : '-');
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

/// Tail-mean share of flow 0's window in the aggregate.
double long_flow_tail_share(const fluid::Trace& trace, double tail_fraction) {
  const std::size_t steps = trace.num_steps();
  if (steps == 0) return 0.0;
  const auto start = static_cast<std::size_t>(
      static_cast<double>(steps) * tail_fraction);
  double long_sum = 0.0;
  double total_sum = 0.0;
  for (std::size_t s = start; s < steps; ++s) {
    long_sum += trace.windows(0)[s];
    total_sum += trace.total_window()[s];
  }
  return total_sum > 0.0 ? long_sum / total_sum : 0.0;
}

}  // namespace

TopologyCheckResult run_topology_crosscheck(const TopologyCheckConfig& cfg) {
  AXIOMCC_EXPECTS(cfg.bottlenecks >= 1);
  AXIOMCC_EXPECTS(cfg.steps > 0);
  AXIOMCC_EXPECTS(cfg.tail_fraction >= 0.0 && cfg.tail_fraction < 1.0);
  const std::vector<std::string> specs =
      cfg.protocol_specs.empty()
          ? std::vector<std::string>{"aimd(1,0.5)", "cubic(0.4,0.8)"}
          : cfg.protocol_specs;
  std::vector<std::string> names;
  names.reserve(specs.size());
  for (const std::string& spec : specs) {
    names.push_back(cc::make_protocol(spec)->name());
  }

  // Cell i = (protocol i/2, backend i%2), as in run_crosscheck: each cell
  // rebuilds its protocol, so results are bit-identical at any job count.
  struct Cell {
    double share = 0.0;
    scope::ScopeSeries scope;
  };
  const std::vector<Cell> cells = parallel_map(
      specs.size() * 2,
      [&](std::size_t i) {
        const std::string& spec = specs[i / 2];
        const engine::BackendKind backend = (i % 2 == 0)
                                                ? engine::BackendKind::kFluid
                                                : engine::BackendKind::kPacket;
        TELEMETRY_SPAN_DYN("exp.crosscheck.topology",
                           std::string(engine::backend_name(backend)) + "/" +
                               spec);
        TELEMETRY_COUNT("exp.crosscheck.topology_cells", 1);
        const auto proto = cc::make_protocol(spec);
        engine::ScenarioSpec scenario;
        scenario.steps = cfg.steps;
        scenario.seed = cfg.seed;
        scenario.tail_fraction = cfg.tail_fraction;
        engine::apply_parking_lot(scenario, cfg.per_link, cfg.bottlenecks,
                                  *proto);
        scenario.record = cfg.record;
        const auto rec = engine::make_recorder(scenario);
        scenario.record_sink = rec.get();
        scenario.scope = cfg.scope;
        const auto sc = engine::make_scope(scenario);
        scenario.scope_sink = sc.get();
        const engine::RunTrace rt =
            engine::backend_for(backend).run(scenario);
        if (rec != nullptr && !cfg.record_dir.empty()) {
          recorder::Recording snap = rec->snapshot();
          snap.git_sha = ledger::current_provenance().git_sha;
          recorder::write_text_file(
              cfg.record_dir + "/crosscheck-" + sanitize_label(names[i / 2]) +
                  "-" + engine::backend_name(backend) + ".jsonl",
              recorder::recording_to_jsonl(snap));
        }
        Cell cell;
        cell.share = long_flow_tail_share(rt.trace, cfg.tail_fraction);
        if (sc != nullptr) cell.scope = sc->series();
        return cell;
      },
      cfg.jobs);

  TopologyCheckResult result;
  result.entries.reserve(specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    TopologyCheckEntry e;
    e.protocol = names[p];
    e.bottlenecks = cfg.bottlenecks;
    e.fluid_long_share = cells[2 * p].share;
    e.packet_long_share = cells[2 * p + 1].share;
    e.fluid_scope = cells[2 * p].scope;
    e.packet_scope = cells[2 * p + 1].scope;
    // One long flow competes with one cross flow per link: fair is an even
    // split of each bottleneck.
    e.fair_share = 0.5;
    e.beat_down_agrees = (e.fluid_long_share < e.fair_share) ==
                         (e.packet_long_share < e.fair_share);
    result.entries.push_back(std::move(e));
  }
  return result;
}

void write_topology_crosscheck_csv(const TopologyCheckResult& result,
                                   std::ostream& out) {
  out << "protocol,bottlenecks,fluid_long_share,packet_long_share,"
         "fair_share,beat_down_agrees\n";
  for (const TopologyCheckEntry& e : result.entries) {
    out << e.protocol << ',' << e.bottlenecks << ',' << e.fluid_long_share
        << ',' << e.packet_long_share << ',' << e.fair_share << ','
        << (e.beat_down_agrees ? 1 : 0) << '\n';
  }
}

}  // namespace axiomcc::exp
