#include "exp/table1.h"

#include <limits>

#include "cc/aimd.h"
#include "cc/binomial.h"
#include "cc/cubic.h"
#include "cc/mimd.h"
#include "cc/robust_aimd.h"
#include "core/theory.h"
#include "fluid/link.h"
#include "telemetry/telemetry.h"
#include "util/task_pool.h"

namespace axiomcc::exp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct LinkView {
  double capacity;
  double buffer;
  int n;
};

LinkView link_view(const core::EvalConfig& cfg) {
  const fluid::FluidLink link(cfg.link);
  return LinkView{link.capacity_mss(), link.buffer_mss(), cfg.num_senders};
}

/// Latency inflation when loss-based senders fill the buffer: τ/C.
double loss_based_latency(const LinkView& lv) { return lv.buffer / lv.capacity; }

}  // namespace

core::MetricReport aimd_theory(double a, double b, const core::EvalConfig& cfg,
                               bool worst_case) {
  namespace th = core::theory;
  const LinkView lv = link_view(cfg);
  core::MetricReport r;
  r.efficiency = worst_case ? th::aimd_efficiency_worst(b)
                            : th::aimd_efficiency(b, lv.capacity, lv.buffer);
  r.loss_avoidance =
      worst_case ? 1.0 : th::aimd_loss_bound(a, lv.capacity, lv.buffer, lv.n);
  r.fast_utilization = th::aimd_fast_utilization(a);
  r.tcp_friendliness = th::aimd_friendliness(a, b);
  r.fairness = 1.0;
  r.convergence = th::aimd_convergence(b);
  r.robustness = 0.0;
  r.latency_avoidance = worst_case ? kInf : loss_based_latency(lv);
  return r;
}

core::MetricReport mimd_theory(double a, double b, const core::EvalConfig& cfg,
                               bool worst_case) {
  namespace th = core::theory;
  const LinkView lv = link_view(cfg);
  core::MetricReport r;
  r.efficiency = worst_case ? th::mimd_efficiency_worst(b)
                            : th::mimd_efficiency(b, lv.capacity, lv.buffer);
  // See theory.h: the paper's printed worst case is a/(1+a); the
  // model-derived bound 1−1/a is what the fluid dynamics actually produce.
  r.loss_avoidance = worst_case ? th::mimd_loss_bound_paper(a)
                                : th::mimd_loss_bound_model(a);
  r.fast_utilization = kInf;
  r.tcp_friendliness =
      worst_case ? 0.0 : th::mimd_friendliness(a, b, lv.capacity, lv.buffer);
  r.fairness = worst_case ? 0.0 : 0.0;  // MIMD preserves initial ratios: <0>
  r.convergence = th::mimd_convergence(b);
  r.robustness = 0.0;
  r.latency_avoidance = worst_case ? kInf : loss_based_latency(lv);
  return r;
}

core::MetricReport bin_theory(double a, double b, double k, double l,
                              const core::EvalConfig& cfg, bool worst_case) {
  namespace th = core::theory;
  const LinkView lv = link_view(cfg);
  core::MetricReport r;
  r.efficiency = worst_case
                     ? th::bin_efficiency_worst(b)
                     : th::bin_efficiency(b, l, lv.capacity, lv.buffer, lv.n);
  r.loss_avoidance =
      worst_case ? 1.0
                 : th::bin_loss_bound_model(a, k, lv.capacity, lv.buffer, lv.n);
  r.fast_utilization = th::bin_fast_utilization(a, k);
  r.tcp_friendliness = th::bin_friendliness(a, b, k, l);
  r.fairness = 1.0;
  r.convergence = worst_case
                      ? th::bin_convergence_worst(b)
                      : th::bin_convergence(b, l, lv.capacity, lv.buffer, lv.n);
  r.robustness = 0.0;
  r.latency_avoidance = worst_case ? kInf : loss_based_latency(lv);
  return r;
}

core::MetricReport cubic_theory(double c, double b, const core::EvalConfig& cfg,
                                bool worst_case) {
  namespace th = core::theory;
  const LinkView lv = link_view(cfg);
  core::MetricReport r;
  r.efficiency = worst_case ? th::cubic_efficiency_worst(b)
                            : th::cubic_efficiency(b, lv.capacity, lv.buffer);
  r.loss_avoidance =
      worst_case ? 1.0 : th::cubic_loss_bound(c, lv.capacity, lv.buffer, lv.n);
  r.fast_utilization = th::cubic_fast_utilization(c);
  r.tcp_friendliness =
      worst_case ? 0.0 : th::cubic_friendliness(c, b, lv.capacity, lv.buffer);
  r.fairness = 1.0;
  r.convergence = th::cubic_convergence(b);
  r.robustness = 0.0;
  r.latency_avoidance = worst_case ? kInf : loss_based_latency(lv);
  return r;
}

core::MetricReport robust_aimd_theory(double a, double b, double eps,
                                      const core::EvalConfig& cfg,
                                      bool worst_case) {
  namespace th = core::theory;
  const LinkView lv = link_view(cfg);
  core::MetricReport r;
  r.efficiency = worst_case
                     ? th::robust_aimd_efficiency_worst(b, eps)
                     : th::robust_aimd_efficiency(b, eps, lv.capacity, lv.buffer);
  r.loss_avoidance =
      worst_case
          ? 1.0
          : th::robust_aimd_loss_bound(a, eps, lv.capacity, lv.buffer, lv.n);
  r.fast_utilization = th::robust_aimd_fast_utilization(a);
  r.tcp_friendliness =
      worst_case ? 0.0
                 : th::robust_aimd_friendliness(a, b, eps, lv.capacity,
                                                lv.buffer);
  r.fairness = 1.0;
  r.convergence = th::robust_aimd_convergence(b);
  r.robustness = th::robust_aimd_robustness(eps);
  r.latency_avoidance = worst_case ? kInf : loss_based_latency(lv);
  return r;
}

std::vector<Table1Entry> build_table1(const core::EvalConfig& cfg, long jobs) {
  // Each row is an independent (theory, measurement) cell; the task builds
  // its own protocol instance, so nothing is shared across worker threads.
  return parallel_map(
      std::size_t{6},
      [&](std::size_t row) -> Table1Entry {
        TELEMETRY_SPAN_DYN("exp.table1", "row" + std::to_string(row));
        TELEMETRY_COUNT("exp.table1.rows", 1);
        switch (row) {
          case 0: {
            const cc::Aimd proto(1.0, 0.5);
            return Table1Entry{proto.name(), aimd_theory(1.0, 0.5, cfg, false),
                               aimd_theory(1.0, 0.5, cfg, true),
                               core::evaluate_protocol(proto, cfg)};
          }
          case 1: {
            const cc::Mimd proto(1.01, 0.875);
            return Table1Entry{proto.name(),
                               mimd_theory(1.01, 0.875, cfg, false),
                               mimd_theory(1.01, 0.875, cfg, true),
                               core::evaluate_protocol(proto, cfg)};
          }
          case 2: {
            // IIAD: inverse-increase additive-decrease, BIN(k=1, l=0).
            const cc::Binomial proto(1.0, 1.0, 1.0, 0.0);
            return Table1Entry{proto.name(),
                               bin_theory(1.0, 1.0, 1.0, 0.0, cfg, false),
                               bin_theory(1.0, 1.0, 1.0, 0.0, cfg, true),
                               core::evaluate_protocol(proto, cfg)};
          }
          case 3: {
            // SQRT: BIN(k=l=0.5).
            const cc::Binomial proto(1.0, 0.5, 0.5, 0.5);
            return Table1Entry{proto.name(),
                               bin_theory(1.0, 0.5, 0.5, 0.5, cfg, false),
                               bin_theory(1.0, 0.5, 0.5, 0.5, cfg, true),
                               core::evaluate_protocol(proto, cfg)};
          }
          case 4: {
            const cc::Cubic proto(0.4, 0.8);
            return Table1Entry{proto.name(), cubic_theory(0.4, 0.8, cfg, false),
                               cubic_theory(0.4, 0.8, cfg, true),
                               core::evaluate_protocol(proto, cfg)};
          }
          default: {
            const cc::RobustAimd proto(1.0, 0.8, 0.01);
            return Table1Entry{proto.name(),
                               robust_aimd_theory(1.0, 0.8, 0.01, cfg, false),
                               robust_aimd_theory(1.0, 0.8, 0.01, cfg, true),
                               core::evaluate_protocol(proto, cfg)};
          }
        }
      },
      jobs);
}

}  // namespace axiomcc::exp
