// sweep.h — bulk metric sweeps: protocols × link shapes → score matrix.
//
// The workhorse for exploring the metric space at scale: every protocol
// spec is evaluated on every (bandwidth, RTT, buffer) combination, producing
// one row of all eight scores per cell, exportable as CSV for plotting.
// bench/figure-style analyses and downstream users both build on this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/metric_point.h"

namespace axiomcc::exp {

/// The link-shape grid of a sweep.
struct LinkGrid {
  std::vector<double> bandwidths_mbps{20.0, 30.0, 60.0, 100.0};
  std::vector<double> rtts_ms{42.0};
  std::vector<double> buffers_mss{10.0, 100.0};

  [[nodiscard]] std::size_t size() const {
    return bandwidths_mbps.size() * rtts_ms.size() * buffers_mss.size();
  }
};

/// One sweep cell: a protocol on a link shape, with its 8 scores.
struct SweepRow {
  std::string protocol;
  double bandwidth_mbps = 0.0;
  double rtt_ms = 0.0;
  double buffer_mss = 0.0;
  core::MetricReport scores;
};

/// Evaluates every spec on every grid cell. `base` supplies everything but
/// the link (steps, sender counts, tail fraction...). Protocol specs are
/// parsed with cc::make_protocol; invalid specs throw before any work runs.
[[nodiscard]] std::vector<SweepRow> run_metric_sweep(
    const std::vector<std::string>& protocol_specs, const LinkGrid& grid,
    const core::EvalConfig& base = {});

/// Writes sweep rows as CSV with one column per metric.
void write_sweep_csv(const std::vector<SweepRow>& rows, std::ostream& out);

}  // namespace axiomcc::exp
