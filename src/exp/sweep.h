// sweep.h — bulk metric sweeps: protocols × link shapes → score matrix.
//
// The workhorse for exploring the metric space at scale: every protocol
// spec is evaluated on every (bandwidth, RTT, buffer) combination, producing
// one row of all eight scores per cell, exportable as CSV for plotting.
// bench/figure-style analyses and downstream users both build on this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cc/protocol.h"
#include "core/evaluator.h"
#include "core/metric_point.h"
#include "stress/guarded_run.h"

namespace axiomcc::exp {

/// One link shape of a sweep grid.
struct LinkShape {
  double bandwidth_mbps = 0.0;
  double rtt_ms = 0.0;
  double buffer_mss = 0.0;
};

/// The link-shape grid of a sweep.
struct LinkGrid {
  std::vector<double> bandwidths_mbps{20.0, 30.0, 60.0, 100.0};
  std::vector<double> rtts_ms{42.0};
  std::vector<double> buffers_mss{10.0, 100.0};

  [[nodiscard]] std::size_t size() const {
    return bandwidths_mbps.size() * rtts_ms.size() * buffers_mss.size();
  }

  /// The `index`-th cell in row-major order (bandwidth outermost, buffer
  /// innermost) — the flattening both the serial and the parallel sweep use,
  /// so row ordering is identical at any job count. Requires index < size().
  [[nodiscard]] LinkShape shape(std::size_t index) const;
};

/// One sweep cell: a protocol on a link shape, with its 8 scores.
/// A cell whose evaluation diverged (threw, or produced NaN scores) carries
/// a populated `fault` and zeroed scores instead of aborting the sweep.
struct SweepRow {
  std::string protocol;
  double bandwidth_mbps = 0.0;
  double rtt_ms = 0.0;
  double buffer_mss = 0.0;
  core::MetricReport scores;
  stress::FaultReport fault;

  [[nodiscard]] bool failed() const { return !fault.ok(); }
};

/// Evaluates every spec on every grid cell. `base` supplies everything but
/// the link (steps, sender counts, tail fraction...). Protocol specs are
/// parsed with cc::make_protocol; invalid specs throw before any work runs.
/// Per-cell evaluation failures are captured as `failed` rows.
///
/// `jobs` fans the cells out over a work-stealing pool (util/task_pool.h):
/// <= 0 resolves via resolve_jobs (AXIOMCC_JOBS env, else hardware), 1 is
/// the serial path. Output is bit-identical at every job count — each cell
/// is a pure function of its index and rows keep the serial ordering
/// (protocol-major, then the grid's row-major link order).
[[nodiscard]] std::vector<SweepRow> run_metric_sweep(
    const std::vector<std::string>& protocol_specs, const LinkGrid& grid,
    const core::EvalConfig& base = {}, long jobs = 0);

/// Same sweep for externally-built prototypes (the hook tests use to inject
/// pathological protocols). Prototypes must outlive the call; each cell task
/// works on its own clone, so one prototype may seed many concurrent cells.
/// Named rather than overloaded: braced string lists would otherwise be
/// ambiguous against the pointer vector's iterator-pair constructor.
[[nodiscard]] std::vector<SweepRow> run_metric_sweep_prototypes(
    const std::vector<const cc::Protocol*>& prototypes, const LinkGrid& grid,
    const core::EvalConfig& base = {}, long jobs = 0);

/// Writes sweep rows as CSV with one column per metric plus a trailing
/// `status` column ("ok" or the fault kind of a failed cell).
void write_sweep_csv(const std::vector<SweepRow>& rows, std::ostream& out);

}  // namespace axiomcc::exp
