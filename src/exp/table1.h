// table1.h — reproduction of the paper's Table 1 (protocol characterization).
//
// For each protocol family instance, three 8-metric views:
//   * theory_nuanced — the capacity/buffer/n-dependent formulas of Table 1,
//   * theory_worst   — the angle-bracket worst-case bounds,
//   * measured       — scores measured by the evaluator on the fluid model.
// bench_table1 renders these side by side; tests assert agreement.
#pragma once

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/metric_point.h"

namespace axiomcc::exp {

struct Table1Entry {
  std::string protocol;
  core::MetricReport theory_nuanced;
  core::MetricReport theory_worst;
  core::MetricReport measured;
};

/// The paper's Table 1 rows: AIMD(1,0.5), MIMD(1.01,0.875), two BIN
/// representatives (IIAD = BIN(1,1,1,0) and SQRT = BIN(1,1,0.5,0.5)),
/// CUBIC(0.4,0.8), and Robust-AIMD(1,0.8,0.01). `jobs` fans the rows out
/// over a work-stealing pool (<= 0: auto via resolve_jobs, 1: serial); each
/// row builds its own protocol, so results are bit-identical at any count.
[[nodiscard]] std::vector<Table1Entry> build_table1(const core::EvalConfig& cfg,
                                                    long jobs = 0);

/// Theory-only views for one family instance (used by tests).
[[nodiscard]] core::MetricReport aimd_theory(double a, double b,
                                             const core::EvalConfig& cfg,
                                             bool worst_case);
[[nodiscard]] core::MetricReport mimd_theory(double a, double b,
                                             const core::EvalConfig& cfg,
                                             bool worst_case);
[[nodiscard]] core::MetricReport bin_theory(double a, double b, double k,
                                            double l,
                                            const core::EvalConfig& cfg,
                                            bool worst_case);
[[nodiscard]] core::MetricReport cubic_theory(double c, double b,
                                              const core::EvalConfig& cfg,
                                              bool worst_case);
[[nodiscard]] core::MetricReport robust_aimd_theory(double a, double b,
                                                    double eps,
                                                    const core::EvalConfig& cfg,
                                                    bool worst_case);

}  // namespace axiomcc::exp
